#!/usr/bin/env python
"""Speedup-vs-jobs benchmark for the parallel verification drivers (JSON).

Two workloads, each solved at several ``jobs`` levels with verdict
assertions against the sequential path:

* ``qed-batch`` — batch equivalence checking of the curated equivalent
  programs: :func:`repro.par.qed.verify_equivalences_parallel` against the
  sequential :func:`repro.qed.equivalents.verify_equivalences`.  Verdict
  dicts must be identical (same keys, same order, same booleans).
* ``bug-sweep`` — independent bug variants through
  :meth:`repro.core.flow.SepeSqedFlow.run_many`, parallel jobs against the
  sequential ``jobs=1`` sweep.  Detection verdicts and counterexample
  lengths must match.

The exit status asserts correctness everywhere (any verdict mismatch
fails).  The speedup gate — the highest jobs level must beat ``jobs=1``
wall-clock — is enforced when the machine can actually run workers
concurrently (2+ CPUs) and ``--smoke`` was not passed; a single-core host
can only validate verdict equivalence, never a speedup, so it reports
``speedup_gate: "skipped (single cpu)"`` instead of failing spuriously.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke] [--out results.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.flow import SepeSqedFlow, pool_for_bug
from repro.isa.config import IsaConfig
from repro.par.qed import verify_equivalences_parallel
from repro.proc.bugs import get_bug
from repro.proc.config import ProcessorConfig
from repro.qed.equivalents import default_equivalent_programs, verify_equivalences

#: Ops whose equivalence proofs stay fast enough for the smoke pass.
SMOKE_OPS = ["ADD", "SUB", "XOR", "OR", "AND", "SLT"]

#: The multiplier rows are excluded even from the full batch: multiplier
#: equivalence is SAT-hard and is spot-checked concretely by the test suite.
FULL_SKIP = {"MUL", "MULH"}


def _fill_speedups(runs: dict, base_jobs: int) -> None:
    """Annotate every jobs level with its speedup relative to ``base_jobs``."""
    base = runs[str(base_jobs)]["seconds"]
    for entry in runs.values():
        if entry["seconds"] > 0:
            entry["speedup_vs_jobs1"] = round(base / entry["seconds"], 3)


def bench_qed_batch(jobs_levels: list[int], smoke: bool) -> dict:
    if smoke:
        programs = default_equivalent_programs(IsaConfig.small(), ops=SMOKE_OPS)
    else:
        # The full batch runs on the 32-bit datapath: each equivalence proof
        # then costs a few hundred milliseconds, so the work dominates the
        # per-worker fork overhead and speedup-vs-jobs is measurable.
        isa = IsaConfig.small(xlen=32)
        programs = {
            op: program
            for op, program in default_equivalent_programs(isa).items()
            if op not in FULL_SKIP
        }

    start = time.perf_counter()
    sequential = verify_equivalences(programs)
    sequential_seconds = time.perf_counter() - start

    runs = {}
    for jobs in jobs_levels:
        start = time.perf_counter()
        parallel = verify_equivalences_parallel(programs, jobs=jobs)
        seconds = time.perf_counter() - start
        runs[str(jobs)] = {
            "seconds": round(seconds, 4),
            "verdicts_match": parallel == sequential
            and list(parallel) == list(sequential),
            "speedup_vs_jobs1": None,
        }
    _fill_speedups(runs, jobs_levels[0])
    return {
        "name": "qed-batch",
        "num_programs": len(programs),
        "sequential_seconds": round(sequential_seconds, 4),
        "jobs": runs,
    }


def bench_bug_sweep(jobs_levels: list[int], smoke: bool) -> dict:
    isa = IsaConfig.small()
    equivalents = default_equivalent_programs(isa)
    bug_names = ["single_add_off_by_one"]
    if not smoke:
        bug_names += ["single_xor_as_or", "single_and_as_or"]
    bugs = [get_bug(name) for name in bug_names]
    # One shared pool so a single flow serves every variant of the sweep.
    pool: list[str] = []
    for bug in bugs:
        for op in pool_for_bug(bug, equivalents):
            if op not in pool:
                pool.append(op)
    config = ProcessorConfig(isa=isa, supported_ops=tuple(pool))
    flow = SepeSqedFlow(
        config,
        equivalents={op: equivalents[op] for op in pool if op in equivalents},
    )
    bound = 9

    def verdicts(outcomes):
        return [(o.bug_name, o.detected, o.counterexample_length) for o in outcomes]

    runs = {}
    baseline = None
    for jobs in jobs_levels:
        start = time.perf_counter()
        outcomes = flow.run_many(bugs, bound=bound, jobs=jobs)
        seconds = time.perf_counter() - start
        summary = verdicts(outcomes)
        if baseline is None:
            baseline = summary
        runs[str(jobs)] = {
            "seconds": round(seconds, 4),
            "verdicts_match": summary == baseline,
            "detected": [v[1] for v in summary],
            "speedup_vs_jobs1": None,
        }
    _fill_speedups(runs, jobs_levels[0])
    return {
        "name": "bug-sweep",
        "bugs": bug_names,
        "bound": bound,
        "jobs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write JSON here (default: stdout)")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small program subset, fewer jobs levels, no speedup gate (CI sanity)",
    )
    parser.add_argument(
        "--jobs-levels",
        type=int,
        nargs="*",
        default=None,
        help="jobs levels to sweep (default: 1 2 4, smoke: 1 2)",
    )
    args = parser.parse_args(argv)

    jobs_levels = args.jobs_levels or ([1, 2] if args.smoke else [1, 2, 4])
    if jobs_levels[0] != 1:
        jobs_levels = [1] + jobs_levels

    cpu_count = os.cpu_count() or 1
    workloads = [
        bench_qed_batch(jobs_levels, args.smoke),
        bench_bug_sweep(jobs_levels, args.smoke),
    ]

    all_match = all(
        entry["verdicts_match"]
        for workload in workloads
        for entry in workload["jobs"].values()
    )
    top = str(max(jobs_levels))
    qed = workloads[0]["jobs"]
    if args.smoke:
        speedup_gate = "skipped (smoke)"
        gate_passed = True
    elif cpu_count < 2:
        speedup_gate = "skipped (single cpu)"
        gate_passed = True
    else:
        # Self-guarded: only reached with >= 2 real CPUs and not in smoke
        # mode, where a speedup is genuinely expected.
        gate_passed = qed[top]["seconds"] < qed["1"]["seconds"]  # selflint: allow-wallclock
        speedup_gate = "passed" if gate_passed else "FAILED"

    report = {
        "cpu_count": cpu_count,
        "jobs_levels": jobs_levels,
        "workloads": workloads,
        "all_verdicts_match": all_match,
        "speedup_gate": speedup_gate,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    return 0 if all_match and gate_passed else 1


if __name__ == "__main__":
    sys.exit(main())
