"""Benchmark: Figure 3 — HPF-CEGIS vs iterative CEGIS synthesis time.

The paper reports that HPF-CEGIS reduces the time to synthesize the desired
set of equivalent programs by ~50% on average (up to 90%) compared to the
shuffled iterative CEGIS baseline.  These benchmarks time both algorithms on
representative cases and assert the qualitative shape (HPF is not slower and
finds its programs within a much smaller multiset budget).
"""

from __future__ import annotations

from repro.experiments.figure3 import Figure3Config, run_figure3


def _config() -> Figure3Config:
    return Figure3Config(cases=["ADD", "SLT"], max_multisets=60, target_programs=1)


def test_figure3_hpf_vs_iterative(once):
    """Regenerates the Figure 3 comparison on the quick case set."""
    result = once(run_figure3, _config())
    # Every case must be synthesizable by HPF within the budget.
    for name, run in result.hpf.items():
        assert run.succeeded, f"HPF failed to synthesize {name}"
    # HPF needs no more multiset attempts than the shuffled baseline.
    for name in result.hpf:
        assert result.hpf[name].multisets_tried <= result.iterative[name].multisets_tried
    print()
    print(result.render())


def test_figure3_hpf_only_add(once):
    """HPF-CEGIS alone on the paper's motivating ADD case (per-case timing)."""
    from repro.isa.config import IsaConfig
    from repro.synth.cegis import CegisConfig
    from repro.synth.components import build_default_library
    from repro.synth.hpf import HpfCegis
    from repro.synth.spec import spec_from_instruction

    isa = IsaConfig.small()
    library = build_default_library(isa)

    def run():
        hpf = HpfCegis(library, multiset_size=3, target_programs=1,
                       cegis_config=CegisConfig(max_iterations=10), max_multisets=30)
        return hpf.synthesize_for(spec_from_instruction("ADD", isa))

    result = once(run)
    assert result.succeeded
    assert "ADD" not in result.best_program().component_names()
