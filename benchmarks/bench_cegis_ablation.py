"""Benchmark: ablations of the synthesis design choices (Section 6.1).

* Classical CEGIS blows up with the library size (the paper reports it could
  not synthesize a single instruction with 29 components in weeks); we show
  the trend on small libraries where it still terminates.
* The HPF priority function (choice/exclusion weights + the α name-overlap
  penalty) is ablated by comparing against plain enumeration order.
"""

from __future__ import annotations

from repro.isa.config import IsaConfig
from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.classical import ClassicalCegis
from repro.synth.components import ComponentLibrary, build_default_library
from repro.synth.hpf import HpfCegis
from repro.synth.spec import spec_from_instruction


def _isa():
    return IsaConfig.small()


def test_classical_cegis_small_library(once):
    """Classical CEGIS with a 3-component library still terminates quickly."""
    isa = _isa()
    full = build_default_library(isa)
    tiny = ComponentLibrary(isa, [full.by_name("OR"), full.by_name("AND"), full.by_name("SUB")])
    classical = ClassicalCegis(tiny, CegisConfig(max_iterations=12))
    run = once(classical.synthesize_for, spec_from_instruction("XOR", isa))
    assert run.succeeded


def test_classical_cegis_larger_library_slows_down(once):
    """With 8 components the single monolithic query is already much heavier."""
    isa = _isa()
    full = build_default_library(isa)
    names = ["ADD", "SUB", "AND", "OR", "XOR", "SLT", "SLTU", "SRL"]
    library = ComponentLibrary(isa, [full.by_name(n) for n in names])
    classical = ClassicalCegis(library, CegisConfig(max_iterations=12), max_components=8)
    run = once(classical.synthesize_for, spec_from_instruction("XOR", isa))
    # The point of the ablation is the runtime trend, not success: with every
    # component forced into one encoding the solver may or may not converge
    # within the iteration budget.
    assert run.cegis_calls == 1


def test_hpf_priority_vs_plain_enumeration(once):
    """The α name-overlap penalty steers HPF away from same-name components."""
    isa = _isa()
    library = build_default_library(isa)
    spec = spec_from_instruction("ADD", isa)

    def run_both():
        hpf = HpfCegis(library, multiset_size=3, target_programs=1,
                       cegis_config=CegisConfig(max_iterations=10), max_multisets=40)
        with_penalty = hpf.synthesize_for(spec)
        no_penalty = HpfCegis(library, multiset_size=3, target_programs=1,
                              cegis_config=CegisConfig(max_iterations=10),
                              max_multisets=40, alpha=0.0)
        without_penalty = no_penalty.synthesize_for(spec)
        return with_penalty, without_penalty

    with_penalty, without_penalty = once(run_both)
    assert with_penalty.succeeded
    # Without the penalty the search wades through ADD-containing multisets
    # first, so it needs at least as many attempts.
    assert with_penalty.multisets_tried <= without_penalty.multisets_tried
