#!/usr/bin/env python
"""SAT-kernel benchmark: arena vs reference CDCL on fixed workloads (JSON).

Every workload runs on **both** kernels and the exit status gates on
correctness only — verdict agreement between the kernels (and against the
expected verdict where one is known), model validity on SAT answers, and
core validity on UNSAT-under-assumptions answers.  Wall-clock seconds are
reported in the JSON for trajectory tracking but never asserted: CI
runners are single-CPU and timing-gated benchmarks there are pure noise.

The JSON doubles as the repo's perf-trajectory record (ROADMAP item 5):
committed as ``BENCH_kernel.json``, successive PRs append comparable
snapshots of the work counters — conflicts, propagations, learned clauses,
clause counts — per workload per kernel.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--smoke] [--out BENCH_kernel.json]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.bmc.engine import BmcEngine
from repro.pdr import PdrEngine
from repro.pdr.designs import lockstep_accumulators
from repro.sat.arena import ArenaSolver
from repro.sat.cnf import CNF
from repro.sat.solver import SatSolver

KERNELS = {"reference": SatSolver, "arena": ArenaSolver}


def _pigeonhole(pigeons: int, holes: int) -> CNF:
    def var(p, h):
        return 1 + p * holes + h

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                clauses.append([-var(i, h), -var(j, h)])
    return CNF(clauses)


def _random_3sat(seed: int, num_vars: int, num_clauses: int) -> CNF:
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        lits = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in lits])
    return CNF(clauses, num_vars=num_vars)


def _snapshot(solver, verdict, seconds: float) -> dict:
    stats = solver.stats
    return {
        "verdict": verdict,
        "seconds": round(seconds, 4),
        "conflicts": stats.conflicts,
        "propagations": stats.propagations,
        "decisions": stats.decisions,
        "restarts": stats.restarts,
        "learned_clauses": stats.learned_clauses,
        "lbd_sum": stats.lbd_sum,
        "minimized_literals": stats.minimized_literals,
        "saved_phase_hits": stats.saved_phase_hits,
        "clauses_in_db": solver.num_clauses,
        "learned_in_db": solver.num_learned,
    }


def _model_ok(result, cnf: CNF) -> bool:
    return all(
        any(result.value(abs(l)) == (l > 0) for l in clause) for clause in cnf
    )


# -------------------------------------------------------------------- workloads


def bench_oneshot(name, cnf, expected, failures):
    """One ``solve()`` per kernel on a fixed CNF; verdicts must agree."""
    entry = {"workload": name, "expected_sat": expected, "kernels": {}}
    verdicts = {}
    for kernel, cls in KERNELS.items():
        solver = cls(cnf)
        start = time.perf_counter()
        result = solver.solve()
        seconds = time.perf_counter() - start
        entry["kernels"][kernel] = _snapshot(solver, result.satisfiable, seconds)
        verdicts[kernel] = result.satisfiable
        if result.satisfiable and not _model_ok(result, cnf):
            failures.append(f"{name}/{kernel}: SAT model violates a clause")
    if expected is not None and any(v is not expected for v in verdicts.values()):
        failures.append(f"{name}: verdicts {verdicts} != expected {expected}")
    if len(set(verdicts.values())) != 1:
        failures.append(f"{name}: kernel verdict divergence {verdicts}")
    return entry


def bench_incremental_cores(name, seed, rounds, failures, num_vars=14):
    """Incremental assumption/core workload — the PDR query shape."""
    rng = random.Random(seed)
    entry = {"workload": name, "rounds": rounds, "num_vars": num_vars, "kernels": {}}
    raw = {}
    for kernel, cls in KERNELS.items():
        raw[kernel] = cls()
        raw[kernel].reserve(num_vars)
    rng_clauses = random.Random(seed)
    rng_assumptions = random.Random(seed + 1)
    seconds = dict.fromkeys(KERNELS, 0.0)
    trace = dict.fromkeys(KERNELS, None)
    for _ in range(rounds):
        grown = []
        for _ in range(rng_clauses.randint(4, 10)):
            width = rng_clauses.randint(2, 3)
            lits = rng_clauses.sample(range(1, num_vars + 1), width)
            grown.append(
                [v if rng_clauses.random() < 0.5 else -v for v in lits]
            )
        assumptions = [
            v if rng_assumptions.random() < 0.5 else -v
            for v in range(1, num_vars + 1)
            if rng_assumptions.random() < 0.4
        ]
        round_verdicts = {}
        cores = {}
        for kernel, solver in raw.items():
            for clause in grown:
                solver.add_clause(clause)
            start = time.perf_counter()
            result = solver.solve(assumptions=assumptions, need_model=False)
            seconds[kernel] += time.perf_counter() - start
            round_verdicts[kernel] = result.satisfiable
            if result.satisfiable is False:
                cores[kernel] = result.core
                if result.core is None or not set(result.core) <= set(assumptions):
                    failures.append(f"{name}/{kernel}: core not a subset")
        if len(set(round_verdicts.values())) != 1:
            failures.append(f"{name}: round verdict divergence {round_verdicts}")
        # Cross-validate cores on the *other* kernel.
        for kernel, core in cores.items():
            for other, solver in raw.items():
                if core and solver.solve(assumptions=core).satisfiable is not False:
                    failures.append(
                        f"{name}: {kernel}'s core is not UNSAT on {other}"
                    )
        trace = round_verdicts
    for kernel, solver in raw.items():
        entry["kernels"][kernel] = _snapshot(solver, trace[kernel], seconds[kernel])
    return entry


#: The conflict-quality knob configurations the sweep compares: everything
#: off (the classic baseline), each heuristic alone, and everything on
#: (the default).  Per-knob attribution of any trajectory change.
KNOB_CONFIGS = {
    "classic": dict(lbd_tiers=False, phase_saving=False, minimize=False),
    "lbd-tiers": dict(lbd_tiers=True, phase_saving=False, minimize=False),
    "phase-saving": dict(lbd_tiers=False, phase_saving=True, minimize=False),
    "minimize": dict(lbd_tiers=False, phase_saving=False, minimize=True),
    "all-on": dict(lbd_tiers=True, phase_saving=True, minimize=True),
}


def bench_knob_sweep(name, cnf, expected, failures):
    """The conflict-quality knobs, swept per kernel on one fixed CNF.

    Gated on every configuration of every kernel agreeing on the verdict
    (and with the expected one where known) and producing valid models on
    SAT — the heuristics may only change *how* the search runs, never what
    it concludes.  The per-configuration counters (LBD mass, minimised
    literals, phase hits) are the attribution record.
    """
    entry = {"workload": name, "expected_sat": expected, "kernels": {}}
    verdicts = {}
    for kernel, cls in KERNELS.items():
        entry["kernels"][kernel] = {}
        for config_name, knobs in KNOB_CONFIGS.items():
            solver = cls(cnf, **knobs)
            start = time.perf_counter()
            result = solver.solve()
            seconds = time.perf_counter() - start
            entry["kernels"][kernel][config_name] = _snapshot(
                solver, result.satisfiable, seconds
            )
            verdicts[(kernel, config_name)] = result.satisfiable
            if result.satisfiable and not _model_ok(result, cnf):
                failures.append(
                    f"{name}/{kernel}/{config_name}: SAT model violates a clause"
                )
    if expected is not None and any(v is not expected for v in verdicts.values()):
        failures.append(f"{name}: verdicts {verdicts} != expected {expected}")
    if len(set(verdicts.values())) != 1:
        failures.append(f"{name}: knob verdict divergence {verdicts}")
    return entry


def bench_engine_query(name, smoke, failures):
    """Engine-level workloads through the real bit-blasting pipeline."""
    entry = {"workload": name, "kernels": {}}
    verdicts = {}
    xlen = 4 if smoke else 8
    for kernel in KERNELS:
        ts = lockstep_accumulators(f"bk_{kernel}", xlen=xlen)
        start = time.perf_counter()
        bmc = BmcEngine(ts, backend=kernel).check("consistent", bound=8 if smoke else 12)
        pdr = PdrEngine(ts, backend=kernel, max_frames=10).prove("consistent")
        seconds = time.perf_counter() - start
        verdicts[kernel] = (bmc.holds, pdr.proven)
        stats = pdr.stats.solver_stats
        entry["kernels"][kernel] = {
            "verdict": {"bmc_holds_to_8": bmc.holds, "pdr_proven": pdr.proven},
            "seconds": round(seconds, 4),
            "conflicts": stats.conflicts,
            "propagations": stats.propagations,
            "decisions": stats.decisions,
            "restarts": stats.restarts,
            "learned_clauses": stats.learned_clauses,
            "pdr_frames": pdr.frames_explored,
        }
        if bmc.holds is not True or pdr.proven is not True:
            failures.append(
                f"{name}/{kernel}: expected holds+proven, got "
                f"bmc={bmc.holds} pdr={pdr.proven}"
            )
    if len(set(verdicts.values())) != 1:
        failures.append(f"{name}: kernel verdict divergence {verdicts}")
    return entry


def bench_golden_pdr(name, failures):
    """Frame-bounded PDR on the golden QED model — the paper workload.

    Gated on verdict agreement between the kernels.  Counters are
    reported per kernel but deliberately *not* required to match: the
    arena kernel's blocker fast path skips satisfied clauses that the
    reference kernel would relocate to another watch list, so the two
    watch orders (and hence propagation/decision/conflict totals)
    legitimately drift apart on large instances even with every
    conflict-quality knob disabled.  Disabling the blocker path restores
    exact lockstep — the drift is watch-order bookkeeping, not a search
    or correctness difference.
    """
    from repro.core.flow import SqedFlow
    from repro.isa.config import IsaConfig
    from repro.proc.config import ProcessorConfig

    entry = {"workload": name, "kernels": {}}
    verdicts = {}
    for kernel in KERNELS:
        isa = IsaConfig.small(xlen=4, num_regs=4)
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
        flow = SqedFlow(config, backend=kernel)
        start = time.perf_counter()
        outcome = flow.prove(None, engine="pdr", max_frames=3)
        seconds = time.perf_counter() - start
        stats = outcome.pdr_result.stats.solver_stats
        verdicts[kernel] = outcome.proven
        entry["kernels"][kernel] = {
            "verdict": outcome.proven,
            "seconds": round(seconds, 4),
            "conflicts": stats.conflicts,
            "propagations": stats.propagations,
            "decisions": stats.decisions,
            "restarts": stats.restarts,
            "learned_clauses": stats.learned_clauses,
        }
        if outcome.proven is False:
            failures.append(f"{name}/{kernel}: PDR fabricated a counterexample")
    if len(set(verdicts.values())) != 1:
        failures.append(f"{name}: kernels disagreed on the verdict {verdicts}")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small suite for CI")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    failures: list[str] = []
    workloads = [
        bench_oneshot(
            "pigeonhole-unsat",
            _pigeonhole(*((5, 4) if args.smoke else (8, 7))),
            False,
            failures,
        ),
        bench_oneshot(
            "random-3sat-sat",
            _random_3sat(7, 40 if args.smoke else 150, 150 if args.smoke else 600),
            None,
            failures,
        ),
        bench_incremental_cores(
            "incremental-cores",
            1234,
            6 if args.smoke else 40,
            failures,
            num_vars=14 if args.smoke else 40,
        ),
        bench_engine_query("lockstep-bmc-pdr", args.smoke, failures),
        bench_knob_sweep(
            "pigeonhole-knob-sweep",
            _pigeonhole(*((5, 4) if args.smoke else (7, 6))),
            False,
            failures,
        ),
    ]
    if not args.smoke:
        workloads.append(bench_golden_pdr("qed-golden-pdr-frames3", failures))

    report = {
        "benchmark": "sat-kernel",
        "smoke": args.smoke,
        "workloads": workloads,
        "failures": failures,
        "gate": "verdict agreement + model/core validity only (never wall-clock)",
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if failures:
        print(f"FAILED: {len(failures)} correctness gate(s) tripped", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
