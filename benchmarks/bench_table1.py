"""Benchmark: Table 1 — injected single-instruction bugs.

The paper's Table 1 shows a SEPE-SQED detection time for each of 13
single-instruction mutations and a dash for SQED.  These benchmarks
regenerate that comparison for a representative subset (the full set runs
via ``python -m repro.experiments.table1 --full``), asserting the headline
result: SEPE-SQED finds a counterexample for every bug, SQED finds none.
"""

from __future__ import annotations

from repro.experiments.table1 import Table1Config, run_table1


def test_table1_add_bug(once):
    result = once(run_table1, Table1Config(bug_names=["single_add_off_by_one"]))
    assert result.all_detected_by_sepe
    assert result.none_detected_by_sqed
    print()
    print(result.render())


def test_table1_logic_bugs(once):
    result = once(
        run_table1,
        Table1Config(bug_names=["single_xor_as_or", "single_and_as_or"]),
    )
    assert result.all_detected_by_sepe
    assert result.none_detected_by_sqed
    print()
    print(result.render())


def test_table1_immediate_bug(once):
    result = once(run_table1, Table1Config(bug_names=["single_xori_as_ori"]))
    assert result.all_detected_by_sepe
    assert result.none_detected_by_sqed
    print()
    print(result.render())
