#!/usr/bin/env python
"""Encoding-pipeline benchmark: clause counts and verdicts per opt level (JSON).

The staged compilation pipeline (terms → AIG → CNF → preprocess, see
``repro.solve.pipeline``) exists to shrink the formulas every engine solves.
This benchmark measures it on the BMC pipeline workload — the SQED
verification model of the scaled-down processor, golden and with an
injected forwarding bug — at every ``opt_level``, with two decoupled gates:

* **clause reduction** (``--size-bound``, default 10): every frame up to
  the bound is *encoded* through the full pipeline via
  ``BmcSession.encode_to`` — blasting, cone-of-influence reduction,
  preprocessing, assumption-variable restoration — without paying for the
  SAT queries, so the bound-10 formula sizes are measurable on any
  hardware.  The gate requires at least ``--min-reduction`` (default 20%)
  fewer backend clauses at ``opt_level=2`` than at ``opt_level=0`` on the
  golden workload.
* **verdict equality** (``--verdict-bound``, default 7, the smallest bound
  that produces the forwarding counterexample): the sweep is actually
  *solved* at every opt level, and verdicts, counterexample frames and
  counterexample lengths must be identical across levels.

Per the single-CPU host rule both gates are on verdicts and CNF size;
wall-clock is reported for information only.  ``--smoke`` is accepted for
CI symmetry with the other benchmarks — the default bounds are already
hardware-independent, so it changes nothing.

Usage::

    PYTHONPATH=src python benchmarks/bench_encoding.py [--smoke] [--out results.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bmc.engine import BmcSession
from repro.core.flow import SqedFlow
from repro.isa.config import IsaConfig
from repro.proc.bugs import get_bug
from repro.proc.config import ProcessorConfig

OPT_LEVELS = (0, 1, 2)

#: The 4-bit two-op datapath: the same scaled-down configuration the tier-1
#: forwarding-bug test uses, big enough for meaningful clause counts and
#: small enough that the verdict sweep stays tractable on the naive path.
XLEN = 4
NUM_REGS = 4
POOL = ("ADD", "SUB")
BUG = "multi_no_forward_ex_rs1"


def _build_session(bug, opt_level: int) -> BmcSession:
    isa = IsaConfig.small(xlen=XLEN, num_regs=NUM_REGS)
    config = ProcessorConfig(isa=isa, supported_ops=POOL)
    model = SqedFlow(config, opt_level=opt_level).build_model(bug)
    return BmcSession(model.ts, model.property_name, opt_level=opt_level)


def _encoding_sizes(bug, size_bound: int, opt_level: int) -> dict:
    session = _build_session(bug, opt_level)
    start = time.perf_counter()
    encoding = session.encode_to(size_bound)
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 2),
        "cnf_clauses_pre": encoding.cnf_clauses_pre,
        "cnf_clauses_post": encoding.cnf_clauses_post,
        "cnf_vars": encoding.cnf_vars,
        "aig_nodes": encoding.aig_nodes,
        "aig_rewrite_hits": encoding.aig_rewrite_hits,
        "vars_eliminated": encoding.vars_eliminated,
        "vars_restored": encoding.vars_restored,
        "subsumed": encoding.subsumed,
        "units_found": encoding.units_found,
        "coi_states_dropped": encoding.coi_states_dropped,
        "coi_state_bits_dropped": encoding.coi_state_bits_dropped,
        "blast_seconds": round(encoding.blast_seconds, 3),
        "preprocess_seconds": round(encoding.preprocess_seconds, 3),
    }


def _verdict_sweep(bug, verdict_bound: int, opt_level: int) -> dict:
    session = _build_session(bug, opt_level)
    start = time.perf_counter()
    result = session.extend_to(verdict_bound)
    seconds = time.perf_counter() - start
    return {
        "holds": result.holds,
        "counterexample_frame": None if result.holds else result.bound,
        "counterexample_length": result.counterexample_length,
        "seconds": round(seconds, 2),
        "solver_calls": result.stats.solver_calls,
        "cnf_clauses_post": result.stats.encoding.cnf_clauses_post,
    }


def bench_workloads(size_bound: int, verdict_bound: int) -> list[dict]:
    workloads = []
    for name, bug in (("bmc-pipeline-golden", None), ("bmc-pipeline-bug", get_bug(BUG))):
        sizes = {}
        verdicts = {}
        for opt in OPT_LEVELS:
            print(
                f"[bench_encoding] {name} opt_level={opt}: encoding to bound "
                f"{size_bound} ...",
                file=sys.stderr,
                flush=True,
            )
            sizes[str(opt)] = _encoding_sizes(bug, size_bound, opt)
            print(
                f"[bench_encoding] {name} opt_level={opt}: solving to bound "
                f"{verdict_bound} ...",
                file=sys.stderr,
                flush=True,
            )
            verdicts[str(opt)] = _verdict_sweep(bug, verdict_bound, opt)
            print(
                f"[bench_encoding] {name} opt_level={opt}: "
                f"post={sizes[str(opt)]['cnf_clauses_post']} clauses @ bound "
                f"{size_bound}, holds={verdicts[str(opt)]['holds']} @ bound "
                f"{verdict_bound} ({verdicts[str(opt)]['seconds']}s)",
                file=sys.stderr,
                flush=True,
            )
        workloads.append(
            {
                "name": name,
                "size_bound": size_bound,
                "verdict_bound": verdict_bound,
                "pool": list(POOL),
                "xlen": XLEN,
                "encoding": sizes,
                "verdicts": verdicts,
            }
        )
    return workloads


def evaluate_gates(workloads: list[dict], min_reduction: float) -> dict:
    """Verdict-equality and clause-reduction gates over the finished runs."""
    verdicts_ok = True
    for workload in workloads:
        levels = workload["verdicts"]
        reference = levels[str(OPT_LEVELS[0])]
        for level in levels.values():
            if (
                level["holds"] != reference["holds"]
                or level["counterexample_frame"] != reference["counterexample_frame"]
                or level["counterexample_length"]
                != reference["counterexample_length"]
            ):
                verdicts_ok = False

    golden = workloads[0]["encoding"]
    naive = golden["0"]["cnf_clauses_post"]
    optimised = golden["2"]["cnf_clauses_post"]
    reduction = 0.0 if naive == 0 else 100.0 * (naive - optimised) / naive
    reduction_ok = reduction >= min_reduction
    return {
        "verdict_gate": "passed" if verdicts_ok else "FAILED",
        "clause_reduction_percent": round(reduction, 1),
        "clause_reduction_gate": (
            "passed" if reduction_ok else f"FAILED (< {min_reduction}%)"
        ),
        "passed": verdicts_ok and reduction_ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write JSON here (default: stdout)")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="accepted for CI symmetry; the default bounds already gate on "
        "verdicts and CNF size only, so this changes nothing",
    )
    parser.add_argument(
        "--size-bound",
        type=int,
        default=10,
        help="BMC bound for the encode-only clause measurement (default: 10)",
    )
    parser.add_argument(
        "--verdict-bound",
        type=int,
        default=7,
        help="BMC bound actually solved for the verdict-equality gate "
        "(default: 7 — the smallest bound that still produces the "
        "forwarding counterexample)",
    )
    parser.add_argument(
        "--min-reduction",
        type=float,
        default=20.0,
        help="required %% clause reduction at opt 2 vs opt 0 (default: 20)",
    )
    args = parser.parse_args(argv)

    workloads = bench_workloads(args.size_bound, args.verdict_bound)
    gates = evaluate_gates(workloads, args.min_reduction)

    report = {
        "workload": "SQED verification model, 4-bit datapath, ADD/SUB pool",
        "size_bound": args.size_bound,
        "verdict_bound": args.verdict_bound,
        "opt_levels": list(OPT_LEVELS),
        "workloads": workloads,
        **gates,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    return 0 if gates["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
