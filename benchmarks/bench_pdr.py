#!/usr/bin/env python
"""Unbounded-proving benchmark: IC3/PDR across the baseline design suite (JSON).

Every entry in the suite is a (design, property, expected-verdict) triple:
the bug-free baseline designs must be *proven* (with the emitted inductive
invariant independently re-checked — initiation, consecution, safety —
through the ``opt_level=0`` naive reference encoding), the buggy variants
must be *refuted*, and both verdicts are cross-checked against BMC and
k-induction wherever those engines conclude.  On top of the suite the
golden (bug-free) QED processor models get their own rows: a
frame-bounded sanity run on the full ADD+SUB model in smoke mode (PDR
must never fabricate a counterexample), and in the full suite two
graduation rows — *unbounded* full-convergence proofs on the arena SAT
kernel for the single-op depth-1-fifo model and, since the
CTG-generalisation stack, for the full ADD+SUB op set on the same
depth-1 QED fifo — each emitted invariant passing the independent
``opt_level=0`` re-check.
Every row reports the generalisation attribution counters
(core/MIC/CTG literal drops, subsumption, ``F_inf`` promotions) so a
knob campaign can see where a win came from.

The exit status gates on **correctness only** — verdict agreement and
invariant validity.  Wall-clock numbers are reported in the JSON for
curiosity but never asserted: CI runners are single-CPU and timing-gated
benchmarks there are pure noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_pdr.py [--smoke] [--engine pdr|kinduction]
                                                  [--max-frames N] [--out results.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bmc.engine import BmcEngine
from repro.bmc.kinduction import KInductionEngine
from repro.core.flow import SqedFlow
from repro.isa.config import IsaConfig
from repro.pdr import PdrEngine, check_invariant
from repro.pdr.designs import (
    lockstep_accumulators as lockstep,
    pipelined_accumulators as piped,
    saturating_counter as counter,
)
from repro.proc.config import ProcessorConfig
from repro.ts.system import TransitionSystem


def suite(smoke: bool) -> list[tuple[str, TransitionSystem, str, bool]]:
    """(name, system, property, expected_proven) for the whole sweep."""
    entries = [
        ("counter-good", counter("bp_cg"), "bounded", True),
        ("counter-buggy", counter("bp_cb", buggy=True), "bounded", False),
        ("lockstep-good", lockstep("bp_lg"), "consistent", True),
        ("lockstep-buggy", lockstep("bp_lb", buggy=True), "consistent", False),
        ("piped-good", piped("bp_pg"), "consistent", True),
        ("piped-buggy", piped("bp_pb", buggy=True), "consistent", False),
    ]
    if not smoke:
        entries += [
            ("lockstep-good-8bit", lockstep("bp_lg8", xlen=8), "consistent", True),
            ("piped-good-8bit", piped("bp_pg8", xlen=8), "consistent", True),
            (
                "piped-buggy-8bit",
                piped("bp_pb8", xlen=8, buggy=True),
                "consistent",
                False,
            ),
        ]
    return entries


# ----------------------------------------------------------------------- bench


def bench_design(
    name: str,
    ts: TransitionSystem,
    prop: str,
    expected: bool,
    engine: str,
    max_frames: int,
    failures: list[str],
) -> dict:
    entry: dict = {"design": name, "property": prop, "expected_proven": expected}

    start = time.perf_counter()
    if engine == "pdr":
        result = PdrEngine(ts, max_frames=max_frames).prove(prop)
        proven = result.proven
        entry["frames"] = result.frames_explored
        entry["invariant_clauses"] = (
            None if result.invariant is None else len(result.invariant)
        )
        entry["cex_length"] = result.counterexample_length
        entry["solver_conflicts"] = result.stats.solver_stats.conflicts
        if proven is True:
            check = check_invariant(ts, prop, result.invariant, opt_level=0)
            entry["invariant_recheck"] = {
                "initiation": check.initiation,
                "consecution": check.consecution,
                "safety": check.safety,
            }
            if not check.valid:
                failures.append(f"{name}: invariant failed the opt0 re-check")
    else:
        result = KInductionEngine(ts).prove(prop, max_k=max_frames)
        proven = result.proven
        entry["k"] = result.k
    entry["proven"] = proven
    entry["seconds"] = round(time.perf_counter() - start, 4)

    if proven is not expected:
        failures.append(f"{name}: {engine} returned {proven}, expected {expected}")

    # Differential cross-checks: BMC always concludes on these bounds, and
    # k-induction's conclusive answers must match the prover's.
    bmc = BmcEngine(ts).check(prop, bound=10)
    entry["bmc_holds_to_10"] = bmc.holds
    if bmc.holds is False and proven is not False:
        failures.append(f"{name}: BMC refutes but {engine} did not")
    if engine == "pdr":
        kind = KInductionEngine(ts).prove(prop, max_k=6)
        entry["kinduction_proven"] = kind.proven
        if kind.proven is not None and proven is not None and kind.proven != proven:
            failures.append(
                f"{name}: k-induction says {kind.proven}, pdr says {proven}"
            )
    return entry


def _generalization_stats(outcome) -> dict:
    """Attribution of the run's generalisation work (conflict-quality stack)."""
    stats = outcome.pdr_stats
    return {
        "literals_dropped_core": stats.literals_dropped_core,
        "literals_dropped_mic": stats.literals_dropped_mic,
        "literals_dropped_ctg": stats.literals_dropped_ctg,
        "ctgs_blocked": stats.ctgs_blocked,
        "clauses_subsumed": stats.clauses_subsumed,
        "clauses_pushed_inf": stats.clauses_pushed_inf,
    }


def _bench_golden_row(
    name: str,
    flow: SqedFlow,
    max_frames: int,
    mode: str,
    failures: list[str],
) -> dict:
    start = time.perf_counter()
    outcome = flow.prove(None, engine="pdr", max_frames=max_frames)
    entry = {
        "design": name,
        "property": "qed_consistency",
        "mode": mode,
        "max_frames": max_frames,
        "proven": outcome.proven,
        "frames": outcome.depth,
        "seconds": round(time.perf_counter() - start, 4),
        "consecution_queries": outcome.pdr_result.stats.consecution_queries,
        "solver_conflicts": outcome.solver_stats.conflicts,
        "generalization": _generalization_stats(outcome),
    }
    if mode == "frame-bounded":
        if outcome.proven is False:
            failures.append(f"{name}: PDR fabricated a counterexample")
        return entry
    if outcome.proven is not True:
        failures.append(f"{name}: full-convergence run returned {outcome.proven}")
        return entry
    invariant = outcome.pdr_result.invariant
    entry["invariant_clauses"] = None if invariant is None else len(invariant)
    model = outcome.model  # the exact system PDR ran on (fresh builds rename)
    check = check_invariant(model.ts, model.property_name, invariant, opt_level=0)
    entry["invariant_recheck"] = {
        "initiation": check.initiation,
        "consecution": check.consecution,
        "safety": check.safety,
    }
    if not check.valid:
        failures.append(f"{name}: invariant failed the opt0 re-check")
    return entry


def bench_golden_processor(failures: list[str], smoke: bool) -> list[dict]:
    """PDR on the golden QED models.

    Smoke mode keeps the historical frame-bounded sanity row on the full
    ADD+SUB model (the golden design has no bug, so PDR must never refute
    it).  The full suite runs the graduation rows: *unbounded* PDR must
    converge on the single-op depth-1-fifo model **and** — since the
    CTG-generalisation stack — on the full ADD+SUB op set over the same
    depth-1 QED fifo, with each emitted invariant passing the independent
    ``opt_level=0`` re-check.  (The default depth-2 fifo squares the QED
    instruction-pair space and still exceeds the nightly budget; the op
    set, not the fifo, is the axis this PR graduates.)  Every row gates
    on verdicts only, never wall-clock.
    """
    isa = IsaConfig.small(xlen=4, num_regs=4)
    full_config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
    if smoke:
        return [
            _bench_golden_row(
                "qed-golden-4bit",
                SqedFlow(full_config),
                max_frames=3,
                mode="frame-bounded",
                failures=failures,
            )
        ]
    add_config = ProcessorConfig(isa=isa, supported_ops=("ADD",))
    return [
        _bench_golden_row(
            "qed-golden-4bit-add-fifo1",
            SqedFlow(add_config, fifo_depth=1),
            max_frames=12,
            mode="full-convergence",
            failures=failures,
        ),
        _bench_golden_row(
            "qed-golden-4bit-add-sub-fifo1",
            SqedFlow(full_config, fifo_depth=1),
            max_frames=16,
            mode="full-convergence",
            failures=failures,
        ),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small suite for CI")
    parser.add_argument(
        "--engine",
        choices=("pdr", "kinduction"),
        default="pdr",
        help="unbounded prover to sweep (default: pdr)",
    )
    parser.add_argument(
        "--max-frames",
        type=int,
        default=25,
        help="frame limit (pdr) / depth limit (kinduction) per design",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    failures: list[str] = []
    designs = [
        bench_design(
            name, ts, prop, expected, args.engine, args.max_frames, failures
        )
        for name, ts, prop, expected in suite(args.smoke)
    ]
    report = {
        "engine": args.engine,
        "smoke": args.smoke,
        "designs": designs,
        "golden_processor": bench_golden_processor(failures, args.smoke)
        if args.engine == "pdr"
        else [],
        "failures": failures,
        "gate": "verdicts + invariant re-checks only (never wall-clock)",
    }

    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if failures:
        print(f"FAILED: {len(failures)} correctness gate(s) tripped", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
