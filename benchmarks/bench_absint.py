#!/usr/bin/env python
"""Abstract-interpretation benchmark: facts, folds and seeded lemmas (JSON).

The :mod:`repro.absint` layer must pay its way *and* stay invisible in
verdicts.  This benchmark runs the fixpoint over the PDR design gallery
plus a seeded bug-zoo sample and gates on four conditions, all
hardware-independent per the single-CPU host rule (wall-clock is reported
for information only, never gated on):

* **soundness** — every derived fact survives the bounded random
  simulation cross-check (``validate_by_simulation`` aborts on the first
  violation);
* **verdict identity** — BMC with ``absint`` on and off agrees on every
  workload's verdict, bound and counterexample frame (``--verdict-bound``,
  default 7, reaches every gallery/zoo counterexample);
* **clause reduction** — at least one design encodes to strictly fewer
  backend clauses at ``--size-bound`` (default 10) with the fold enabled
  (constant-latch/bit folding must actually shrink something);
* **lemma seeding** — at least one PDR run admits at least one seeded
  frame-∞ lemma through the Init-disjointness + consecution filter.

``--smoke`` shrinks the zoo sample and the simulation budget for the CI
job; the full run is committed as ``BENCH_absint.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_absint.py [--smoke] [--out results.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.absint import analyze, latch_facts, validate_by_simulation
from repro.bmc.engine import BmcSession
from repro.errors import AbsintError, ReproError
from repro.lint.cli import _gallery, _zoo_targets
from repro.pdr.engine import PdrEngine
from repro.pdr.invariant import check_invariant
from repro.solve.pipeline import PipelineConfig

#: Designs whose property PDR should prove (the clean gallery) — these are
#: the runs eligible for the seeded-lemma gate.
PDR_PROVABLE = {
    "saturating_counter",
    "lockstep_accumulators",
    "pipelined_accumulators",
}


def _configs() -> dict[bool, PipelineConfig]:
    return {
        absint: PipelineConfig(opt_level=2, absint=absint)
        for absint in (False, True)
    }


def _analyze_target(name: str, ts, sim_runs: int) -> dict:
    start = time.perf_counter()
    analysis = analyze(ts)
    seconds = time.perf_counter() - start
    entry = {
        "latches": len(ts.states),
        "state_bits": ts.num_state_bits(),
        "facts": analysis.fact_count(),
        "known_bits": analysis.known_bit_count(),
        "seq_const_latches": sorted(analysis.seq_const),
        "iterations": analysis.iterations,
        "widenings": analysis.widenings,
        "values": {
            fact.name: fact.value.describe() for fact in latch_facts(ts, analysis)
        },
        "fixpoint_seconds": round(seconds, 3),
    }
    try:
        entry["simulation_checks"] = validate_by_simulation(
            ts, analysis, runs=sim_runs, steps=10, seed=0xAB51
        )
        entry["simulation_validated"] = True
    except AbsintError as exc:
        entry["simulation_validated"] = False
        entry["simulation_error"] = str(exc)
    return entry


def _bmc_differential(ts, prop: str, verdict_bound: int, size_bound: int) -> dict:
    entry: dict = {"property": prop, "by_absint": {}}
    for absint, config in _configs().items():
        session = BmcSession(ts, prop, opt_level=config)
        start = time.perf_counter()
        result = session.extend_to(verdict_bound)
        solve_seconds = time.perf_counter() - start
        sizes = BmcSession(ts, prop, opt_level=config).encode_to(size_bound)
        entry["by_absint"][str(int(absint))] = {
            "holds": result.holds,
            "cex_length": result.counterexample_length,
            "cnf_clauses_post": sizes.cnf_clauses_post,
            "cnf_clauses_pre": sizes.cnf_clauses_pre,
            "cnf_vars": sizes.cnf_vars,
            "solve_seconds": round(solve_seconds, 2),
        }
    on, off = entry["by_absint"]["1"], entry["by_absint"]["0"]
    entry["verdict_identical"] = (on["holds"], on["cex_length"]) == (
        off["holds"],
        off["cex_length"],
    )
    entry["clauses_folded"] = off["cnf_clauses_post"] - on["cnf_clauses_post"]
    return entry


def _pdr_run(name: str, ts, prop: str) -> dict:
    engine = PdrEngine(ts, opt_level=PipelineConfig(opt_level=2, absint=True))
    start = time.perf_counter()
    result = engine.prove(prop)
    seconds = time.perf_counter() - start
    entry = {
        "property": prop,
        "proven": result.proven,
        "frames_explored": result.frames_explored,
        "seed_lemmas_admitted": result.stats.seed_lemmas_admitted,
        "seed_lemmas_rejected": result.stats.seed_lemmas_rejected,
        "consecution_queries": result.stats.consecution_queries,
        "seconds": round(seconds, 2),
    }
    if result.proven and result.invariant is not None:
        check = check_invariant(ts, prop, result.invariant)
        entry["invariant_recheck"] = check.valid
    return entry


def run_benchmark(zoo_count: int, sim_runs: int, verdict_bound: int, size_bound: int) -> dict:
    targets = [
        (f"design:{name}", build()) for name, build in sorted(_gallery().items())
    ]
    targets += _zoo_targets(zoo_count, seed=1234)

    workloads = []
    for name, ts in targets:
        entry = {"name": name, "absint": _analyze_target(name, ts, sim_runs)}
        entry["bmc"] = [
            _bmc_differential(ts, prop, verdict_bound, size_bound)
            for prop in sorted(ts.properties)
        ]
        design = name.removeprefix("design:")
        if design in PDR_PROVABLE:
            prop = next(iter(ts.properties))
            entry["pdr"] = _pdr_run(design, ts, prop)
        workloads.append(entry)
    return {"workloads": workloads}


def evaluate_gates(report: dict) -> dict:
    validated = all(
        w["absint"]["simulation_validated"] for w in report["workloads"]
    )
    verdicts_ok = all(
        bmc["verdict_identical"]
        for w in report["workloads"]
        for bmc in w["bmc"]
    )
    max_folded = max(
        bmc["clauses_folded"]
        for w in report["workloads"]
        for bmc in w["bmc"]
    )
    pdr_runs = [w["pdr"] for w in report["workloads"] if "pdr" in w]
    seeded = sum(run["seed_lemmas_admitted"] for run in pdr_runs)
    pdr_ok = all(
        run["proven"] is True and run.get("invariant_recheck", False)
        for run in pdr_runs
    )
    gates = {
        "simulation_gate": "passed" if validated else "FAILED",
        "verdict_gate": "passed" if verdicts_ok else "FAILED",
        "fold_gate": (
            "passed" if max_folded > 0 else "FAILED"
        ),
        "max_clauses_folded": max_folded,
        "seed_gate": "passed" if (seeded >= 1 and pdr_ok) else "FAILED",
        "seed_lemmas_admitted_total": seeded,
    }
    gates["passed"] = all(
        value == "passed"
        for key, value in gates.items()
        if key.endswith("_gate")
    )
    return gates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI budget: smaller zoo sample and simulation budget "
        "(the gates themselves are identical)",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--zoo-count",
        type=int,
        default=None,
        help="bug-zoo instances to include (default 8, smoke 4)",
    )
    parser.add_argument(
        "--sim-runs",
        type=int,
        default=None,
        help="random simulation runs per target (default 120, smoke 30)",
    )
    parser.add_argument(
        "--verdict-bound",
        type=int,
        default=7,
        help="BMC bound solved for the verdict-identity gate (default 7)",
    )
    parser.add_argument(
        "--size-bound",
        type=int,
        default=10,
        help="BMC bound encoded for the clause-reduction gate (default 10)",
    )
    args = parser.parse_args(argv)

    zoo_count = args.zoo_count if args.zoo_count is not None else (4 if args.smoke else 8)
    sim_runs = args.sim_runs if args.sim_runs is not None else (30 if args.smoke else 120)

    try:
        report = run_benchmark(
            zoo_count, sim_runs, args.verdict_bound, args.size_bound
        )
    except ReproError as exc:
        print(f"bench_absint: fatal engine error: {exc}", file=sys.stderr)
        return 1
    gates = evaluate_gates(report)
    report = {
        "benchmark": "absint",
        "smoke": args.smoke,
        "zoo_count": zoo_count,
        "sim_runs": sim_runs,
        "verdict_bound": args.verdict_bound,
        "size_bound": args.size_bound,
        **report,
        **gates,
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    for key in ("simulation_gate", "verdict_gate", "fold_gate", "seed_gate"):
        print(f"{key}: {report[key]}")
    return 0 if gates["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
