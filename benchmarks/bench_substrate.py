"""Benchmark: substrate micro-benchmarks (SAT, bit-blasting, BMC).

Not a paper table — these track the performance of the from-scratch
infrastructure the reproduction stands on, so regressions in the solver or
the bit-blaster are visible independently of the end-to-end experiments.
"""

from __future__ import annotations

import random

from repro.sat.cnf import CNF
from repro.sat.solver import SatSolver
from repro.smt import terms as T
from repro.smt.solver import check_valid
from repro.bmc.engine import BmcEngine
from repro.ts.system import TransitionSystem


def test_sat_random_3sat(benchmark):
    """CDCL on a satisfiable random 3-SAT instance near the phase transition."""
    rng = random.Random(42)
    num_vars = 60
    clauses = []
    for _ in range(int(num_vars * 3.5)):
        lits = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([l if rng.random() < 0.5 else -l for l in lits])

    def solve():
        return SatSolver(CNF(clauses, num_vars=num_vars)).solve()

    result = benchmark(solve)
    assert result.satisfiable is not None


def test_bitblast_adder_chain_validity(benchmark):
    """Prove an 8-bit associativity identity by bit-blasting + CDCL."""
    a = T.bv_var("bench_a", 8)
    b = T.bv_var("bench_b", 8)
    c = T.bv_var("bench_c", 8)
    identity = T.bv_eq(T.bv_add(T.bv_add(a, b), c), T.bv_add(a, T.bv_add(b, c)))
    assert benchmark(check_valid, identity)


def test_bmc_counter_unrolling(benchmark):
    """BMC on a 4-bit counter: finds the bound-6 overflow counterexample."""

    def run():
        ts = TransitionSystem(name="bench_counter")
        count = ts.add_state(f"bench_count_{run.counter}", 4, init=0)
        run.counter += 1
        enable = ts.add_input(f"bench_enable_{run.counter}", 1)
        ts.set_next(count, T.bv_ite(T.bv_eq(enable, T.bv_true()),
                                    T.bv_add(count, T.bv_const(1, 4)), count))
        ts.add_property("bounded", T.bv_ule(count, T.bv_const(5, 4)))
        return BmcEngine(ts).check("bounded", bound=10)

    run.counter = 0
    result = benchmark(run)
    assert result.holds is False and result.trace.length == 7
