"""Benchmark: Figure 4 — multiple-instruction bugs.

Both SQED and SEPE-SQED detect sequence-dependent bugs; the paper compares
their detection time and counterexample length per bug (ratios SQED /
SEPE-SQED).  These benchmarks regenerate the comparison for representative
forwarding / write-back mutations; ``python -m repro.experiments.figure4
--full`` runs the complete catalog.
"""

from __future__ import annotations

from repro.experiments.figure4 import Figure4Config, run_figure4


def test_figure4_forwarding_bugs(once):
    result = once(
        run_figure4,
        Figure4Config(bug_names=["multi_no_forward_ex_rs1", "multi_no_forward_ex_rs2"]),
    )
    assert result.both_detect_all
    for row in result.rows:
        assert row.sepe.counterexample_length is not None
        assert row.sqed.counterexample_length is not None
    print()
    print(result.render())


def test_figure4_writeback_bug(once):
    result = once(
        run_figure4, Figure4Config(bug_names=["multi_wb_dropped_on_double_write"])
    )
    assert result.both_detect_all
    print()
    print(result.render())


def test_figure4_sequence_dependent_alu_bug(once):
    result = once(
        run_figure4, Figure4Config(bug_names=["multi_xor_after_sub_corrupted"])
    )
    assert result.both_detect_all
    print()
    print(result.render())
