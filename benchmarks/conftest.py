"""Shared configuration for the benchmark suite.

Every benchmark regenerates (a scaled-down slice of) one of the paper's
tables or figures; the full sweeps are available through
``python -m repro.experiments.<name> --full``.  Benchmarks run each workload
exactly once (rounds=1) because a single run already takes seconds on the
pure-Python solver stack.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
