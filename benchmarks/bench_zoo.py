#!/usr/bin/env python
"""Bug-zoo campaign benchmark: seeded mutations vs the three-way oracle (JSON).

Runs a deterministic campaign of seeded bug instances drawn round-robin
from every registered mutation family, plus one bug-free control per
distinct verification configuration, through the differential oracle
(concrete executor replay ∥ BMC ∥ IC3/PDR).  The committed regression
recipes are replayed as their own section.

The exit status gates on **verdicts only**:

* every conclusive seeded instance is *detected* and its counterexample
  *concretises* — the dispatched instruction sequence, replayed on the
  golden ISA executor, stays QED-consistent while the mutated design's
  trace diverges (a detection is never an encoding artefact);
* bug-free controls raise no false alarm on any engine;
* no engine disagrees with another (PDR refutation chains are validated
  against the property and may never undercut the minimal BMC trace);
* budget-starved instances report ``inconclusive`` — counted, bounded
  (≤10% of the campaign), never wrong.

Wall-clock numbers appear in the JSON for curiosity but are never
asserted: CI runners are single-CPU and timing gates there are noise.
Structural counters (detection rate, counterexample lengths, conflicts)
are the trajectory data, committed as ``BENCH_zoo.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_zoo.py [--smoke] [--count N]
                                                  [--jobs N] [--out results.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.zoo import (
    CampaignConfig,
    OracleSettings,
    instantiate,
    load_recipes,
    run_instance,
)
from repro.zoo.campaign import run_campaign, summarize

REGRESSION_RECIPES = "tests/data/regression_recipes.json"


def bench_campaign(args, failures: list[str]) -> dict:
    config = CampaignConfig(
        count=args.count,
        seed=args.seed,
        settings=OracleSettings(
            engines=("bmc", "pdr"),
            pdr_total_budget=args.pdr_budget,
        ),
        jobs=args.jobs,
    )
    start = time.perf_counter()
    report = run_campaign(config)
    summary = report.summary

    if summary["disagreements"]:
        failures.append(
            f"campaign: {summary['disagreements']} engine disagreement(s): "
            f"{summary['failures']}"
        )
    if summary["false_alarms"]:
        failures.append(
            f"campaign: {summary['false_alarms']} false alarm(s) on controls"
        )
    if summary["detection_rate"] is not None and summary["detection_rate"] != 1.0:
        failures.append(
            f"campaign: detection rate {summary['detection_rate']} != 1.0 "
            "on conclusive seeded instances"
        )
    if not summary["all_detected_concretized"]:
        failures.append("campaign: a detection failed executor concretization")
    if summary["inconclusive"] > summary["instances"] // 10:
        failures.append(
            f"campaign: {summary['inconclusive']}/{summary['instances']} "
            "instances inconclusive (>10%)"
        )

    per_instance = [
        {
            "family": r.family,
            "seed": r.recipe.get("seed"),
            "status": r.status,
            "bmc": r.bmc_verdict,
            "pdr": r.pdr_verdict,
            "cex_length": r.cex_length,
            "pdr_chain_length": r.pdr_chain_length,
            "conflicts": r.conflicts,
        }
        for r in report.seeded
    ]
    return {
        "config": report.config,
        "summary": summary,
        "seconds": round(time.perf_counter() - start, 4),
        "instances": per_instance,
        "controls": [
            {"family": r.family, "status": r.status, "conflicts": r.conflicts}
            for r in report.controls
        ],
    }


def bench_regressions(failures: list[str]) -> dict:
    recipes = load_recipes(REGRESSION_RECIPES)
    settings = OracleSettings(engines=("bmc",))
    start = time.perf_counter()
    reports = [run_instance(instantiate(r), settings) for r in recipes]
    summary = summarize(reports, [])
    if not summary["passed"]:
        failures.append(
            f"regression recipes: {summary['failures'] or 'replay failed'}"
        )
    return {
        "recipes": [r.as_dict() for r in recipes],
        "summary": summary,
        "seconds": round(time.perf_counter() - start, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small suite for CI")
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="seeded instances (default: 12 smoke / 200 full)",
    )
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--pdr-budget",
        type=int,
        default=4_000,
        help="cumulative PDR effort per instance; exhausted ⇒ inconclusive",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    if args.count is None:
        args.count = 12 if args.smoke else 200

    failures: list[str] = []
    report = {
        "smoke": args.smoke,
        "campaign": bench_campaign(args, failures),
        "regression_recipes": bench_regressions(failures),
        "failures": failures,
        "gate": (
            "verdicts only: 100% detection on conclusive seeded instances, "
            "all counterexamples executor-concretized, zero false alarms, "
            "zero engine disagreements (never wall-clock)"
        ),
    }

    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if failures:
        print(f"FAILED: {len(failures)} correctness gate(s) tripped", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
