#!/usr/bin/env python
"""Oneshot vs incremental solving on BMC and CEGIS workloads (JSON output).

For each workload the script solves the *same* queries twice:

* ``oneshot`` — a fresh solver per query: every BMC frame re-blasts the
  whole unrolling, every CEGIS iteration re-blasts the whole constraint
  set (the pre-``repro.solve`` behaviour),
* ``incremental`` — one shared :class:`~repro.solve.context.SolverContext`
  per loop, the way the engines now work.

Both paths must produce identical verdicts; the script reports wall-time
and total CDCL conflicts for each, plus a per-workload ``incremental_wins``
flag (fewer conflicts or lower wall-time, verdicts equal).

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--out results.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bmc.engine import BmcEngine
from repro.isa.config import IsaConfig
from repro.proc.bugs import get_bug
from repro.proc.config import ProcessorConfig
from repro.core.flow import SepeSqedFlow, pool_for_bug
from repro.qed.equivalents import default_equivalent_programs
from repro.smt import terms as T
from repro.smt.solver import BVSolver
from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.components import build_default_library
from repro.synth.spec import spec_from_instruction
from repro.ts.unroll import Unroller


# --------------------------------------------------------------------- BMC


def _pipeline_model(bound_bug: str = "single_add_off_by_one"):
    isa = IsaConfig.small()
    equivalents = default_equivalent_programs(isa)
    bug = get_bug(bound_bug)
    pool = pool_for_bug(bug, equivalents)
    config = ProcessorConfig(isa=isa, supported_ops=pool)
    flow = SepeSqedFlow(config, equivalents={op: equivalents[op] for op in pool if op in equivalents})
    return flow.build_model(bug)


def _bmc_oneshot(model, bound: int):
    """Per-frame fresh solving: frame k re-blasts constraints 0..k."""
    unroller = Unroller(model.ts)
    conflicts = 0
    verdict: str = "holds"
    for frame in range(bound + 1):
        solver = BVSolver()
        for k in range(frame + 1):
            for constraint in unroller.constraints_at(k):
                if constraint.is_const:
                    continue
                solver.add(constraint)
        violation = T.bv_not(unroller.property_at(model.property_name, frame))
        if violation.is_const and violation.const_value() == 0:
            continue
        result = solver.check(assumptions=[violation])
        conflicts += result.stats.conflicts
        if result.satisfiable:
            verdict = f"violated@{frame}"
            break
    return verdict, conflicts


def _bmc_incremental(model, bound: int):
    result = BmcEngine(model.ts).check(model.property_name, bound=bound)
    verdict = "holds" if result.holds else f"violated@{result.bound}"
    return verdict, result.stats.solver_stats.conflicts


def bench_bmc(bound: int) -> dict:
    model = _pipeline_model()
    start = time.perf_counter()
    oneshot_verdict, oneshot_conflicts = _bmc_oneshot(model, bound)
    oneshot_seconds = time.perf_counter() - start
    start = time.perf_counter()
    incr_verdict, incr_conflicts = _bmc_incremental(model, bound)
    incr_seconds = time.perf_counter() - start
    return _workload(
        name=f"pipeline-bmc-bound{bound}",
        oneshot=(oneshot_verdict, oneshot_seconds, oneshot_conflicts),
        incremental=(incr_verdict, incr_seconds, incr_conflicts),
    )


# -------------------------------------------------------------------- CEGIS


def bench_cegis(op: str, component_names: list[str]) -> dict:
    isa = IsaConfig.small()
    library = build_default_library(isa)
    components = [library.by_name(name) for name in component_names]

    def run(incremental: bool):
        spec = spec_from_instruction(op, isa)
        config = CegisConfig(incremental=incremental, initial_examples=1)
        start = time.perf_counter()
        outcome = CegisEngine(config).synthesize(spec, components)
        seconds = time.perf_counter() - start
        stats = outcome.stats
        conflicts = (
            stats.synthesis_solver_stats.conflicts
            + stats.verification_solver_stats.conflicts
        )
        verdict = "synthesized" if outcome.succeeded else "failed"
        return verdict, seconds, conflicts, stats.iterations

    oneshot_verdict, oneshot_seconds, oneshot_conflicts, iters = run(False)
    incr_verdict, incr_seconds, incr_conflicts, incr_iters = run(True)
    payload = _workload(
        name=f"cegis-{op.lower()}",
        oneshot=(oneshot_verdict, oneshot_seconds, oneshot_conflicts),
        incremental=(incr_verdict, incr_seconds, incr_conflicts),
    )
    payload["iterations"] = {"oneshot": iters, "incremental": incr_iters}
    return payload


# ------------------------------------------------------------------ harness


def _workload(name, oneshot, incremental) -> dict:
    o_verdict, o_seconds, o_conflicts = oneshot
    i_verdict, i_seconds, i_conflicts = incremental
    return {
        "name": name,
        "oneshot": {
            "verdict": o_verdict,
            "seconds": round(o_seconds, 4),
            "conflicts": o_conflicts,
        },
        "incremental": {
            "verdict": i_verdict,
            "seconds": round(i_seconds, 4),
            "conflicts": i_conflicts,
        },
        "verdicts_match": o_verdict == i_verdict,
        "incremental_wins": o_verdict == i_verdict
        # Conflicts are the primary (deterministic) signal; wall-time is the
        # fallback tiebreaker when conflict counts are equal.
        and (i_conflicts < o_conflicts or i_seconds < o_seconds),  # selflint: allow-wallclock
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write JSON here (default: stdout)")
    parser.add_argument("--bmc-bound", type=int, default=9)
    args = parser.parse_args(argv)

    workloads = [
        bench_bmc(args.bmc_bound),
        bench_cegis("SLTU", ["XORI.D", "XORI.D", "SLTU"]),
        bench_cegis("SUB", ["XORI.D", "ADD", "XORI.D"]),
    ]
    wins = sum(1 for w in workloads if w["incremental_wins"])
    report = {
        "workloads": workloads,
        "wins": wins,
        "total": len(workloads),
        "all_verdicts_match": all(w["verdicts_match"] for w in workloads),
    }
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    return 0 if wins >= 2 and report["all_verdicts_match"] else 1


if __name__ == "__main__":
    sys.exit(main())
