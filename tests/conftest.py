"""Shared pytest fixtures for the SEPE-SQED reproduction test suite."""

from __future__ import annotations

import pytest

from repro.isa.config import IsaConfig
from repro.proc.config import ProcessorConfig
from repro.synth.components import build_default_library


@pytest.fixture(scope="session")
def small_isa() -> IsaConfig:
    """The scaled-down datapath used throughout the tests (8-bit, 8 regs)."""
    return IsaConfig.small()


@pytest.fixture(scope="session")
def rv32_isa() -> IsaConfig:
    """The paper-faithful 32-bit configuration."""
    return IsaConfig.rv32()


@pytest.fixture(scope="session")
def small_library(small_isa):
    """The 29-component synthesis library over the small datapath."""
    return build_default_library(small_isa)


@pytest.fixture(scope="session")
def tiny_processor_config(small_isa) -> ProcessorConfig:
    """A processor with a compact instruction pool for fast BMC tests."""
    return ProcessorConfig(
        isa=small_isa,
        supported_ops=("ADD", "SUB", "XOR", "OR", "AND", "XORI", "ADDI"),
    )
