"""Tests for the pipelined processor model.

The main check is lock-step agreement with the architectural ISS: a program
dispatched into the symbolic pipeline (evaluated concretely via the BMC
unroller) must leave the register file and memory in exactly the state the
instruction-set simulator predicts.
"""

from __future__ import annotations

import pytest

from repro.errors import ProcessorError
from repro.isa.assembler import assemble
from repro.isa.config import IsaConfig
from repro.isa.executor import ArchState, execute_program
from repro.proc.bugs import (
    BugKind,
    bug_catalog,
    get_bug,
    multiple_instruction_bugs,
    single_instruction_bugs,
)
from repro.proc.config import ProcessorConfig
from repro.proc.pipeline import InstructionSignals, PipelineProcessor
from repro.smt import terms as T
from repro.smt.evaluator import evaluate
from repro.ts.system import TransitionSystem
from repro.ts.unroll import Unroller

_COUNTER = [0]


def _build_pipeline(config: ProcessorConfig, bug=None):
    """Build a pipeline fed by plain symbolic inputs (no QED module)."""
    _COUNTER[0] += 1
    prefix = f"plt{_COUNTER[0]}"
    ts = TransitionSystem(name=prefix)
    isa = config.isa
    instr = InstructionSignals(
        valid=ts.add_input(f"{prefix}_valid", 1),
        op=ts.add_input(f"{prefix}_op", config.op_width),
        rd=ts.add_input(f"{prefix}_rd", isa.reg_index_width),
        rs1=ts.add_input(f"{prefix}_rs1", isa.reg_index_width),
        rs2=ts.add_input(f"{prefix}_rs2", isa.reg_index_width),
        imm=ts.add_input(f"{prefix}_imm", isa.imm_width),
    )
    processor = PipelineProcessor(config, bug=bug, name_prefix=f"{prefix}_duv")
    handles = processor.build(ts, instr)
    ts.add_property("true", T.bv_true())
    return ts, prefix, handles


def _run_program(config: ProcessorConfig, program, bug=None, drain: int = 3):
    """Concretely clock ``program`` through the pipeline; return final arch state."""
    ts, prefix, handles = _build_pipeline(config, bug)
    unroller = Unroller(ts)
    assignment = {}
    total = len(program) + drain
    for frame, instr in enumerate(program + [None] * drain):
        assignment[unroller.input_term(f"{prefix}_valid", frame).name] = 1 if instr else 0
        if instr is not None:
            assignment[unroller.input_term(f"{prefix}_op", frame).name] = config.op_index(instr.name)
            assignment[unroller.input_term(f"{prefix}_rd", frame).name] = instr.rd or 0
            assignment[unroller.input_term(f"{prefix}_rs1", frame).name] = instr.rs1 or 0
            assignment[unroller.input_term(f"{prefix}_rs2", frame).name] = instr.rs2 or 0
            assignment[unroller.input_term(f"{prefix}_imm", frame).name] = instr.imm or 0
        else:
            for field in ("op", "rd", "rs1", "rs2", "imm"):
                assignment[unroller.input_term(f"{prefix}_{field}", frame).name] = 0

    def read(name: str) -> int:
        term = unroller.state_term(name, total)
        return evaluate(term, assignment)

    isa = config.isa
    regs = [0] + [read(f"{prefix}_duv_reg{i}") for i in range(1, isa.num_regs)]
    mem = [read(f"{prefix}_duv_mem{w}") for w in range(isa.mem_words)]
    return regs, mem


@pytest.fixture(scope="module")
def config():
    return ProcessorConfig(
        isa=IsaConfig.small(),
        supported_ops=("ADD", "SUB", "XOR", "OR", "AND", "ADDI", "XORI", "SW", "LW", "MUL"),
    )


PROGRAMS = [
    "ADDI x1, x0, 7\nADDI x2, x0, 9\nADD x3, x1, x2",
    # back-to-back RAW dependency exercises the EX forwarding path
    "ADDI x1, x0, 5\nADD x2, x1, x1\nADD x3, x2, x2\nSUB x4, x3, x1",
    # distance-2 dependency exercises the WB forwarding path
    "ADDI x1, x0, 3\nXOR x5, x0, x0\nADD x2, x1, x1",
    # stores and loads, including store-to-load through memory
    "ADDI x1, x0, 42\nSW x1, 1(x0)\nLW x2, 1(x0)\nADD x3, x2, x1",
    # multiplication and logic mix
    "ADDI x1, x0, 13\nADDI x2, x0, 11\nMUL x3, x1, x2\nAND x4, x3, x1\nOR x5, x4, x2",
    # writes to x0 must be discarded
    "ADDI x0, x0, 9\nADD x1, x0, x0",
]


class TestPipelineAgainstIss:
    @pytest.mark.parametrize("text", PROGRAMS)
    def test_lockstep_with_iss(self, config, text):
        program = assemble(text)
        regs, mem = _run_program(config, program)
        reference = ArchState(config.isa)
        execute_program(reference, program)
        assert regs == reference.regs
        assert mem == reference.mem

    def test_bubbles_do_not_change_state(self, config):
        regs, mem = _run_program(config, [], drain=4)
        assert regs == [0] * config.isa.num_regs
        assert mem == [0] * config.isa.mem_words

    def test_forwarding_disabled_gives_stale_values(self):
        config = ProcessorConfig(
            isa=IsaConfig.small(),
            supported_ops=("ADD", "ADDI"),
            forwarding=False,
        )
        program = assemble("ADDI x1, x0, 5\nADD x2, x1, x1")
        regs, _ = _run_program(config, program)
        # Without forwarding the dependent ADD reads the stale (zero) x1.
        assert regs[2] == 0

    def test_signal_width_checked(self, config):
        ts = TransitionSystem(name="plt_badwidth")
        instr = InstructionSignals(
            valid=ts.add_input("pltb_valid", 1),
            op=ts.add_input("pltb_op", 7),
            rd=ts.add_input("pltb_rd", config.isa.reg_index_width),
            rs1=ts.add_input("pltb_rs1", config.isa.reg_index_width),
            rs2=ts.add_input("pltb_rs2", config.isa.reg_index_width),
            imm=ts.add_input("pltb_imm", config.isa.imm_width),
        )
        with pytest.raises(ProcessorError):
            PipelineProcessor(config, name_prefix="pltb_duv").build(ts, instr)


class TestBugCatalog:
    def test_table1_bug_count(self):
        assert len(single_instruction_bugs()) == 13

    def test_figure4_bug_count(self):
        assert len(multiple_instruction_bugs()) == 12

    def test_catalog_lookup(self):
        assert get_bug("single_add_off_by_one").kind is BugKind.SINGLE_INSTRUCTION
        assert get_bug("multi_no_forward_ex_rs1").kind is BugKind.MULTIPLE_INSTRUCTION
        with pytest.raises(ProcessorError):
            get_bug("nonexistent")

    def test_every_bug_has_description_and_targets(self):
        for bug in bug_catalog().values():
            assert bug.description
            assert bug.target_ops

    def test_single_bug_changes_target_result(self, config):
        """The injected ADD bug corrupts ADD but leaves SUB untouched."""
        bug = get_bug("single_add_off_by_one")
        program = assemble("ADDI x1, x0, 7\nADDI x2, x0, 9\nADD x3, x1, x2\nSUB x4, x1, x2")
        regs, _ = _run_program(config, program, bug=bug)
        reference = ArchState(config.isa)
        execute_program(reference, program)
        assert regs[3] == (reference.regs[3] + 1) & 0xFF  # corrupted
        assert regs[4] == reference.regs[4]  # unaffected

    def test_multi_bug_needs_dependent_sequence(self, config):
        """The missing-forwarding bug only fires on back-to-back dependencies."""
        bug = get_bug("multi_no_forward_ex_rs1")
        independent = assemble("ADDI x1, x0, 5\nXOR x3, x0, x0\nADD x2, x1, x0")
        regs, _ = _run_program(config, independent, bug=bug)
        reference = ArchState(config.isa)
        execute_program(reference, independent)
        assert regs == reference.regs  # no adjacent dependency -> no corruption

        dependent = assemble("ADDI x1, x0, 5\nADD x2, x1, x0")
        regs_dep, _ = _run_program(config, dependent, bug=bug)
        reference_dep = ArchState(config.isa)
        execute_program(reference_dep, dependent)
        assert regs_dep != reference_dep.regs
