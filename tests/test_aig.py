"""Tests for the AIG IR: strashing, rewriting and CNF lowering."""

from __future__ import annotations

import itertools

import pytest

from repro.aig import AIG, CnfLowering
from repro.aig.graph import K_AND, K_ITE, K_XOR
from repro.sat.cnf import CNF
from repro.sat.solver import SatSolver


def _fresh_aig_with_inputs(n: int):
    aig = AIG()
    return aig, [aig.add_input() for _ in range(n)]


class TestConstantPropagation:
    def test_and_constants(self):
        aig, (a,) = _fresh_aig_with_inputs(1)
        assert aig.and_(aig.TRUE, a) == a
        assert aig.and_(a, aig.TRUE) == a
        assert aig.and_(aig.FALSE, a) == aig.FALSE
        assert aig.and_(a, -a) == aig.FALSE
        assert aig.and_(a, a) == a

    def test_xor_constants(self):
        aig, (a,) = _fresh_aig_with_inputs(1)
        assert aig.xor_(aig.FALSE, a) == a
        assert aig.xor_(aig.TRUE, a) == -a
        assert aig.xor_(a, a) == aig.FALSE
        assert aig.xor_(a, -a) == aig.TRUE

    def test_ite_constants(self):
        aig, (c, t, e) = _fresh_aig_with_inputs(3)
        assert aig.ite(aig.TRUE, t, e) == t
        assert aig.ite(aig.FALSE, t, e) == e
        assert aig.ite(c, t, t) == t
        # Constant branches collapse to and/or.
        assert aig.ite(c, t, aig.FALSE) == aig.and_(c, t)
        assert aig.ite(c, aig.TRUE, e) == aig.or_(c, e)
        # Complementary branches collapse to an XOR cone.
        assert aig.ite(c, t, -t) == -aig.xor_(c, t)


class TestStructuralHashing:
    def test_commutative_operands_share_a_node(self):
        aig, (a, b) = _fresh_aig_with_inputs(2)
        assert aig.and_(a, b) == aig.and_(b, a)
        assert aig.xor_(a, b) == aig.xor_(b, a)

    def test_xor_negation_pushes_to_output(self):
        aig, (a, b) = _fresh_aig_with_inputs(2)
        assert aig.xor_(-a, b) == -aig.xor_(a, b)
        assert aig.xor_(-a, -b) == aig.xor_(a, b)

    def test_ite_negative_condition_swaps_branches(self):
        aig, (c, t, e) = _fresh_aig_with_inputs(3)
        assert aig.ite(-c, t, e) == aig.ite(c, e, t)

    def test_ite_negated_branches_pull_negation_out(self):
        aig, (c, t, e) = _fresh_aig_with_inputs(3)
        assert aig.ite(c, -t, -e) == -aig.ite(c, t, e)

    def test_repeated_structure_adds_no_nodes(self):
        aig, (a, b, c) = _fresh_aig_with_inputs(3)
        first = aig.and_(aig.xor_(a, b), c)
        nodes = aig.num_nodes()
        second = aig.and_(c, aig.xor_(b, a))
        assert first == second
        assert aig.num_nodes() == nodes


class TestTwoLevelRewrites:
    def test_containment(self):
        aig, (a, b) = _fresh_aig_with_inputs(2)
        inner = aig.and_(a, b)
        assert aig.and_(a, inner) == inner
        assert aig.and_(inner, b) == inner

    def test_contradiction(self):
        aig, (a, b) = _fresh_aig_with_inputs(2)
        inner = aig.and_(a, b)
        assert aig.and_(-a, inner) == aig.FALSE
        assert aig.and_(inner, -b) == aig.FALSE

    def test_subsumption(self):
        aig, (a, b) = _fresh_aig_with_inputs(2)
        inner = aig.and_(a, b)
        assert aig.and_(-inner, -a) == -a
        assert aig.and_(-b, -inner) == -b

    def test_substitution(self):
        aig, (a, b) = _fresh_aig_with_inputs(2)
        inner = aig.and_(a, b)
        assert aig.and_(a, -inner) == aig.and_(a, -b)
        assert aig.and_(-inner, b) == aig.and_(b, -a)

    def test_cross_conjunction_contradiction(self):
        aig, (a, b, c) = _fresh_aig_with_inputs(3)
        left = aig.and_(a, b)
        right = aig.and_(-a, c)
        assert aig.and_(left, right) == aig.FALSE

    def test_rewrites_preserve_semantics(self):
        """Every gate helper agrees with direct boolean evaluation."""
        aig, inputs = _fresh_aig_with_inputs(3)
        a, b, c = inputs
        inner = aig.and_(a, b)
        cases = [
            (aig.and_(a, inner), lambda va, vb, vc: va and vb),
            (aig.and_(-a, inner), lambda va, vb, vc: False),
            (aig.and_(a, -inner), lambda va, vb, vc: va and not (va and vb)),
            (aig.or_(inner, c), lambda va, vb, vc: (va and vb) or vc),
            (aig.xor_(-a, b), lambda va, vb, vc: (not va) ^ vb),
            (aig.ite(c, a, -a), lambda va, vb, vc: va if vc else not va),
            (aig.ite(-c, a, b), lambda va, vb, vc: vb if vc else va),
        ]
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(inputs, values))
            for lit, expected in cases:
                assert aig.evaluate(lit, assignment) == expected(*values)


class TestLowering:
    def _solve_equiv(self, aig, lit, inputs):
        """CNF lowering of ``lit`` agrees with graph evaluation everywhere."""
        cnf = CNF()
        true_var = cnf.new_var()
        cnf.add_clause([true_var])
        lowering = CnfLowering(aig, cnf, true_var)
        out = lowering.materialize(lit)
        input_cnf = {node: lowering.materialize(node) for node in inputs}
        for values in itertools.product([False, True], repeat=len(inputs)):
            assignment = dict(zip(inputs, values))
            expected = aig.evaluate(lit, assignment)
            solver = SatSolver()
            solver.add_cnf(cnf)
            assumptions = [
                input_cnf[node] if value else -input_cnf[node]
                for node, value in assignment.items()
            ]
            # out must be forced to the evaluated value
            agree = solver.solve(assumptions=assumptions + [out if expected else -out])
            assert agree.satisfiable is True
            disagree = SatSolver()
            disagree.add_cnf(cnf)
            flipped = disagree.solve(
                assumptions=assumptions + [-out if expected else out]
            )
            assert flipped.satisfiable is False

    def test_and_xor_ite_cones(self):
        aig, inputs = _fresh_aig_with_inputs(3)
        a, b, c = inputs
        self._solve_equiv(aig, aig.and_(aig.xor_(a, b), c), inputs)
        self._solve_equiv(aig, aig.ite(a, b, c), inputs)
        self._solve_equiv(aig, aig.ite(aig.xor_(a, c), aig.and_(a, b), -c), inputs)

    def test_lowering_is_incremental_and_cached(self):
        aig, (a, b, c) = _fresh_aig_with_inputs(3)
        gate = aig.and_(a, b)
        cnf = CNF()
        true_var = cnf.new_var()
        cnf.add_clause([true_var])
        lowering = CnfLowering(aig, cnf, true_var)
        first = lowering.materialize(gate)
        clauses_after = len(cnf.clauses)
        assert lowering.materialize(gate) == first
        assert lowering.materialize(-gate) == -first
        assert len(cnf.clauses) == clauses_after
        # A cone reusing the gate only lowers the new node.
        outer = aig.and_(gate, c)
        lowering.materialize(outer)
        assert len(cnf.clauses) == clauses_after + 3

    def test_unused_nodes_cost_no_clauses(self):
        aig, (a, b) = _fresh_aig_with_inputs(2)
        aig.and_(a, b)  # never materialised
        used = aig.xor_(a, b)
        cnf = CNF()
        true_var = cnf.new_var()
        cnf.add_clause([true_var])
        lowering = CnfLowering(aig, cnf, true_var)
        lowering.materialize(used)
        # 1 unit + 4 xor clauses; the unrelated AND gate emitted nothing.
        assert len(cnf.clauses) == 5

    def test_ite_lowers_to_four_clauses(self):
        aig, (c, t, e) = _fresh_aig_with_inputs(3)
        mux = aig.ite(c, t, e)
        cnf = CNF()
        true_var = cnf.new_var()
        cnf.add_clause([true_var])
        lowering = CnfLowering(aig, cnf, true_var)
        lowering.materialize(mux)
        assert len(cnf.clauses) == 5  # unit + 4 mux clauses


class TestStats:
    def test_stats_counters(self):
        aig, (a, b, c) = _fresh_aig_with_inputs(3)
        aig.and_(a, b)
        aig.and_(a, b)  # strash hit
        aig.xor_(a, c)
        aig.ite(c, a, b)
        stats = aig.stats()
        assert stats.num_inputs == 3
        assert stats.num_and == 1
        assert stats.num_xor == 1
        assert stats.num_ite == 1
        assert stats.num_gates == 3
        assert stats.strash_hits >= 1
