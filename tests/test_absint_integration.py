"""Solver-facing integration tests of the abstract-interpretation layer.

The layer must be a pure accelerator: with ``absint`` on, BMC folds
proven-constant latch bits out of the encoding, k-induction strengthens
its step frames and PDR seeds frame-∞ lemmas — but every verdict, bound
and counterexample frame must be identical to the ``absint=0`` run.
These tests pin that contract with explicit :class:`PipelineConfig`
objects (never by monkeypatching ``REPRO_ABSINT``), so they hold no
matter which leg of the CI matrix they run on.
"""

from __future__ import annotations

import pytest

from repro.absint import analyze, pdr_seed_cubes
from repro.bmc.engine import BmcSession
from repro.bmc.kinduction import KInductionEngine
from repro.lint.cli import _gallery, _zoo_targets
from repro.pdr.engine import PdrEngine
from repro.pdr.invariant import check_invariant
from repro.solve.pipeline import PipelineConfig
from repro.ts.coi import reduce_to_property_cone

#: One config per (opt level, absint) cell of the differential matrix.
MATRIX = [
    PipelineConfig(opt_level=level, absint=absint)
    for level in (0, 1, 2)
    for absint in (False, True)
]


def _differential_targets():
    targets = [(name, build()) for name, build in sorted(_gallery().items())]
    targets += _zoo_targets(2, seed=1234)
    return targets


class TestBmcDifferential:
    @pytest.mark.parametrize(
        "name,ts",
        _differential_targets(),
        ids=lambda v: v if isinstance(v, str) else "",
    )
    def test_verdicts_identical_across_matrix(self, name, ts):
        for prop in ts.properties:
            outcomes = []
            for config in MATRIX:
                session = BmcSession(ts, prop, opt_level=config)
                result = session.extend_to(7)
                outcomes.append(
                    (config, result.holds, result.counterexample_length)
                )
            baseline = outcomes[0][1:]
            for config, *outcome in outcomes[1:]:
                assert tuple(outcome) == baseline, (
                    f"{name}/{prop}: opt_level={config.opt_level} "
                    f"absint={config.absint} diverged: {outcome} != {baseline}"
                )

    def test_fold_shrinks_saturating_counter_encoding(self):
        ts = _gallery()["saturating_counter"]()
        sizes = {}
        for absint in (False, True):
            config = PipelineConfig(opt_level=2, absint=absint)
            session = BmcSession(ts, "bounded", opt_level=config)
            sizes[absint] = session.encode_to(10).cnf_clauses_post
        # Bit 3 of the counter folds away, so the on-encoding is strictly
        # smaller — and the matrix test above already pinned the verdict.
        assert sizes[True] < sizes[False]

    def test_fold_is_off_at_level_zero(self):
        ts = _gallery()["saturating_counter"]()
        config = PipelineConfig(opt_level=0, absint=True)
        session = BmcSession(ts, "bounded", opt_level=config)
        assert session.fold is None
        assert not config.use_absint

    def test_folded_counterexample_replays_concretely(self):
        # The buggy counter refutes; the trace from the folded encoding
        # must still drive the *original* system into the violation.
        from repro.smt.evaluator import evaluate

        ts = _gallery()["saturating_counter_buggy"]()
        config = PipelineConfig(opt_level=2, absint=True)
        result = BmcSession(ts, "bounded", opt_level=config).extend_to(10)
        assert result.holds is False
        trace = result.trace
        assert trace is not None
        final = trace.steps[-1]
        env = dict(final.states)
        env.update(final.inputs)
        assert evaluate(ts.properties["bounded"], env) == 0


class TestPdrSeeding:
    def _cfg(self, absint=True):
        return PipelineConfig(opt_level=2, absint=absint)

    def test_auto_seed_admitted_and_proof_checks(self):
        ts = _gallery()["saturating_counter"]()
        engine = PdrEngine(ts, opt_level=self._cfg())
        result = engine.prove("bounded")
        assert result.proven is True
        assert result.stats.seed_lemmas_admitted >= 1
        check = check_invariant(ts, "bounded", result.invariant)
        assert check.initiation and check.consecution and check.safety

    def test_absint_off_admits_nothing(self):
        ts = _gallery()["saturating_counter"]()
        engine = PdrEngine(ts, opt_level=self._cfg(absint=False))
        result = engine.prove("bounded")
        assert result.proven is True
        assert result.stats.seed_lemmas_admitted == 0
        assert result.stats.seed_lemmas_rejected == 0

    def test_empty_iterable_disables_seeding(self):
        ts = _gallery()["saturating_counter"]()
        engine = PdrEngine(ts, opt_level=self._cfg(), seed_lemmas=())
        result = engine.prove("bounded")
        assert result.proven is True
        assert result.stats.seed_lemmas_admitted == 0

    def test_unsound_seed_is_rejected_not_trusted(self):
        # Bit 0 of the counter is NOT stuck: blocking it would be unsound.
        # The consecution filter must reject it and the verdict must hold.
        ts = _gallery()["saturating_counter"]()
        bad = (("d_count", 0, True),)
        engine = PdrEngine(ts, opt_level=self._cfg(), seed_lemmas=[bad])
        result = engine.prove("bounded")
        assert result.proven is True
        assert result.stats.seed_lemmas_admitted == 0
        assert result.stats.seed_lemmas_rejected >= 1
        check = check_invariant(ts, "bounded", result.invariant)
        assert check.initiation and check.consecution and check.safety

    def test_sound_and_unsound_seeds_mixed(self):
        ts = _gallery()["saturating_counter"]()
        reduced = reduce_to_property_cone(ts, "bounded").ts
        good = pdr_seed_cubes(reduced, analyze(reduced))
        assert good  # bit 3 stuck at 0
        bad = (("d_count", 1, True),)
        engine = PdrEngine(
            ts, opt_level=self._cfg(), seed_lemmas=[*good, bad]
        )
        result = engine.prove("bounded")
        assert result.proven is True
        assert result.stats.seed_lemmas_admitted == len(good)
        assert result.stats.seed_lemmas_rejected == 1

    def test_malformed_seeds_are_skipped_not_fatal(self):
        ts = _gallery()["saturating_counter"]()
        seeds = [
            (("no_such_latch", 0, True),),  # unknown state
            (("d_count", 99, False),),  # bit out of range
            (),  # empty cube
            (("d_count", 3, 1),),  # non-bool polarity
        ]
        engine = PdrEngine(ts, opt_level=self._cfg(), seed_lemmas=seeds)
        result = engine.prove("bounded")
        assert result.proven is True
        assert result.stats.seed_lemmas_admitted == 0
        assert result.stats.seed_lemmas_rejected == len(seeds)

    def test_buggy_design_still_refutes_with_seeding(self):
        ts = _gallery()["saturating_counter_buggy"]()
        for absint in (False, True):
            engine = PdrEngine(ts, opt_level=self._cfg(absint))
            result = engine.prove("bounded")
            assert result.proven is False, f"absint={absint}"
            assert result.cex_chain

    def test_pipelined_design_verdicts_agree(self):
        # The design whose property is not inductive on its own: seeding
        # must not change the proof outcome in either variant.
        for name, expected in (
            ("pipelined_accumulators", True),
            ("pipelined_accumulators_buggy", False),
        ):
            ts = _gallery()[name]()
            verdicts = set()
            for absint in (False, True):
                result = PdrEngine(ts, opt_level=self._cfg(absint)).prove(
                    "consistent"
                )
                verdicts.add(result.proven)
            assert verdicts == {expected}, name


class TestKInductionStrengthening:
    @pytest.mark.parametrize(
        "name", ["saturating_counter", "lockstep_accumulators"]
    )
    def test_on_off_agree_on_clean_designs(self, name):
        ts = _gallery()[name]()
        prop = next(iter(ts.properties))
        outcomes = {}
        for absint in (False, True):
            config = PipelineConfig(opt_level=2, absint=absint)
            result = KInductionEngine(ts, opt_level=config).prove(prop, max_k=6)
            outcomes[absint] = (result.proven, result.k)
        assert outcomes[False] == outcomes[True]
        assert outcomes[True][0] is True

    def test_on_off_agree_on_buggy_design(self):
        ts = _gallery()["saturating_counter_buggy"]()
        for absint in (False, True):
            config = PipelineConfig(opt_level=2, absint=absint)
            result = KInductionEngine(ts, opt_level=config).prove(
                "bounded", max_k=8
            )
            assert result.proven is False, f"absint={absint}"
            assert result.base_result is not None
            assert result.base_result.holds is False
