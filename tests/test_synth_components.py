"""Tests for the component library and synthesized-program machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynthesisError
from repro.isa.config import IsaConfig
from repro.isa.executor import ArchState, execute_program
from repro.smt import terms as T
from repro.smt.evaluator import evaluate
from repro.synth.components import ComponentClass, ComponentLibrary, build_default_library
from repro.synth.program import ProgramSlot, SynthesizedProgram
from repro.synth.spec import spec_from_instruction, synthesis_case_names
from repro.utils.bitops import mask


class TestLibraryComposition:
    def test_29_components(self, small_library):
        assert len(small_library) == 29

    def test_class_split_matches_paper(self, small_library):
        assert len(small_library.of_class(ComponentClass.NIC)) == 10
        assert len(small_library.of_class(ComponentClass.DIC)) == 10
        assert len(small_library.of_class(ComponentClass.CIC)) == 9

    def test_unique_names(self, small_library):
        names = small_library.names()
        assert len(names) == len(set(names))

    def test_lookup(self, small_library):
        assert small_library.by_name("ADD").component_class is ComponentClass.NIC
        with pytest.raises(SynthesisError):
            small_library.by_name("NOPE")

    def test_duplicate_rejected(self, small_isa, small_library):
        library = ComponentLibrary(small_isa, [small_library.by_name("ADD")])
        with pytest.raises(SynthesisError):
            library.add(small_library.by_name("ADD"))

    def test_rv32_library_builds(self, rv32_isa):
        assert len(build_default_library(rv32_isa)) == 29


class TestComponentSemantics:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_nic_components_match_instruction_semantics(self, small_isa, small_library, a, b):
        from repro.isa.instructions import Instruction, result_value

        x = T.bv_const(a, small_isa.xlen)
        y = T.bv_const(b, small_isa.xlen)
        for comp in small_library.of_class(ComponentClass.NIC):
            term = comp.output_term(small_isa, [x, y], [])
            expected = result_value(small_isa, Instruction(comp.name, 1, 2, 3), a, b)
            assert term.const_value() == expected

    def test_dic_component_uses_attribute(self, small_isa, small_library):
        addi = small_library.by_name("ADDI.D")
        out = addi.output_term(small_isa, [T.bv_const(10, 8)], [T.bv_const(0xFF, 8)])
        assert out.const_value() == 9  # 10 + sext(-1)

    def test_arity_checked(self, small_isa, small_library):
        with pytest.raises(SynthesisError):
            small_library.by_name("ADD").output_term(small_isa, [T.bv_const(0, 8)], [])

    def test_cic_mulh_matches_reference(self, small_isa, small_library):
        from repro.isa.instructions import Instruction, result_value

        mulh_c = small_library.by_name("MULH.C")
        for a, b in [(0x80, 0x7F), (0xFF, 0xFF), (0x12, 0x34), (0x80, 0x80)]:
            term = mulh_c.output_term(
                small_isa, [T.bv_const(a, 8), T.bv_const(b, 8)], []
            )
            assert term.const_value() == result_value(small_isa, Instruction("MULH", 1, 2, 3), a, b)


class TestSpecs:
    def test_case_list_has_26_entries(self):
        assert len(synthesis_case_names()) == 26

    def test_r_type_spec(self, small_isa):
        spec = spec_from_instruction("ADD", small_isa)
        assert [i.name for i in spec.inputs] == ["rs1", "rs2"]
        out = spec.output_term([T.bv_const(3, 8), T.bv_const(4, 8)])
        assert out.const_value() == 7

    def test_i_type_spec_has_immediate_input(self, small_isa):
        spec = spec_from_instruction("XORI", small_isa)
        assert [i.name for i in spec.inputs] == ["rs1", "imm"]
        assert spec.inputs[1].is_immediate

    def test_store_spec_output_is_address(self, small_isa):
        spec = spec_from_instruction("SW", small_isa)
        out = spec.output_term(
            [T.bv_const(10, 8), T.bv_const(99, 8), T.bv_const(3, 8)]
        )
        assert out.const_value() == 13

    def test_width_mismatch_rejected(self, small_isa):
        spec = spec_from_instruction("ADD", small_isa)
        with pytest.raises(SynthesisError):
            spec.output_term([T.bv_const(0, 4), T.bv_const(0, 8)])


def _sub_program(small_isa, small_library) -> SynthesizedProgram:
    """The paper's Listing 1 program for SUB: XORI; ADD; XORI."""
    spec = spec_from_instruction("SUB", small_isa)
    ones = mask(small_isa.imm_width)
    slots = [
        ProgramSlot(small_library.by_name("XORI.D"), (("input", 0),), (ones,)),
        ProgramSlot(small_library.by_name("ADD"), (("slot", 0), ("input", 1)), ()),
        ProgramSlot(small_library.by_name("XORI.D"), (("slot", 1),), (ones,)),
    ]
    return SynthesizedProgram(spec, slots)


class TestSynthesizedProgram:
    def test_listing1_program_is_equivalent(self, small_isa, small_library):
        program = _sub_program(small_isa, small_library)
        for a, b in [(0, 0), (5, 3), (3, 5), (200, 13), (255, 255)]:
            assert program.evaluate([a, b]) == (a - b) & 0xFF

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_symbolic_and_concrete_agree(self, small_isa, small_library, a, b):
        program = _sub_program(small_isa, small_library)
        rs1 = T.bv_var("prog_rs1", 8)
        rs2 = T.bv_var("prog_rs2", 8)
        term = program.output_term([rs1, rs2])
        assert evaluate(term, {"prog_rs1": a, "prog_rs2": b}) == program.evaluate([a, b])

    def test_expansion_structure(self, small_isa, small_library):
        program = _sub_program(small_isa, small_library)
        templates = program.expand()
        assert [t.mnemonic for t in templates] == ["XORI", "ADD", "XORI"]
        assert program.num_instructions == 3
        assert templates[1].rs1.kind == "virtual"
        assert templates[2].rd.index == 2

    def test_concrete_instructions_execute_correctly(self, small_isa, small_library):
        """Expanded to real instructions, the program matches SUB on an ISS."""
        program = _sub_program(small_isa, small_library)
        instrs = program.to_concrete_instructions(
            input_regs=[2, 3], dest_reg=1, temp_regs=[6, 7]
        )
        state = ArchState(small_isa)
        state.write_reg(2, 0x37)
        state.write_reg(3, 0x59)
        execute_program(state, instrs)
        assert state.read_reg(1) == (0x37 - 0x59) & 0xFF

    def test_topological_order_enforced(self, small_isa, small_library):
        spec = spec_from_instruction("ADD", small_isa)
        with pytest.raises(SynthesisError):
            SynthesizedProgram(
                spec,
                [ProgramSlot(small_library.by_name("ADD"), (("slot", 0), ("input", 0)), ())],
            )

    def test_describe_mentions_spec(self, small_isa, small_library):
        text = _sub_program(small_isa, small_library).describe()
        assert "SUB" in text and "XORI" in text
