"""The repro.lint subsystem: model rules, encoding rules, gates, CLI.

Every rule is exercised in both directions — a fixture that trips it and
a clean fixture that passes it.  Parser-expressible rules use the BTOR2
corpus under ``tests/data/lint/``; the rest use in-code fixtures (see the
corpus README for the split).
"""

from __future__ import annotations

import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.btor.parser import parse_btor2
from repro.errors import Btor2Error, LintError, ReproError
from repro.lint import (
    ENV_LINT_GATE,
    LintFinding,
    LintReport,
    LintWarning,
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    default_gate_mode,
    gate_transition_system,
    lint_aig,
    lint_cnf,
    lint_encoding_stats,
    lint_transition_system,
    resolve_gate_mode,
)
from repro.lint.cli import main as lint_main
from repro.sat.cnf import CNF
from repro.smt import terms as T
from repro.ts.system import TransitionSystem

FIXTURES = Path(__file__).parent / "data" / "lint"
REPO_ROOT = Path(__file__).parent.parent


def load_fixture(stem: str) -> TransitionSystem:
    return parse_btor2((FIXTURES / f"{stem}.btor2").read_text(), name=stem)


def counter_ts(name: str = "counter") -> TransitionSystem:
    """A minimal clean system: a 4-bit counter with a real property."""
    ts = TransitionSystem(name=name)
    r = ts.add_state("r", 4, init=0)
    ts.set_next("r", T.bv_add(r, T.bv_const(1, 4)))
    ts.add_property("safe", T.bv_not(T.bv_eq(r, T.bv_const(15, 4))))
    return ts


# ---------------------------------------------------------------------------
# findings container
# ---------------------------------------------------------------------------


class TestFindings:
    def test_severity_is_validated(self):
        with pytest.raises(LintError):
            LintFinding("model.x", "fatal", "here", "boom")

    def test_report_slices_and_renders(self):
        report = LintReport()
        report.add("model.a", SEV_ERROR, "state x", "broken", "fix it")
        report.add("model.b", SEV_WARNING, "state y", "odd")
        report.add("model.c", SEV_INFO, "state z", "fyi")
        assert [f.rule for f in report.errors] == ["model.a"]
        assert [f.rule for f in report.at_least("warning")] == ["model.a", "model.b"]
        assert report.rules() == {"model.a", "model.b", "model.c"}
        rendered = report.render()
        assert "error[model.a] state x: broken (hint: fix it)" in rendered
        assert len(report) == 3
        payload = report.as_dict()
        assert payload["counts"] == {"error": 1, "warning": 1, "info": 1}


# ---------------------------------------------------------------------------
# model lint: fixture corpus (parser-expressible rules)
# ---------------------------------------------------------------------------

FIXTURE_RULES = {
    "missing_next": {"model.missing-next"},
    "latch_no_init": {"model.latch-no-init"},
    "const_property": {"model.const-property"},
    "const_constraint": {"model.const-constraint"},
    "no_property": {"model.no-property"},
    "free_input": {"model.free-input-in-property"},
    "dead_latch": {"model.dead-latch"},
    "seq_const_latch": {"model.seq-const-latch"},
    "init_state_ref": {"model.init-state-ref", "model.comb-cycle"},
}


class TestModelLintFixtures:
    def test_clean_fixture_has_zero_findings(self):
        report = lint_transition_system(load_fixture("clean"))
        assert not report.findings, report.render()

    @pytest.mark.parametrize("stem", sorted(FIXTURE_RULES))
    def test_fixture_trips_exactly_its_rules(self, stem):
        report = lint_transition_system(load_fixture(stem))
        assert set(report.rules()) == FIXTURE_RULES[stem], report.render()

    def test_const_property_polarity(self):
        report = lint_transition_system(load_fixture("const_property"))
        by_sev = {f.location: f.severity for f in report.by_rule("model.const-property")}
        assert by_sev == {
            "property always_fails": SEV_ERROR,
            "property never_fails": SEV_WARNING,
        }

    def test_const_constraint_polarity(self):
        report = lint_transition_system(load_fixture("const_constraint"))
        severities = sorted(
            f.severity for f in report.by_rule("model.const-constraint")
        )
        assert severities == [SEV_ERROR, SEV_INFO]

    def test_comb_cycle_names_the_loop(self):
        report = lint_transition_system(load_fixture("init_state_ref"))
        [cycle] = report.by_rule("model.comb-cycle")
        assert "->" in cycle.message


# ---------------------------------------------------------------------------
# model lint: in-code fixtures (rules the parser cannot express)
# ---------------------------------------------------------------------------


class TestModelLintInCode:
    def test_width_mismatch_next(self):
        ts = counter_ts()
        state = next(s for s in ts.states if s.name == "r")
        # set_next() would reject this, which is exactly why generated
        # models that mutate StateVar fields directly are the risk.
        state.next = T.bv_const(0, 8)
        report = lint_transition_system(ts)
        assert "model.width-mismatch" in report.rules()
        assert report.errors

    def test_width_mismatch_init(self):
        ts = counter_ts()
        state = next(s for s in ts.states if s.name == "r")
        state.init = T.bv_const(0, 2)
        report = lint_transition_system(ts)
        [finding] = report.by_rule("model.width-mismatch")
        assert "init" in finding.message

    def test_undeclared_symbol_in_next(self):
        ts = counter_ts()
        state = next(s for s in ts.states if s.name == "r")
        state.next = T.bv_add(state.symbol, T.bv_var("ghost", 4))
        report = lint_transition_system(ts)
        [finding] = report.by_rule("model.undeclared-symbol")
        assert "ghost" in finding.message
        assert finding.severity == SEV_ERROR

    def test_undeclared_symbol_in_property_and_constraint(self):
        ts = counter_ts()
        ts.add_property("phantom", T.bv_eq(T.bv_var("ghost1", 1), T.bv_const(1, 1)))
        ts.add_constraint(T.bv_var("ghost2", 1))
        report = lint_transition_system(ts)
        assert len(report.by_rule("model.undeclared-symbol")) == 2

    def test_symbolic_init_is_info_only(self):
        # The QED "shared unknown initial value" idiom must stay legal.
        ts = counter_ts()
        ts.set_init("r", T.bv_var("r_init_reg", 4))
        report = lint_transition_system(ts)
        [finding] = report.by_rule("model.symbolic-init")
        assert finding.severity == SEV_INFO
        assert not report.errors

    def test_clean_in_code_system(self):
        assert not lint_transition_system(counter_ts()).findings


# ---------------------------------------------------------------------------
# model lint: shipped artifacts must be error-free
# ---------------------------------------------------------------------------


class TestShippedArtifactsLintClean:
    def test_btor2_model_has_no_errors(self, tmp_path):
        # The exported model is generated, not committed (*.btor2 is
        # gitignored), so produce a fresh one here.  Both steps run in
        # subprocesses: parsing the model interns its m1_* QED symbols in
        # the process-wide term manager, which would collide with the
        # differently-sized models other tests build.
        model = tmp_path / "sepe_sqed_model.btor2"
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        export = subprocess.run(
            [sys.executable, "examples/export_btor2.py", str(model)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert export.returncode == 0, export.stdout + export.stderr
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(model)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.parametrize("buggy", [False, True])
    def test_pdr_designs_lint_clean(self, buggy):
        from repro.pdr import designs as D

        for builder in (
            D.saturating_counter,
            D.lockstep_accumulators,
            D.pipelined_accumulators,
        ):
            report = lint_transition_system(builder("d", buggy=buggy))
            # The absint-backed rules may surface genuine info-severity
            # facts (e.g. the saturating counter's stuck msb); shipped
            # designs must stay free of errors and warnings.
            noisy = [f for f in report.findings if f.severity != "info"]
            assert not noisy, f"{builder.__name__}: {report.render()}"

    def test_sqed_flow_model_has_no_errors(self, tiny_processor_config):
        from repro.core.flow import SqedFlow

        model = SqedFlow(tiny_processor_config).build_model()
        report = lint_transition_system(model.ts)
        assert not report.errors, report.render()


# ---------------------------------------------------------------------------
# encoding lint
# ---------------------------------------------------------------------------


class TestEncodingLint:
    def test_clean_cnf(self):
        cnf = CNF([[1, 2], [-1, 3]], num_vars=3)
        assert not lint_cnf(cnf).findings

    def test_cnf_rules_fire(self):
        cnf = CNF(num_vars=2)
        # Bypass add_clause on purpose: these artifacts are exactly what a
        # buggy producer that bypasses normalisation would emit.
        cnf.clauses.extend(
            [(), (1, 5), (1, 1, 2), (1, -1), (1, 2), (2, 1)]
        )
        report = lint_cnf(cnf)
        assert set(report.rules()) == {
            "encoding.empty-clause",
            "encoding.undefined-var",
            "encoding.dup-lit",
            "encoding.tautology",
            "encoding.dup-clause",
        }
        assert {f.rule for f in report.errors} == {
            "encoding.empty-clause",
            "encoding.undefined-var",
            "encoding.tautology",
        }

    def test_tautology_does_not_double_count_as_duplicate(self):
        cnf = CNF(num_vars=1)
        cnf.clauses.extend([(1, -1), (1, -1)])
        report = lint_cnf(cnf)
        assert len(report.by_rule("encoding.tautology")) == 2
        assert not report.by_rule("encoding.dup-clause")

    def test_clean_aig(self):
        from repro.aig.graph import AIG

        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        g = aig.and_(a, b)
        report = lint_aig(aig, roots=[g])
        assert not report.findings

    def test_aig_order_violation_fires(self):
        from repro.aig.graph import AIG

        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.and_(a, b)
        gate = aig.num_nodes() + 1
        # Corrupt the stored args to reference the gate itself.
        aig._args[-1] = (gate, b)
        report = lint_aig(aig)
        assert "encoding.aig-order" in report.rules()

    def test_aig_dangling_needs_roots(self):
        from repro.aig.graph import AIG

        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        used = aig.and_(a, b)
        aig.xor_(a, b)  # never referenced by the root
        assert not lint_aig(aig).findings  # no roots -> check skipped
        report = lint_aig(aig, roots=[used])
        [finding] = report.by_rule("encoding.aig-dangling")
        assert finding.severity == SEV_WARNING

    def test_encoding_stats_rules(self):
        clean = {"cnf_clauses_pre": 10, "cnf_clauses_post": 8,
                 "vars_eliminated": 3, "vars_restored": 3}
        assert not lint_encoding_stats(clean).findings
        grown = dict(clean, cnf_clauses_post=14)
        [finding] = lint_encoding_stats(grown).findings
        assert finding.rule == "encoding.preprocess-regression"
        corrupt = dict(clean, vars_restored=5)
        [finding] = lint_encoding_stats(corrupt).findings
        assert finding.rule == "encoding.restore-imbalance"
        assert finding.severity == SEV_ERROR

    def test_real_bmc_encoding_lints_clean(self):
        from repro.bmc.engine import BmcSession

        ts = counter_ts()
        session = BmcSession(ts, "safe")
        stats = session.encode_to(3)
        blaster = session.context.blaster
        report = lint_cnf(blaster.cnf)
        report.extend(lint_encoding_stats(stats))
        assert not report.errors, report.render()


# ---------------------------------------------------------------------------
# gate plumbing
# ---------------------------------------------------------------------------


class TestLintGate:
    def test_off_mode_skips_lint_entirely(self):
        report = gate_transition_system(load_fixture("missing_next"), "off")
        assert not report.findings

    def test_error_mode_raises_on_errors(self):
        with pytest.raises(LintError, match="model.missing-next"):
            gate_transition_system(load_fixture("missing_next"), "error")

    def test_error_mode_warns_on_warnings(self):
        with pytest.warns(LintWarning, match="model.latch-no-init"):
            gate_transition_system(load_fixture("latch_no_init"), "error")

    def test_warn_mode_never_raises(self):
        with pytest.warns(LintWarning, match="model.missing-next"):
            report = gate_transition_system(load_fixture("missing_next"), "warn")
        assert report.errors

    def test_clean_system_passes_error_gate_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = gate_transition_system(counter_ts(), "error")
        assert not report.findings

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(ENV_LINT_GATE, raising=False)
        assert default_gate_mode() == "off"
        monkeypatch.setenv(ENV_LINT_GATE, "error")
        assert resolve_gate_mode(None) == "error"
        monkeypatch.setenv(ENV_LINT_GATE, "strict")
        with pytest.raises(LintError, match=ENV_LINT_GATE):
            default_gate_mode()
        with pytest.raises(LintError):
            resolve_gate_mode("loud")

    def test_bmc_session_gates(self):
        from repro.bmc.engine import BmcSession

        broken = load_fixture("missing_next")
        with pytest.raises(LintError, match="BmcSession"):
            BmcSession(broken, "r_saturates", lint="error")
        # Clean model sails through the same gate.
        session = BmcSession(counter_ts(), "safe", lint="error")
        assert session is not None

    def test_flow_gates_before_solving(self, tiny_processor_config):
        from repro.core.flow import SqedFlow

        flow = SqedFlow(tiny_processor_config, lint="error")
        # The gate passes (no error-severity findings) but surfaces the
        # QED model's dead uncompared latches as warnings.
        with pytest.warns(LintWarning, match="model.dead-latch"):
            outcome = flow.run(bound=2)
        assert outcome.detected is False

    def test_zoo_oracle_rejects_lint_tripping_model(self, monkeypatch):
        from repro.zoo import oracle as Z
        from repro.zoo.families import instantiate, sample_recipe

        instance = instantiate(sample_recipe("alu_op_swap", 0))

        def broken_lint(ts):
            report = LintReport()
            report.add("model.missing-next", SEV_ERROR, "state x", "injected")
            return report

        monkeypatch.setattr(Z, "lint_transition_system", broken_lint)
        report = Z.run_instance(instance, Z.OracleSettings())
        assert report.status == Z.STATUS_DISAGREEMENT
        assert "failed lint" in (report.failure or "")


# ---------------------------------------------------------------------------
# parser diagnostics (satellite)
# ---------------------------------------------------------------------------


class TestParserDiagnostics:
    def test_truncated_fixture_reports_line(self):
        with pytest.raises(Btor2Error) as exc_info:
            load_fixture("truncated")
        message = str(exc_info.value)
        assert "line 10" in message
        assert "truncated line" in message
        assert "8 next 1 5" in message  # the offending source line

    def test_garbled_fixture_reports_token(self):
        with pytest.raises(Btor2Error) as exc_info:
            load_fixture("garbled")
        message = str(exc_info.value)
        assert "line 6" in message
        assert "'banana'" in message


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_lints_a_file(self, capsys):
        assert lint_main([str(FIXTURES / "clean.btor2")]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_error_fixture_fails(self, capsys):
        assert lint_main([str(FIXTURES / "missing_next.btor2")]) == 1
        assert "model.missing-next" in capsys.readouterr().out

    def test_fail_on_controls_exit(self, capsys):
        warn_only = str(FIXTURES / "latch_no_init.btor2")
        assert lint_main([warn_only]) == 0
        assert lint_main([warn_only, "--fail-on", "warning"]) == 1
        bad = str(FIXTURES / "missing_next.btor2")
        assert lint_main([bad, "--fail-on", "never"]) == 0

    def test_json_output(self, capsys):
        assert (
            lint_main([str(FIXTURES / "dead_latch.btor2"), "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_errors"] == 0
        assert payload["total_warnings"] == 1
        [target] = payload["targets"].values()
        assert target["findings"][0]["rule"] == "model.dead-latch"

    def test_designs_lint_clean(self, capsys):
        assert lint_main(["--design", "all"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_unknown_design_is_usage_error(self, capsys):
        assert lint_main(["--design", "nonexistent"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_no_targets_is_usage_error(self, capsys):
        assert lint_main([]) == 2

    def test_missing_file_is_usage_error(self, capsys):
        assert lint_main(["definitely_missing.btor2"]) == 2

    def test_parse_error_is_usage_error(self, capsys):
        assert lint_main([str(FIXTURES / "garbled.btor2")]) == 2
        assert "line 6" in capsys.readouterr().err

    def test_encode_bound(self, capsys):
        assert (
            lint_main([str(FIXTURES / "clean.btor2"), "--encode-bound", "2"])
            == 0
        )

    def test_zoo_sample(self, capsys):
        assert lint_main(["--zoo-sample", "2", "--zoo-seed", "5"]) == 0
        assert "zoo:" in capsys.readouterr().out

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(FIXTURES / "clean.btor2")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr


# ---------------------------------------------------------------------------
# repo self-lint (tools/selflint.py)
# ---------------------------------------------------------------------------


class TestSelfLint:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "selflint.py"), *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_benchmarks_are_clean(self):
        result = self._run("benchmarks")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_wallclock_gate_is_flagged(self, tmp_path):
        bad = tmp_path / "bench_bad.py"
        bad.write_text(
            "elapsed_seconds = 1.0\n"
            "baseline_seconds = 2.0\n"
            "assert elapsed_seconds < baseline_seconds\n"
        )
        result = self._run(str(bad))
        assert result.returncode == 1
        assert "bench_bad.py:3" in result.stdout

    def test_zero_guard_is_exempt(self, tmp_path):
        ok = tmp_path / "bench_guard.py"
        ok.write_text(
            "entry = {'seconds': 0.5}\n"
            "if entry['seconds'] > 0:\n"
            "    speed = 1 / entry['seconds']\n"
        )
        assert self._run(str(ok)).returncode == 0

    def test_allow_comment_suppresses(self, tmp_path):
        ok = tmp_path / "bench_allowed.py"
        ok.write_text(
            "a_seconds, b_seconds = 1.0, 2.0\n"
            "win = a_seconds < b_seconds  # selflint: allow-wallclock\n"
        )
        assert self._run(str(ok)).returncode == 0

    def test_missing_path_is_usage_error(self):
        assert self._run("definitely/missing/dir").returncode == 2

    def test_src_tree_is_clean(self):
        result = self._run("src")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_env_read_is_flagged(self, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("import os\nvalue = os.environ.get('REPRO_X')\n")
        result = self._run(str(bad))
        assert result.returncode == 1
        assert "module.py:2" in result.stdout
        assert "environment read" in result.stdout

    def test_os_getenv_is_flagged(self, tmp_path):
        bad = tmp_path / "module.py"
        bad.write_text("import os\nvalue = os.getenv('REPRO_X')\n")
        assert self._run(str(bad)).returncode == 1

    def test_env_allow_comment_suppresses(self, tmp_path):
        ok = tmp_path / "module.py"
        ok.write_text(
            "import os\n"
            "value = os.environ.get('REPRO_X')  # selflint: allow-env\n"
        )
        assert self._run(str(ok)).returncode == 0

    def test_env_config_module_is_exempt(self, tmp_path):
        config = tmp_path / "solve" / "pipeline.py"
        config.parent.mkdir()
        config.write_text("import os\nvalue = os.environ.get('REPRO_X')\n")
        assert self._run(str(config)).returncode == 0

    def test_wallclock_rule_skipped_under_src(self, tmp_path):
        # Reporting-only timing comparisons are fine in src/ code; the
        # env rule still applies there.
        src = tmp_path / "src" / "report.py"
        src.parent.mkdir()
        src.write_text(
            "a_seconds, b_seconds = 1.0, 2.0\nfaster = a_seconds < b_seconds\n"
        )
        assert self._run(str(src)).returncode == 0
