"""Tests for the persistent incremental solver context (:mod:`repro.solve`).

The load-bearing property is *incremental-vs-oneshot equivalence*: a reused
``SolverContext`` must return exactly the verdicts (and valid models) that
fresh per-query solving returns, across the BMC, k-induction and CEGIS
workloads that now share it.
"""

from __future__ import annotations

import os
import stat
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SmtError, SolveError
from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster
from repro.smt.evaluator import evaluate, free_variables
from repro.smt.solver import BVSolver, check_sat
from repro.solve import (
    CdclBackend,
    DimacsBackend,
    SolverContext,
    create_backend,
)
from repro.bmc.engine import BmcEngine, BmcSession
from repro.bmc.kinduction import KInductionEngine
from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.spec import spec_from_instruction
from repro.qed.equivalents import (
    default_equivalent_programs,
    verify_equivalence,
    verify_equivalences,
)
from repro.ts.system import TransitionSystem
from repro.utils.bitops import mask

W = 5


def _vars(prefix: str) -> tuple[T.BV, T.BV]:
    return T.bv_var(f"{prefix}_x", W), T.bv_var(f"{prefix}_y", W)


def _counter_system(prefix: str, limit: int, buggy: bool = False) -> TransitionSystem:
    """The same saturating counter used by the BMC tests."""
    ts = TransitionSystem(name=f"{prefix}_counter")
    count = ts.add_state(f"{prefix}_count", 4, init=0)
    enable = ts.add_input(f"{prefix}_enable", 1)
    incremented = T.bv_add(count, T.bv_const(1, 4))
    if buggy:
        next_count = T.bv_ite(T.bv_eq(enable, T.bv_true()), incremented, count)
    else:
        at_limit = T.bv_ule(T.bv_const(limit, 4), count)
        next_count = T.bv_ite(
            T.bv_and(T.bv_eq(enable, T.bv_true()), T.bv_not(at_limit)),
            incremented,
            count,
        )
    ts.set_next(count, next_count)
    ts.add_property("bounded", T.bv_ule(count, T.bv_const(limit, 4)))
    return ts


class TestGateCache:
    def test_identical_gates_share_literals(self):
        x, y = _vars("gc1")
        blaster = BitBlaster()
        first = blaster.blast(T.bv_add(x, y))
        clauses_after_first = len(blaster.cnf.clauses)
        # A distinct term with identical gate structure after the top node.
        second = blaster.blast(T.bv_not(T.bv_add(x, y)))
        assert second == [-lit for lit in first]
        assert len(blaster.cnf.clauses) == clauses_after_first

    def test_structurally_equal_subterms_blast_once(self):
        x, y = _vars("gc2")
        blaster = BitBlaster()
        blaster.blast(T.bv_and(x, y))
        clauses_before = len(blaster.cnf.clauses)
        # xor(x, y) shares no node with and(x, y), but or = -and(-x,-y) style
        # reuse still goes through the same gate cache when structure repeats.
        blaster.blast(T.bv_and(y, x))  # hash-consing: same term, term cache
        blaster.blast(T.bv_not(T.bv_and(x, y)))  # new term, same gates
        assert len(blaster.cnf.clauses) == clauses_before

    def test_xor_negation_normalisation(self):
        x, y = _vars("gc3")
        blaster = BitBlaster()
        plain = blaster.blast(T.bv_xor(x, y))
        clauses_after = len(blaster.cnf.clauses)
        negated = blaster.blast(T.bv_xor(T.bv_not(x), y))
        assert negated == [-lit for lit in plain]
        assert len(blaster.cnf.clauses) == clauses_after


class TestModelAvailability:
    def test_need_model_false_refuses_value_of(self):
        """A verdict-only check must not silently evaluate an all-zeros model."""
        x, y = _vars("nm1")
        ctx = SolverContext()
        ctx.add(T.bv_eq(x, T.bv_const(3, W)))
        ctx.add(T.bv_ult(x, y))
        result = ctx.check(need_model=False)
        assert result.satisfiable is True
        assert result.has_model is False
        with pytest.raises(SmtError, match="need_model"):
            result.value_of(x)

    def test_need_model_true_evaluates(self):
        x, _ = _vars("nm2")
        ctx = SolverContext()
        ctx.add(T.bv_eq(x, T.bv_const(3, W)))
        result = ctx.check()
        assert result.has_model is True
        assert result.value_of(T.bv_add(x, x)) == 6

    def test_empty_model_on_variable_free_formula_still_evaluates(self):
        ctx = SolverContext()
        ctx.add(T.bv_eq(T.bv_const(1, W), T.bv_const(1, W)))
        result = ctx.check()
        assert result.satisfiable is True and result.model == {}
        assert result.value_of(T.bv_const(4, W)) == 4


class TestTermLevelCores:
    """Failed-assumption cores lifted back to the assumption terms."""

    def test_core_subset_and_recheck(self):
        x, y = _vars("core1")
        ctx = SolverContext()
        ctx.add(T.bv_ult(x, T.bv_const(8, W)))
        a1 = T.bv_eq(x, T.bv_const(9, W))  # contradicts the assertion
        a2 = T.bv_eq(y, T.bv_const(3, W))  # irrelevant
        result = ctx.check(assumptions=[a1, a2])
        assert result.satisfiable is False
        assert result.core is not None and result.core
        assert {term.tid for term in result.core} <= {a1.tid, a2.tid}
        assert all(term.tid != a2.tid for term in result.core)
        # Re-checking under only the core stays UNSAT, and the context is
        # still usable afterwards.
        assert ctx.check(assumptions=result.core).satisfiable is False
        assert ctx.check(assumptions=[a2]).satisfiable is True

    def test_joint_assumption_core(self):
        x, y = _vars("core2")
        ctx = SolverContext()
        ctx.add(T.bv_eq(T.bv_add(x, y), T.bv_const(4, W)))
        a1 = T.bv_eq(x, T.bv_const(10, W))
        a2 = T.bv_eq(y, T.bv_const(10, W))
        result = ctx.check(assumptions=[a1, a2])
        assert result.satisfiable is False
        assert result.core
        assert ctx.check(assumptions=result.core).satisfiable is False

    def test_empty_core_means_root_unsat(self):
        x, _ = _vars("core3")
        ctx = SolverContext()
        ctx.add(T.bv_eq(x, T.bv_const(1, W)))
        ctx.add(T.bv_eq(x, T.bv_const(2, W)))
        result = ctx.check(assumptions=[T.bv_ult(x, T.bv_const(4, W))])
        assert result.satisfiable is False
        assert result.core == []

    def test_const_false_assumption_is_its_own_core(self):
        ctx = SolverContext()
        result = ctx.check(assumptions=[T.bv_false()])
        assert result.satisfiable is False
        assert result.core is not None and len(result.core) == 1
        assert result.core[0].tid == T.bv_false().tid

    def test_core_excludes_scope_activations(self):
        # Scoped assertions participate in the conflict but never leak into
        # the term-level core — it stays a subset of the assumptions.
        x, _ = _vars("core4")
        ctx = SolverContext()
        ctx.push()
        ctx.add(T.bv_eq(x, T.bv_const(5, W)))
        bad = T.bv_eq(x, T.bv_const(6, W))
        result = ctx.check(assumptions=[bad])
        assert result.satisfiable is False
        assert result.core is not None
        assert {term.tid for term in result.core} <= {bad.tid}
        ctx.pop()
        assert ctx.check(assumptions=[bad]).satisfiable is True

    def test_sat_has_no_core(self):
        x, _ = _vars("core5")
        ctx = SolverContext()
        result = ctx.check(assumptions=[T.bv_eq(x, T.bv_const(2, W))])
        assert result.satisfiable is True
        assert result.core is None


class TestPerCallBudget:
    def test_two_budgeted_checks_on_one_context(self):
        """Regression: a reused backend must not erode later call budgets.

        Two identical hard queries with the same budget on one context must
        both come back undecided after doing the same amount of fresh work —
        before the fix the second call saw the budget already exhausted by
        the first call's conflicts and returned immediately.
        """
        xs = [T.bv_var(f"budget_x{i}", 8) for i in range(6)]
        ctx = SolverContext()
        # A SAT-hard-ish query: pairwise-distinct mid-width variables whose
        # sum is constrained — enough search to burn a small budget.
        ctx.add(T.bv_distinct(xs))
        total = xs[0]
        for x in xs[1:]:
            total = T.bv_add(total, x)
        hard = T.bv_eq(T.bv_mul(total, total), T.bv_const(77, 8))
        first = ctx.check(assumptions=[hard], conflict_budget=3)
        assert first.satisfiable is None
        assert first.stats.conflicts >= 3
        second = ctx.check(assumptions=[hard], conflict_budget=3)
        assert second.satisfiable is None
        # The second call did its own three conflicts of work rather than
        # bouncing off an already-spent budget.
        assert second.stats.conflicts >= 3


class TestScopes:
    def test_push_pop_restores_satisfiability(self):
        x, _ = _vars("sc1")
        ctx = SolverContext()
        ctx.add(T.bv_ult(x, T.bv_const(8, W)))
        ctx.push()
        ctx.add(T.bv_eq(x, T.bv_const(9, W)))
        assert ctx.check().satisfiable is False
        ctx.pop()
        result = ctx.check()
        assert result.satisfiable and result.model[x.name] < 8

    def test_nested_scopes(self):
        x, y = _vars("sc2")
        ctx = SolverContext()
        ctx.add(T.bv_ult(x, y))
        ctx.push()
        ctx.add(T.bv_eq(y, T.bv_const(3, W)))
        ctx.push()
        ctx.add(T.bv_eq(x, T.bv_const(2, W)))
        result = ctx.check()
        assert result.satisfiable and result.model[x.name] == 2
        ctx.pop()
        ctx.add(T.bv_eq(x, T.bv_const(7, W)))  # lands in the outer scope
        assert ctx.check().satisfiable is False
        ctx.pop()
        assert ctx.check().satisfiable
        assert ctx.scope_depth == 0

    def test_const_false_in_scope_is_retractable(self):
        x, _ = _vars("sc3")
        ctx = SolverContext()
        ctx.add(T.bv_eq(x, T.bv_const(1, W)))
        ctx.push()
        ctx.add(T.bv_false())
        assert ctx.check().satisfiable is False
        ctx.pop()
        assert ctx.check().satisfiable

    def test_pop_without_push_raises(self):
        with pytest.raises(SolveError):
            SolverContext().pop()

    def test_width_checks(self):
        x, _ = _vars("sc4")
        ctx = SolverContext()
        with pytest.raises(SmtError):
            ctx.add(x)
        with pytest.raises(SmtError):
            ctx.check(assumptions=[x])


values = st.integers(min_value=0, max_value=mask(W))


class TestIncrementalVsOneshot:
    """A reused context agrees with fresh per-query solving."""

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(values, st.sampled_from(["ult", "eq", "ne", "ule"])), min_size=1, max_size=6))
    def test_scoped_queries_match_fresh_solvers(self, queries):
        x, y = _vars("prop")
        base = T.bv_eq(T.bv_add(x, y), T.bv_const(7, W))
        builders = {
            "ult": lambda c: T.bv_ult(x, T.bv_const(c, W)),
            "ule": lambda c: T.bv_ule(y, T.bv_const(c, W)),
            "eq": lambda c: T.bv_eq(x, T.bv_const(c, W)),
            "ne": lambda c: T.bv_ne(y, T.bv_const(c, W)),
        }
        ctx = SolverContext()
        ctx.add(base)
        for constant, kind in queries:
            extra = builders[kind](constant)
            ctx.push()
            ctx.add(extra)
            incremental = ctx.check()
            ctx.pop()
            oneshot = check_sat([base, extra])
            assert incremental.satisfiable == oneshot.satisfiable
            if incremental.satisfiable:
                model = {
                    name: incremental.model.get(name, 0) for name in (x.name, y.name)
                }
                assert evaluate(base, model) == 1
                assert evaluate(extra, model) == 1

    @settings(max_examples=20, deadline=None)
    @given(st.lists(values, min_size=1, max_size=6))
    def test_assumption_queries_match_fresh_solvers(self, constants):
        x, y = _vars("assume")
        base = T.bv_ult(x, y)
        ctx = SolverContext()
        ctx.add(base)
        for constant in constants:
            assumption = T.bv_eq(x, T.bv_const(constant, W))
            incremental = ctx.check(assumptions=[assumption])
            oneshot = check_sat([base, assumption])
            assert incremental.satisfiable == oneshot.satisfiable


class TestBmcIncremental:
    def test_session_extension_matches_fresh_engines(self):
        session = BmcSession(_counter_system("inc_bmc", 5), "bounded")
        for bound in (2, 5, 8):
            fresh = BmcEngine(_counter_system(f"one_bmc_{bound}", 5)).check(
                "bounded", bound=bound
            )
            extended = session.extend_to(bound)
            assert extended.holds is fresh.holds is True

    def test_session_finds_same_counterexample_depth(self):
        session = BmcSession(_counter_system("inc_bug", 4, buggy=True), "bounded")
        assert session.extend_to(3).holds is True
        incremental = session.extend_to(10)
        fresh = BmcEngine(_counter_system("one_bug", 4, buggy=True)).check(
            "bounded", bound=10
        )
        assert incremental.holds is False and fresh.holds is False
        assert incremental.bound == fresh.bound
        assert (
            incremental.counterexample_length == fresh.counterexample_length
        )

    def test_bmc_solver_stats_populated(self):
        result = BmcEngine(_counter_system("stats_bmc", 4, buggy=True)).check(
            "bounded", bound=8
        )
        assert result.holds is False
        assert result.stats.solver_stats.decisions > 0
        assert result.stats.solver_stats.propagations > 0


class TestKInductionIncremental:
    def test_proof_matches_seed_behaviour(self):
        ts = TransitionSystem(name="kind_stable")
        flag = ts.add_state("kind_flag", 1, init=0)
        ts.set_next(flag, flag)
        ts.add_property("never_set", T.bv_eq(flag, T.bv_const(0, 1)))
        result = KInductionEngine(ts).prove("never_set", max_k=2)
        assert result.proven is True

    def test_refutation_via_base_case(self):
        ts = _counter_system("kind_bug", 4, buggy=True)
        result = KInductionEngine(ts).prove("bounded", max_k=8)
        assert result.proven is False
        assert result.base_result is not None and result.base_result.holds is False

    def test_non_inductive_property_stays_unknown(self):
        # Saturates at 6 but claims <= 5: every short base case passes, yet
        # the step can always start from count == 5 and reach 6, so no small
        # k closes the induction.
        ts = TransitionSystem(name="kind_unknown_counter")
        count = ts.add_state("kind_unknown_count", 4, init=0)
        enable = ts.add_input("kind_unknown_enable", 1)
        at_limit = T.bv_ule(T.bv_const(6, 4), count)
        ts.set_next(
            count,
            T.bv_ite(
                T.bv_and(T.bv_eq(enable, T.bv_true()), T.bv_not(at_limit)),
                T.bv_add(count, T.bv_const(1, 4)),
                count,
            ),
        )
        ts.add_property("bounded", T.bv_ule(count, T.bv_const(5, 4)))
        result = KInductionEngine(ts).prove("bounded", max_k=2)
        assert result.proven is None


class TestCegisIncremental:
    @pytest.fixture(scope="class")
    def spec_and_components(self, small_isa, small_library):
        spec = spec_from_instruction("XOR", small_isa)
        names = ["OR", "AND", "SUB"]
        return spec, [small_library.by_name(name) for name in names]

    def test_incremental_and_oneshot_agree(self, spec_and_components):
        spec, components = spec_and_components
        incremental = CegisEngine(CegisConfig(incremental=True)).synthesize(
            spec, components
        )
        oneshot = CegisEngine(CegisConfig(incremental=False)).synthesize(
            spec, components
        )
        assert incremental.succeeded and oneshot.succeeded
        assert verify_equivalence(incremental.program)
        assert verify_equivalence(oneshot.program)

    def test_solver_stats_per_phase(self, spec_and_components):
        spec, components = spec_and_components
        outcome = CegisEngine().synthesize(spec, components)
        assert outcome.succeeded
        stats = outcome.stats
        assert stats.synthesis_solver_stats.decisions > 0
        assert stats.verification_solver_stats.propagations > 0


class TestSharedEquivalenceChecking:
    def test_batch_verification_on_one_context(self, small_isa):
        programs = default_equivalent_programs(
            small_isa, ops=["ADD", "SUB", "XOR", "OR", "AND"]
        )
        shared = verify_equivalences(programs)
        assert shared == {op: True for op in programs}
        # Fresh-context verdicts agree program by program.
        for program in programs.values():
            assert verify_equivalence(program)


class TestBackends:
    def test_create_backend_specs(self):
        assert isinstance(create_backend("cdcl"), CdclBackend)
        backend = CdclBackend()
        assert create_backend(backend) is backend
        with pytest.raises(SolveError):
            create_backend("unknown-backend")
        with pytest.raises(SolveError):
            create_backend("dimacs:")
        with pytest.raises(SolveError):
            create_backend("dimacs:definitely-not-a-solver-binary")

    def test_backend_instance_cannot_serve_two_contexts(self):
        # A backend holds clauses numbered by one blaster; sharing it with a
        # second context would silently mix variable spaces.
        backend = CdclBackend()
        SolverContext(backend=backend)
        with pytest.raises(SolveError):
            SolverContext(backend=backend)

    @pytest.fixture()
    def stub_solver(self, tmp_path, monkeypatch):
        """A DIMACS 'solver' that answers with the builtin CDCL engine."""
        script = tmp_path / "stub-sat-solver"
        repo_src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        script.write_text(
            "#!%s\n"
            "import sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.sat.cnf import parse_dimacs\n"
            "from repro.sat.solver import SatSolver\n"
            "with open(sys.argv[1]) as fh:\n"
            "    cnf = parse_dimacs(fh.read())\n"
            "result = SatSolver(cnf).solve()\n"
            "if result.satisfiable:\n"
            "    print('s SATISFIABLE')\n"
            "    lits = [v if val else -v for v, val in sorted(result.model.items())]\n"
            "    print('v ' + ' '.join(map(str, lits)) + ' 0')\n"
            "    sys.exit(10)\n"
            "print('s UNSATISFIABLE')\n"
            "sys.exit(20)\n" % (sys.executable, os.path.abspath(repo_src))
        )
        script.chmod(script.stat().st_mode | stat.S_IEXEC)
        monkeypatch.setenv("PATH", str(tmp_path), prepend=os.pathsep)
        return script.name

    def test_dimacs_backend_roundtrip(self, stub_solver):
        ctx = SolverContext(backend=f"dimacs:{stub_solver}")
        x, y = _vars("dim")
        ctx.add(T.bv_eq(T.bv_add(x, y), T.bv_const(9, W)))
        result = ctx.check()
        assert result.satisfiable
        assert (result.model[x.name] + result.model[y.name]) & mask(W) == 9
        ctx.push()
        ctx.add(T.bv_eq(x, T.bv_const(1, W)))
        scoped = ctx.check()
        assert scoped.satisfiable and scoped.model[x.name] == 1
        ctx.pop()
        assert ctx.check(assumptions=[T.bv_ult(x, x)]).satisfiable is False

    def test_dimacs_backend_agrees_with_cdcl(self, stub_solver):
        backend_spec = f"dimacs:{stub_solver}"
        x, y = _vars("dimeq")
        constraints = [
            [T.bv_ult(x, y), T.bv_ult(y, x)],
            [T.bv_eq(T.bv_and(x, y), T.bv_const(3, W)), T.bv_ult(x, T.bv_const(4, W))],
        ]
        for terms in constraints:
            external = SolverContext(backend=backend_spec)
            external.add_all(terms)
            builtin = SolverContext()
            builtin.add_all(terms)
            assert external.check().satisfiable == builtin.check().satisfiable

    def test_dimacs_backend_cores(self, stub_solver):
        # External solvers cannot minimise, but the core contract still
        # holds: a subset of the assumptions (here: all of them), still
        # UNSAT when re-checked, and empty exactly on root UNSAT.
        ctx = SolverContext(backend=f"dimacs:{stub_solver}")
        x, _ = _vars("dimcore")
        ctx.add(T.bv_ult(x, T.bv_const(8, W)))
        a1 = T.bv_eq(x, T.bv_const(9, W))
        a2 = T.bv_eq(x, T.bv_const(3, W))
        result = ctx.check(assumptions=[a1, a2])
        assert result.satisfiable is False
        assert result.core is not None and result.core
        assert {t.tid for t in result.core} <= {a1.tid, a2.tid}
        assert ctx.check(assumptions=result.core).satisfiable is False
        # Root UNSAT: the clause set alone is contradictory -> empty core.
        ctx.add(T.bv_eq(x, T.bv_const(1, W)))
        ctx.add(T.bv_eq(x, T.bv_const(2, W)))
        rooted = ctx.check(assumptions=[a2])
        assert rooted.satisfiable is False
        assert rooted.core == []


class TestFacade:
    def test_bvsolver_reuses_one_context(self):
        solver = BVSolver()
        x, y = _vars("fac")
        solver.add(T.bv_ult(x, y))
        first = solver.check()
        clauses_after_first = solver.context.num_clauses
        second = solver.check()
        assert first.satisfiable and second.satisfiable
        # No re-blasting: the clause count is unchanged between checks.
        assert solver.context.num_clauses == clauses_after_first

    def test_free_variable_cache_covers_model(self):
        solver = BVSolver()
        x, y = _vars("cache")
        solver.add(T.bv_eq(x, T.bv_const(3, W)))
        solver.add(T.bv_eq(y, T.bv_const(4, W)))
        result = solver.check()
        assert result.model == {x.name: 3, y.name: 4}
        assert result.value_of(T.bv_add(x, y)) == 7

    def test_result_stats_are_per_query(self):
        solver = BVSolver()
        x, y = _vars("pq")
        solver.add(T.bv_eq(T.bv_mul(x, y), T.bv_const(12, W)))
        first = solver.check(assumptions=[T.bv_ult(x, y)])
        second = solver.check(assumptions=[T.bv_ult(y, x)])
        assert first.satisfiable and second.satisfiable
        total = solver.stats
        assert total.propagations >= (
            first.stats.propagations + second.stats.propagations
        )
