"""Tests for the bit-vector term DSL, evaluator and simplifier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SmtError
from repro.smt import terms as T
from repro.smt.evaluator import evaluate, free_variables, substitute
from repro.utils.bitops import mask, to_signed

W = 8
A = T.bv_var("tsmt_a", W)
B = T.bv_var("tsmt_b", W)

values = st.integers(min_value=0, max_value=mask(W))


class TestConstruction:
    def test_const_truncation(self):
        assert T.bv_const(0x1FF, 8).const_value() == 0xFF
        assert T.bv_const(-1, 8).const_value() == 0xFF

    def test_var_width_clash_rejected(self):
        T.bv_var("tsmt_clash", 8)
        with pytest.raises(SmtError):
            T.bv_var("tsmt_clash", 16)

    def test_hash_consing(self):
        assert T.bv_add(A, B) is T.bv_add(A, B)
        assert T.bv_add(A, B) is T.bv_add(B, A)  # commutative canonicalisation

    def test_width_mismatch_rejected(self):
        with pytest.raises(SmtError):
            T.bv_add(A, T.bv_const(0, 4))

    def test_ite_condition_must_be_bool(self):
        with pytest.raises(SmtError):
            T.bv_ite(A, A, B)

    def test_extract_range_checked(self):
        with pytest.raises(SmtError):
            T.bv_extract(A, 8, 0)
        with pytest.raises(SmtError):
            T.bv_extract(A, 3, 5)


class TestSimplification:
    def test_constant_folding(self):
        assert T.bv_add(T.bv_const(3, 8), T.bv_const(4, 8)).const_value() == 7
        assert T.bv_mul(T.bv_const(20, 8), T.bv_const(20, 8)).const_value() == (400 & 0xFF)

    def test_identity_rules(self):
        zero = T.bv_const(0, W)
        ones = T.bv_const(mask(W), W)
        assert T.bv_add(A, zero) is A
        assert T.bv_and(A, ones) is A
        assert T.bv_and(A, zero).const_value() == 0
        assert T.bv_or(A, zero) is A
        assert T.bv_xor(A, zero) is A
        assert T.bv_sub(A, zero) is A
        assert T.bv_mul(A, T.bv_const(1, W)) is A

    def test_self_cancellation(self):
        assert T.bv_xor(A, A).const_value() == 0
        assert T.bv_sub(A, A).const_value() == 0
        assert T.bv_eq(A, A).const_value() == 1
        assert T.bv_ult(A, A).const_value() == 0

    def test_double_negation(self):
        assert T.bv_not(T.bv_not(A)) is A

    def test_ite_collapse(self):
        cond = T.bv_eq(A, B)
        assert T.bv_ite(T.bv_true(), A, B) is A
        assert T.bv_ite(T.bv_false(), A, B) is B
        assert T.bv_ite(cond, A, A) is A
        assert T.bv_ite(cond, T.bv_true(), T.bv_false()) is cond

    def test_nested_extract_fusion(self):
        inner = T.bv_extract(A, 6, 1)
        outer = T.bv_extract(inner, 3, 2)
        assert outer.op == T.OP_EXTRACT
        assert outer.args[0] is A
        assert outer.params == (4, 3)

    def test_shift_by_zero(self):
        zero = T.bv_const(0, W)
        assert T.bv_shl(A, zero) is A
        assert T.bv_lshr(A, zero) is A
        assert T.bv_ashr(A, zero) is A


class TestEvaluator:
    @given(values, values)
    def test_arithmetic_ops(self, x, y):
        env = {"tsmt_a": x, "tsmt_b": y}
        assert evaluate(T.bv_add(A, B), env) == (x + y) & mask(W)
        assert evaluate(T.bv_sub(A, B), env) == (x - y) & mask(W)
        assert evaluate(T.bv_mul(A, B), env) == (x * y) & mask(W)
        assert evaluate(T.bv_and(A, B), env) == (x & y)
        assert evaluate(T.bv_or(A, B), env) == (x | y)
        assert evaluate(T.bv_xor(A, B), env) == (x ^ y)
        assert evaluate(T.bv_not(A), env) == (~x) & mask(W)

    @given(values, values)
    def test_comparisons(self, x, y):
        env = {"tsmt_a": x, "tsmt_b": y}
        assert evaluate(T.bv_eq(A, B), env) == int(x == y)
        assert evaluate(T.bv_ult(A, B), env) == int(x < y)
        assert evaluate(T.bv_slt(A, B), env) == int(to_signed(x, W) < to_signed(y, W))
        assert evaluate(T.bv_ule(A, B), env) == int(x <= y)
        assert evaluate(T.bv_sle(A, B), env) == int(to_signed(x, W) <= to_signed(y, W))

    @given(values, st.integers(min_value=0, max_value=15))
    def test_shifts(self, x, amount):
        env = {"tsmt_a": x, "tsmt_b": amount}
        assert evaluate(T.bv_shl(A, B), env) == (0 if amount >= W else (x << amount) & mask(W))
        assert evaluate(T.bv_lshr(A, B), env) == (0 if amount >= W else x >> amount)
        expected_ashr = (to_signed(x, W) >> min(amount, W - 1)) & mask(W)
        assert evaluate(T.bv_ashr(A, B), env) == expected_ashr

    @given(values)
    def test_extensions_and_extract(self, x):
        env = {"tsmt_a": x}
        assert evaluate(T.bv_zext(A, 16), env) == x
        assert evaluate(T.bv_sext(A, 16), env) == (to_signed(x, W) & mask(16))
        assert evaluate(T.bv_extract(A, 3, 0), env) == (x & 0xF)
        assert evaluate(T.bv_concat(A, A), env) == ((x << W) | x)

    def test_missing_variable_rejected(self):
        with pytest.raises(SmtError):
            evaluate(T.bv_add(A, B), {"tsmt_a": 1})

    @settings(max_examples=30)
    @given(values, values)
    def test_evaluation_matches_folding(self, x, y):
        """Constant-folding in the constructors agrees with the evaluator."""
        symbolic = T.bv_add(T.bv_mul(A, B), T.bv_xor(A, B))
        folded = T.bv_add(
            T.bv_mul(T.bv_const(x, W), T.bv_const(y, W)),
            T.bv_xor(T.bv_const(x, W), T.bv_const(y, W)),
        )
        assert folded.is_const
        assert evaluate(symbolic, {"tsmt_a": x, "tsmt_b": y}) == folded.const_value()


class TestSubstitution:
    def test_substitute_variable(self):
        term = T.bv_add(A, B)
        replaced = substitute(term, {A: T.bv_const(3, W)})
        assert evaluate(replaced, {"tsmt_b": 4}) == 7

    def test_substitute_preserves_unmatched(self):
        term = T.bv_add(A, B)
        assert substitute(term, {}) is term

    def test_substitute_width_mismatch_rejected(self):
        with pytest.raises(SmtError):
            substitute(A, {A: T.bv_const(0, 4)})

    def test_free_variables(self):
        term = T.bv_ite(T.bv_eq(A, B), A, T.bv_const(0, W))
        names = {v.name for v in free_variables(term)}
        assert names == {"tsmt_a", "tsmt_b"}

    def test_fresh_vars_are_unique(self):
        first = T.fresh_var("tsmt_fresh", 8)
        second = T.fresh_var("tsmt_fresh", 8)
        assert first is not second
        assert first.name != second.name
