"""Tests for the incremental CNF preprocessor."""

from __future__ import annotations

import random

import pytest

from repro.sat.preprocess import Preprocessor
from repro.sat.solver import SatSolver


def _brute_force_sat(clauses, num_vars):
    for assignment in range(1 << num_vars):
        values = {v: bool((assignment >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(any(values[abs(l)] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


def _solve(clauses, assumptions=()):
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve(assumptions=assumptions)


class TestUnitPropagation:
    def test_units_simplify_and_are_reemitted(self):
        pre = Preprocessor()
        out = pre.flush([[1], [-1, 2], [1, 3, 4]])
        # [1] asserted, [-1,2] strengthens to [2], [1,3,4] satisfied.
        assert (1,) in out and (2,) in out
        assert all(len(c) == 1 for c in out)
        assert pre.stats.units_found == 2
        assert pre.stats.satisfied_dropped >= 1

    def test_units_persist_across_batches(self):
        pre = Preprocessor()
        pre.flush([[5]])
        out = pre.flush([[-5, 6], [5, 7]])
        assert out == [(6,)]

    def test_conflicting_units_set_unsat(self):
        pre = Preprocessor()
        pre.flush([[1]])
        pre.flush([[-1]])
        assert pre.unsat is True

    def test_empty_clause_from_propagation_sets_unsat(self):
        pre = Preprocessor()
        pre.flush([[1], [2]])
        pre.flush([[-1, -2]])
        assert pre.unsat is True


class TestSubsumption:
    def test_forward_subsumption_within_batch(self):
        pre = Preprocessor()
        pre.freeze_all([1, 2, 3])
        out = pre.flush([[1, 2], [1, 2, 3]])
        assert (1, 2) in out
        assert all(set(c) != {1, 2, 3} for c in out)
        assert pre.stats.subsumed == 1

    def test_forward_subsumption_against_earlier_batch(self):
        pre = Preprocessor()
        pre.freeze_all([1, 2, 3])
        pre.flush([[1, 2]])
        out = pre.flush([[1, 2, 3]])
        assert out == []
        assert pre.stats.subsumed == 1


class TestVariableElimination:
    def test_pure_auxiliary_gate_vanishes(self):
        # Tseitin AND gate 3 <-> 1&2 with no other use of 3: resolvents are
        # all tautologies, the variable disappears entirely.
        pre = Preprocessor()
        pre.freeze_all([1, 2])
        out = pre.flush([[-3, 1], [-3, 2], [3, -1, -2]])
        assert out == []
        assert pre.is_eliminated(3)
        assert pre.stats.vars_eliminated == 1

    def test_frozen_vars_survive(self):
        pre = Preprocessor()
        pre.freeze_all([1, 2, 3])
        out = pre.flush([[-3, 1], [-3, 2], [3, -1, -2]])
        assert len(out) == 3
        assert not pre.is_eliminated(3)

    def test_elimination_preserves_satisfiability(self):
        rng = random.Random(7)
        for _ in range(40):
            num_vars = rng.randint(3, 7)
            clauses = []
            for _ in range(rng.randint(3, 18)):
                width = rng.randint(1, 3)
                clause = list(
                    {rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(width)}
                )
                if any(-l in clause for l in clause):
                    continue
                clauses.append(clause)
            expected = _brute_force_sat(clauses, num_vars)
            pre = Preprocessor()
            out = pre.flush(clauses)
            if pre.unsat:
                assert expected is False
                continue
            result = _solve(out)
            assert result.satisfiable is expected

    def test_model_extension_through_eliminated_vars(self):
        # Eliminate gate var 3 (out of 3 <-> 1&2), solve the remainder, then
        # extend the model: var 3 must read as value(1) & value(2).
        pre = Preprocessor()
        pre.freeze_all([1, 2])
        out = pre.flush([[-3, 1], [-3, 2], [3, -1, -2], [1], [2]])
        result = _solve(out)
        assert result.satisfiable
        model = pre.extend_model(result.model)
        assert model[1] is True and model[2] is True
        assert model[3] is True

    def test_model_extension_negative_case(self):
        pre = Preprocessor()
        pre.freeze_all([1, 2])
        out = pre.flush([[-3, 1], [-3, 2], [3, -1, -2], [-1], [2]])
        result = _solve(out)
        model = pre.extend_model(result.model)
        assert model[3] is False

    def test_uneliminate_on_later_reference(self):
        pre = Preprocessor()
        pre.freeze_all([1, 2])
        pre.flush([[-3, 1], [-3, 2], [3, -1, -2]])
        assert pre.is_eliminated(3)
        # A later batch references var 3: its definition must come back.
        out = pre.flush([[3, 4], [-4]])
        assert not pre.is_eliminated(3)
        assert pre.stats.vars_restored == 1
        # Solving everything emitted so far with 1,2 true forces 3 true.
        all_clauses = [c for c in out]
        result = _solve(all_clauses, assumptions=[1, 2])
        assert result.satisfiable
        assert result.model[3] is True

    def test_require_vars_restores_assumption_var(self):
        pre = Preprocessor()
        pre.freeze_all([1, 2])
        pre.flush([[-3, 1], [-3, 2], [3, -1, -2]])
        restored = pre.require_vars([3])
        assert not pre.is_eliminated(3)
        assert restored, "the stored definition clauses must be re-emitted"
        # With the definition back, assuming 3 while 1 is false is UNSAT.
        result = _solve(restored, assumptions=[3, -1])
        assert result.satisfiable is False


class TestEquivalenceRandomised:
    """Preprocessed output is equisatisfiable and respects assumptions on frozen vars."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances_with_frozen_assumption_vars(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 8)
        clauses = []
        for _ in range(rng.randint(4, 22)):
            width = rng.randint(1, 3)
            lits = {rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(width)}
            if any(-l in lits for l in lits):
                continue
            clauses.append(sorted(lits))
        frozen = [v for v in range(1, num_vars + 1) if rng.random() < 0.5]
        pre = Preprocessor()
        pre.freeze_all(frozen)
        out = pre.flush(clauses)
        for assumption_bits in range(1 << len(frozen)):
            assumptions = [
                v if (assumption_bits >> i) & 1 else -v
                for i, v in enumerate(frozen)
            ]
            expected = _solve(clauses, assumptions=assumptions).satisfiable
            if pre.unsat:
                got = False
            else:
                got = _solve(out, assumptions=assumptions).satisfiable
            assert got is expected
