"""Tests for the CEGIS engine and the three synthesis algorithms."""

from __future__ import annotations

import pytest

from repro.isa.config import IsaConfig
from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.classical import ClassicalCegis
from repro.synth.hpf import HpfCegis, PriorityDict
from repro.synth.iterative import IterativeCegis
from repro.synth.search import count_multisets, enumerate_multisets
from repro.synth.spec import spec_from_instruction


@pytest.fixture(scope="module")
def isa():
    return IsaConfig.small()


@pytest.fixture(scope="module")
def engine():
    return CegisEngine(CegisConfig(max_iterations=12))


class TestCegisEngine:
    def test_sub_via_xori_add_xori(self, isa, small_library, engine):
        """The paper's Listing 1 multiset synthesizes SUB."""
        spec = spec_from_instruction("SUB", isa)
        multiset = [small_library.by_name("XORI.D"), small_library.by_name("ADD"),
                    small_library.by_name("XORI.D")]
        outcome = engine.synthesize(spec, multiset)
        assert outcome.succeeded
        for a, b in [(0, 0), (17, 200), (255, 1)]:
            assert outcome.program.evaluate([a, b]) == (a - b) & 0xFF
        assert engine.find_counterexample(spec, outcome.program) is None

    def test_add_via_three_subs(self, isa, small_library, engine):
        """The paper's HPF motivation example: ADD out of three SUBs."""
        spec = spec_from_instruction("ADD", isa)
        outcome = engine.synthesize(spec, [small_library.by_name("SUB")] * 3)
        assert outcome.succeeded
        assert outcome.program.component_names() == ["SUB", "SUB", "SUB"]

    def test_impossible_multiset_fails(self, isa, small_library, engine):
        spec = spec_from_instruction("SUB", isa)
        outcome = engine.synthesize(
            spec, [small_library.by_name("AND"), small_library.by_name("OR")]
        )
        assert not outcome.succeeded

    def test_self_identity_excluded(self, isa, small_library, engine):
        """A single same-named component must not be wired as the instruction itself."""
        spec = spec_from_instruction("SUB", isa)
        outcome = engine.synthesize(spec, [small_library.by_name("SUB")])
        assert not outcome.succeeded

    def test_immediate_spec_synthesis(self, isa, small_library, engine):
        """XORI synthesized from dynamic-immediate CIC components."""
        spec = spec_from_instruction("XORI", isa)
        multiset = [
            small_library.by_name("ORI.C"),
            small_library.by_name("ANDI.C"),
            small_library.by_name("SUB"),
        ]
        outcome = engine.synthesize(spec, multiset)
        assert outcome.succeeded
        for a, imm in [(0x0F, 0xF0), (0xAA, 0x55), (3, 3)]:
            assert outcome.program.evaluate([a, imm]) == a ^ imm

    def test_stats_populated(self, isa, small_library, engine):
        spec = spec_from_instruction("XOR", isa)
        multiset = [small_library.by_name("OR"), small_library.by_name("AND"),
                    small_library.by_name("SUB")]
        outcome = engine.synthesize(spec, multiset)
        assert outcome.succeeded
        assert outcome.stats.synthesis_queries >= 1
        assert outcome.stats.verification_queries >= 1
        assert outcome.stats.elapsed_seconds > 0


class TestMultisets:
    def test_count_matches_enumeration(self, small_library):
        assert count_multisets(len(small_library), 2) == len(
            enumerate_multisets(small_library, 2)
        )

    def test_paper_blowup_number(self):
        """The paper's example: 29 components, size-6 multisets -> 1,344,904."""
        assert count_multisets(29, 6) == 1344904


class TestPriorityDict:
    def test_priority_prefers_unrelated_components(self, small_library):
        priorities = PriorityDict.initial(small_library)
        sub = small_library.by_name("SUB")
        add = small_library.by_name("ADD")
        with_overlap = priorities.priority([sub, sub, add], "ADD")
        without_overlap = priorities.priority([sub, sub, sub], "ADD")
        assert without_overlap > with_overlap

    def test_reward_and_penalise(self, small_library):
        priorities = PriorityDict.initial(small_library)
        multiset = [small_library.by_name("ADD"), small_library.by_name("SUB")]
        before = priorities.priority(multiset, "XOR")
        priorities.reward(multiset)
        assert priorities.priority(multiset, "XOR") > before
        priorities.penalise(multiset)
        priorities.penalise(multiset)
        assert priorities.priority(multiset, "XOR") < before


class TestAlgorithms:
    def test_hpf_finds_add_quickly_via_name_penalty(self, isa, small_library):
        """The χ penalty pushes ADD-free multisets first, so {SUB,SUB,SUB} is
        tried almost immediately (the paper's own motivating example)."""
        hpf = HpfCegis(
            small_library,
            multiset_size=3,
            target_programs=1,
            cegis_config=CegisConfig(max_iterations=10),
            max_multisets=10,
        )
        run = hpf.synthesize_for(spec_from_instruction("ADD", isa))
        assert run.succeeded
        assert run.multisets_tried <= 5
        best = run.best_program()
        assert "ADD" not in best.component_names()
        for a, b in [(0xAA, 0x55), (1, 1), (255, 255)]:
            assert best.evaluate([a, b]) == (a + b) & 0xFF

    def test_iterative_respects_budget_and_programs_are_sound(self, isa, small_library):
        iterative = IterativeCegis(
            small_library,
            multiset_size=3,
            target_programs=1,
            cegis_config=CegisConfig(max_iterations=10),
            max_multisets=40,
            shuffle_seed=7,
        )
        run = iterative.synthesize_for(spec_from_instruction("ADD", isa))
        assert run.multisets_tried <= 40
        # With a capped budget the baseline may or may not succeed; when it
        # does, the programs must be genuinely equivalent.
        for program in run.programs:
            assert program.evaluate([0xAA, 0x55]) == (0xAA + 0x55) & 0xFF

    def test_hpf_weights_persist_across_instructions(self, isa, small_library):
        hpf = HpfCegis(
            small_library,
            multiset_size=3,
            target_programs=1,
            cegis_config=CegisConfig(max_iterations=10),
            max_multisets=25,
        )
        specs = [spec_from_instruction(n, isa) for n in ("XOR", "OR")]
        hpf.synthesize_all(specs)
        weights = set(hpf.priorities.choice.values()) | set(hpf.priorities.exclusion.values())
        assert weights != {1.0}

    def test_classical_on_tiny_library(self, isa, small_library):
        """Classical CEGIS works when the whole library is tiny."""
        from repro.synth.components import ComponentLibrary

        tiny = ComponentLibrary(
            isa, [small_library.by_name("OR"), small_library.by_name("AND"),
                  small_library.by_name("SUB")]
        )
        classical = ClassicalCegis(tiny, CegisConfig(max_iterations=10))
        run = classical.synthesize_for(spec_from_instruction("XOR", isa))
        assert run.succeeded
        assert run.cegis_calls == 1
