"""Tests for the RV32IM subset: semantics, encoding, assembler, executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblerError, IsaError
from repro.isa.assembler import assemble, assemble_line, format_instruction
from repro.isa.config import IsaConfig
from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.executor import ArchState, execute_instruction, execute_program
from repro.isa.instructions import (
    CANONICAL_ORDER,
    Instruction,
    get_instruction,
    instruction_names,
    result_value,
    symbolic_result,
)
from repro.smt import terms as T
from repro.smt.evaluator import evaluate
from repro.utils.bitops import mask, to_signed


class TestConfig:
    def test_defaults(self):
        cfg = IsaConfig.rv32()
        assert cfg.xlen == 32 and cfg.num_regs == 32 and cfg.imm_width == 12
        assert cfg.shamt_width == 5 and cfg.reg_index_width == 5
        assert cfg.lui_shift == 12

    def test_small(self):
        cfg = IsaConfig.small()
        assert cfg.xlen == 8 and cfg.num_regs == 8
        assert cfg.imm_width == 8 and cfg.lui_shift == 0

    @pytest.mark.parametrize(
        "kwargs", [dict(xlen=2), dict(num_regs=6), dict(imm_width=0), dict(mem_words=3)]
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(IsaError):
            IsaConfig(**{**dict(xlen=8, num_regs=8, imm_width=8, mem_words=4), **kwargs})


class TestCatalog:
    def test_26_instructions(self):
        assert len(instruction_names()) == 26
        assert set(CANONICAL_ORDER) == set(instruction_names())

    def test_unknown_instruction(self):
        with pytest.raises(IsaError):
            get_instruction("BEQ")

    def test_lookup_case_insensitive(self):
        assert get_instruction("add").name == "ADD"

    @pytest.mark.parametrize("name", ["ADD", "SUB", "MULH", "SW", "LW", "LUI", "XORI"])
    def test_operand_flags(self, name):
        defn = get_instruction(name)
        if name == "SW":
            assert defn.is_store and not defn.writes_rd
        if name == "LW":
            assert defn.is_load and defn.writes_rd
        if name == "LUI":
            assert not defn.uses_rs1 and defn.uses_imm


class TestConcreteSemantics:
    cfg = IsaConfig.small()

    def test_add_sub(self):
        assert result_value(self.cfg, Instruction("ADD", 1, 2, 3), 200, 100) == (300 & 0xFF)
        assert result_value(self.cfg, Instruction("SUB", 1, 2, 3), 5, 9) == (5 - 9) & 0xFF

    def test_signed_compares(self):
        assert result_value(self.cfg, Instruction("SLT", 1, 2, 3), 0xFF, 0x01) == 1
        assert result_value(self.cfg, Instruction("SLTU", 1, 2, 3), 0xFF, 0x01) == 0

    def test_shifts(self):
        assert result_value(self.cfg, Instruction("SLL", 1, 2, 3), 0x0F, 2) == 0x3C
        assert result_value(self.cfg, Instruction("SRA", 1, 2, 3), 0x80, 7) == 0xFF
        assert result_value(self.cfg, Instruction("SRL", 1, 2, 3), 0x80, 7) == 0x01

    def test_multiplies(self):
        assert result_value(self.cfg, Instruction("MUL", 1, 2, 3), 0x10, 0x10) == 0x00
        assert result_value(self.cfg, Instruction("MULH", 1, 2, 3), 0xFF, 0xFF) == 0x00
        assert result_value(self.cfg, Instruction("MULHU", 1, 2, 3), 0xFF, 0xFF) == 0xFE

    def test_lui_and_addresses(self):
        assert result_value(self.cfg, Instruction("LUI", 1, imm=0x12), 0, 0) == 0x12
        assert result_value(self.cfg, Instruction("SW", rs1=2, rs2=3, imm=3), 10, 77) == 13

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(CANONICAL_ORDER),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_concrete_matches_symbolic(self, name, a, b, imm):
        """Concrete and symbolic semantics agree on every instruction."""
        cfg = self.cfg
        rs1 = T.bv_var("isa_cc_a", cfg.xlen)
        rs2 = T.bv_var("isa_cc_b", cfg.xlen)
        imm_t = T.bv_var("isa_cc_i", cfg.imm_width)
        concrete = result_value(cfg, Instruction(name, rd=1, rs1=2, rs2=3, imm=imm), a, b)
        symbolic = evaluate(
            symbolic_result(cfg, name, rs1, rs2, imm_t),
            {"isa_cc_a": a, "isa_cc_b": b, "isa_cc_i": imm},
        )
        assert concrete == symbolic

    def test_rv32_sra_sign(self):
        cfg = IsaConfig.rv32()
        value = 0x8000_0000
        assert result_value(cfg, Instruction("SRA", 1, 2, 3), value, 31) == mask(32)
        assert to_signed(result_value(cfg, Instruction("SRAI", 1, 2, imm=4), value, 0), 32) == -(1 << 27)


class TestEncoding:
    @pytest.mark.parametrize("name", CANONICAL_ORDER)
    def test_roundtrip_every_instruction(self, name):
        defn = get_instruction(name)
        instr = Instruction(
            name,
            rd=1 if (defn.writes_rd or defn.is_load) else None,
            rs1=2 if defn.uses_rs1 else None,
            rs2=3 if defn.uses_rs2 else None,
            imm=5 if defn.uses_imm else None,
        )
        decoded = decode_instruction(encode_instruction(instr))
        assert decoded.name == name
        if defn.uses_rs1:
            assert decoded.rs1 == 2
        if defn.uses_rs2:
            assert decoded.rs2 == 3

    def test_known_encoding_add(self):
        # ADD x1, x2, x3 == 0x003100b3 in RV32I
        assert encode_instruction(Instruction("ADD", 1, 2, 3)) == 0x003100B3

    def test_known_encoding_xori(self):
        # XORI x1, x2, -1 (0xfff) == 0xfff14093
        assert encode_instruction(Instruction("XORI", 1, 2, imm=0xFFF)) == 0xFFF14093

    def test_decode_unknown_word(self):
        with pytest.raises(IsaError):
            decode_instruction(0xFFFFFFFF)

    def test_register_field_range_checked(self):
        with pytest.raises(IsaError):
            encode_instruction(Instruction("ADD", 32, 0, 0))


class TestAssembler:
    def test_roundtrip(self):
        program = assemble(
            """
            # paper Listing 1
            SUB x1, x2, x3
            XORI x4, x2, 0xfff
            ADD x5, x4, x3
            XORI x1, x5, 0xfff
            SW x2, 1(x3)
            LW x6, 0(x3)
            LUI x7, 0x12
            """
        )
        assert len(program) == 7
        for instr in program:
            again = assemble_line(format_instruction(instr))
            assert again == instr

    def test_blank_and_comment_lines(self):
        assert assemble("\n# nothing\n\n") == []

    @pytest.mark.parametrize(
        "text", ["ADD x1, x2", "FOO x1, x2, x3", "ADD y1, x2, x3", "SW x1, x2", "XORI x1, x2, zz"]
    )
    def test_malformed_rejected(self, text):
        with pytest.raises((AssemblerError, IsaError)):
            assemble_line(text)


class TestExecutor:
    def test_basic_dataflow(self, small_isa):
        state = ArchState(small_isa)
        state.write_reg(2, 10)
        state.write_reg(3, 250)
        execute_program(
            state,
            assemble("ADD x1, x2, x3\nSUB x4, x2, x3\nSW x2, 1(x3)\nLW x5, 1(x3)"),
        )
        assert state.read_reg(1) == (10 + 250) % 256
        assert state.read_reg(4) == (10 - 250) % 256
        assert state.read_reg(5) == 10
        assert state.executed == 4

    def test_x0_is_hardwired_zero(self, small_isa):
        state = ArchState(small_isa)
        state.write_reg(0, 99)
        assert state.read_reg(0) == 0
        execute_instruction(state, Instruction("ADDI", rd=0, rs1=0, imm=5))
        assert state.read_reg(0) == 0

    def test_memory_wraps_modulo(self, small_isa):
        state = ArchState(small_isa)
        state.write_mem(small_isa.mem_words + 1, 7)
        assert state.read_mem(1) == 7

    def test_register_index_checked(self, small_isa):
        state = ArchState(small_isa)
        with pytest.raises(IsaError):
            state.read_reg(small_isa.num_regs)

    def test_equivalent_program_listing1(self, small_isa):
        """The paper's Listing 1: SUB == XORI; ADD; XORI on real state."""
        state = ArchState(small_isa)
        state.write_reg(2, 0x37)
        state.write_reg(3, 0x59)
        direct = state.copy()
        execute_instruction(direct, Instruction("SUB", rd=1, rs1=2, rs2=3))
        execute_program(
            state,
            assemble("XORI x4, x2, 0xff\nADD x5, x4, x3\nXORI x1, x5, 0xff"),
        )
        assert state.read_reg(1) == direct.read_reg(1)


class TestEdgeSemantics:
    """Corner semantics the pipeline model leans on: shift-amount masking,
    high-half multiplies, and immediate sign extension.  Each case checks
    the concrete executor against the symbolic encoding evaluated on the
    same operands, so the two semantics cannot drift apart silently."""

    @pytest.fixture(scope="class")
    def narrow_imm(self):
        # imm_width < xlen: sign extension of immediates is *not* the
        # identity here, unlike IsaConfig.small().
        return IsaConfig(xlen=8, num_regs=8, imm_width=4, mem_words=4)

    def _cross_check(self, cfg, name, rs1, rs2, imm=0):
        instr = Instruction(name, rd=1, rs1=2, rs2=3, imm=imm)
        concrete = result_value(cfg, instr, rs1, rs2)
        sym = symbolic_result(
            cfg,
            name,
            T.bv_const(rs1, cfg.xlen),
            T.bv_const(rs2, cfg.xlen),
            T.bv_const(imm, cfg.imm_width),
        )
        assert evaluate(sym, {}) == concrete
        return concrete

    @pytest.mark.parametrize("name", ["SLL", "SRL", "SRA"])
    @pytest.mark.parametrize("amount", [0, 1, 7, 8, 9, 15, 255])
    def test_shift_amount_masked_modulo_xlen(self, small_isa, name, amount):
        # Only the low log2(xlen) bits of rs2 participate: shifting by
        # xlen+k behaves exactly like shifting by k.
        value = 0b1011_0110
        got = self._cross_check(small_isa, name, value, amount)
        want = self._cross_check(small_isa, name, value, amount % small_isa.xlen)
        assert got == want

    def test_sra_fills_with_sign_bit(self, small_isa):
        assert self._cross_check(small_isa, "SRA", 0x80, 3) == 0xF0
        assert self._cross_check(small_isa, "SRA", 0x40, 3) == 0x08

    @pytest.mark.parametrize(
        "a,b",
        [(0, 0), (255, 255), (200, 200), (1, 255), (128, 2), (17, 19)],
    )
    def test_mulhu_returns_upper_half_unsigned(self, small_isa, a, b):
        assert self._cross_check(small_isa, "MULHU", a, b) == (a * b) >> 8

    def test_mulh_vs_mulhu_disagree_on_negative_operands(self, small_isa):
        # 0xFF is -1 signed: MULH sees -1 * 2 = -2 (upper half 0xFF),
        # MULHU sees 255 * 2 = 510 (upper half 1).
        assert self._cross_check(small_isa, "MULH", 0xFF, 2) == 0xFF
        assert self._cross_check(small_isa, "MULHU", 0xFF, 2) == 0x01

    @pytest.mark.parametrize("name", ["ADDI", "SLTI"])
    def test_itype_immediate_sign_extends(self, narrow_imm, name):
        # imm=0b1111 in a 4-bit field is -1 after sign extension.
        if name == "ADDI":
            assert self._cross_check(narrow_imm, name, 10, 0, imm=0b1111) == 9
        else:
            # rs1 = -3 signed (0xFD) < -1, so SLTI yields 1.
            assert self._cross_check(narrow_imm, name, 0xFD, 0, imm=0b1111) == 1
            assert self._cross_check(narrow_imm, name, 5, 0, imm=0b1111) == 0

    def test_logical_itype_immediates_also_sign_extend(self, narrow_imm):
        # RISC-V sign-extends *all* I-type immediates, including the
        # logical ones: ANDI with imm=-1 is the identity on rs1.
        assert self._cross_check(narrow_imm, "ANDI", 0xA5, 0, imm=0b1111) == 0xA5
        assert self._cross_check(narrow_imm, "ORI", 0xA5, 0, imm=0b1111) == 0xFF
        assert self._cross_check(narrow_imm, "XORI", 0xA5, 0, imm=0b1111) == 0x5A

    def test_shift_immediate_uses_shamt_not_sext(self, narrow_imm):
        # SLLI's shift amount comes from the raw shamt field, never from a
        # sign-extended immediate: imm=0b1111 shifts by 15 & 7 = 7.
        assert self._cross_check(narrow_imm, "SLLI", 1, 0, imm=0b1111) == 0x80

    @pytest.mark.parametrize("name", ["LW", "SW"])
    def test_memory_address_offset_sign_extends(self, narrow_imm, name):
        # The effective address is rs1 + sext(imm): imm=-1 addresses one
        # word *below* the base, not fifteen above it.
        assert self._cross_check(narrow_imm, name, 5, 9, imm=0b1111) == 4
        assert self._cross_check(narrow_imm, name, 5, 9, imm=0b0111) == 12
