"""Tests for the CNF container and both CDCL SAT solver kernels.

Every solver-contract test runs against the per-object reference
:class:`SatSolver` *and* the flat clause-arena :class:`ArenaSolver` — the
two must be behaviourally indistinguishable (verdicts, cores, budget and
reuse semantics), which the differential fuzz suite at the bottom checks
head-to-head on randomized instances.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat.arena import ArenaSolver
from repro.sat.cnf import CNF, parse_dimacs, to_dimacs
from repro.sat.solver import SatSolver, solve_cnf

#: Both kernels must pass every contract test.
KERNELS = [SatSolver, ArenaSolver]
KERNEL_IDS = ["reference", "arena"]

pytestmark_kernels = pytest.mark.parametrize("solver_cls", KERNELS, ids=KERNEL_IDS)


class TestCnf:
    def test_add_clause_tracks_variables(self):
        cnf = CNF()
        cnf.add_clause([1, -3])
        assert cnf.num_vars == 3
        assert len(cnf) == 1

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(SatError):
            cnf.add_clause([1, 0])

    def test_new_var(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_dimacs_roundtrip(self):
        cnf = CNF([[1, 2], [-1, 3], [-2, -3]])
        text = to_dimacs(cnf)
        parsed = parse_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert list(parsed) == list(cnf)

    def test_parse_dimacs_with_comments(self):
        parsed = parse_dimacs("c a comment\np cnf 3 2\n1 2 0\n-3 0\n")
        assert parsed.num_vars == 3
        assert len(parsed) == 2

    def test_parse_dimacs_unterminated_clause(self):
        with pytest.raises(SatError):
            parse_dimacs("1 2")

    def test_copy_is_independent(self):
        cnf = CNF([[1, 2]])
        dup = cnf.copy()
        dup.add_clause([3])
        assert len(cnf) == 1
        assert len(dup) == 2


@pytestmark_kernels
class TestSolverBasics:
    def test_empty_formula_is_sat(self, solver_cls):
        assert solver_cls().solve().satisfiable is True

    def test_unit_clauses(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1])
        solver.add_clause([-2])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(1) is True
        assert result.value(2) is False

    def test_trivial_unsat(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().satisfiable is False

    def test_simple_implication_chain(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(3) is True

    def test_model_satisfies_all_clauses(self, solver_cls):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        result = solver_cls(CNF(clauses)).solve()
        assert result.satisfiable
        for clause in clauses:
            assert any(result.value(abs(l)) == (l > 0) for l in clause)

    def test_pigeonhole_3_into_2_unsat(self, solver_cls):
        assert solver_cls(CNF(_pigeonhole_clauses(3, 2))).solve().satisfiable is False

    def test_assumptions_sat_and_unsat(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).satisfiable is True
        assert solver.solve(assumptions=[-1, -2]).satisfiable is False
        # The solver is reusable after assumption-based calls.
        assert solver.solve().satisfiable is True

    def test_conflict_budget_returns_unknown(self, solver_cls):
        # A hard pigeonhole instance with a tiny budget must return None.
        result = solver_cls(CNF(_pigeonhole_clauses(6, 5))).solve(conflict_budget=5)
        assert result.satisfiable is None

    def test_duplicate_literals_and_tautologies(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1, 1, 2])
        solver.add_clause([3, -3])  # tautology, silently dropped
        assert solver.solve().satisfiable is True

    def test_conflict_budget_is_per_call(self, solver_cls):
        # Regression: the budget used to be compared against the lifetime
        # conflict counter, so on a reused instance a later budgeted call
        # started with its budget already (partially) spent.
        solver = solver_cls(CNF(_pigeonhole_clauses(5, 4)))
        first = solver.solve(conflict_budget=5)
        assert first.satisfiable is None
        assert solver.stats.conflicts == 5
        second = solver.solve(conflict_budget=5)
        assert second.satisfiable is None
        # Both calls did real work: the budget was not pre-exhausted.
        assert solver.stats.conflicts == 10
        # And without a budget the instance still decides the query.
        assert solver.solve().satisfiable is False

    def test_result_stats_are_detached_snapshots(self, solver_cls):
        # Regression: solve() used to hand out the live ``self.stats``
        # object, so a stored result's counters silently mutated on later
        # calls against the same instance.
        solver = solver_cls(CNF(_pigeonhole_clauses(5, 4)))
        first = solver.solve(conflict_budget=5)
        snapshot = first.stats.conflicts
        assert snapshot == 5
        solver.solve()  # burns many more conflicts on the same instance
        assert solver.stats.conflicts > snapshot
        assert first.stats.conflicts == snapshot

    def test_need_model_false_returns_no_model(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1, 2])
        result = solver.solve(need_model=False)
        assert result.satisfiable is True
        assert result.model == {}


def _pigeonhole_clauses(pigeons: int, holes: int) -> list[list[int]]:
    def var(p, h):
        return 1 + p * holes + h

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                clauses.append([-var(i, h), -var(j, h)])
    return clauses


@pytestmark_kernels
class TestFailedAssumptionCores:
    def test_core_is_subset_and_still_unsat(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([-1, 3])
        solver.add_clause([-2, 4])
        result = solver.solve(assumptions=[1, 2, -3])
        assert result.satisfiable is False
        assert result.core is not None and result.core
        assert set(result.core) <= {1, 2, -3}
        # The irrelevant assumption never belongs to the core.
        assert 2 not in result.core
        # Re-solving under only the core stays UNSAT.
        assert solver.solve(assumptions=result.core).satisfiable is False

    def test_core_on_nontrivial_search(self, solver_cls):
        solver = solver_cls(CNF(_pigeonhole_clauses(3, 3)))
        assert solver.solve().satisfiable is True
        result = solver.solve(assumptions=[2, 5])  # pigeon 0 and 1 in hole 1
        assert result.satisfiable is False
        assert result.core and set(result.core) <= {2, 5}
        assert solver.solve(assumptions=result.core).satisfiable is False
        # The instance stays healthy for later queries.
        assert solver.solve().satisfiable is True

    def test_empty_core_iff_root_unsat(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve(assumptions=[2])
        assert result.satisfiable is False
        assert result.core == []

    def test_contradictory_assumptions(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[3, -3])
        assert result.satisfiable is False
        assert set(result.core) == {3, -3}

    def test_assumption_unsat_does_not_poison(self, solver_cls):
        solver = solver_cls()
        solver.add_clause([1, 2])
        solver.add_clause([-3, -1])
        assert solver.solve(assumptions=[3, 1]).satisfiable is False
        # The same instance keeps answering (this used to require nothing —
        # but a root-level conflict must still latch, see below).
        assert solver.solve(assumptions=[3]).satisfiable is True
        assert solver.solve().satisfiable is True

    def test_in_search_root_conflict_latches_unsat(self, solver_cls):
        # UNSAT discovered *during* search (not by pre-search propagation)
        # must poison the instance: every later call answers False with an
        # empty core without re-searching.
        solver = solver_cls(CNF(_pigeonhole_clauses(4, 3)))
        result = solver.solve()
        assert result.satisfiable is False
        assert result.core == []
        assert solver.stats.conflicts > 0
        conflicts_before = solver.stats.conflicts
        again = solver.solve(assumptions=[1])
        assert again.satisfiable is False
        assert again.core == []
        assert solver.stats.conflicts == conflicts_before  # no re-search

    def test_assumptions_reserve_variables(self, solver_cls):
        # Assuming a literal over a never-seen variable must not crash.
        solver = solver_cls()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[7])
        assert result.satisfiable is True
        assert result.value(7) is True

    @pytest.mark.parametrize("seed", range(8))
    def test_random_cores_shrink_and_hold(self, solver_cls, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 9)
        clauses = _random_cnf(rng, num_vars, rng.randint(5, 30))
        solver = solver_cls(CNF(clauses, num_vars=num_vars))
        assumptions = []
        for v in range(1, num_vars + 1):
            if rng.random() < 0.6:
                assumptions.append(v if rng.random() < 0.5 else -v)
        result = solver.solve(assumptions=assumptions)
        if result.satisfiable is not False:
            return
        assert result.core is not None
        assert set(result.core) <= set(assumptions)
        # The core alone must keep the instance UNSAT...
        assert solver.solve(assumptions=result.core).satisfiable is False
        # ...and an empty core must mean root UNSAT.
        if not result.core:
            assert solver.solve().satisfiable is False


def _random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> list[list[int]]:
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clause = []
        for _ in range(width):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        clauses.append(clause)
    return clauses


def _brute_force_sat(clauses: list[list[int]], num_vars: int) -> bool:
    for assignment in range(1 << num_vars):
        values = {v: bool((assignment >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(any(values[abs(l)] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


def _model_satisfies(result, clauses: list[list[int]]) -> bool:
    return all(
        any(result.value(abs(l)) == (l > 0) for l in clause) for clause in clauses
    )


@pytestmark_kernels
class TestSolverAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_small_instances(self, solver_cls, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        clauses = _random_cnf(rng, num_vars, rng.randint(3, 25))
        expected = _brute_force_sat(clauses, num_vars)
        result = solver_cls(CNF(clauses, num_vars=num_vars)).solve()
        assert result.satisfiable is expected
        if expected:
            assert _model_satisfies(result, clauses)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_instances_hypothesis(self, solver_cls, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 7)
        clauses = _random_cnf(rng, num_vars, rng.randint(2, 20))
        expected = _brute_force_sat(clauses, num_vars)
        result = solver_cls(CNF(clauses, num_vars=num_vars)).solve()
        assert bool(result) is expected


def test_solve_cnf_uses_default_kernel():
    # The convenience helper stays on the reference solver's module but must
    # agree with both kernels on a decided instance.
    assert solve_cnf(CNF([[1, 2], [-1], [-2]])).satisfiable is False


class TestDifferentialFuzz:
    """Arena vs reference, head-to-head on randomized incremental workloads.

    Search paths legitimately diverge between the kernels (different
    tie-breaks in clause-DB reduction and restarts), so the comparison is
    semantic, never trace-level: identical verdicts on decided queries,
    model validity on SAT, core validity (subset + still-UNSAT, checked on
    *both* kernels) on UNSAT, and continued agreement after an
    assumption-UNSAT answer on the same instances.
    """

    @pytest.mark.parametrize("seed", range(25))
    def test_incremental_assumption_queries_agree(self, seed):
        rng = random.Random(0xA5A5 + seed)
        num_vars = rng.randint(5, 12)
        reference = SatSolver()
        arena = ArenaSolver()
        reference.reserve(num_vars)
        arena.reserve(num_vars)
        clauses: list[list[int]] = []
        for round_no in range(4):
            # Grow both instances with the same fresh random clauses.
            for clause in _random_cnf(rng, num_vars, rng.randint(3, 12)):
                clauses.append(clause)
                reference.add_clause(clause)
                arena.add_clause(clause)
            assumptions = []
            for v in range(1, num_vars + 1):
                if rng.random() < 0.4:
                    assumptions.append(v if rng.random() < 0.5 else -v)
            r = reference.solve(assumptions=assumptions)
            a = arena.solve(assumptions=assumptions)
            assert r.satisfiable is a.satisfiable, (
                f"verdict divergence (round {round_no}, assumptions "
                f"{assumptions}): reference={r.satisfiable} arena={a.satisfiable}"
            )
            if a.satisfiable:
                assert _model_satisfies(a, clauses)
                assert _model_satisfies(r, clauses)
                for lit in assumptions:
                    assert a.value(abs(lit)) is (lit > 0)
            elif a.satisfiable is False:
                for result in (r, a):
                    assert result.core is not None
                    assert set(result.core) <= set(assumptions)
                # Each kernel's core must keep the *other* kernel UNSAT too.
                assert reference.solve(assumptions=a.core).satisfiable is False
                assert arena.solve(assumptions=r.core).satisfiable is False
                # Empty core <=> root UNSAT, and the kernels agree on it.
                assert (not r.core) == (not a.core)
                if not a.core:
                    assert arena.solve().satisfiable is False
                    assert reference.solve().satisfiable is False
                    return  # both latched root-UNSAT; nothing left to grow
            # Both instances must remain usable for the next round.

    @pytest.mark.parametrize("seed", range(10))
    def test_budgeted_queries_agree_when_decided(self, seed):
        # Under a conflict budget the kernels may disagree on *whether* they
        # decided (search paths diverge), but never on a decided verdict —
        # re-checked budget-free whenever one side answered None.
        rng = random.Random(0xB0B0 + seed)
        num_vars = rng.randint(8, 14)
        clauses = _random_cnf(rng, num_vars, rng.randint(30, 60))
        reference = SatSolver(CNF(clauses, num_vars=num_vars))
        arena = ArenaSolver(CNF(clauses, num_vars=num_vars))
        budget = rng.randint(1, 20)
        r = reference.solve(conflict_budget=budget)
        a = arena.solve(conflict_budget=budget)
        if r.satisfiable is not None and a.satisfiable is not None:
            assert r.satisfiable is a.satisfiable
        # An exhausted budget never corrupts state: the budget-free
        # re-query on the same instances must agree.
        assert reference.solve().satisfiable is arena.solve().satisfiable

    #: Every combination of the conflict-quality knobs (LBD-tiered
    #: retention, phase saving, recursive minimisation).
    KNOB_MATRIX = [
        (lbd, phase, minim)
        for lbd in (False, True)
        for phase in (False, True)
        for minim in (False, True)
    ]

    @pytest.mark.parametrize(
        "lbd_tiers,phase_saving,minimize",
        KNOB_MATRIX,
        ids=lambda v: "on" if v is True else ("off" if v is False else str(v)),
    )
    def test_conflict_quality_knobs_agree_with_reference(
        self, lbd_tiers, phase_saving, minimize
    ):
        # The conflict-quality heuristics change *which* clauses are kept,
        # *how* they are shrunk and *where* the search branches — but never
        # a verdict, a model's validity, or a core's validity.  Every knob
        # combination, on both kernels, is cross-validated against the
        # all-knobs-off reference kernel on incremental assumption
        # workloads.
        knobs = dict(
            lbd_tiers=lbd_tiers, phase_saving=phase_saving, minimize=minimize
        )
        for seed in range(4):
            rng = random.Random(0xC0DE + seed)
            num_vars = rng.randint(5, 12)
            baseline = SatSolver(
                lbd_tiers=False, phase_saving=False, minimize=False
            )
            knobbed = [SatSolver(**knobs), ArenaSolver(**knobs)]
            for solver in (baseline, *knobbed):
                solver.reserve(num_vars)
            clauses: list[list[int]] = []
            root_unsat = False
            for _ in range(3):
                if root_unsat:
                    break
                for clause in _random_cnf(rng, num_vars, rng.randint(3, 12)):
                    clauses.append(clause)
                    for solver in (baseline, *knobbed):
                        solver.add_clause(clause)
                assumptions = [
                    v if rng.random() < 0.5 else -v
                    for v in range(1, num_vars + 1)
                    if rng.random() < 0.4
                ]
                expected = baseline.solve(assumptions=assumptions)
                for solver in knobbed:
                    got = solver.solve(assumptions=assumptions)
                    assert got.satisfiable is expected.satisfiable, (
                        f"verdict divergence under knobs {knobs} (seed "
                        f"{seed}): {got.satisfiable} vs {expected.satisfiable}"
                    )
                    if got.satisfiable:
                        assert _model_satisfies(got, clauses)
                        for lit in assumptions:
                            assert got.value(abs(lit)) is (lit > 0)
                    elif got.satisfiable is False:
                        assert got.core is not None
                        assert set(got.core) <= set(assumptions)
                        # The knobbed core must hold on the baseline too.
                        assert baseline.solve(assumptions=got.core).satisfiable is False
                        if not got.core:
                            root_unsat = True

    @pytestmark_kernels
    def test_conflict_quality_stats_accumulate(self, solver_cls):
        # A search hard enough to learn clauses must book LBD mass, and —
        # with the knobs on — minimised literals; with them off the new
        # counters stay untouched so A/B campaign reports are attributable.
        clauses = _pigeonhole_clauses(5, 4)
        on = solver_cls()
        for clause in clauses:
            on.add_clause(clause)
        assert on.solve().satisfiable is False
        assert on.stats.lbd_sum > 0
        assert on.stats.minimized_literals >= 0
        off = solver_cls(lbd_tiers=False, phase_saving=False, minimize=False)
        for clause in clauses:
            off.add_clause(clause)
        assert off.solve().satisfiable is False
        assert off.stats.minimized_literals == 0
        assert off.stats.saved_phase_hits == 0

    @pytest.mark.parametrize("pigeons,holes", [(4, 3), (5, 4)])
    def test_pigeonhole_unsat_and_latching_agree(self, pigeons, holes):
        clauses = _pigeonhole_clauses(pigeons, holes)
        reference = SatSolver(CNF(clauses))
        arena = ArenaSolver(CNF(clauses))
        assert reference.solve().satisfiable is False
        assert arena.solve().satisfiable is False
        # Both latch root-UNSAT: immediate empty-core answers afterwards.
        for solver in (reference, arena):
            again = solver.solve(assumptions=[1])
            assert again.satisfiable is False
            assert again.core == []


class TestSanitizers:
    """The REPRO_SANITIZE invariant layer: silent when the kernels are
    healthy, loud when their data structures are corrupted.

    The fuzz tests re-run randomized incremental workloads with the
    sanitizers enabled — any false fire surfaces as SanitizerError, any
    behavioural drift as a verdict mismatch against the plain kernels.
    The injected-corruption tests then prove each sanitizer class fires:
    a check that never trips would be indistinguishable from a no-op.
    """

    @pytestmark_kernels
    @pytest.mark.parametrize("seed", range(6))
    def test_sanitized_runs_match_plain_runs(self, solver_cls, seed):
        rng = random.Random(0x5A11 + seed)
        num_vars = rng.randint(5, 10)
        plain = solver_cls(sanitize=False)
        checked = solver_cls(sanitize=True)
        plain.reserve(num_vars)
        checked.reserve(num_vars)
        clauses: list[list[int]] = []
        for _ in range(3):
            for clause in _random_cnf(rng, num_vars, rng.randint(3, 12)):
                clauses.append(clause)
                plain.add_clause(clause)
                checked.add_clause(clause)
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in range(1, num_vars + 1)
                if rng.random() < 0.4
            ]
            p = plain.solve(assumptions=assumptions)
            c = checked.solve(assumptions=assumptions)
            assert p.satisfiable is c.satisfiable
            if c.satisfiable:
                assert _model_satisfies(c, clauses)
            elif c.satisfiable is False and not c.core:
                return  # root-UNSAT latched on both

    @pytestmark_kernels
    def test_sanitized_reduction_and_restarts(self, solver_cls):
        # Force the database-reduction path (normally 2000 learned clauses
        # away) so the post-compaction checks run, with frequent restarts.
        rng = random.Random(0xBEEF)
        clauses = _random_cnf(rng, 14, 70) + _pigeonhole_clauses(4, 3)
        solver = solver_cls(restart_interval=2, sanitize=True)
        solver._learned_limit = 10
        num_vars = max(abs(l) for cl in clauses for l in cl)
        solver.reserve(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().satisfiable is False

    def test_env_variable_sets_process_default(self, monkeypatch):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import default_sanitize

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert SatSolver()._sanitize is True
        assert ArenaSolver()._sanitize is True
        # An explicit argument always beats the environment.
        assert SatSolver(sanitize=False)._sanitize is False
        monkeypatch.setenv("REPRO_SANITIZE", "off")
        assert ArenaSolver()._sanitize is False
        monkeypatch.delenv("REPRO_SANITIZE")
        assert SatSolver()._sanitize is False
        monkeypatch.setenv("REPRO_SANITIZE", "maybe")
        with pytest.raises(SanitizerError, match="REPRO_SANITIZE"):
            default_sanitize()

    # ------------------------- injected corruption: reference kernel ----

    def test_reference_watch_corruption_fires(self):
        from repro.errors import SanitizerError

        solver = SatSolver(CNF([[1, 2], [-1, 2]]), sanitize=True)
        # Detach one watcher entry behind the solver's back.
        for watch_list in solver._watches:
            if watch_list:
                watch_list.pop()
                break
        with pytest.raises(SanitizerError, match=r"\[watches\]"):
            solver.solve()

    def test_reference_model_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.solver import _Clause

        solver = SatSolver(CNF([[1, 2]]), sanitize=True)
        # A clause the watch machinery never sees: the final full-model
        # scan is the only check that can catch it being falsified.
        solver._clauses.append(_Clause([-1, -2]))
        with pytest.raises(SanitizerError, match=r"\[model\]"):
            solver.solve(assumptions=[1, 2])

    def test_reference_learned_corruption_fires(self):
        # A minimisation bug that drops a load-bearing literal would leave
        # the "learned" clause satisfiable under the conflicting assignment
        # — the post-analysis check must catch exactly that shape.
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_reference_learned

        solver = SatSolver(CNF([[1, 2]], num_vars=2), sanitize=True)
        solver._assign[1] = 1  # var 1 true: a clause holding +1 is satisfied
        solver._level[1] = 0
        with pytest.raises(SanitizerError, match=r"\[learned\]"):
            check_reference_learned(solver, [1, -2])
        solver._assign[1] = -1
        solver._assign[2] = 0  # unassigned literal in a "learned" clause
        with pytest.raises(SanitizerError, match=r"\[learned\]"):
            check_reference_learned(solver, [1, -2])

    def test_reference_trail_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_reference_trail

        solver = SatSolver(CNF([[1, 2]], num_vars=3), sanitize=True)
        solver._trail.append(3)  # variable 3 was never assigned
        with pytest.raises(SanitizerError, match=r"\[trail\]"):
            check_reference_trail(solver)

    def test_reference_reason_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_reference_reasons
        from repro.sat.solver import _Clause

        solver = SatSolver(CNF([[1, 2]]), sanitize=True)
        solver._assign[1] = 1
        solver._trail.append(1)
        solver._reason[1] = _Clause([2, 1])  # implied literal not first
        with pytest.raises(SanitizerError, match=r"\[reasons\]"):
            check_reference_reasons(solver)

    # ----------------------------- injected corruption: arena kernel ----

    def test_arena_watch_corruption_fires(self):
        from repro.errors import SanitizerError

        solver = ArenaSolver(CNF([[1, 2], [-1, 2]]), sanitize=True)
        for watch_list in solver._watches:
            if watch_list:
                del watch_list[-2:]  # drop one [blocker, ref] pair
                break
        with pytest.raises(SanitizerError, match=r"\[watches\]"):
            solver.solve()

    def test_arena_record_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_arena_integrity

        solver = ArenaSolver(CNF([[1, 2], [-1, 2]]), sanitize=True)
        ref = solver._clause_refs[0]
        solver._arena[ref - 2] = 1  # size header below the 2-literal floor
        with pytest.raises(SanitizerError, match=r"\[arena\]"):
            check_arena_integrity(solver)

    def test_arena_model_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_arena_model

        solver = ArenaSolver(CNF([[1, 2]]), sanitize=True)
        # Hand-falsify the only clause: var1 = var2 = false.
        solver._values[2], solver._values[3] = -1, 1
        solver._values[4], solver._values[5] = -1, 1
        with pytest.raises(SanitizerError, match=r"\[model\]"):
            check_arena_model(solver)

    def test_arena_learned_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_arena_learned

        solver = ArenaSolver(CNF([[1, 2]], num_vars=2), sanitize=True)
        # Encoded literal 2 (= +var1) true: the clause is not conflicting.
        solver._values[2], solver._values[3] = 1, -1
        solver._level[1] = 0
        with pytest.raises(SanitizerError, match=r"\[learned\]"):
            check_arena_learned(solver, [2, 5])

    def test_arena_trail_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_arena_trail

        solver = ArenaSolver(CNF([[1, 2]], num_vars=2), sanitize=True)
        solver._trail.append(2 * 2)  # encoded var-2 literal, never assigned
        with pytest.raises(SanitizerError, match=r"\[trail\]"):
            check_arena_trail(solver)

    def test_arena_reason_corruption_fires(self):
        from repro.errors import SanitizerError
        from repro.sat.sanitize import check_arena_reasons

        solver = ArenaSolver(CNF([[1, 2], [-1, 2]]), sanitize=True)
        assert solver.solve().satisfiable is True
        # Point var 1's reason at a clause that does not imply it.
        solver._values[2], solver._values[3] = 1, -1
        solver._trail[:] = [2]
        solver._reason[1] = solver._clause_refs[1]
        with pytest.raises(SanitizerError, match=r"\[reasons\]"):
            check_arena_reasons(solver)
