"""Tests for the CNF container and the CDCL SAT solver."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat.cnf import CNF, parse_dimacs, to_dimacs
from repro.sat.solver import SatSolver, solve_cnf


class TestCnf:
    def test_add_clause_tracks_variables(self):
        cnf = CNF()
        cnf.add_clause([1, -3])
        assert cnf.num_vars == 3
        assert len(cnf) == 1

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(SatError):
            cnf.add_clause([1, 0])

    def test_new_var(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_dimacs_roundtrip(self):
        cnf = CNF([[1, 2], [-1, 3], [-2, -3]])
        text = to_dimacs(cnf)
        parsed = parse_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert list(parsed) == list(cnf)

    def test_parse_dimacs_with_comments(self):
        parsed = parse_dimacs("c a comment\np cnf 3 2\n1 2 0\n-3 0\n")
        assert parsed.num_vars == 3
        assert len(parsed) == 2

    def test_parse_dimacs_unterminated_clause(self):
        with pytest.raises(SatError):
            parse_dimacs("1 2")

    def test_copy_is_independent(self):
        cnf = CNF([[1, 2]])
        dup = cnf.copy()
        dup.add_clause([3])
        assert len(cnf) == 1
        assert len(dup) == 2


class TestSolverBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve().satisfiable is True

    def test_unit_clauses(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-2])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(1) is True
        assert result.value(2) is False

    def test_trivial_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().satisfiable is False

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(3) is True

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        result = solve_cnf(CNF(clauses))
        assert result.satisfiable
        for clause in clauses:
            assert any(result.value(abs(l)) == (l > 0) for l in clause)

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: variable p_{i,h} = 1 + 2*i + h
        clauses = []
        for pigeon in range(3):
            clauses.append([1 + 2 * pigeon, 2 + 2 * pigeon])
        for hole in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    clauses.append([-(1 + 2 * i + hole), -(1 + 2 * j + hole)])
        assert solve_cnf(CNF(clauses)).satisfiable is False

    def test_assumptions_sat_and_unsat(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).satisfiable is True
        assert solver.solve(assumptions=[-1, -2]).satisfiable is False
        # The solver is reusable after assumption-based calls.
        assert solver.solve().satisfiable is True

    def test_conflict_budget_returns_unknown(self):
        # A hard pigeonhole instance with a tiny budget must return None.
        holes, pigeons = 5, 6
        clauses = []
        def var(p, h):
            return 1 + p * holes + h
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    clauses.append([-var(i, h), -var(j, h)])
        result = SatSolver(CNF(clauses)).solve(conflict_budget=5)
        assert result.satisfiable is None

    def test_duplicate_literals_and_tautologies(self):
        solver = SatSolver()
        solver.add_clause([1, 1, 2])
        solver.add_clause([3, -3])  # tautology, silently dropped
        assert solver.solve().satisfiable is True

    def test_conflict_budget_is_per_call(self):
        # Regression: the budget used to be compared against the lifetime
        # conflict counter, so on a reused instance a later budgeted call
        # started with its budget already (partially) spent.
        solver = SatSolver(CNF(_pigeonhole_clauses(5, 4)))
        first = solver.solve(conflict_budget=5)
        assert first.satisfiable is None
        assert solver.stats.conflicts == 5
        second = solver.solve(conflict_budget=5)
        assert second.satisfiable is None
        # Both calls did real work: the budget was not pre-exhausted.
        assert solver.stats.conflicts == 10
        # And without a budget the instance still decides the query.
        assert solver.solve().satisfiable is False


def _pigeonhole_clauses(pigeons: int, holes: int) -> list[list[int]]:
    def var(p, h):
        return 1 + p * holes + h

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                clauses.append([-var(i, h), -var(j, h)])
    return clauses


class TestFailedAssumptionCores:
    def test_core_is_subset_and_still_unsat(self):
        solver = SatSolver()
        solver.add_clause([-1, 3])
        solver.add_clause([-2, 4])
        result = solver.solve(assumptions=[1, 2, -3])
        assert result.satisfiable is False
        assert result.core is not None and result.core
        assert set(result.core) <= {1, 2, -3}
        # The irrelevant assumption never belongs to the core.
        assert 2 not in result.core
        # Re-solving under only the core stays UNSAT.
        assert solver.solve(assumptions=result.core).satisfiable is False

    def test_core_on_nontrivial_search(self):
        # UNSAT only through real conflict-driven search (pigeonhole under
        # the assumption that two pigeons share a hole is still UNSAT after
        # removing the assumptions' pigeons? no — the base instance is SAT).
        solver = SatSolver(CNF(_pigeonhole_clauses(3, 3)))
        assert solver.solve().satisfiable is True
        result = solver.solve(assumptions=[2, 5])  # pigeon 0 and 1 in hole 1
        assert result.satisfiable is False
        assert result.core and set(result.core) <= {2, 5}
        assert solver.solve(assumptions=result.core).satisfiable is False
        # The instance stays healthy for later queries.
        assert solver.solve().satisfiable is True

    def test_empty_core_iff_root_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve(assumptions=[2])
        assert result.satisfiable is False
        assert result.core == []

    def test_contradictory_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[3, -3])
        assert result.satisfiable is False
        assert set(result.core) == {3, -3}

    def test_assumption_unsat_does_not_poison(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-3, -1])
        assert solver.solve(assumptions=[3, 1]).satisfiable is False
        # The same instance keeps answering (this used to require nothing —
        # but a root-level conflict must still latch, see below).
        assert solver.solve(assumptions=[3]).satisfiable is True
        assert solver.solve().satisfiable is True

    def test_in_search_root_conflict_latches_unsat(self):
        # UNSAT discovered *during* search (not by pre-search propagation)
        # must poison the instance: every later call answers False with an
        # empty core without re-searching.
        solver = SatSolver(CNF(_pigeonhole_clauses(4, 3)))
        result = solver.solve()
        assert result.satisfiable is False
        assert result.core == []
        assert solver.stats.conflicts > 0
        conflicts_before = solver.stats.conflicts
        again = solver.solve(assumptions=[1])
        assert again.satisfiable is False
        assert again.core == []
        assert solver.stats.conflicts == conflicts_before  # no re-search

    def test_assumptions_reserve_variables(self):
        # Assuming a literal over a never-seen variable must not crash.
        solver = SatSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[7])
        assert result.satisfiable is True
        assert result.value(7) is True

    @pytest.mark.parametrize("seed", range(8))
    def test_random_cores_shrink_and_hold(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 9)
        clauses = _random_cnf(rng, num_vars, rng.randint(5, 30))
        solver = SatSolver(CNF(clauses, num_vars=num_vars))
        assumptions = []
        for v in range(1, num_vars + 1):
            if rng.random() < 0.6:
                assumptions.append(v if rng.random() < 0.5 else -v)
        result = solver.solve(assumptions=assumptions)
        if result.satisfiable is not False:
            return
        assert result.core is not None
        assert set(result.core) <= set(assumptions)
        # The core alone must keep the instance UNSAT...
        assert solver.solve(assumptions=result.core).satisfiable is False
        # ...and an empty core must mean root UNSAT.
        if not result.core:
            assert solver.solve().satisfiable is False


def _random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> list[list[int]]:
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clause = []
        for _ in range(width):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        clauses.append(clause)
    return clauses


def _brute_force_sat(clauses: list[list[int]], num_vars: int) -> bool:
    for assignment in range(1 << num_vars):
        values = {v: bool((assignment >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(any(values[abs(l)] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


class TestSolverAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_small_instances(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        clauses = _random_cnf(rng, num_vars, rng.randint(3, 25))
        expected = _brute_force_sat(clauses, num_vars)
        result = solve_cnf(CNF(clauses, num_vars=num_vars))
        assert result.satisfiable is expected
        if expected:
            for clause in clauses:
                assert any(result.value(abs(l)) == (l > 0) for l in clause)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_instances_hypothesis(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 7)
        clauses = _random_cnf(rng, num_vars, rng.randint(2, 20))
        expected = _brute_force_sat(clauses, num_vars)
        assert bool(solve_cnf(CNF(clauses, num_vars=num_vars))) is expected
