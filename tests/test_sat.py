"""Tests for the CNF container and the CDCL SAT solver."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat.cnf import CNF, parse_dimacs, to_dimacs
from repro.sat.solver import SatSolver, solve_cnf


class TestCnf:
    def test_add_clause_tracks_variables(self):
        cnf = CNF()
        cnf.add_clause([1, -3])
        assert cnf.num_vars == 3
        assert len(cnf) == 1

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(SatError):
            cnf.add_clause([1, 0])

    def test_new_var(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_dimacs_roundtrip(self):
        cnf = CNF([[1, 2], [-1, 3], [-2, -3]])
        text = to_dimacs(cnf)
        parsed = parse_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert list(parsed) == list(cnf)

    def test_parse_dimacs_with_comments(self):
        parsed = parse_dimacs("c a comment\np cnf 3 2\n1 2 0\n-3 0\n")
        assert parsed.num_vars == 3
        assert len(parsed) == 2

    def test_parse_dimacs_unterminated_clause(self):
        with pytest.raises(SatError):
            parse_dimacs("1 2")

    def test_copy_is_independent(self):
        cnf = CNF([[1, 2]])
        dup = cnf.copy()
        dup.add_clause([3])
        assert len(cnf) == 1
        assert len(dup) == 2


class TestSolverBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve().satisfiable is True

    def test_unit_clauses(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-2])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(1) is True
        assert result.value(2) is False

    def test_trivial_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().satisfiable is False

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert result.value(3) is True

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        result = solve_cnf(CNF(clauses))
        assert result.satisfiable
        for clause in clauses:
            assert any(result.value(abs(l)) == (l > 0) for l in clause)

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: variable p_{i,h} = 1 + 2*i + h
        clauses = []
        for pigeon in range(3):
            clauses.append([1 + 2 * pigeon, 2 + 2 * pigeon])
        for hole in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    clauses.append([-(1 + 2 * i + hole), -(1 + 2 * j + hole)])
        assert solve_cnf(CNF(clauses)).satisfiable is False

    def test_assumptions_sat_and_unsat(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).satisfiable is True
        assert solver.solve(assumptions=[-1, -2]).satisfiable is False
        # The solver is reusable after assumption-based calls.
        assert solver.solve().satisfiable is True

    def test_conflict_budget_returns_unknown(self):
        # A hard pigeonhole instance with a tiny budget must return None.
        holes, pigeons = 5, 6
        clauses = []
        def var(p, h):
            return 1 + p * holes + h
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    clauses.append([-var(i, h), -var(j, h)])
        result = SatSolver(CNF(clauses)).solve(conflict_budget=5)
        assert result.satisfiable is None

    def test_duplicate_literals_and_tautologies(self):
        solver = SatSolver()
        solver.add_clause([1, 1, 2])
        solver.add_clause([3, -3])  # tautology, silently dropped
        assert solver.solve().satisfiable is True


def _random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> list[list[int]]:
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clause = []
        for _ in range(width):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        clauses.append(clause)
    return clauses


def _brute_force_sat(clauses: list[list[int]], num_vars: int) -> bool:
    for assignment in range(1 << num_vars):
        values = {v: bool((assignment >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(any(values[abs(l)] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


class TestSolverAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_small_instances(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        clauses = _random_cnf(rng, num_vars, rng.randint(3, 25))
        expected = _brute_force_sat(clauses, num_vars)
        result = solve_cnf(CNF(clauses, num_vars=num_vars))
        assert result.satisfiable is expected
        if expected:
            for clause in clauses:
                assert any(result.value(abs(l)) == (l > 0) for l in clause)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_instances_hypothesis(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 7)
        clauses = _random_cnf(rng, num_vars, rng.randint(2, 20))
        expected = _brute_force_sat(clauses, num_vars)
        assert bool(solve_cnf(CNF(clauses, num_vars=num_vars))) is expected
