"""Tests for the parallel subsystem (`repro.par`).

The load-bearing guarantees:

* parallel drivers return *the same verdicts in the same order* as their
  sequential counterparts,
* ``jobs=1`` degenerates to the plain in-process sequential path,
* a crashing worker fails its own task and nothing else.
"""

from __future__ import annotations

import os

import pytest

from repro.bmc.engine import BmcEngine
from repro.bmc.kinduction import KInductionEngine
from repro.core.flow import SqedFlow
from repro.isa.config import IsaConfig
from repro.proc.bugs import get_bug
from repro.proc.config import ProcessorConfig
from repro.par import (
    ParError,
    PortfolioConfig,
    PortfolioSolver,
    TaskPool,
    check_frames_sharded,
    check_properties_parallel,
    prove_properties_parallel,
    resolve_jobs,
    verify_equivalences_parallel,
)
from repro.qed.equivalents import default_equivalent_programs, verify_equivalences
from repro.smt import terms as T
from repro.solve.context import SolverContext
from repro.ts.system import TransitionSystem


def _square(x):
    return x * x


def _crash_on_three(x):
    if x == 3:
        os._exit(13)
    return x


def _reciprocal(x):
    return 1 // x


class TestTaskPool:
    def test_results_in_task_order(self):
        results = TaskPool(jobs=4).run(_square, list(range(12)))
        assert [r.index for r in results] == list(range(12))
        assert [r.value for r in results] == [i * i for i in range(12)]
        assert all(r.ok for r in results)

    def test_jobs1_runs_in_process(self):
        pids = TaskPool(jobs=1).map(lambda _: os.getpid(), [0, 1, 2])
        assert pids == [os.getpid()] * 3

    def test_forked_workers_run_out_of_process(self):
        pids = TaskPool(jobs=2).map(lambda _: os.getpid(), [0, 1, 2, 3])
        assert all(pid != os.getpid() for pid in pids)

    def test_empty_task_list(self):
        assert TaskPool(jobs=4).run(_square, []) == []

    def test_single_task_stays_sequential(self):
        pids = TaskPool(jobs=4).map(lambda _: os.getpid(), [0])
        assert pids == [os.getpid()]

    def test_exception_reported_not_raised(self):
        results = TaskPool(jobs=2).run(_reciprocal, [1, 0, 1])
        assert [r.ok for r in results] == [True, False, True]
        assert "ZeroDivisionError" in results[1].error
        with pytest.raises(ParError):
            TaskPool(jobs=2).map(_reciprocal, [1, 0, 1])

    def test_exception_reported_sequentially_too(self):
        results = TaskPool(jobs=1).run(_reciprocal, [1, 0, 1])
        assert [r.ok for r in results] == [True, False, True]

    def test_worker_crash_fails_only_its_task(self):
        results = TaskPool(jobs=3).run(_crash_on_three, list(range(7)))
        assert [r.ok for r in results] == [True, True, True, False, True, True, True]
        assert "crashed" in results[3].error
        assert [r.value for r in results if r.ok] == [0, 1, 2, 4, 5, 6]

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        with pytest.raises(ParError):
            resolve_jobs(-1)


class TestPortfolioSolver:
    def setup_method(self):
        x = T.bv_var("pft_x", 8)
        self.sat_query = [
            T.bv_ult(x, T.bv_const(10, 8)),
            T.bv_eq(T.bv_and(x, T.bv_const(3, 8)), T.bv_const(3, 8)),
        ]
        self.unsat_query = [
            T.bv_eq(x, T.bv_const(1, 8)),
            T.bv_eq(x, T.bv_const(2, 8)),
        ]
        self.x = x

    def test_race_matches_direct_solve(self):
        solver = PortfolioSolver(jobs=4)
        result = solver.check(self.sat_query)
        assert result.satisfiable is True
        assert result.winner is not None
        model_value = result.model["pft_x"]
        assert model_value < 10 and (model_value & 3) == 3

        context = SolverContext()
        for term in self.sat_query:
            context.add(term)
        assert context.check().satisfiable is True

    def test_race_unsat(self):
        result = PortfolioSolver(jobs=4).check(self.unsat_query)
        assert result.satisfiable is False

    def test_single_config_runs_inline(self):
        solver = PortfolioSolver([PortfolioConfig("only")], jobs=4)
        result = solver.check(self.sat_query)
        assert result.satisfiable is True
        assert result.winner == "only"
        assert result.racers == 1

    def test_duplicate_config_names_rejected(self):
        with pytest.raises(ParError):
            PortfolioSolver([PortfolioConfig("a"), PortfolioConfig("a")])

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ParError):
            PortfolioSolver([])


@pytest.fixture(scope="module")
def small_programs():
    from repro.isa.config import IsaConfig

    return default_equivalent_programs(
        IsaConfig.small(), ops=["ADD", "SUB", "XOR", "OR", "AND", "SLT"]
    )


class TestParallelQed:
    def test_parallel_matches_sequential(self, small_programs):
        sequential = verify_equivalences(small_programs)
        parallel = verify_equivalences_parallel(small_programs, jobs=3)
        assert parallel == sequential
        assert list(parallel) == list(sequential)
        assert all(parallel.values())

    def test_jobs1_is_the_sequential_path(self, small_programs):
        assert verify_equivalences_parallel(small_programs, jobs=1) == (
            verify_equivalences(small_programs)
        )


def _counter_system(prefix: str, limit: int, buggy: bool) -> TransitionSystem:
    ts = TransitionSystem(name=f"{prefix}_counter")
    count = ts.add_state(f"{prefix}_count", 4, init=0)
    enable = ts.add_input(f"{prefix}_enable", 1)
    incremented = T.bv_add(count, T.bv_const(1, 4))
    if buggy:
        next_count = T.bv_ite(T.bv_eq(enable, T.bv_true()), incremented, count)
    else:
        at_limit = T.bv_ule(T.bv_const(limit, 4), count)
        next_count = T.bv_ite(
            T.bv_and(T.bv_eq(enable, T.bv_true()), T.bv_not(at_limit)),
            incremented,
            count,
        )
    ts.set_next(count, next_count)
    ts.add_property("bounded", T.bv_ule(count, T.bv_const(limit, 4)))
    ts.add_property(
        "small", T.bv_ule(count, T.bv_const(max(0, limit - 2), 4))
    )
    return ts


class TestShardedBmc:
    def test_sharded_verdict_matches_sequential_violation(self):
        ts = _counter_system("shard_bug", 5, buggy=True)
        sequential = BmcEngine(ts).check("bounded", bound=10)
        sharded = check_frames_sharded(ts, "bounded", bound=10, jobs=3)
        assert sequential.holds is False
        assert sharded.holds is False
        assert sharded.bound == sequential.bound
        assert sharded.trace is not None
        assert sharded.trace.length == sequential.trace.length

    def test_sharded_verdict_matches_sequential_holds(self):
        ts = _counter_system("shard_ok", 5, buggy=False)
        sequential = BmcEngine(ts).check("bounded", bound=8)
        sharded = check_frames_sharded(ts, "bounded", bound=8, jobs=3)
        assert sequential.holds is True
        assert sharded.holds is True
        assert sharded.bound == 8

    def test_sharded_jobs1_delegates_to_engine(self):
        ts = _counter_system("shard_seq", 4, buggy=True)
        result = check_frames_sharded(ts, "bounded", bound=10, jobs=1)
        assert result.holds is False
        assert result.bound == BmcEngine(ts).check("bounded", bound=10).bound

    def test_property_sweep_matches_sequential(self):
        ts = _counter_system("sweep", 5, buggy=True)
        parallel = check_properties_parallel(ts, ["bounded", "small"], bound=10, jobs=2)
        for name in ("bounded", "small"):
            sequential = BmcEngine(ts).check(name, bound=10)
            assert parallel[name].holds == sequential.holds
            assert parallel[name].bound == sequential.bound

    def test_kinduction_sweep_matches_sequential(self):
        ts = _counter_system("ksweep", 5, buggy=False)
        parallel = prove_properties_parallel(ts, ["bounded"], max_k=4, jobs=2)
        sequential = KInductionEngine(ts).prove("bounded", max_k=4)
        assert parallel["bounded"].proven == sequential.proven
        assert parallel["bounded"].k == sequential.k


class TestFlowJobs:
    """The `jobs` knob on the verification flows (tiny 4-bit datapath)."""

    @pytest.fixture(scope="class")
    def tiny_flow(self):
        isa = IsaConfig.small(xlen=4, num_regs=4)
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
        return SqedFlow(config)

    def test_sharded_run_matches_sequential(self, tiny_flow):
        bug = get_bug("multi_no_forward_ex_rs1")
        sequential = tiny_flow.run(bug, bound=7)
        sharded = tiny_flow.run(bug, bound=7, jobs=2)
        assert sequential.detected is True
        assert sharded.detected is True
        assert sharded.counterexample_length == sequential.counterexample_length
        assert sharded.bmc_result.bound == sequential.bmc_result.bound

    def test_run_many_orders_and_matches(self, tiny_flow):
        bugs = [get_bug("multi_no_forward_ex_rs1"), get_bug("multi_no_forward_ex_rs2")]
        parallel = tiny_flow.run_many(bugs, bound=7, jobs=2)
        sequential = tiny_flow.run_many(bugs, bound=7, jobs=1)
        assert any(o.detected for o in sequential)
        assert [o.bug_name for o in parallel] == [b.name for b in bugs]
        assert [(o.bug_name, o.detected, o.counterexample_length) for o in parallel] == [
            (o.bug_name, o.detected, o.counterexample_length) for o in sequential
        ]
