"""The exception hierarchy contract: one catchable root for the library."""

from __future__ import annotations

import inspect

import pytest

import repro.errors as E


def _public_exceptions() -> list[type]:
    return [
        obj
        for _, obj in inspect.getmembers(E, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


def test_every_public_exception_derives_from_repro_error():
    classes = _public_exceptions()
    assert E.ReproError in classes
    for cls in classes:
        assert issubclass(cls, E.ReproError), (
            f"{cls.__name__} escapes the ReproError hierarchy; callers "
            "catching library failures would miss it"
        )


def test_hierarchy_covers_every_subsystem():
    # Spot checks for the families the rest of the suite relies on.
    for cls in (
        E.SatError,
        E.SmtError,
        E.TransitionSystemError,
        E.Btor2Error,
        E.BmcError,
        E.PdrError,
        E.ZooError,
        E.QedError,
        E.VerificationError,
        E.LintError,
        E.SanitizerError,
    ):
        assert issubclass(cls, E.ReproError)
    assert issubclass(E.AssemblerError, E.IsaError)
    assert issubclass(E.UnknownBugError, E.ProcessorError)


def test_unknown_bug_error_is_also_a_key_error():
    assert issubclass(E.UnknownBugError, KeyError)
    # And it renders as a message, not as KeyError's repr of the message.
    err = E.UnknownBugError("no bug named 'x'")
    assert str(err) == "no bug named 'x'"


def test_lint_and_sanitizer_errors_are_catchable_as_repro_error():
    with pytest.raises(E.ReproError):
        raise E.LintError("gate rejected the model")
    with pytest.raises(E.ReproError):
        raise E.SanitizerError("watch invariant violated")


def test_repro_error_does_not_swallow_programming_errors():
    # The root must not be an alias for Exception-wide catches.
    assert not issubclass(ValueError, E.ReproError)
    assert not issubclass(E.ReproError, (ValueError, KeyError, TypeError))
