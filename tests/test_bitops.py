"""Unit and property tests for the fixed-width bit manipulation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    bit,
    bits_of,
    clog2,
    from_bits,
    mask,
    popcount,
    rotate_left,
    rotate_right,
    sext,
    to_signed,
    to_unsigned,
    truncate,
    zext,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5, 8) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128

    def test_to_unsigned_roundtrip(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-128, 8) == 0x80

    def test_to_signed_zero_width_rejected(self):
        with pytest.raises(ValueError):
            to_signed(0, 0)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_unsigned(to_signed(value, 16), 16) == value


class TestExtension:
    def test_sext_positive(self):
        assert sext(0x05, 8, 16) == 0x05

    def test_sext_negative(self):
        assert sext(0xFF, 8, 16) == 0xFFFF

    def test_zext(self):
        assert zext(0xFF, 8, 16) == 0xFF

    def test_sext_narrowing_rejected(self):
        with pytest.raises(ValueError):
            sext(0, 8, 4)

    def test_zext_narrowing_rejected(self):
        with pytest.raises(ValueError):
            zext(0, 8, 4)

    @given(st.integers(min_value=0, max_value=255))
    def test_sext_preserves_signed_value(self, value):
        assert to_signed(sext(value, 8, 32), 32) == to_signed(value, 8)


class TestBits:
    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_bits_roundtrip(self, value):
        assert from_bits(bits_of(value, 12)) == value

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_popcount_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_truncate(self):
        assert truncate(0x1FF, 8) == 0xFF


class TestClog2:
    @pytest.mark.parametrize(
        "value,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (32, 5)]
    )
    def test_values(self, value, expected):
        assert clog2(value) == expected

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            clog2(0)


class TestRotate:
    def test_rotate_left(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_rotate_right(self):
        assert rotate_right(0b0001, 1, 4) == 0b1000

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=16))
    def test_rotate_roundtrip(self, value, amount):
        assert rotate_right(rotate_left(value, amount, 8), amount, 8) == value
