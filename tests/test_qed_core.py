"""Tests for the QED layer (partitions, schemes, equivalents) and the flows.

Model-checking assertions are kept deliberately small: bug *detection* is a
satisfiable query (fast); "cannot detect" checks use a conflict budget so a
pure-Python UNSAT proof never stalls the suite.
"""

from __future__ import annotations

import pytest

from repro.core.flow import SepeSqedFlow, SqedFlow, pool_for_bug
from repro.errors import QedError
from repro.isa.config import IsaConfig
from repro.proc.bugs import get_bug
from repro.proc.config import ProcessorConfig
from repro.qed.equivalents import default_equivalent_programs, verify_equivalence
from repro.qed.mapping import MemoryPartition, RegisterPartition
from repro.qed.module import build_verification_model
from repro.qed.scheme import EddivScheme, EdsepvScheme, EntryFields
from repro.smt import terms as T


@pytest.fixture(scope="module")
def isa():
    return IsaConfig.small()


@pytest.fixture(scope="module")
def equivalents(isa):
    return default_equivalent_programs(isa)


class TestRegisterPartition:
    def test_eddiv_paper_layout(self):
        partition = RegisterPartition.eddiv(32)
        assert partition.original == tuple(range(16))
        assert partition.shadow == tuple(range(16, 32))
        assert partition.offset == 16
        assert len(partition.compare_pairs()) == 15  # x0 excluded

    def test_edsepv_paper_layout(self):
        """Section 5: O = x0..x12, E = x13..x25, T = x26..x31."""
        partition = RegisterPartition.edsepv(32)
        assert partition.original == tuple(range(13))
        assert partition.shadow == tuple(range(13, 26))
        assert partition.temps == tuple(range(26, 32))
        assert partition.offset == 13

    def test_edsepv_small_layout(self):
        partition = RegisterPartition.edsepv(8)
        assert partition.original == (0, 1, 2)
        assert partition.shadow == (3, 4, 5)
        assert partition.temps == (6, 7)

    def test_shadow_of(self):
        partition = RegisterPartition.edsepv(8)
        assert partition.shadow_of(1) == 4
        with pytest.raises(QedError):
            partition.shadow_of(5)

    def test_overlapping_sets_rejected(self):
        with pytest.raises(QedError):
            RegisterPartition(8, (0, 1), (1, 2), (3,))

    def test_memory_partition(self):
        memory = MemoryPartition(4)
        assert memory.half == 2
        assert memory.compare_pairs() == [(0, 2), (1, 3)]


class TestCuratedEquivalents:
    def test_covers_table1_targets(self, equivalents):
        for op in ("ADD", "SUB", "XOR", "OR", "AND", "SLT", "SLTU", "SRA",
                   "MULH", "XORI", "SLLI", "SRAI", "SW"):
            assert op in equivalents

    @pytest.mark.parametrize(
        "op", ["ADD", "SUB", "XOR", "OR", "AND", "SLT", "SLTU", "SRA", "XORI",
               "ORI", "ANDI", "ADDI", "SLLI", "SRLI", "SRAI", "SLTI", "SLTIU",
               "LUI", "LW", "SW", "SLL", "SRL"]
    )
    def test_programs_are_equivalent(self, equivalents, op):
        assert verify_equivalence(equivalents[op])

    def test_mul_family_checked_concretely(self, equivalents):
        """Multiplier equivalence is SAT-hard, so MUL/MULH are spot-checked."""
        from repro.isa.instructions import Instruction, result_value

        isa = equivalents["MUL"].config
        for a, b in [(0, 0), (0x7F, 0x80), (0xFF, 0xFF), (0x13, 0x27), (0x80, 0x80)]:
            assert equivalents["MUL"].evaluate([a, b]) == result_value(
                isa, Instruction("MUL", 1, 2, 3), a, b
            )
            assert equivalents["MULH"].evaluate([a, b]) == result_value(
                isa, Instruction("MULH", 1, 2, 3), a, b
            )

    def test_table1_programs_avoid_their_own_datapath(self, equivalents):
        """For Table 1 targets (except SRA, see DESIGN.md) the equivalent
        program does not reuse the mutated opcode."""
        for op in ("ADD", "SUB", "XOR", "OR", "AND", "SLT", "SLTU", "MULH",
                   "XORI", "SLLI", "SRAI", "SW"):
            mnemonics = {t.mnemonic for t in equivalents[op].expand()}
            assert op not in mnemonics, op

    def test_unknown_op_rejected(self, isa):
        with pytest.raises(QedError):
            default_equivalent_programs(isa, ops=["MULHU"])


class TestSchemes:
    def test_eddiv_transform_offsets_registers(self, isa):
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB", "SW"))
        scheme = EddivScheme(RegisterPartition.eddiv(8), MemoryPartition(4))
        entry = EntryFields(
            op=T.bv_const(config.op_index("ADD"), config.op_width),
            rd=T.bv_const(1, 3), rs1=T.bv_const(2, 3), rs2=T.bv_const(3, 3),
            imm=T.bv_const(0, isa.imm_width),
        )
        fields = scheme.transformed_instruction(config, "ADD", 0, entry)
        assert fields.rd.const_value() == 5
        assert fields.rs1.const_value() == 6
        assert fields.rs2.const_value() == 7
        assert scheme.sequence_length("ADD") == 1

    def test_eddiv_store_offsets_immediate(self, isa):
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SW"))
        scheme = EddivScheme(RegisterPartition.eddiv(8), MemoryPartition(4))
        entry = EntryFields(
            op=T.bv_const(config.op_index("SW"), config.op_width),
            rd=T.bv_const(0, 3), rs1=T.bv_const(0, 3), rs2=T.bv_const(2, 3),
            imm=T.bv_const(1, isa.imm_width),
        )
        fields = scheme.transformed_instruction(config, "SW", 0, entry)
        assert fields.imm.const_value() == 1 + 2  # original offset + memory half

    def test_edsepv_plans_respect_temp_budget(self, isa, equivalents):
        partition = RegisterPartition.edsepv(8)
        scheme = EdsepvScheme(partition, MemoryPartition(4), equivalents)
        for op in scheme.equivalents:
            plan = scheme.plan_for(op)
            for step in plan:
                if step.dest_kind == "temp":
                    assert step.dest_temp in partition.temps

    def test_edsepv_sequence_lengths(self, isa, equivalents):
        scheme = EdsepvScheme(RegisterPartition.edsepv(8), MemoryPartition(4), equivalents)
        assert scheme.sequence_length("SUB") == 3
        assert scheme.sequence_length("SW") == 4  # address computation + final store
        assert scheme.sequence_length("MULH") == 7

    def test_edsepv_store_appends_memory_access(self, isa, equivalents):
        scheme = EdsepvScheme(RegisterPartition.edsepv(8), MemoryPartition(4), equivalents)
        plan = scheme.plan_for("SW")
        assert plan[-1].mnemonic == "SW"
        assert plan[-1].imm.kind == "const" and plan[-1].imm.index == 2

    def test_allowed_ops_filtered_by_pool(self, isa, equivalents):
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
        scheme = EdsepvScheme(RegisterPartition.edsepv(8), MemoryPartition(4), equivalents)
        allowed = scheme.allowed_ops(config)
        assert "ADD" in allowed  # its equivalent program only needs SUB
        assert "XOR" not in allowed


class TestVerificationModel:
    def test_model_structure(self, isa, equivalents):
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
        scheme = EdsepvScheme(RegisterPartition.edsepv(8), MemoryPartition(4), equivalents)
        model = build_verification_model(config, scheme, fifo_depth=2)
        assert model.property_name in model.ts.properties
        assert model.ts.num_state_bits() > 50
        assert len(model.ts.constraints) >= 3
        model.ts.validate()

    def test_pool_for_bug_includes_equivalent_opcodes(self, equivalents):
        bug = get_bug("single_xor_as_or")
        pool = pool_for_bug(bug, equivalents)
        assert "XOR" in pool and "OR" in pool and "AND" in pool and "SUB" in pool

    def test_bad_fifo_depth_rejected(self, isa, equivalents):
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
        scheme = EddivScheme(RegisterPartition.eddiv(8), MemoryPartition(4))
        with pytest.raises(QedError):
            build_verification_model(config, scheme, fifo_depth=0)


class TestFlows:
    def test_sepe_detects_single_instruction_bug(self, isa, equivalents):
        bug = get_bug("single_add_off_by_one")
        pool = pool_for_bug(bug, equivalents)
        config = ProcessorConfig(isa=isa, supported_ops=pool)
        outcome = SepeSqedFlow(config).run(bug, bound=9)
        assert outcome.detected is True
        assert outcome.counterexample_length is not None
        assert outcome.counterexample_length <= 10

    def test_sqed_cannot_detect_single_instruction_bug(self, isa, equivalents):
        bug = get_bug("single_add_off_by_one")
        pool = pool_for_bug(bug, equivalents)
        config = ProcessorConfig(isa=isa, supported_ops=pool)
        outcome = SqedFlow(config).run(bug, bound=4, conflict_budget=3000)
        assert outcome.detected is not True

    @pytest.mark.slow
    def test_both_flows_detect_forwarding_bug(self, isa, equivalents):
        """Tier-2: the full-pool forwarding-bug check dominates suite wall
        time (>240s); the fast reduced variant below covers tier-1."""
        bug = get_bug("multi_no_forward_ex_rs1")
        pool = pool_for_bug(bug, equivalents, extra_ops=bug.recommended_pool)
        config = ProcessorConfig(isa=isa, supported_ops=pool)
        sqed = SqedFlow(config).run(bug, bound=8)
        sepe = SepeSqedFlow(config).run(bug, bound=8)
        assert sqed.detected is True
        assert sepe.detected is True

    def test_forwarding_bug_detected_fast(self):
        """Tier-1 variant: a 4-bit datapath and a two-op pool expose the
        missing EX-stage rs1 forwarding within bound 7 in a few seconds."""
        bug = get_bug("multi_no_forward_ex_rs1")
        isa = IsaConfig.small(xlen=4, num_regs=4)
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
        outcome = SqedFlow(config).run(bug, bound=7)
        assert outcome.detected is True
        assert outcome.counterexample_length is not None
        assert outcome.counterexample_length <= 8

    def test_trace_is_replayable(self, isa, equivalents):
        """The counterexample assigns a QED-ready frame that is inconsistent."""
        bug = get_bug("single_add_off_by_one")
        pool = pool_for_bug(bug, equivalents)
        config = ProcessorConfig(isa=isa, supported_ops=pool)
        flow = SepeSqedFlow(config)
        outcome = flow.run(bug, bound=9)
        trace = outcome.trace
        assert trace is not None
        last = trace.steps[-1]
        partition = RegisterPartition.edsepv(isa.num_regs)
        mismatches = [
            (o, s)
            for o, s in partition.compare_pairs()
            if last.states[f"m{_model_index(flow)}_duv_reg{o}"]
            != last.states[f"m{_model_index(flow)}_duv_reg{s}"]
        ]
        assert mismatches


def _model_index(flow) -> int:
    """Recover the unique model prefix index of the flow's last build."""
    from repro.qed import module as qed_module

    return qed_module._MODEL_COUNTER[0]
