"""Tests for transition systems, the unroller, BMC, k-induction and BTOR2."""

from __future__ import annotations

import pytest

from repro.bmc.engine import BmcEngine
from repro.bmc.kinduction import KInductionEngine
from repro.btor import parse_btor2, write_btor2
from repro.errors import BmcError, Btor2Error, TransitionSystemError
from repro.smt import terms as T
from repro.solve.pipeline import PipelineConfig
from repro.ts.system import TransitionSystem
from repro.ts.unroll import Unroller


def _counter_system(prefix: str, limit: int, buggy: bool = False) -> TransitionSystem:
    """A saturating 4-bit counter with an enable input.

    Property: the counter never exceeds ``limit``.  The buggy variant skips
    the saturation check, so the property fails once the counter passes it.
    """
    ts = TransitionSystem(name=f"{prefix}_counter")
    count = ts.add_state(f"{prefix}_count", 4, init=0)
    enable = ts.add_input(f"{prefix}_enable", 1)
    incremented = T.bv_add(count, T.bv_const(1, 4))
    if buggy:
        next_count = T.bv_ite(T.bv_eq(enable, T.bv_true()), incremented, count)
    else:
        at_limit = T.bv_ule(T.bv_const(limit, 4), count)
        next_count = T.bv_ite(
            T.bv_and(T.bv_eq(enable, T.bv_true()), T.bv_not(at_limit)), incremented, count
        )
    ts.set_next(count, next_count)
    ts.add_property("bounded", T.bv_ule(count, T.bv_const(limit, 4)))
    return ts


class TestTransitionSystem:
    def test_duplicate_symbol_rejected(self):
        ts = TransitionSystem()
        ts.add_state("tsx_a", 4, init=0)
        with pytest.raises(TransitionSystemError):
            ts.add_input("tsx_a", 4)

    def test_validate_requires_next(self):
        ts = TransitionSystem()
        ts.add_state("tsx_b", 4, init=0)
        with pytest.raises(TransitionSystemError):
            ts.validate()

    def test_width_checks(self):
        ts = TransitionSystem()
        state = ts.add_state("tsx_c", 4, init=0)
        with pytest.raises(TransitionSystemError):
            ts.set_next(state, T.bv_const(0, 8))
        with pytest.raises(TransitionSystemError):
            ts.add_property("p", T.bv_const(0, 4))

    def test_num_state_bits(self):
        ts = _counter_system("tsx_bits", 5)
        assert ts.num_state_bits() == 4


class TestUnroller:
    def test_concrete_init_propagates_constants(self):
        ts = _counter_system("unr_const", 9)
        unroller = Unroller(ts)
        frame0 = unroller.state_term("unr_const_count", 0)
        assert frame0.is_const and frame0.const_value() == 0

    def test_inputs_get_fresh_symbols_per_frame(self):
        ts = _counter_system("unr_inputs", 9)
        unroller = Unroller(ts)
        assert unroller.input_term("unr_inputs_enable", 0) is not unroller.input_term(
            "unr_inputs_enable", 1
        )

    def test_property_at_frame(self):
        ts = _counter_system("unr_prop", 9)
        unroller = Unroller(ts)
        prop0 = unroller.property_at("bounded", 0)
        assert prop0.is_const and prop0.const_value() == 1


class TestBmc:
    def test_good_counter_holds(self):
        result = BmcEngine(_counter_system("bmc_good", 5)).check("bounded", bound=8)
        assert result.holds is True
        assert result.trace is None

    def test_buggy_counter_fails_with_minimal_trace(self):
        result = BmcEngine(_counter_system("bmc_bad", 5, buggy=True)).check("bounded", bound=10)
        assert result.holds is False
        # The counter must be enabled six times to reach 6 > 5 (frames 0..6).
        assert result.trace is not None and result.trace.length == 7
        values = result.trace.values_over_time("bmc_bad_count")
        assert values[-1] == 6

    def test_unknown_property_rejected(self):
        with pytest.raises(BmcError):
            BmcEngine(_counter_system("bmc_unknown", 5)).check("nope", bound=2)

    def test_trace_rendering(self):
        result = BmcEngine(_counter_system("bmc_render", 3, buggy=True)).check("bounded", bound=8)
        text = result.trace.render(["bmc_render_count", "bmc_render_enable"])
        assert "bmc_render_count" in text and "frame" in text

    def test_constraints_restrict_inputs(self):
        ts = _counter_system("bmc_constrained", 5, buggy=True)
        ts.add_constraint(T.bv_eq(ts.input_symbol("bmc_constrained_enable"), T.bv_false()))
        result = BmcEngine(ts).check("bounded", bound=8)
        assert result.holds is True


class TestKInduction:
    def test_proves_simple_invariant(self):
        ts = TransitionSystem(name="kind_simple")
        bit = ts.add_state("kind_bit", 1, init=0)
        ts.set_next(bit, bit)
        ts.add_property("never_set", T.bv_eq(bit, T.bv_false()))
        result = KInductionEngine(ts).prove("never_set", max_k=2)
        assert result.proven is True

    def test_finds_counterexample_in_base_case(self):
        ts = _counter_system("kind_bad", 2, buggy=True)
        result = KInductionEngine(ts).prove("bounded", max_k=4)
        assert result.proven is False

    def test_max_k_exhaustion_keeps_base_result(self):
        # A property that holds but is not 1-inductive (x copies y with one
        # cycle of delay, so induction needs to look two steps back): the
        # inconclusive result must still report how far the base case got
        # (this used to be dropped on the exhausted-return path).
        ts = TransitionSystem(name="kind_exhaust")
        x = ts.add_state("kind_ex_x", 1, init=0)
        y = ts.add_state("kind_ex_y", 1, init=0)
        ts.set_next(x, y)
        ts.set_next(y, y)
        ts.add_property("x_never_set", T.bv_eq(x, T.bv_false()))
        # Pin the abstract-interpretation strengthening off: both latches
        # are sequentially constant, so with it on the property *is*
        # 1-inductive and the exhaustion path under test never runs.
        plain = PipelineConfig(opt_level=2, absint=False)
        result = KInductionEngine(ts, opt_level=plain).prove(
            "x_never_set", max_k=1
        )
        assert result.proven is None
        assert result.base_result is not None
        assert result.base_result.holds is True
        # With one more step of lookback the same engine closes the proof.
        assert (
            KInductionEngine(ts, opt_level=plain)
            .prove("x_never_set", max_k=2)
            .proven
            is True
        )
        # And with the strengthening on, one step of lookback suffices.
        strengthened = PipelineConfig(opt_level=2, absint=True)
        assert (
            KInductionEngine(ts, opt_level=strengthened)
            .prove("x_never_set", max_k=1)
            .proven
            is True
        )


class TestBtor2:
    def test_roundtrip_counter(self):
        ts = _counter_system("btor_rt", 5, buggy=True)
        text = write_btor2(ts)
        assert "sort bitvec 4" in text and "bad" in text and "next" in text
        parsed = parse_btor2(text, name="parsed_counter")
        # The round-tripped system must reproduce the same BMC verdict.
        original = BmcEngine(ts).check("bounded", bound=8)
        again = BmcEngine(parsed).check("bounded", bound=8)
        assert original.holds == again.holds
        assert original.trace.length == again.trace.length

    def test_writer_declares_free_symbols_as_inputs(self):
        ts = TransitionSystem(name="btor_free")
        state = ts.add_state("btor_free_state", 4, init=0)
        ts.set_next(state, T.bv_add(state, T.bv_var("btor_free_sym", 4)))
        text = write_btor2(ts)
        assert "input" in text and "btor_free_sym" in text

    def test_parser_rejects_unknown_operator(self):
        with pytest.raises(Btor2Error):
            parse_btor2("1 sort bitvec 4\n2 frobnicate 1 1 1\n")

    def test_parse_constants_in_all_bases(self):
        text = "\n".join(
            [
                "1 sort bitvec 8",
                "2 state 1 pstate",
                "3 constd 1 10",
                "4 const 1 00000001",
                "5 consth 1 ff",
                "6 add 1 3 4",
                "7 add 1 6 5",
                "8 next 1 2 7",
                "9 sort bitvec 1",
                "10 input 9 pin",
            ]
        )
        ts = parse_btor2(text)
        assert ts.state_symbol("pstate").width == 8

    def test_qed_model_exports_to_btor2(self, tiny_processor_config):
        """The full SQED verification model serialises to BTOR2."""
        from repro.core.flow import SqedFlow

        model = SqedFlow(tiny_processor_config).build_model()
        text = write_btor2(model.ts)
        assert "bad" in text and "constraint" in text
        assert text.count("state") > 10


class TestCoiEdgeCases:
    """Cone-of-influence reduction on degenerate property shapes.

    Each case checks the contract that matters: the reduced system's BMC
    verdict is identical to the original's.
    """

    def test_property_referencing_no_latches(self):
        from repro.ts.coi import reduce_to_property_cone

        ts = _counter_system("coix_nolatch", 5)
        flag = ts.add_input("coix_nolatch_flag", 1)
        ts.add_property("flag_low", T.bv_not(T.bv_eq(flag, T.bv_true())))
        reduction = reduce_to_property_cone(ts, "flag_low")
        # Every latch is invisible to this property...
        assert reduction.kept_states == []
        assert "coix_nolatch_count" in reduction.dropped_states
        # ...and the verdict survives the reduction (falsified by flag=1).
        original = BmcEngine(ts).check("flag_low", bound=2)
        reduced = BmcEngine(reduction.ts).check("flag_low", bound=2)
        assert original.holds is reduced.holds is False
        assert original.counterexample_length == reduced.counterexample_length

    def test_property_over_inputs_only(self):
        from repro.ts.coi import reduce_to_property_cone

        ts = TransitionSystem(name="coix_inputs_only")
        a = ts.add_input("coix_io_a", 4)
        b = ts.add_input("coix_io_b", 4)
        junk = ts.add_state("coix_io_junk", 4, init=0)
        ts.set_next(junk, T.bv_add(junk, T.bv_const(1, 4)))
        # a <= a|b: holds at every frame with no state involved, and does
        # not constant-fold (unlike e.g. a+b == b+a, which hash-consing
        # normalises away).
        ts.add_property(
            "absorb", T.bv_ule(a, T.bv_or(a, b))
        )
        reduction = reduce_to_property_cone(ts, "absorb")
        assert reduction.kept_states == []
        assert sorted(reduction.kept_inputs) == ["coix_io_a", "coix_io_b"]
        original = BmcEngine(ts).check("absorb", bound=3)
        reduced = BmcEngine(reduction.ts).check("absorb", bound=3)
        assert original.holds is reduced.holds is True

    def test_self_looping_latch(self):
        from repro.ts.coi import reduce_to_property_cone

        ts = TransitionSystem(name="coix_selfloop")
        loop = ts.add_state("coix_sl_loop", 4, init=1)
        # The latch depends only on itself: doubles until it wraps to 0.
        ts.set_next(loop, T.bv_add(loop, loop))
        other = ts.add_state("coix_sl_other", 4, init=0)
        ts.set_next(other, T.bv_add(other, T.bv_const(1, 4)))
        ts.add_property(
            "nonzero", T.bv_not(T.bv_eq(loop, T.bv_const(0, 4)))
        )
        reduction = reduce_to_property_cone(ts, "nonzero")
        # The self-loop must keep the latch live, not drop it as dead.
        assert reduction.kept_states == ["coix_sl_loop"]
        assert reduction.dropped_states == ["coix_sl_other"]
        # 1 -> 2 -> 4 -> 8 -> 0: fails at frame 4 in both systems.
        for bound, expected in ((3, True), (4, False)):
            original = BmcEngine(ts).check("nonzero", bound=bound)
            reduced = BmcEngine(reduction.ts).check("nonzero", bound=bound)
            assert original.holds is reduced.holds is expected


class TestParserDiagnostics:
    def test_error_carries_line_number_and_token(self):
        text = "1 sort bitvec 4\n2 state 1 pdx_r\n3 next 1 2 oops\n"
        with pytest.raises(Btor2Error) as exc_info:
            parse_btor2(text)
        message = str(exc_info.value)
        assert "line 3" in message
        assert "'oops'" in message
        assert "3 next 1 2 oops" in message  # the offending line verbatim

    def test_truncated_line_reports_missing_operand(self):
        with pytest.raises(Btor2Error, match="line 2.*missing"):
            parse_btor2("1 sort bitvec 4\n2 state\n")

    def test_forward_reference_names_the_line(self):
        with pytest.raises(Btor2Error, match="line 1.*before definition"):
            parse_btor2("1 state 7 pdx_fwd\n")

    def test_init_of_non_state_names_the_token(self):
        text = (
            "1 sort bitvec 4\n"
            "2 input 1 pdx_inp\n"
            "3 constd 1 0\n"
            "4 init 1 2 3\n"
        )
        with pytest.raises(Btor2Error, match="line 4.*not a state"):
            parse_btor2(text)

    def test_bad_constant_reports_base(self):
        with pytest.raises(Btor2Error, match="line 2.*base-2"):
            parse_btor2("1 sort bitvec 4\n2 const 1 2001\n")
