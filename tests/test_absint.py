"""Tests for the abstract-interpretation engine (:mod:`repro.absint`).

Covers the domain algebra (normalisation, lattice laws), the transfer
functions (fuzzed against the concrete evaluator), the fixpoint on the
design gallery (every fact cross-checked by bounded random simulation),
the engine-backed lint rules, and the ``python -m repro.absint`` CLI.
The solver-integration layers (BMC fold, PDR seeding, k-induction
strengthening) live in ``test_absint_integration.py``.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.absint import (
    analyze,
    latch_facts,
    pdr_seed_cubes,
    strengthening_terms,
    validate_by_simulation,
)
from repro.absint import domains as D
from repro.absint.transfer import abstract_eval
from repro.lint.cli import _gallery, _zoo_targets
from repro.lint.model import _sequentially_constant, lint_transition_system
from repro.smt import terms as T
from repro.smt.evaluator import evaluate
from repro.utils.bitops import mask

REPO_ROOT = Path(__file__).parent.parent


def _concretize(value: D.AbstractValue) -> set[int]:
    """The exact concretization of a (small-width) abstract value."""
    return {x for x in range(1 << value.width) if value.contains(x)}


def _random_value(rng: random.Random, width: int) -> D.AbstractValue:
    """A random *consistent* abstract value built from concrete samples."""
    samples = [rng.getrandbits(width) for _ in range(rng.randint(1, 3))]
    value = D.const(width, samples[0])
    for sample in samples[1:]:
        value = D.join(value, D.const(width, sample))
    return value


class TestDomains:
    def test_const_top_bottom_invariants(self):
        five = D.const(4, 5)
        assert five.is_const and five.const_value() == 5
        assert five.contains(5) and not five.contains(6)
        assert D.top(4).is_top and D.top(4).contains(11)
        assert D.bottom(4).is_bottom and not D.bottom(4).contains(0)
        assert D.top(4).unknown_count == 4 and five.unknown_count == 0

    def test_make_normalises_without_losing_members(self):
        # make() tightens each component against the others (reduced
        # product); the concretization it denotes must stay exactly the
        # intersection of the raw bit and interval constraints.
        rng = random.Random(7)
        for _ in range(300):
            w = rng.randint(1, 5)
            known = rng.getrandbits(w)
            bits = rng.getrandbits(w) & known
            lo = rng.getrandbits(w)
            hi = rng.getrandbits(w)
            lo, hi = min(lo, hi), max(lo, hi)
            raw = {
                x
                for x in range(1 << w)
                if (x & known) == bits and lo <= x <= hi
            }
            value = D.make(w, known, bits, lo, hi)
            assert _concretize(value) == raw

    def test_join_is_an_upper_bound(self):
        rng = random.Random(11)
        for _ in range(200):
            w = rng.randint(1, 5)
            a, b = _random_value(rng, w), _random_value(rng, w)
            joined = D.join(a, b)
            assert _concretize(joined) >= _concretize(a) | _concretize(b)
            assert D.subsumes(joined, a) and D.subsumes(joined, b)

    def test_meet_contains_the_intersection(self):
        rng = random.Random(13)
        for _ in range(200):
            w = rng.randint(1, 5)
            a, b = _random_value(rng, w), _random_value(rng, w)
            met = D.meet(a, b)
            assert _concretize(met) >= _concretize(a) & _concretize(b)
            assert D.subsumes(a, met) and D.subsumes(b, met)

    def test_widen_is_an_upper_bound_and_terminates(self):
        rng = random.Random(17)
        for _ in range(100):
            w = rng.randint(1, 6)
            value = _random_value(rng, w)
            # An arbitrary ascending chain must stabilise in finitely many
            # widening steps (this is what guarantees fixpoint termination).
            for step in range(4 * w + 8):
                bumped = D.join(value, D.const(w, rng.getrandbits(w)))
                widened = D.widen(value, bumped)
                assert D.subsumes(widened, value)
                assert D.subsumes(widened, bumped)
                if widened == value:
                    break
                value = widened
            else:
                pytest.fail("widening chain did not stabilise")

    def test_subsumes_matches_set_inclusion(self):
        rng = random.Random(19)
        for _ in range(200):
            w = rng.randint(1, 5)
            a, b = _random_value(rng, w), _random_value(rng, w)
            if D.subsumes(a, b):
                assert _concretize(a) >= _concretize(b)


def _random_term(rng: random.Random, variables: list, depth: int):
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.3:
            return T.bv_const(rng.getrandbits(4), 4)
        return rng.choice(variables)
    op = rng.choice(
        [
            "not", "and", "or", "xor", "add", "sub", "mul", "neg",
            "eq", "ult", "slt", "ite", "concat_extract", "zext_extract",
            "shl", "lshr", "ashr",
        ]
    )
    a = _random_term(rng, variables, depth - 1)
    b = _random_term(rng, variables, depth - 1)
    if op == "not":
        return T.bv_not(a)
    if op == "neg":
        return T.bv_neg(a)
    if op == "and":
        return T.bv_and(a, b)
    if op == "or":
        return T.bv_or(a, b)
    if op == "xor":
        return T.bv_xor(a, b)
    if op == "add":
        return T.bv_add(a, b)
    if op == "sub":
        return T.bv_sub(a, b)
    if op == "mul":
        return T.bv_mul(a, b)
    if op == "eq":
        return T.bv_zext(T.bv_eq(a, b), 4)
    if op == "ult":
        return T.bv_zext(T.bv_ult(a, b), 4)
    if op == "slt":
        return T.bv_zext(T.bv_slt(a, b), 4)
    if op == "ite":
        cond = T.bv_extract(_random_term(rng, variables, depth - 1), 0, 0)
        return T.bv_ite(cond, a, b)
    if op == "concat_extract":
        return T.bv_concat(T.bv_extract(a, 1, 0), T.bv_extract(b, 1, 0))
    if op == "zext_extract":
        return T.bv_zext(T.bv_extract(a, 2, 0), 4)
    amount = T.bv_const(rng.randint(0, 5), 4)
    if op == "shl":
        return T.bv_shl(a, amount)
    if op == "lshr":
        return T.bv_lshr(a, amount)
    return T.bv_ashr(a, amount)


class TestTransfer:
    def test_abstract_eval_contains_concrete_eval(self):
        # Soundness fuzz: for random terms and random abstract variable
        # environments, every concrete evaluation drawn from the abstract
        # environment must land inside the abstract result.
        rng = random.Random(101)
        names = ["fz_a", "fz_b", "fz_c"]
        variables = [T.bv_var(name, 4) for name in names]
        for round_index in range(250):
            term = _random_term(rng, variables, depth=3)
            samples = {name: [rng.getrandbits(4) for _ in range(2)] for name in names}
            abstract_env = {
                name: D.join(D.const(4, vals[0]), D.const(4, vals[1]))
                for name, vals in samples.items()
            }
            abstract = abstract_eval(term, abstract_env)
            assert abstract.width == term.width
            for _ in range(4):
                concrete_env = {
                    name: rng.choice(vals) for name, vals in samples.items()
                }
                concrete = evaluate(term, concrete_env)
                assert abstract.contains(concrete), (
                    f"round {round_index}: {concrete:#x} escapes "
                    f"{abstract.describe()}"
                )

    def test_constant_folding_through_cache(self):
        a = T.bv_const(3, 4)
        b = T.bv_const(4, 4)
        cache: dict = {}
        value = abstract_eval(T.bv_add(a, b), {}, cache)
        assert value.is_const and value.const_value() == 7
        # The shared cache is keyed by term id (tid) and readable back.
        assert cache[T.bv_add(a, b).tid] == value


class TestFixpointGallery:
    @pytest.mark.parametrize("name", sorted(_gallery()))
    def test_facts_subsume_simulation(self, name):
        # The simulation oracle raises AbsintError on the first unsound
        # fact; 120 random runs per design is the satellite's floor.
        ts = _gallery()[name]()
        analysis = analyze(ts)
        checks = validate_by_simulation(
            ts, analysis, runs=120, steps=10, seed=hash(name) & 0xFFFF
        )
        assert checks > 0
        assert analysis.iterations > 0

    def test_saturating_counter_facts(self):
        ts = _gallery()["saturating_counter"]()
        analysis = analyze(ts)
        value = analysis.value_of("d_count")
        # The counter saturates at 5, so bit 3 is provably stuck at zero
        # and the interval is [0, 5].
        assert (value.known >> 3) & 1 == 1
        assert (value.bits >> 3) & 1 == 0
        assert (value.lo, value.hi) == (0, 5)
        assert analysis.properties["bounded"].is_const
        assert analysis.properties["bounded"].const_value() == 1
        assert pdr_seed_cubes(ts, analysis) == [(("d_count", 3, True),)]

    def test_strengthening_terms_hold_in_reachable_states(self):
        ts = _gallery()["saturating_counter"]()
        analysis = analyze(ts)
        terms = strengthening_terms(ts, analysis)
        assert terms
        # Walk the concrete system from init for a few steps; every
        # strengthening term must evaluate to 1 in every visited state.
        rng = random.Random(5)
        env = {s.name: evaluate(s.init, {}) for s in ts.states}
        for _ in range(16):
            for inp in ts.inputs:
                env[inp.name] = rng.getrandbits(inp.width)
            for term in terms:
                assert evaluate(term, env) == 1
            env.update(
                {s.name: evaluate(s.next, env) for s in ts.states}
            )

    def test_engine_no_weaker_than_syntactic_seq_const(self):
        # The fixpoint must find every latch the old syntactic greatest-
        # fixpoint rule found, on the gallery and on zoo instances.
        targets = [(name, build()) for name, build in sorted(_gallery().items())]
        targets += _zoo_targets(4, seed=2024)
        for name, ts in targets:
            syntactic = _sequentially_constant(
                ts, {s.name: s for s in ts.states}
            )
            analysis = analyze(ts)
            assert set(analysis.seq_const) >= syntactic, name
            for latch, value in analysis.seq_const.items():
                assert analysis.value_of(latch).const_value() == value


class TestLintRules:
    def test_new_rules_fire_on_saturating_counter(self):
        report = lint_transition_system(_gallery()["saturating_counter"]())
        rules = {f.rule for f in report.findings}
        assert "model.bit-stuck-latch" in rules
        assert "model.unreachable-property-violation" in rules
        assert "model.interval-overflow-impossible" in rules
        # All three are informational facts, not defects.
        for finding in report.findings:
            assert finding.severity == "info", finding

    def test_bit_stuck_message_shows_pattern(self):
        report = lint_transition_system(_gallery()["saturating_counter"]())
        stuck = [
            f for f in report.findings if f.rule == "model.bit-stuck-latch"
        ]
        assert len(stuck) == 1
        assert "0xxx" in stuck[0].message

    def test_buggy_counter_property_not_claimed_unreachable(self):
        # The buggy variant violates the property, so the abstract value
        # must not be constant-true and the INFO rule must stay silent.
        report = lint_transition_system(_gallery()["saturating_counter_buggy"]())
        rules = {f.rule for f in report.findings}
        assert "model.unreachable-property-violation" not in rules

    def test_seq_const_fixture_still_fires_with_same_message(self):
        from repro.btor.parser import parse_btor2

        path = REPO_ROOT / "tests" / "data" / "lint" / "seq_const_latch.btor2"
        ts = parse_btor2(path.read_text(), name=path.stem)
        report = lint_transition_system(ts)
        found = [f for f in report.findings if f.rule == "model.seq-const-latch"]
        assert len(found) == 1
        assert "stuck at its initial value" in found[0].message


class TestCli:
    def _run(self, *args: str) -> subprocess.CompletedProcess:
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.absint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
            timeout=300,
        )

    def test_design_json_report(self):
        proc = self._run("--design", "saturating_counter", "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        (summary,) = payload["targets"].values()
        assert summary["latches"] == 1
        assert summary["known_bits"] >= 1
        assert "d_count" in summary["values"]
        assert summary["properties"]["bounded"] == "const 0x1"
        assert payload["total_facts"] >= 1

    def test_gallery_with_validation(self):
        proc = self._run("--design", "all", "--validate", "10")
        assert proc.returncode == 0, proc.stderr
        assert "saturating_counter" in proc.stdout
        assert "simulation" in proc.stdout.lower()

    def test_btor2_file_target(self):
        path = REPO_ROOT / "tests" / "data" / "lint" / "seq_const_latch.btor2"
        proc = self._run(str(path), "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        (summary,) = payload["targets"].values()
        assert summary["seq_const_latches"]

    def test_missing_file_exits_2(self):
        proc = self._run("no_such_model.btor2")
        assert proc.returncode == 2

    def test_unknown_design_exits_2(self):
        proc = self._run("--design", "definitely_not_a_design")
        assert proc.returncode == 2
