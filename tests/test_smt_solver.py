"""Tests for bit-blasting and the QF_BV solver facade.

The key property is agreement between three evaluation paths: the concrete
evaluator, the word-level constant folder, and bit-blasting + CDCL search.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SmtError
from repro.sat.solver import SatSolver
from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster
from repro.smt.evaluator import evaluate
from repro.smt.solver import BVSolver, check_sat, check_valid
from repro.utils.bitops import mask

W = 6
X = T.bv_var("bb_x", W)
Y = T.bv_var("bb_y", W)

values = st.integers(min_value=0, max_value=mask(W))


def _solver_agrees_with_evaluator(term: T.BV, x: int, y: int) -> bool:
    """Check the bit-blasted value of ``term`` under forced inputs."""
    blaster = BitBlaster()
    bits = blaster.blast(term)
    # Force the inputs through unit clauses.
    for var, value in ((X, x), (Y, y)):
        var_bits = blaster.blast(var)
        for i, lit in enumerate(var_bits):
            blaster.cnf.add_clause([lit if (value >> i) & 1 else -lit])
    result = SatSolver(blaster.cnf).solve()
    assert result.satisfiable
    got = 0
    for i, lit in enumerate(bits):
        lit_true = result.model.get(abs(lit), False) == (lit > 0)
        if lit_true:
            got |= 1 << i
    return got == evaluate(term, {"bb_x": x, "bb_y": y})


class TestBitBlastAgainstEvaluator:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: T.bv_add(X, Y),
            lambda: T.bv_sub(X, Y),
            lambda: T.bv_mul(X, Y),
            lambda: T.bv_and(X, Y),
            lambda: T.bv_or(X, Y),
            lambda: T.bv_xor(X, Y),
            lambda: T.bv_zext(T.bv_ult(X, Y), W),
            lambda: T.bv_zext(T.bv_slt(X, Y), W),
            lambda: T.bv_zext(T.bv_eq(X, Y), W),
            lambda: T.bv_shl(X, Y),
            lambda: T.bv_lshr(X, Y),
            lambda: T.bv_ashr(X, Y),
            lambda: T.bv_ite(T.bv_slt(X, Y), T.bv_sub(Y, X), T.bv_sub(X, Y)),
            lambda: T.bv_extract(T.bv_mul(X, Y), W - 1, 1),
            lambda: T.bv_sext(T.bv_extract(X, 2, 0), W),
        ],
        ids=lambda b: "expr",
    )
    @settings(max_examples=12, deadline=None)
    @given(values, values)
    def test_operator(self, builder, x, y):
        term = builder()
        if term.width < W:
            term = T.bv_zext(term, W)
        assert _solver_agrees_with_evaluator(term, x, y)


class TestBVSolver:
    def test_assert_requires_width_one(self):
        solver = BVSolver()
        with pytest.raises(SmtError):
            solver.add(X)

    def test_sat_with_model(self):
        result = check_sat([T.bv_eq(T.bv_add(X, Y), T.bv_const(9, W)), T.bv_ult(X, Y)])
        assert result.satisfiable
        x, y = result.model["bb_x"], result.model["bb_y"]
        assert (x + y) & mask(W) == 9 and x < y

    def test_unsat(self):
        result = check_sat([T.bv_ult(X, Y), T.bv_ult(Y, X)])
        assert result.satisfiable is False

    def test_trivially_false_assertion(self):
        solver = BVSolver()
        solver.add(T.bv_false())
        assert solver.check().satisfiable is False

    def test_assumptions(self):
        solver = BVSolver()
        solver.add(T.bv_ule(X, T.bv_const(5, W)))
        sat = solver.check(assumptions=[T.bv_eq(X, T.bv_const(3, W))])
        assert sat.satisfiable and sat.model["bb_x"] == 3
        unsat = solver.check(assumptions=[T.bv_eq(X, T.bv_const(9, W))])
        assert unsat.satisfiable is False

    def test_value_of_composite_terms(self):
        result = check_sat([T.bv_eq(X, T.bv_const(5, W)), T.bv_eq(Y, T.bv_const(2, W))])
        assert result.value_of(T.bv_add(X, Y)) == 7

    def test_check_valid_algebraic_identities(self):
        assert check_valid(T.bv_eq(T.bv_sub(T.bv_add(X, Y), Y), X))
        assert check_valid(T.bv_eq(T.bv_not(T.bv_add(T.bv_not(X), Y)), T.bv_sub(X, Y)))
        assert check_valid(T.bv_eq(T.bv_xor(T.bv_xor(X, Y), Y), X))
        assert not check_valid(T.bv_eq(X, Y))

    def test_mulh_identity(self):
        """The MULH.C decomposition identity used by the component library.

        Checked exhaustively at 4 bits by constant folding (multiplier
        equivalence queries are the classic hard case for SAT, so we keep
        the solver out of this one).
        """
        w = 4
        for x in range(16):
            for y in range(16):
                a, b = T.bv_const(x, w), T.bv_const(y, w)
                double = 2 * w
                mulh = T.bv_extract(T.bv_mul(T.bv_sext(a, double), T.bv_sext(b, double)), double - 1, w)
                mulhu = T.bv_extract(T.bv_mul(T.bv_zext(a, double), T.bv_zext(b, double)), double - 1, w)
                shamt = T.bv_const(w - 1, w)
                corr = T.bv_sub(
                    T.bv_sub(mulhu, T.bv_and(T.bv_ashr(a, shamt), b)),
                    T.bv_and(T.bv_ashr(b, shamt), a),
                )
                assert mulh.const_value() == corr.const_value()
