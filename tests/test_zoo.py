"""Tests for the generative bug zoo (:mod:`repro.zoo`).

The load-bearing properties:

* every recipe is reproducible — ``(family, params, seed)`` round-trips
  through JSON and always instantiates the same bug on the same config;
* a fixed-seed sample across every family is *detected* by the oracle and
  every counterexample concretises to a real executor-divergent run
  (replayed on the golden ISA executor, the same program stays
  consistent — so a detection is never an encoding artefact);
* the verdict is invariant across SAT kernels and optimisation levels;
* bug-free controls never produce a false alarm;
* budget-starved engines come back ``inconclusive``, never wrong;
* the committed regression recipes (shrunk reproducers of previously
  found instances) keep replaying.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ProcessorError, UnknownBugError, ZooError
from repro.proc.bugs import Bug, BugKind, BugRecipe, bug_catalog, get_bug
from repro.proc.bugs import _build_catalog
from repro.zoo import (
    FAMILIES,
    CampaignConfig,
    OracleSettings,
    generate_recipes,
    get_family,
    instantiate,
    load_recipes,
    run_campaign,
    run_control,
    run_instance,
    sample_recipe,
    save_recipes,
    shrink_recipe,
)
from repro.zoo.campaign import summarize
from repro.zoo.cli import main as zoo_main
from repro.zoo.oracle import (
    STATUS_CLEAN,
    STATUS_DETECTED,
    STATUS_INCONCLUSIVE,
)

#: Fast BMC-only oracle settings for tier-1 tests.
_BMC_ONLY = OracleSettings(engines=("bmc",))

#: The tier-1 fixed-seed sample: at least one instance per family, a
#: second seed where sampling is actually parameter-diverse.
_SAMPLE = [
    ("alu_op_swap", 1),
    ("alu_op_swap", 3),
    ("alu_result_offset", 2),
    ("alu_result_offset", 9),
    ("operand_swap", 4),
    ("imm_sext_flip", 5),
    ("imm_sext_flip", 8),
    ("forward_drop", 1),
    ("forward_drop", 6),
    ("forward_corruption", 42),
    ("wb_drop", 7),
    ("wb_drop", 11),
]


# ---------------------------------------------------------------------------
# Recipes and families
# ---------------------------------------------------------------------------


class TestRecipes:
    def test_round_trip_through_json(self):
        recipe = sample_recipe("alu_op_swap", seed=12)
        blob = json.dumps(recipe.as_dict())
        assert BugRecipe.from_dict(json.loads(blob)) == recipe

    def test_sampling_is_deterministic(self):
        for family in FAMILIES:
            assert sample_recipe(family, seed=77) == sample_recipe(family, seed=77)

    def test_instantiation_is_deterministic(self):
        recipe = sample_recipe("forward_drop", seed=9)
        a, b = instantiate(recipe), instantiate(recipe)
        assert a.bug.name == b.bug.name
        assert a.config == b.config
        assert a.flow_kind == b.flow_kind and a.bound == b.bound
        assert a.bug.recipe == recipe

    def test_unknown_family_rejected(self):
        with pytest.raises(ZooError, match="alu_op_swap"):
            get_family("nope")

    def test_malformed_recipe_dict_rejected(self):
        with pytest.raises(ProcessorError):
            BugRecipe.from_dict(42)
        with pytest.raises(ProcessorError):
            BugRecipe.from_dict({"family": 3, "params": {}, "seed": 0})
        with pytest.raises(ProcessorError):
            BugRecipe.from_dict({"family": "alu_op_swap", "seed": "x"})

    def test_invalid_params_rejected_at_build(self):
        bad = BugRecipe(
            family="alu_result_offset",
            params=(("delta", 16), ("op", "ADD"), ("xlen", 4)),
            seed=0,
        )
        with pytest.raises(ZooError):
            instantiate(bad)

    def test_sepe_families_on_sepe_flow_sqed_on_sqed(self):
        kinds = {name: get_family(name).flow_kind for name in FAMILIES}
        assert kinds["alu_op_swap"] == "sepe"
        assert kinds["imm_sext_flip"] == "sepe"
        assert kinds["forward_drop"] == "sqed"
        assert kinds["wb_drop"] == "sqed"

    def test_recipe_files_round_trip(self, tmp_path):
        recipes = [sample_recipe(f, seed=1) for f in sorted(FAMILIES)]
        path = tmp_path / "recipes.json"
        save_recipes(recipes, path)
        assert load_recipes(path) == recipes

    def test_generate_recipes_round_robin_all_families(self):
        config = CampaignConfig(count=2 * len(FAMILIES), seed=3)
        recipes = generate_recipes(config)
        assert len(recipes) == 2 * len(FAMILIES)
        assert {r.family for r in recipes} == set(FAMILIES)
        assert len({(r.family, r.seed) for r in recipes}) == len(recipes)


# ---------------------------------------------------------------------------
# Deep-mode registry re-entry (forward_corruption/priority_swap)
# ---------------------------------------------------------------------------


class TestDeepModeRegistry:
    """``forward_corruption/priority_swap`` is back in the registry.

    PR 7 excluded the mode (shortest counterexample past bound 9);
    per-mode bound overrides let recipes build, replay and shrink again.
    Random campaign sampling must still stick to the cheap modes: one
    bound-11 oracle evaluation of this model costs tens of CPU-minutes
    on the pure-Python kernels, which would dominate any campaign or
    tier-1 budget.
    """

    @staticmethod
    def _deep_recipe(**extra) -> BugRecipe:
        return BugRecipe(
            family="forward_corruption",
            params=tuple(sorted({"mode": "priority_swap", "xlen": 4, **extra}.items())),
            seed=0,
        )

    def test_priority_swap_builds_with_deep_bound(self):
        inst = instantiate(self._deep_recipe())
        assert inst.bound == 11
        assert inst.bug.kind is BugKind.MULTIPLE_INSTRUCTION
        assert "write-back" in inst.bug.description
        assert inst.bug.recipe == self._deep_recipe()

    def test_explicit_bound_param_beats_the_mode_override(self):
        assert instantiate(self._deep_recipe(bound=12)).bound == 12

    def test_cheap_modes_keep_the_family_default_bound(self):
        recipe = BugRecipe(
            family="forward_corruption",
            params=(("mode", "wrong_value"), ("xlen", 4)),
            seed=0,
        )
        assert instantiate(recipe).bound == 8

    def test_random_sampling_never_draws_the_deep_mode(self):
        family = get_family("forward_corruption")
        drawn = {
            dict(sample_recipe("forward_corruption", seed=s).params)["mode"]
            for s in range(64)
        }
        assert "priority_swap" not in drawn
        assert drawn == set(family._SAMPLE_MODES)
        assert "priority_swap" in family._MODES

    def test_deep_mode_shrinks_toward_the_cheap_mode(self):
        family = get_family("forward_corruption")
        candidates = family.shrink_candidates(dict(self._deep_recipe().params))
        assert any(c["mode"] == "wrong_value" for c in candidates)


# ---------------------------------------------------------------------------
# Bug-catalog hardening (static catalog satellites)
# ---------------------------------------------------------------------------


class TestCatalogHardening:
    def test_catalog_names_unique(self):
        catalog = bug_catalog()
        assert len(catalog) >= 25
        assert all(catalog[name].name == name for name in catalog)

    def test_duplicate_names_rejected_at_build(self):
        dup = Bug(
            name="dup",
            kind=BugKind.SINGLE_INSTRUCTION,
            description="",
            hooks={},
        )
        with pytest.raises(ProcessorError, match="duplicate"):
            _build_catalog([dup], [dup])

    def test_unknown_bug_error_lists_known_names(self):
        with pytest.raises(UnknownBugError, match="single_add_off_by_one"):
            get_bug("no_such_bug")
        # Dict-style callers can catch it as KeyError too.
        with pytest.raises(KeyError):
            get_bug("no_such_bug")


# ---------------------------------------------------------------------------
# The oracle on the fixed-seed tier-1 sample
# ---------------------------------------------------------------------------


class TestOracleSample:
    @pytest.mark.parametrize("family,seed", _SAMPLE)
    def test_seeded_instance_detected_and_concretized(self, family, seed):
        report = run_instance(
            instantiate(sample_recipe(family, seed)), _BMC_ONLY
        )
        assert report.status == STATUS_DETECTED, report.failure
        assert report.concretized is True
        assert report.cex_length is not None and report.cex_length >= 4

    @pytest.mark.parametrize("backend", ["arena", "reference"])
    @pytest.mark.parametrize("opt_level", [0, 2])
    def test_verdict_invariant_across_kernels_and_opt_levels(
        self, backend, opt_level
    ):
        # The oracle's answer is a property of the design, not of the SAT
        # kernel or the encoding pipeline: both kernels at both ends of
        # the optimisation range must agree, cex length included.
        settings = OracleSettings(
            engines=("bmc",), backend=backend, opt_level=opt_level
        )
        report = run_instance(
            instantiate(sample_recipe("alu_op_swap", seed=1)), settings
        )
        assert report.status == STATUS_DETECTED, report.failure
        assert report.concretized is True
        assert report.cex_length == 7

    def test_pdr_leg_agrees_and_chain_is_validated(self):
        settings = OracleSettings(engines=("bmc", "pdr"), pdr_total_budget=4_000)
        report = run_instance(
            instantiate(sample_recipe("alu_op_swap", seed=1)), settings
        )
        assert report.status == STATUS_DETECTED, report.failure
        if report.pdr_verdict == "cex":
            # The oracle has already checked the chain ends in a real
            # violation and never undercuts the minimal BMC trace.
            assert report.pdr_chain_length >= report.cex_length
        else:
            assert report.pdr_verdict == "inconclusive"

    def test_control_produces_no_false_alarm(self):
        report = run_control(
            instantiate(sample_recipe("alu_op_swap", seed=1)), _BMC_ONLY
        )
        assert report.status == STATUS_CLEAN, report.failure
        assert report.bmc_verdict == "safe"

    def test_budget_starved_bmc_is_inconclusive_not_wrong(self):
        settings = OracleSettings(engines=("bmc",), bmc_conflict_budget=1)
        report = run_instance(
            instantiate(sample_recipe("forward_drop", seed=1)), settings
        )
        assert report.status == STATUS_INCONCLUSIVE
        assert report.bmc_verdict == "inconclusive"

    def test_budget_starved_pdr_is_inconclusive_not_wrong(self):
        settings = OracleSettings(engines=("bmc", "pdr"), pdr_total_budget=3)
        report = run_instance(
            instantiate(sample_recipe("alu_op_swap", seed=1)), settings
        )
        # BMC still detects; the starved PDR leg must degrade to
        # inconclusive rather than hang or contradict.
        assert report.status == STATUS_DETECTED
        assert report.pdr_verdict == "inconclusive"


# ---------------------------------------------------------------------------
# Shrinking and committed regression recipes
# ---------------------------------------------------------------------------


class TestShrinking:
    def test_shrinks_to_canonical_op_pair(self):
        result = shrink_recipe(sample_recipe("alu_op_swap", seed=3))
        assert result.status == STATUS_DETECTED
        assert result.reduced
        assert dict(result.shrunk["params"])["op"] == "ADD"
        assert result.shrunk_cex_length <= result.original_cex_length

    def test_shrink_never_lengthens_the_counterexample(self):
        # wb_drop's lattice points at double_write, whose shortest trace
        # is *longer*; the shrinker must refuse that step.
        result = shrink_recipe(sample_recipe("wb_drop", seed=11))
        assert result.status == STATUS_DETECTED
        assert not result.reduced
        assert result.shrunk_cex_length == result.original_cex_length


class TestRegressionRecipes:
    def test_committed_recipes_still_replay(self):
        recipes = load_recipes("tests/data/regression_recipes.json")
        assert recipes, "regression recipe file must not be empty"
        reports = [run_instance(instantiate(r), _BMC_ONLY) for r in recipes]
        for report in reports:
            assert report.status == STATUS_DETECTED, report.failure
            assert report.concretized is True
        summary = summarize(reports, [])
        assert summary["passed"] and summary["detection_rate"] == 1.0


# ---------------------------------------------------------------------------
# Campaign driver and CLI
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_small_campaign_passes_with_parallel_workers(self):
        config = CampaignConfig(
            count=4,
            seed=5,
            families=("alu_op_swap", "forward_drop"),
            settings=_BMC_ONLY,
            jobs=2,
            run_controls=False,
        )
        report = run_campaign(config)
        assert report.passed
        assert report.summary["instances"] == 4
        assert report.summary["detected"] == 4
        assert report.summary["all_detected_concretized"] is True
        # The JSON form must be self-contained and serialisable.
        blob = json.dumps(report.to_dict())
        assert json.loads(blob)["summary"]["passed"] is True

    def test_campaign_rejects_bad_config(self):
        with pytest.raises(ZooError):
            generate_recipes(CampaignConfig(count=0))
        with pytest.raises(ZooError):
            CampaignConfig(families=("nope",)).family_names()

    def test_summary_flags_disagreements(self):
        from repro.zoo.oracle import OracleReport

        bad = OracleReport(
            family="f",
            recipe={},
            flow_kind="sqed",
            kind="seeded",
            status="disagreement",
            failure="synthetic",
        )
        summary = summarize([bad], [])
        assert not summary["passed"]
        assert summary["failures"] == [
            {"family": "f", "kind": "seeded", "failure": "synthetic"}
        ]


class TestCli:
    def test_list_families(self, capsys):
        assert zoo_main(["list"]) == 0
        out = capsys.readouterr().out
        for family in FAMILIES:
            assert family in out

    def test_generate_writes_loadable_recipes(self, tmp_path):
        path = tmp_path / "recipes.json"
        assert (
            zoo_main(["generate", "--count", "5", "--seed", "2",
                      "--out", str(path)]) == 0
        )
        assert len(load_recipes(path)) == 5

    def test_replay_gates_on_verdict(self, tmp_path, capsys):
        path = tmp_path / "recipes.json"
        save_recipes([sample_recipe("alu_op_swap", seed=1)], path)
        code = zoo_main(
            ["replay", "--recipes", str(path), "--engines", "bmc"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["detection_rate"] == 1.0


# ---------------------------------------------------------------------------
# Tier-2: the full campaign (nightly)
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestFullCampaign:
    def test_sixty_instance_campaign(self):
        # A fresh-seed campaign across every family with the full
        # three-way oracle: every conclusive seeded instance must be
        # detected with a concretised counterexample, controls must stay
        # clean, and nothing may disagree.  Sixty instances (~12 min)
        # fit the shared tier-2 pytest budget; the ≥200-instance
        # acceptance campaign is the dedicated nightly CI job running
        # `bench_zoo.py --count 200`, whose report is committed as
        # BENCH_zoo.json.
        config = CampaignConfig(
            count=60,
            seed=2025,
            settings=OracleSettings(
                engines=("bmc", "pdr"),
                pdr_total_budget=4_000,
            ),
            jobs=2,
        )
        report = run_campaign(config)
        summary = report.summary
        assert summary["disagreements"] == 0, summary["failures"]
        assert summary["false_alarms"] == 0, summary["failures"]
        assert summary["detection_rate"] == 1.0
        assert summary["all_detected_concretized"] is True
        # Budget starvation may make a few instances inconclusive, but
        # never the bulk of the campaign.
        assert summary["inconclusive"] <= summary["instances"] // 10
