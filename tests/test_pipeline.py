"""Differential tests for the staged compilation pipeline.

The load-bearing property is *opt-level equivalence*: for any workload the
optimised pipeline (``opt_level=2``: AIG lowering, cone-of-influence
reduction, CNF preprocessing) must return exactly the verdicts — and for
BMC, the same counterexample frame — that the naive reference encoder
(``opt_level=0``) returns, while models keep satisfying the asserted terms.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bmc.engine import BmcEngine
from repro.bmc.kinduction import KInductionEngine
from repro.errors import SolveError
from repro.smt import terms as T
from repro.smt.evaluator import evaluate
from repro.solve import PipelineConfig, SolverContext, default_opt_level
from repro.solve.pipeline import ENV_OPT_LEVEL
from repro.ts.coi import reduce_to_property_cone
from repro.ts.system import TransitionSystem

OPT_LEVELS = (0, 1, 2)
W = 5


def _random_term(rng: random.Random, variables, depth: int) -> T.BV:
    """A random bit-vector term of width W over ``variables``."""
    if depth == 0 or rng.random() < 0.2:
        if rng.random() < 0.3:
            return T.bv_const(rng.randrange(1 << W), W)
        return rng.choice(variables)
    op = rng.choice(
        ["add", "sub", "mul", "and", "or", "xor", "not", "ite", "shl", "lshr", "ashr"]
    )
    a = _random_term(rng, variables, depth - 1)
    if op == "not":
        return T.bv_not(a)
    b = _random_term(rng, variables, depth - 1)
    if op == "ite":
        cond_kind = rng.choice(["ult", "eq", "slt"])
        c = _random_term(rng, variables, depth - 1)
        d = _random_term(rng, variables, depth - 1)
        cond = {
            "ult": T.bv_ult,
            "eq": T.bv_eq,
            "slt": T.bv_slt,
        }[cond_kind](c, d)
        return T.bv_ite(cond, a, b)
    return {
        "add": T.bv_add,
        "sub": T.bv_sub,
        "mul": T.bv_mul,
        "and": T.bv_and,
        "or": T.bv_or,
        "xor": T.bv_xor,
        "shl": T.bv_shl,
        "lshr": T.bv_lshr,
        "ashr": T.bv_ashr,
    }[op](a, b)


class TestPipelineConfig:
    def test_levels_enable_stages(self):
        assert not PipelineConfig(0).use_aig
        assert not PipelineConfig(0).preprocess
        assert PipelineConfig(1).use_aig and PipelineConfig(1).coi
        assert not PipelineConfig(1).preprocess
        assert PipelineConfig(2).preprocess

    def test_invalid_levels_rejected(self):
        with pytest.raises(SolveError):
            PipelineConfig(3)
        with pytest.raises(SolveError):
            PipelineConfig.resolve("fast")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_OPT_LEVEL, "0")
        assert default_opt_level() == 0
        assert PipelineConfig.resolve(None).opt_level == 0
        monkeypatch.setenv(ENV_OPT_LEVEL, "17")
        with pytest.raises(SolveError):
            default_opt_level()
        monkeypatch.delenv(ENV_OPT_LEVEL)
        assert default_opt_level() == 2


class TestRandomisedDifferential:
    """Evaluator semantics == SAT verdict at opt 0 == opt 1 == opt 2."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_constraint_sets(self, seed):
        rng = random.Random(seed)
        variables = [T.bv_var(f"rd{seed}_{n}", W) for n in "xyz"]
        terms = []
        for _ in range(rng.randint(1, 4)):
            lhs = _random_term(rng, variables, rng.randint(1, 3))
            rhs = _random_term(rng, variables, rng.randint(1, 2))
            kind = rng.choice(["eq", "ult", "ule", "ne"])
            terms.append(
                {
                    "eq": T.bv_eq,
                    "ult": T.bv_ult,
                    "ule": T.bv_ule,
                    "ne": T.bv_ne,
                }[kind](lhs, rhs)
            )
        verdicts = {}
        for opt in OPT_LEVELS:
            ctx = SolverContext(opt_level=opt)
            ctx.add_all(terms)
            result = ctx.check()
            verdicts[opt] = result.satisfiable
            if result.satisfiable:
                model = {
                    var.name: result.model.get(var.name, 0) for var in variables
                }
                for term in terms:
                    assert evaluate(term, model) == 1, (opt, term, model)
        assert verdicts[0] == verdicts[1] == verdicts[2]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_concrete_evaluation_is_always_sat(self, seed):
        """Asserting term == eval(term, random point) is SAT at every level."""
        rng = random.Random(seed)
        variables = [T.bv_var(f"hd{seed}_{n}", W) for n in "ab"]
        term = _random_term(rng, variables, 3)
        point = {var.name: rng.randrange(1 << W) for var in variables}
        expected = evaluate(term, point)
        pin = [T.bv_eq(var, T.bv_const(point[var.name], W)) for var in variables]
        for opt in OPT_LEVELS:
            ctx = SolverContext(opt_level=opt)
            ctx.add_all(pin)
            ctx.add(T.bv_eq(term, T.bv_const(expected, W)))
            assert ctx.check().satisfiable is True, (opt, seed)
            # ... and pinning the term to any other value is UNSAT.
            other = (expected + 1) & ((1 << W) - 1)
            ctx2 = SolverContext(opt_level=opt)
            ctx2.add_all(pin)
            ctx2.add(T.bv_eq(term, T.bv_const(other, W)))
            assert ctx2.check().satisfiable is False, (opt, seed)

    @pytest.mark.parametrize("seed", range(5))
    def test_scoped_and_assumption_queries_agree(self, seed):
        rng = random.Random(seed)
        x = T.bv_var(f"sa{seed}_x", W)
        y = T.bv_var(f"sa{seed}_y", W)
        contexts = {opt: SolverContext(opt_level=opt) for opt in OPT_LEVELS}
        base = T.bv_eq(T.bv_add(x, y), T.bv_const(rng.randrange(1 << W), W))
        for ctx in contexts.values():
            ctx.add(base)
        for _ in range(6):
            constant = rng.randrange(1 << W)
            extra = rng.choice(
                [T.bv_ult(x, T.bv_const(constant, W)), T.bv_eq(y, T.bv_const(constant, W))]
            )
            mode = rng.choice(["scope", "assume"])
            answers = {}
            for opt, ctx in contexts.items():
                if mode == "scope":
                    ctx.push()
                    ctx.add(extra)
                    answers[opt] = ctx.check().satisfiable
                    ctx.pop()
                else:
                    answers[opt] = ctx.check(assumptions=[extra]).satisfiable
            assert answers[0] == answers[1] == answers[2]


class TestModelReconstruction:
    def test_models_evaluate_through_eliminated_variables(self):
        """opt 2 eliminates auxiliary vars; models must stay consistent."""
        x = T.bv_var("mr_x", W)
        y = T.bv_var("mr_y", W)
        terms = [
            T.bv_eq(T.bv_mul(x, y), T.bv_const(12, W)),
            T.bv_ult(x, y),
        ]
        ctx = SolverContext(opt_level=2)
        ctx.add_all(terms)
        result = ctx.check(full_model=True)
        assert result.satisfiable
        assert ctx.encoding_stats().vars_eliminated > 0
        model = {x.name: result.model[x.name], y.name: result.model[y.name]}
        for term in terms:
            assert evaluate(term, model) == 1

    def test_backend_model_extended_over_aux_vars(self):
        """Every emitted clause is satisfied by the extended backend model."""
        x = T.bv_var("ext_x", W)
        y = T.bv_var("ext_y", W)
        ctx = SolverContext(opt_level=2)
        ctx.add(T.bv_eq(T.bv_add(T.bv_mul(x, y), x), T.bv_const(9, W)))
        result = ctx.check()
        assert result.satisfiable
        raw = ctx.backend._solver.solve()  # re-query: state is persistent
        assert raw.satisfiable
        extended = ctx._pre.extend_model(raw.model)
        # The *original* blaster clauses (pre-preprocessing) must all hold
        # under the extended model — that is exactly what reconstruction
        # guarantees and what a naive encoding would have enforced.
        for clause in ctx.blaster.cnf.clauses:
            assert any(
                extended.get(abs(lit), False) == (lit > 0) for lit in clause
            ), clause

    def test_assumption_on_eliminated_variable_restores_it(self):
        x = T.bv_var("rst_x", W)
        y = T.bv_var("rst_y", W)
        ctx = SolverContext(opt_level=2)
        ctx.add(T.bv_ult(x, y))
        assert ctx.check().satisfiable
        # Assumptions force blasting fresh cones whose tops were never seen;
        # restored or not, verdicts must match the naive context.
        naive = SolverContext(opt_level=0)
        naive.add(T.bv_ult(x, y))
        for constant in range(0, 1 << W, 3):
            assumption = T.bv_eq(T.bv_add(x, y), T.bv_const(constant, W))
            assert (
                ctx.check(assumptions=[assumption]).satisfiable
                == naive.check(assumptions=[assumption]).satisfiable
            )


def _counter_with_junk(prefix: str, limit: int, buggy: bool) -> TransitionSystem:
    """The BMC test counter plus state that cannot influence the property."""
    ts = TransitionSystem(name=f"{prefix}_counter")
    count = ts.add_state(f"{prefix}_count", 4, init=0)
    enable = ts.add_input(f"{prefix}_enable", 1)
    incremented = T.bv_add(count, T.bv_const(1, 4))
    if buggy:
        next_count = T.bv_ite(T.bv_eq(enable, T.bv_true()), incremented, count)
    else:
        at_limit = T.bv_ule(T.bv_const(limit, 4), count)
        next_count = T.bv_ite(
            T.bv_and(T.bv_eq(enable, T.bv_true()), T.bv_not(at_limit)),
            incremented,
            count,
        )
    ts.set_next(count, next_count)
    # A wide shift register fed by its own input: reachable from nothing the
    # property observes, so COI must drop all of it.
    junk_in = ts.add_input(f"{prefix}_junk_in", 8)
    previous = junk_in
    for index in range(4):
        stage = ts.add_state(f"{prefix}_junk{index}", 8, init=0)
        ts.set_next(stage, T.bv_add(previous, T.bv_const(index, 8)))
        previous = stage
    ts.add_property("bounded", T.bv_ule(count, T.bv_const(limit, 4)))
    return ts


class TestConeOfInfluence:
    def test_reduction_drops_unobservable_state(self):
        ts = _counter_with_junk("coi_drop", 5, buggy=False)
        reduction = reduce_to_property_cone(ts, "bounded")
        assert reduction.reduced
        assert reduction.kept_states == ["coi_drop_count"]
        assert sorted(reduction.dropped_states) == [
            f"coi_drop_junk{i}" for i in range(4)
        ]
        assert reduction.dropped_inputs == ["coi_drop_junk_in"]
        assert reduction.dropped_state_bits == 32

    def test_constraint_variables_stay_in_cone(self):
        ts = _counter_with_junk("coi_con", 5, buggy=True)
        # A constraint over the junk input forces the whole junk chain to
        # stay only if it feeds the constraint — here only the input does.
        ts.add_constraint(
            T.bv_ult(ts.input_symbol("coi_con_junk_in"), T.bv_const(200, 8))
        )
        reduction = reduce_to_property_cone(ts, "bounded")
        assert "coi_con_junk_in" in reduction.kept_inputs
        assert sorted(reduction.dropped_states) == [
            f"coi_con_junk{i}" for i in range(4)
        ]

    def test_bmc_verdicts_and_frames_match_across_levels(self):
        results = {}
        for opt in OPT_LEVELS:
            engine = BmcEngine(
                _counter_with_junk(f"coi_bmc{opt}", 4, buggy=True), opt_level=opt
            )
            results[opt] = engine.check("bounded", bound=10)
        assert all(r.holds is False for r in results.values())
        frames = {opt: r.bound for opt, r in results.items()}
        lengths = {opt: r.trace.length for opt, r in results.items()}
        assert len(set(frames.values())) == 1, frames
        assert len(set(lengths.values())) == 1, lengths

    def test_reduced_trace_reconstructs_dropped_signals(self):
        result = BmcEngine(
            _counter_with_junk("coi_tr", 4, buggy=True), opt_level=2
        ).check("bounded", bound=10)
        assert result.holds is False
        step0 = result.trace.steps[0]
        # Every state appears, including the dropped ones...
        assert set(step0.states) == {"coi_tr_count"} | {
            f"coi_tr_junk{i}" for i in range(4)
        }
        # ... with values consistent with a run where dropped inputs read 0:
        # junk0@k = junk_in@(k-1) + 0 = 0, junk1@k = junk0@(k-1) + 1, ...
        for step in result.trace.steps:
            assert step.inputs["coi_tr_junk_in"] == 0
        for step in result.trace.steps[2:]:
            assert step.states["coi_tr_junk1"] == 1

    def test_holds_verdict_matches_across_levels(self):
        for opt in OPT_LEVELS:
            result = BmcEngine(
                _counter_with_junk(f"coi_ok{opt}", 5, buggy=False), opt_level=opt
            ).check("bounded", bound=8)
            assert result.holds is True, opt

    def test_encoding_stats_surface_reduction(self):
        result = BmcEngine(
            _counter_with_junk("coi_st", 4, buggy=True), opt_level=2
        ).check("bounded", bound=6)
        encoding = result.stats.encoding
        assert encoding.opt_level == 2
        assert encoding.coi_states_dropped == 4
        assert encoding.coi_state_bits_dropped == 32
        assert encoding.aig_nodes > 0
        assert encoding.cnf_clauses_post > 0
        # Note: post may slightly exceed pre on tiny workloads — restoring an
        # eliminated variable re-emits its stored clauses on top of the
        # resolvents already fed to the backend.  The clause-count *win* is
        # asserted on a workload large enough to be meaningful below.

    def test_opt2_encodes_fewer_clauses_than_opt0(self):
        sizes = {}
        for opt in (0, 2):
            result = BmcEngine(
                _counter_with_junk(f"coi_sz{opt}", 4, buggy=False), opt_level=opt
            ).check("bounded", bound=8)
            sizes[opt] = result.stats.encoding.cnf_clauses_post
        assert sizes[2] < sizes[0], sizes


class TestKInductionAcrossLevels:
    def test_proof_and_refutation_match(self):
        for opt in OPT_LEVELS:
            ts = TransitionSystem(name=f"kind_pipe{opt}")
            flag = ts.add_state(f"kind_pipe{opt}_flag", 1, init=0)
            ts.set_next(flag, flag)
            junk = ts.add_state(f"kind_pipe{opt}_junk", 8, init=0)
            ts.set_next(junk, T.bv_add(junk, T.bv_const(3, 8)))
            ts.add_property("never_set", T.bv_eq(flag, T.bv_false()))
            proof = KInductionEngine(ts, opt_level=opt).prove("never_set", max_k=2)
            assert proof.proven is True, opt
            refute = KInductionEngine(
                _counter_with_junk(f"kind_bug{opt}", 4, buggy=True), opt_level=opt
            ).prove("bounded", max_k=8)
            assert refute.proven is False, opt


class TestCegisAcrossLevels:
    def test_synthesis_agrees_with_naive_pipeline(self, small_isa, small_library):
        from repro.qed.equivalents import verify_equivalence
        from repro.synth.cegis import CegisConfig, CegisEngine
        from repro.synth.spec import spec_from_instruction

        spec = spec_from_instruction("XOR", small_isa)
        components = [small_library.by_name(name) for name in ("OR", "AND", "SUB")]
        for opt in OPT_LEVELS:
            outcome = CegisEngine(CegisConfig(opt_level=opt)).synthesize(
                spec, components
            )
            assert outcome.succeeded, opt
            assert verify_equivalence(outcome.program, opt_level=opt), opt
