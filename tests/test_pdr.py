"""Tests for the IC3/PDR engine (:mod:`repro.pdr`).

The load-bearing properties:

* every proof comes with an inductive invariant that passes an
  *independent* re-check (initiation, consecution, safety) through the
  ``opt_level=0`` naive reference encoding;
* every refutation agrees with BMC, and every proof agrees with
  k-induction wherever the latter concludes (differential testing across a
  small design suite);
* on the real (golden, bug-free) QED processor model a frame-bounded run
  never fabricates a counterexample.
"""

from __future__ import annotations

import pytest

from repro.bmc.engine import BmcEngine
from repro.bmc.kinduction import KInductionEngine
from repro.core.flow import SqedFlow
from repro.errors import PdrError, VerificationError
from repro.isa.config import IsaConfig
from repro.par.bmc import prove_properties_parallel
from repro.pdr import PdrEngine, check_invariant
from repro.pdr.designs import (
    lockstep_accumulators as _lockstep,
    pipelined_accumulators as _piped,
    saturating_counter,
)
from repro.proc.config import ProcessorConfig
from repro.smt import terms as T


def _counter(prefix: str, limit: int, buggy: bool = False):
    return saturating_counter(prefix, limit=limit, buggy=buggy)


#: (factory, property) pairs covering the whole suite, good and buggy.
_SUITE = [
    (lambda p: _counter(p, 5), "bounded", True),
    (lambda p: _counter(p, 5, buggy=True), "bounded", False),
    (lambda p: _lockstep(p), "consistent", True),
    (lambda p: _lockstep(p, buggy=True), "consistent", False),
    (lambda p: _piped(p), "consistent", True),
    (lambda p: _piped(p, buggy=True), "consistent", False),
]


# ---------------------------------------------------------------------------
# Proofs and invariants
# ---------------------------------------------------------------------------


class TestPdrProofs:
    def test_counter_proof_with_checked_invariant(self):
        ts = _counter("pdr_good", 5)
        result = PdrEngine(ts).prove("bounded")
        assert result.proven is True
        assert result.invariant is not None
        assert all(clause.width == 1 for clause in result.invariant)
        check = check_invariant(ts, "bounded", result.invariant)
        assert check.initiation and check.consecution and check.safety
        assert check.valid

    def test_piped_proof_needs_and_finds_strengthening(self):
        ts = _piped("pdr_piped")
        # Not 1-inductive: plain induction at depth 1 cannot close it.
        kind = KInductionEngine(ts).prove("consistent", max_k=1)
        assert kind.proven is None
        result = PdrEngine(ts).prove("consistent")
        assert result.proven is True
        # The invariant must actually strengthen the property (clauses over
        # the pipeline registers the property does not mention).
        assert result.invariant
        check = check_invariant(ts, "consistent", result.invariant)
        assert check.valid

    def test_lockstep_proof(self):
        ts = _lockstep("pdr_lock")
        result = PdrEngine(ts).prove("consistent")
        assert result.proven is True
        assert check_invariant(ts, "consistent", result.invariant).valid

    def test_invariant_rechecked_through_reference_encoding(self):
        # The acceptance check: the emitted invariant passes initiation,
        # consecution and safety through the opt_level=0 naive encoder,
        # independently of the (default, optimised) encoding that proved it.
        ts = _piped("pdr_ref")
        result = PdrEngine(ts, opt_level=2).prove("consistent")
        assert result.proven is True
        check = check_invariant(ts, "consistent", result.invariant, opt_level=0)
        assert check.valid

    def test_tampered_invariant_fails_recheck(self):
        ts = _piped("pdr_tamper")
        result = PdrEngine(ts).prove("consistent")
        assert result.proven is True
        # An invariant that forgets the strengthening clauses (keeps only
        # the property itself) must fail consecution.
        weak = [ts.properties["consistent"]]
        check = check_invariant(ts, "consistent", weak)
        assert not check.consecution
        assert not check.valid
        # And a nonsense clause breaks initiation.
        acc = ts.state_symbol("pdr_tamper_acc_a")
        bogus = [T.bv_eq(acc, T.bv_const(7, 4))]
        assert not check_invariant(ts, "consistent", bogus).initiation

    def test_constant_true_property(self):
        ts = _counter("pdr_triv", 5)
        ts.add_property("trivial", T.bv_true())
        result = PdrEngine(ts).prove("trivial")
        assert result.proven is True
        assert check_invariant(ts, "trivial", result.invariant).valid


class TestPdrRefutations:
    def test_buggy_counter_chain_is_executable(self):
        result = PdrEngine(_counter("pdr_bad", 5, buggy=True)).prove("bounded")
        assert result.proven is False
        chain = result.cex_chain
        assert chain is not None
        values = [step["pdr_bad_count"] for step in chain]
        # Concrete run: starts in the initial state, counts monotonically
        # by the enable input, ends past the limit.
        assert values[0] == 0
        assert values[-1] > 5
        for before, after in zip(values, values[1:]):
            assert after in (before, before + 1)

    def test_property_violated_at_init(self):
        ts = _counter("pdr_init", 5)
        ts.add_property("nonzero", T.bv_eq(ts.state_symbol("pdr_init_count"),
                                           T.bv_const(1, 4)))
        result = PdrEngine(ts).prove("nonzero")
        assert result.proven is False
        assert result.cex_chain is not None and len(result.cex_chain) == 1
        assert result.counterexample_length == 1

    def test_buggy_piped_matches_bmc_depth(self):
        result = PdrEngine(_piped("pdr_pbad", buggy=True)).prove("consistent")
        assert result.proven is False
        bmc = BmcEngine(_piped("pdr_pbad2", buggy=True)).check(
            "consistent", bound=10
        )
        assert bmc.holds is False
        # PDR's concretised chain can never undercut the shortest trace.
        assert len(result.cex_chain) >= bmc.trace.length


class TestPdrDifferential:
    @pytest.mark.parametrize("index", range(len(_SUITE)))
    def test_agrees_with_bmc_and_kinduction(self, index):
        factory, prop, expected_good = _SUITE[index]
        pdr_result = PdrEngine(factory(f"diff{index}a")).prove(prop)
        assert pdr_result.proven is (True if expected_good else False)
        bmc = BmcEngine(factory(f"diff{index}b")).check(prop, bound=10)
        if bmc.holds is False:
            assert pdr_result.proven is False
        kind = KInductionEngine(factory(f"diff{index}c")).prove(prop, max_k=6)
        if kind.proven is not None:
            assert pdr_result.proven is kind.proven

    def test_parallel_prove_matches_sequential(self):
        ts = _piped("pdr_par")
        ts.add_property("always", T.bv_true())
        names = list(ts.properties)
        parallel = prove_properties_parallel(ts, names, engine="pdr", jobs=2)
        for name in names:
            assert parallel[name].proven is PdrEngine(ts).prove(name).proven
            # The shipped invariant must be usable in the *parent* process:
            # terms are re-interned from the picklable cube form, so the
            # independent re-check has to pass on the parent's term graph.
            assert parallel[name].invariant is not None
            assert check_invariant(ts, name, parallel[name].invariant).valid


class TestPdrLimits:
    def test_frame_limit_gives_unknown(self):
        # The piped design needs at least two frames; a one-frame budget
        # must come back inconclusive, never wrong.
        result = PdrEngine(_piped("pdr_lim"), max_frames=1).prove("consistent")
        assert result.proven is None

    def test_conflict_budget_gives_unknown(self):
        result = PdrEngine(_piped("pdr_budget", xlen=8)).prove(
            "consistent", conflict_budget=1
        )
        assert result.proven is None

    def test_total_conflict_budget_gives_unknown(self):
        # The cumulative budget bounds the whole run, including the
        # propagation-only query storms a per-query budget cannot touch
        # (every query charges at least one unit).
        result = PdrEngine(_piped("pdr_total", xlen=8)).prove(
            "consistent", total_conflict_budget=3
        )
        assert result.proven is None

    def test_total_conflict_budget_large_enough_still_proves(self):
        result = PdrEngine(_piped("pdr_total_ok")).prove(
            "consistent", total_conflict_budget=2_000_000
        )
        assert result.proven is True

    def test_negative_total_conflict_budget_rejected(self):
        with pytest.raises(PdrError):
            PdrEngine(_piped("pdr_total_neg")).prove(
                "consistent", total_conflict_budget=-1
            )

    def test_unknown_property_rejected(self):
        with pytest.raises(PdrError):
            PdrEngine(_counter("pdr_unknown", 5)).prove("nope")

    def test_bad_max_frames_rejected(self):
        with pytest.raises(PdrError):
            PdrEngine(_counter("pdr_badmax", 5), max_frames=0)

    def test_generalize_off_still_proves(self):
        ts = _piped("pdr_nogen")
        result = PdrEngine(ts, generalize=False).prove("consistent")
        assert result.proven is True
        assert check_invariant(ts, "consistent", result.invariant).valid


class TestConflictQualityStack:
    """CTG generalisation, F_inf pushing and subsumption semantics."""

    def test_ctg_depth_zero_plain_mic_still_proves(self):
        # The fallback path (the CI leg pins REPRO_PDR_CTG=0): plain MIC
        # with no CTG blocking must keep proving and keep its invariants
        # independently re-checkable.
        for factory, prop, expected in [
            (lambda: _counter("pdr_ctg0_c", 5), "bounded", True),
            (lambda: _piped("pdr_ctg0_p"), "consistent", True),
            (lambda: _piped("pdr_ctg0_b", buggy=True), "consistent", False),
        ]:
            ts = factory()
            result = PdrEngine(ts, ctg_depth=0).prove(prop)
            assert result.proven is expected
            if expected:
                assert check_invariant(ts, prop, result.invariant).valid
            assert result.stats.ctgs_blocked == 0
            assert result.stats.literals_dropped_ctg == 0

    def test_ctg_depths_agree_and_certify(self):
        for depth in (1, 2):
            ts = _piped(f"pdr_ctgd{depth}")
            result = PdrEngine(ts, ctg_depth=depth).prove("consistent")
            assert result.proven is True
            assert check_invariant(ts, "consistent", result.invariant).valid

    def test_env_variable_sets_default_depth(self, monkeypatch):
        from repro.pdr.engine import default_ctg_depth

        monkeypatch.setenv("REPRO_PDR_CTG", "3")
        assert PdrEngine(_counter("pdr_env", 5)).ctg_depth == 3
        # An explicit argument always beats the environment.
        assert PdrEngine(_counter("pdr_env2", 5), ctg_depth=0).ctg_depth == 0
        monkeypatch.setenv("REPRO_PDR_CTG", "")
        assert default_ctg_depth() == 1
        monkeypatch.setenv("REPRO_PDR_CTG", "-1")
        with pytest.raises(PdrError, match="REPRO_PDR_CTG"):
            default_ctg_depth()
        monkeypatch.setenv("REPRO_PDR_CTG", "many")
        with pytest.raises(PdrError, match="REPRO_PDR_CTG"):
            default_ctg_depth()

    def test_negative_ctg_depth_rejected(self):
        with pytest.raises(PdrError, match="ctg_depth"):
            PdrEngine(_counter("pdr_negctg", 5), ctg_depth=-1)

    def test_drop_attribution_sums_to_total(self):
        result = PdrEngine(_piped("pdr_attrib")).prove("consistent")
        assert result.proven is True
        stats = result.stats
        assert stats.literals_dropped == (
            stats.literals_dropped_core
            + stats.literals_dropped_mic
            + stats.literals_dropped_ctg
        )
        # Generalisation must actually do something on this design.
        assert stats.literals_dropped > 0

    def test_inf_promoted_invariant_still_certifies(self):
        # Designs whose clauses are frame-independently inductive exercise
        # the F_inf promotion path; the invariant (which must include the
        # F_inf clauses) still has to pass the independent re-check.
        ts = _lockstep("pdr_inf")
        result = PdrEngine(ts).prove("consistent")
        assert result.proven is True
        assert check_invariant(ts, "consistent", result.invariant).valid


class TestPdrOnProcessorModel:
    """PDR on the real QED verification model of the scaled-down processor."""

    @pytest.fixture(scope="class")
    def golden_flow(self):
        isa = IsaConfig.small(xlen=4, num_regs=4)
        config = ProcessorConfig(isa=isa, supported_ops=("ADD", "SUB"))
        return SqedFlow(config)

    def test_bounded_run_never_fabricates_a_bug(self, golden_flow):
        # The golden design has no bug: however few frames PDR is allowed,
        # it must never report a counterexample.
        outcome = golden_flow.prove(None, engine="pdr", max_frames=3)
        assert outcome.proven is not False
        assert outcome.method == "SQED" and outcome.engine == "pdr"
        assert outcome.depth <= 3
        assert outcome.pdr_result is not None
        assert outcome.pdr_result.stats.consecution_queries > 0
        # The outcome must expose the exact model the engine ran on, so a
        # later proof's invariant can be independently re-checked.
        assert outcome.model is not None
        assert outcome.model.property_name in outcome.model.ts.properties

    @pytest.mark.slow
    def test_full_convergence_proof_with_checked_invariant(self):
        # The graduation run: *unbounded* PDR on a golden (bug-free) QED
        # processor model must converge to an inductive invariant on the
        # arena SAT kernel, and that invariant must pass the independent
        # opt_level=0 re-check.  The scaled-down golden configuration
        # (single-op ISA, depth-1 QED fifo) is the largest one whose proof
        # fits the tier-2 nightly budget: with the conflict-quality stack
        # it converges at frame 6 with a ~345-clause invariant (plain MIC
        # used to need frame 8 and ~900 clauses).  The full ADD+SUB op set
        # on the same depth-1 fifo — which plain MIC walled at frame 4 —
        # now converges too, but only inside the nightly bench-pdr-full
        # budget: it is covered by the committed BENCH_pdr.json convergence
        # row rather than a second slow test here.
        isa = IsaConfig.small(xlen=4, num_regs=4)
        config = ProcessorConfig(isa=isa, supported_ops=("ADD",))
        flow = SqedFlow(config, fifo_depth=1)
        outcome = flow.prove(None, engine="pdr", max_frames=12)
        assert outcome.proven is True
        pdr = outcome.pdr_result
        assert pdr is not None and pdr.invariant is not None
        # The outcome carries the model PDR ran on; a fresh build_model()
        # would mint new symbol names and vacuously fail the check.
        model = outcome.model
        check = check_invariant(
            model.ts, model.property_name, pdr.invariant, opt_level=0
        )
        assert check.initiation and check.consecution and check.safety
        assert check.valid

    def test_kinduction_engine_selectable(self, golden_flow):
        outcome = golden_flow.prove(None, engine="kinduction", max_k=1)
        assert outcome.proven is not False
        assert outcome.engine == "kinduction"
        assert outcome.kinduction_result is not None

    def test_unknown_engine_rejected(self, golden_flow):
        with pytest.raises(VerificationError):
            golden_flow.prove(None, engine="zz3")
