#!/usr/bin/env python
"""Repo self-lint: mechanical rules the test suite cannot express.

Two rules, each walking the AST of every ``.py`` file under the given
directories (default: ``benchmarks/`` and ``src/``):

**Wall-clock gating** (``benchmarks/`` only).  The dev and CI containers
frequently run on a single, heavily shared CPU, so any benchmark that
passes or fails based on elapsed time is flaky by construction.  The repo
rule is: benchmarks gate on *verdict equality* (and solver-internal
counters such as conflicts); wall-clock numbers are reported for
information only.  Flagged: each comparison whose operands mention a
timing quantity — an identifier, attribute, or string key matching
``seconds``, ``elapsed``, ``wall``, ``runtime``, ``duration``,
``speedup`` or ``perf_counter``.  The rule is scoped to benchmark roots:
``src/`` code may legitimately compare runtimes for *reporting* (e.g. the
figure harnesses' rendered tables).

Exemptions:

* comparisons against a literal ``0`` — the ``entry["seconds"] > 0``
  division-guard idiom measures nothing;
* lines carrying a ``# selflint: allow-wallclock`` comment — for gates
  that already guard themselves (e.g. the parallel speedup gate, which is
  skipped on single-CPU machines and in smoke mode).

**Environment reads** (everywhere).  Process-default knobs must resolve in
one designated config module per subsystem, so a knob's precedence
(explicit argument > environment > default) is auditable in one place and
workers inherit configuration through pickled config objects rather than
ambient environment state.  Flagged: any ``os.environ`` / ``os.getenv``
use outside the allowlisted config modules.  Lines carrying a
``# selflint: allow-env`` comment are exempt — for reads that genuinely
belong where they are (document why at the site).

Exit status: 0 when clean, 1 with a ``file:line`` listing otherwise.

Usage::

    python tools/selflint.py            # lints benchmarks/ and src/
    python tools/selflint.py benchmarks src tools
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: Deliberately excludes the bare word "time": it would false-positive on
#: ``timeout`` knobs and the ``time`` module name in non-gating code.
TIMING = re.compile(
    r"(seconds|elapsed|wall|runtime|duration|speedup|perf_counter)",
    re.IGNORECASE,
)

ALLOW_COMMENT = "selflint: allow-wallclock"
ALLOW_ENV_COMMENT = "selflint: allow-env"

#: Modules allowed to read the environment: one config resolver per
#: subsystem (compilation pipeline + absint, SAT backend, lint gate,
#: kernel sanitizer).  Matched as path suffixes.
ENV_ALLOWED_SUFFIXES = (
    "solve/pipeline.py",
    "solve/backend.py",
    "lint/gate.py",
    "sat/sanitize.py",
)


def _timing_words(node: ast.AST) -> list[str]:
    """Timing-flavoured identifiers/attributes/string keys under ``node``."""
    words: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and TIMING.search(sub.id):
            words.append(sub.id)
        elif isinstance(sub, ast.Attribute) and TIMING.search(sub.attr):
            words.append(sub.attr)
        elif (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and TIMING.search(sub.value)
        ):
            words.append(sub.value)
    return words


def _is_zero_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


def _check_wallclock(
    tree: ast.AST, lines: list[str]
) -> list[tuple[int, str]]:
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        words = _timing_words(node)
        if not words:
            continue
        if any(_is_zero_literal(c) for c in [node.left, *node.comparators]):
            continue  # division/emptiness guard, not a gate
        line_text = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if ALLOW_COMMENT in line_text:
            continue
        unique = sorted(set(words))
        violations.append(
            (
                node.lineno,
                f"comparison gates on wall-clock quantity {unique}; "
                "benchmarks must gate on verdicts, never timing "
                f"(suppress with '# {ALLOW_COMMENT}' if self-guarded)",
            )
        )
    return violations


def _is_os_env_use(node: ast.AST) -> bool:
    """``os.environ`` (any use: .get, subscript, ``in``) or ``os.getenv``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr in ("environ", "getenv")
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


def _check_env_reads(
    tree: ast.AST, lines: list[str], path: Path
) -> list[tuple[int, str]]:
    posix = path.as_posix()
    if any(posix.endswith(suffix) for suffix in ENV_ALLOWED_SUFFIXES):
        return []
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not _is_os_env_use(node):
            continue
        line_text = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if ALLOW_ENV_COMMENT in line_text:
            continue
        violations.append(
            (
                node.lineno,
                "direct environment read outside a config module; resolve "
                "the knob in its subsystem's config resolver "
                f"({', '.join(ENV_ALLOWED_SUFFIXES)}) or suppress with "
                f"'# {ALLOW_ENV_COMMENT}'",
            )
        )
    return violations


def _check_file(path: Path, wallclock: bool) -> list[tuple[int, str]]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]
    lines = source.splitlines()

    violations: list[tuple[int, str]] = []
    if wallclock:
        violations.extend(_check_wallclock(tree, lines))
    violations.extend(_check_env_reads(tree, lines, path))
    return sorted(violations)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    roots = [Path(a) for a in args] or [Path("benchmarks"), Path("src")]

    files: list[tuple[Path, bool]] = []
    for root in roots:
        # The wall-clock rule only applies to benchmark code; everything
        # else is still subject to the environment-read rule.
        wallclock = "src" not in root.parts
        if root.is_file():
            files.append((root, wallclock))
        elif root.is_dir():
            files.extend((p, wallclock) for p in sorted(root.rglob("*.py")))
        else:
            print(f"selflint: no such path: {root}", file=sys.stderr)
            return 2

    total = 0
    for path, wallclock in files:
        for lineno, message in _check_file(path, wallclock):
            print(f"{path}:{lineno}: {message}")
            total += 1
    if total:
        print(f"selflint: {total} violation(s)", file=sys.stderr)
        return 1
    print(f"selflint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
