#!/usr/bin/env python
"""Repo self-lint: benchmarks must never gate on wall-clock.

The dev and CI containers frequently run on a single, heavily shared CPU,
so any benchmark that passes or fails based on elapsed time is flaky by
construction.  The repo rule is: benchmarks gate on *verdict equality*
(and solver-internal counters such as conflicts); wall-clock numbers are
reported for information only.

This script enforces the rule mechanically.  It walks the AST of every
``.py`` file under the given directories (default: ``benchmarks/``) and
flags each comparison whose operands mention a timing quantity — an
identifier, attribute, or string key matching ``seconds``, ``elapsed``,
``wall``, ``runtime``, ``duration``, ``speedup`` or ``perf_counter``.

Exemptions:

* comparisons against a literal ``0`` — the ``entry["seconds"] > 0``
  division-guard idiom measures nothing;
* lines carrying a ``# selflint: allow-wallclock`` comment — for gates
  that already guard themselves (e.g. the parallel speedup gate, which is
  skipped on single-CPU machines and in smoke mode).

Exit status: 0 when clean, 1 with a ``file:line`` listing otherwise.

Usage::

    python tools/selflint.py            # lints benchmarks/
    python tools/selflint.py benchmarks tests
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: Deliberately excludes the bare word "time": it would false-positive on
#: ``timeout`` knobs and the ``time`` module name in non-gating code.
TIMING = re.compile(
    r"(seconds|elapsed|wall|runtime|duration|speedup|perf_counter)",
    re.IGNORECASE,
)

ALLOW_COMMENT = "selflint: allow-wallclock"


def _timing_words(node: ast.AST) -> list[str]:
    """Timing-flavoured identifiers/attributes/string keys under ``node``."""
    words: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and TIMING.search(sub.id):
            words.append(sub.id)
        elif isinstance(sub, ast.Attribute) and TIMING.search(sub.attr):
            words.append(sub.attr)
        elif (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and TIMING.search(sub.value)
        ):
            words.append(sub.value)
    return words


def _is_zero_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


def _check_file(path: Path) -> list[tuple[int, str]]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]
    lines = source.splitlines()

    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        words = _timing_words(node)
        if not words:
            continue
        if any(_is_zero_literal(c) for c in [node.left, *node.comparators]):
            continue  # division/emptiness guard, not a gate
        line_text = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if ALLOW_COMMENT in line_text:
            continue
        unique = sorted(set(words))
        violations.append(
            (
                node.lineno,
                f"comparison gates on wall-clock quantity {unique}; "
                "benchmarks must gate on verdicts, never timing "
                f"(suppress with '# {ALLOW_COMMENT}' if self-guarded)",
            )
        )
    return violations


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    roots = [Path(a) for a in args] or [Path("benchmarks")]

    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            print(f"selflint: no such path: {root}", file=sys.stderr)
            return 2

    total = 0
    for path in files:
        for lineno, message in _check_file(path):
            print(f"{path}:{lineno}: {message}")
            total += 1
    if total:
        print(f"selflint: {total} violation(s)", file=sys.stderr)
        return 1
    print(f"selflint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
