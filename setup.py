"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in the
offline evaluation environment, where the ``wheel`` package (required for
PEP 660 editable installs) is not available.
"""

from setuptools import setup

setup()
