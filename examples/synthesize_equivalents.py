#!/usr/bin/env python3
"""Synthesize semantically equivalent programs with HPF-CEGIS.

This example runs the paper's HPF-CEGIS (Algorithm 1) and the iterative
CEGIS baseline on a few original instructions and prints the programs they
find together with the time each algorithm needed — a miniature version of
the Figure 3 experiment.

Run with:  python examples/synthesize_equivalents.py [MNEMONIC ...]
"""

from __future__ import annotations

import sys

from repro import CegisConfig, HpfCegis, IterativeCegis, IsaConfig, build_default_library
from repro.synth.spec import spec_from_instruction


def main() -> None:
    cases = [name.upper() for name in sys.argv[1:]] or ["SUB", "XOR", "AND"]
    isa = IsaConfig.small(xlen=8, num_regs=8)
    library = build_default_library(isa)
    print(f"component library: {len(library)} components "
          f"(10 NIC + 10 DIC + 9 CIC), datapath {isa.xlen} bits\n")

    cegis_config = CegisConfig(max_iterations=12)
    hpf = HpfCegis(library, multiset_size=3, target_programs=1,
                   cegis_config=cegis_config, max_multisets=60)
    iterative = IterativeCegis(library, multiset_size=3, target_programs=1,
                               cegis_config=cegis_config, max_multisets=60)

    for case in cases:
        spec = spec_from_instruction(case, isa)
        hpf_run = hpf.synthesize_for(spec)
        it_run = iterative.synthesize_for(spec)
        print(f"=== {case} ===")
        print(f"  HPF-CEGIS:       {hpf_run.elapsed_seconds:6.2f}s, "
              f"{hpf_run.multisets_tried} multisets tried, "
              f"{len(hpf_run.programs)} program(s)")
        print(f"  iterative CEGIS: {it_run.elapsed_seconds:6.2f}s, "
              f"{it_run.multisets_tried} multisets tried, "
              f"{len(it_run.programs)} program(s)")
        if hpf_run.programs:
            print("  best HPF program:")
            for line in hpf_run.best_program().describe().splitlines():
                print("   ", line)
        print()


if __name__ == "__main__":
    main()
