#!/usr/bin/env python3
"""Quickstart: detect a single-instruction bug that classic SQED cannot see.

This example reproduces the core claim of the paper on a scaled-down DUV:

1. build a pipelined processor with an injected single-instruction bug
   (ADD computes ``a + b + 1``),
2. run classic SQED (EDDI-V duplication) — the self-consistency property
   holds, the bug is invisible,
3. run SEPE-SQED (EDSEP-V with a semantically equivalent program for ADD) —
   the consistency property fails and we get a concrete bug trace.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    IsaConfig,
    ProcessorConfig,
    SepeSqedFlow,
    SqedFlow,
    default_equivalent_programs,
    get_bug,
    pool_for_bug,
)


def main() -> None:
    # A narrow datapath keeps the pure-Python SAT backend fast; the flow is
    # identical at XLEN=32 (see DESIGN.md for the substitution notes).
    isa = IsaConfig.small(xlen=8, num_regs=8)

    # The equivalent programs SEPE-SQED dispatches instead of duplicates.
    equivalents = default_equivalent_programs(isa)
    print("equivalent program used for ADD:")
    print(equivalents["ADD"].describe())
    print()

    bug = get_bug("single_add_off_by_one")
    pool = pool_for_bug(bug, equivalents)
    config = ProcessorConfig(isa=isa, supported_ops=pool)
    print(f"injected bug: {bug.description}")
    print(f"DUV instruction pool: {', '.join(pool)}")
    print()

    print("running classic SQED (EDDI-V)...")
    sqed_outcome = SqedFlow(config).run(bug, bound=6)
    print(f"  property violated: {bool(sqed_outcome.detected)} "
          f"(expected False - the bug hits original and duplicate identically)")

    print("running SEPE-SQED (EDSEP-V)...")
    sepe_outcome = SepeSqedFlow(config).run(bug, bound=9)
    print(f"  property violated: {bool(sepe_outcome.detected)} "
          f"(expected True), counterexample length: {sepe_outcome.counterexample_length} cycles, "
          f"runtime {sepe_outcome.runtime_seconds:.1f}s")

    if sepe_outcome.trace is not None:
        print()
        print("bug trace (QED module inputs per cycle):")
        signals = [name for name in sorted(sepe_outcome.trace.steps[0].inputs)]
        print(sepe_outcome.trace.render(signals))


if __name__ == "__main__":
    main()
