#!/usr/bin/env python3
"""Export a SEPE-SQED verification model to BTOR2.

The paper's toolchain hands a BTOR2 file (produced by Yosys from the RTL
plus the QED module) to the Pono model checker.  This example builds the
same artifact from our symbolic models: the DUV with the EDSEP-V module
attached, its constraints and the universal consistency property, written
as a ``.btor2`` file that any BTOR2-compliant checker could consume.

Run with:  python examples/export_btor2.py [OUTPUT.btor2]
"""

from __future__ import annotations

import sys

from repro import (
    IsaConfig,
    ProcessorConfig,
    default_equivalent_programs,
    get_bug,
    pool_for_bug,
    parse_btor2,
    write_btor2,
)
from repro.core.flow import SepeSqedFlow


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "sepe_sqed_model.btor2"
    isa = IsaConfig.small(xlen=8, num_regs=8)
    equivalents = default_equivalent_programs(isa)
    bug = get_bug("single_xor_as_or")
    pool = pool_for_bug(bug, equivalents)
    config = ProcessorConfig(isa=isa, supported_ops=pool)

    model = SepeSqedFlow(config).build_model(bug)
    text = write_btor2(model.ts)
    with open(output, "w") as handle:
        handle.write(text)

    lines = text.count("\n")
    states = sum(1 for line in text.splitlines() if " state " in line)
    print(f"wrote {output}: {lines} BTOR2 lines, {states} state variables, "
          f"property {model.property_name!r}")

    # Round-trip sanity check: parse it back and compare the state count.
    parsed = parse_btor2(text, name="roundtrip")
    assert len(parsed.states) == len(model.ts.states)
    print("round-trip parse OK (state count matches)")


if __name__ == "__main__":
    main()
