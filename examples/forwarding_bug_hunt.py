#!/usr/bin/env python3
"""Hunt a multiple-instruction (forwarding) bug with both methods.

Multiple-instruction bugs need a *sequence* of dependent instructions to
fire — exactly what SQED-style symbolic exploration is good at.  This
example injects a missing-forwarding bug into the pipeline, runs SQED and
SEPE-SQED, and compares detection time and counterexample length (the
Figure 4 comparison for a single bug).

Run with:  python examples/forwarding_bug_hunt.py [BUG_NAME]
"""

from __future__ import annotations

import sys

from repro import (
    IsaConfig,
    ProcessorConfig,
    SepeSqedFlow,
    SqedFlow,
    default_equivalent_programs,
    get_bug,
    multiple_instruction_bugs,
    pool_for_bug,
)


def main() -> None:
    bug_name = sys.argv[1] if len(sys.argv) > 1 else "multi_no_forward_ex_rs1"
    bug = get_bug(bug_name)
    print("known multiple-instruction bugs:")
    for candidate in multiple_instruction_bugs():
        marker = "->" if candidate.name == bug.name else "  "
        print(f" {marker} {candidate.name}: {candidate.description}")
    print()

    isa = IsaConfig.small(xlen=8, num_regs=8)
    equivalents = default_equivalent_programs(isa)
    pool = pool_for_bug(bug, equivalents, extra_ops=bug.recommended_pool)
    config = ProcessorConfig(isa=isa, supported_ops=pool)
    print(f"injected bug: {bug.description}")
    print(f"DUV instruction pool: {', '.join(pool)}\n")

    sqed = SqedFlow(config).run(bug, bound=8)
    sepe = SepeSqedFlow(config).run(bug, bound=8)

    for name, outcome in (("SQED", sqed), ("SEPE-SQED", sepe)):
        status = "detected" if outcome.detected else "not detected"
        length = outcome.counterexample_length or "-"
        print(f"{name:10s}: {status}, trace length {length}, "
              f"runtime {outcome.runtime_seconds:.1f}s")

    if sqed.counterexample_length and sepe.counterexample_length:
        ratio = sqed.counterexample_length / sepe.counterexample_length
        print(f"\ncounterexample length ratio SQED / SEPE-SQED: {ratio:.2f} "
              "(>1 means SEPE-SQED found the shorter trace)")


if __name__ == "__main__":
    main()
