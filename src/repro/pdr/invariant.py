"""Independent re-checking of PDR-produced inductive invariants.

A proof is only as trustworthy as its certificate.  :func:`check_invariant`
takes the clause list a :class:`~repro.pdr.engine.PdrEngine` emitted and
re-verifies, on **fresh** solver contexts and (by default) the
``opt_level=0`` naive Tseitin reference encoding, the three obligations
that make ``Inv = /\\ clauses`` an inductive strengthening of property
``P`` under the system's global constraints ``C``:

* **initiation** — ``Init ∧ C ∧ ¬Inv`` is UNSAT,
* **consecution** — ``Inv ∧ C ∧ T ∧ C' ∧ ¬Inv'`` is UNSAT,
* **safety** — ``Inv ∧ C ∧ ¬P`` is UNSAT.

Nothing of the engine's incremental machinery (activation variables,
frames, learned clauses) is reused, so a bug there cannot vouch for
itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import PdrError
from repro.smt import terms as T
from repro.smt.evaluator import substitute
from repro.smt.terms import BV
from repro.solve.context import SolverContext
from repro.ts.system import TransitionSystem


@dataclass
class InvariantCheck:
    """Result of independently re-checking an inductive invariant."""

    initiation: bool
    consecution: bool
    safety: bool
    num_clauses: int = 0

    @property
    def valid(self) -> bool:
        return self.initiation and self.consecution and self.safety

    def __bool__(self) -> bool:
        return self.valid


def check_invariant(
    ts: TransitionSystem,
    property_name: str,
    clauses: Iterable[BV],
    backend: str = "cdcl",
    opt_level: Optional[int] = 0,
) -> InvariantCheck:
    """Re-check that ``clauses`` form an inductive invariant proving the property.

    ``clauses`` are width-1 terms over the state symbols of ``ts`` (what
    :class:`~repro.pdr.engine.PdrResult` carries in ``invariant``).  The
    default ``opt_level=0`` runs the three queries through the naive
    reference encoding, deliberately avoiding the AIG/preprocessing path
    the prover itself used.
    """
    ts.validate()
    if property_name not in ts.properties:
        raise PdrError(f"unknown property {property_name!r}")
    clause_list = list(clauses)
    for clause in clause_list:
        if clause.width != 1:
            raise PdrError(f"invariant clauses must have width 1, got {clause.width}")
    prop = ts.properties[property_name]

    curr_map: dict[BV, BV] = {}
    for state in ts.states:
        curr_map[state.symbol] = T.fresh_var(f"invchk_{state.name}", state.width)
    input_map: dict[BV, BV] = {}
    next_input_map: dict[BV, BV] = {}
    for symbol in ts.inputs:
        assert symbol.name is not None
        input_map[symbol] = T.fresh_var(f"invchk_in_{symbol.name}", symbol.width)
        next_input_map[symbol] = T.fresh_var(f"invchk_in1_{symbol.name}", symbol.width)
    full_curr = {**curr_map, **input_map}

    next_map: dict[BV, BV] = dict(next_input_map)
    for state in ts.states:
        assert state.next is not None
        next_map[state.symbol] = substitute(state.next, full_curr)

    inv = T.bv_and_all([substitute(c, full_curr) for c in clause_list]) \
        if clause_list else T.bv_true()
    inv_next = T.bv_and_all([substitute(c, next_map) for c in clause_list]) \
        if clause_list else T.bv_true()
    constraints_curr = [substitute(c, full_curr) for c in ts.constraints]
    constraints_next = [substitute(c, next_map) for c in ts.constraints]

    init_parts = []
    for state in ts.states:
        if state.init is not None:
            init_parts.append(
                T.bv_eq(curr_map[state.symbol], substitute(state.init, full_curr))
            )
    init_term = T.bv_and_all(init_parts) if init_parts else T.bv_true()

    def unsat(assertions: list[BV]) -> bool:
        context = SolverContext(backend=backend, opt_level=opt_level)
        for term in assertions:
            context.add(term)
        result = context.check(need_model=False)
        return result.satisfiable is False

    initiation = unsat([init_term, *constraints_curr, T.bv_not(inv)])
    consecution = unsat(
        [inv, *constraints_curr, *constraints_next, T.bv_not(inv_next)]
    )
    safety = unsat([inv, *constraints_curr, substitute(T.bv_not(prop), full_curr)])
    return InvariantCheck(
        initiation=initiation,
        consecution=consecution,
        safety=safety,
        num_clauses=len(clause_list),
    )
