"""IC3/PDR unbounded model checking (:mod:`repro.pdr`).

Built on the failed-assumption-core capability of the SAT layer:

* :class:`PdrEngine` / :class:`PdrResult` — incremental-induction proof
  engine over four persistent solver contexts (consecution, bad-state,
  initiation, lifting), with core-driven inductive generalisation and
  invariant extraction on convergence;
* :func:`check_invariant` / :class:`InvariantCheck` — independent
  re-verification of an emitted invariant (initiation, consecution,
  safety) on fresh contexts through the naive reference encoding;
* :mod:`repro.pdr.designs` — the tractable baseline design suite shared
  by the tests and ``benchmarks/bench_pdr.py``.
"""

from repro.pdr.engine import (
    Cube,
    CubeLit,
    PdrEngine,
    PdrResult,
    PdrStats,
    cube_clause_term,
)
from repro.pdr.invariant import InvariantCheck, check_invariant

__all__ = [
    "Cube",
    "CubeLit",
    "InvariantCheck",
    "PdrEngine",
    "PdrResult",
    "PdrStats",
    "check_invariant",
    "cube_clause_term",
]
