"""The baseline design suite for unbounded proving.

Small, fully tractable transition systems — each with a bug-free baseline
and an injectable bug — shared by the PDR test suite and
``benchmarks/bench_pdr.py`` so the benchmark's correctness gate can never
drift from what the tests verify:

* :func:`saturating_counter` — the classic bounded-counter safety property;
* :func:`lockstep_accumulators` — two duplicated datapaths in lockstep
  with a QED-style self-consistency property (SQED in miniature);
* :func:`pipelined_accumulators` — the lockstep pair behind a two-stage
  pipeline, where the consistency property is *not* inductive on its own
  and the prover has to discover the pipeline-register-equality
  strengthening.

``prefix`` namespaces the state/input variable names: bit-vector variables
are interned globally by name, so two systems built from the same factory
must use distinct prefixes.
"""

from __future__ import annotations

from repro.smt import terms as T
from repro.smt.terms import BV
from repro.ts.system import TransitionSystem


def saturating_counter(
    prefix: str, limit: int = 5, buggy: bool = False
) -> TransitionSystem:
    """Saturating 4-bit counter; the buggy variant drops the saturation.

    Property ``bounded``: the count never exceeds ``limit``.
    """
    ts = TransitionSystem(name=f"{prefix}_counter")
    count = ts.add_state(f"{prefix}_count", 4, init=0)
    enable = ts.add_input(f"{prefix}_enable", 1)
    incremented = T.bv_add(count, T.bv_const(1, 4))
    if buggy:
        next_count = T.bv_ite(T.bv_eq(enable, T.bv_true()), incremented, count)
    else:
        at_limit = T.bv_ule(T.bv_const(limit, 4), count)
        next_count = T.bv_ite(
            T.bv_and(T.bv_eq(enable, T.bv_true()), T.bv_not(at_limit)),
            incremented,
            count,
        )
    ts.set_next(count, next_count)
    ts.add_property("bounded", T.bv_ule(count, T.bv_const(limit, 4)))
    return ts


def lockstep_accumulators(
    prefix: str, xlen: int = 4, buggy: bool = False
) -> TransitionSystem:
    """Two duplicated saturating accumulators in lockstep (QED in miniature).

    Property ``consistent``: the copies agree.  The buggy copy drops the
    overflow saturation, so the copies drift exactly when an addition
    overflows.
    """
    ts = TransitionSystem(name=f"{prefix}_lockstep")
    a = ts.add_state(f"{prefix}_acc_a", xlen, init=0)
    b = ts.add_state(f"{prefix}_acc_b", xlen, init=0)
    op = ts.add_input(f"{prefix}_op", 1)
    val = ts.add_input(f"{prefix}_val", xlen)
    limit = T.bv_const((1 << xlen) - 2, xlen)

    def step(acc: BV, saturate: bool) -> BV:
        added = T.bv_add(acc, val)
        overflow = T.bv_ult(added, acc)
        if saturate:
            added = T.bv_ite(overflow, limit, added)
        return T.bv_ite(T.bv_eq(op, T.bv_true()), T.bv_const(0, xlen), added)

    ts.set_next(a, step(a, saturate=True))
    ts.set_next(b, step(b, saturate=not buggy))
    ts.add_property("consistent", T.bv_eq(a, b))
    return ts


def pipelined_accumulators(
    prefix: str, xlen: int = 4, buggy: bool = False
) -> TransitionSystem:
    """Two-stage pipelined duplicated accumulators.

    Stage 1 latches the operand, stage 2 commits it.  Property
    ``consistent`` only mentions the architectural accumulators, so a
    proof must *discover* the pipeline-register-equality strengthening
    (the property is not 1-inductive).  The bug drops copy B's operand
    latch whenever a commit fires in the same cycle.
    """
    ts = TransitionSystem(name=f"{prefix}_piped")
    acc_a = ts.add_state(f"{prefix}_acc_a", xlen, init=0)
    acc_b = ts.add_state(f"{prefix}_acc_b", xlen, init=0)
    pipe_a = ts.add_state(f"{prefix}_pipe_a", xlen, init=0)
    pipe_b = ts.add_state(f"{prefix}_pipe_b", xlen, init=0)
    valid = ts.add_state(f"{prefix}_valid", 1, init=0)
    en = ts.add_input(f"{prefix}_en", 1)
    val = ts.add_input(f"{prefix}_val", xlen)
    enabled = T.bv_eq(en, T.bv_true())
    committing = T.bv_eq(valid, T.bv_true())
    ts.set_next(pipe_a, T.bv_ite(enabled, val, pipe_a))
    next_pipe_b = T.bv_ite(enabled, val, pipe_b)
    if buggy:
        next_pipe_b = T.bv_ite(committing, pipe_b, next_pipe_b)
    ts.set_next(pipe_b, next_pipe_b)
    ts.set_next(valid, T.bv_ite(enabled, T.bv_true(), T.bv_false()))
    ts.set_next(acc_a, T.bv_ite(committing, T.bv_add(acc_a, pipe_a), acc_a))
    ts.set_next(acc_b, T.bv_ite(committing, T.bv_add(acc_b, pipe_b), acc_b))
    ts.add_property("consistent", T.bv_eq(acc_a, acc_b))
    return ts
