"""IC3/PDR: unbounded safety proofs by incremental induction.

The engine maintains a sequence of *frames* ``F_0 .. F_N`` — over-
approximations of the states reachable in at most ``i`` steps, with
``F_0 = Init`` — each represented as a set of blocked cubes (their negated
clauses).  Bad states found at the frontier spawn *proof obligations* that
are pushed backwards through the frames; an obligation that reaches frame 0
(or whose state turns out to lie in ``Init``) is a real counterexample,
while an obligation refuted by a *relative induction* query is blocked and
generalised into a stronger clause.  When a propagation pass leaves some
frame identical to its successor, that frame is an inductive invariant and
the property is proven for **all** depths.

Everything runs on the PR-1 incremental substrate:

* four persistent :class:`~repro.solve.context.SolverContext` instances
  (consecution, bad-state, initiation, bad-state lifting) keep their
  learned clauses across the thousands of queries a run makes;
* frames are *activation variables*: a clause blocked at frame ``i`` is
  asserted as ``act_i -> clause`` and every query simply assumes the
  activation variables of the frames it reads — no solver rebuild, ever;
* inductive generalisation is driven by **failed-assumption cores**: the
  cube literals of a refuted obligation are passed as per-literal
  assumptions, and the solver's final-conflict analysis reports which of
  them the refutation actually needed — the rest are dropped for free.

Frames use the standard *delta encoding*: each cube is stored only at the
highest frame whose relative-induction query blocks it, and ``F_i`` is the
union of the cubes stored at frames ``>= i`` (frames weaken monotonically).

On top of the base loop sits a *conflict-quality stack* aimed at proving
the deep full-model QED properties:

* **CTG-aware generalisation** — when a MIC drop trial fails, the
  counterexample-to-generalisation its model exposes is itself blocked at
  the preceding frame (recursively, bounded by ``ctg_depth``) before the
  trial is retried;
* an **infinite frame** ``F_inf`` — a successful propagation push whose
  failed-assumption core names no finite frame's activation variable has
  proven its clause inductive outright; it is promoted to a permanently
  assumed frame and never pushed again;
* **clause subsumption** — a newly learned cube retires every stored cube
  it subsumes, keeping the frame stores (and the propagation passes over
  them) small;
* **seeded lemmas** — candidate cubes supplied by the caller (by default
  the per-latch facts of the :mod:`repro.absint` fixpoint) are admitted
  into ``F_inf`` before the main loop, but only after an Init-disjointness
  check and a joint consecution fixpoint over the candidate set, so an
  unsound seed can never influence a verdict.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.bmc.engine import prepare_property_system
from repro.errors import PdrError
from repro.sat.solver import SolverStats
from repro.smt import terms as T
from repro.smt.evaluator import evaluate, free_variables, substitute
from repro.smt.terms import BV
from repro.solve.context import SolverContext
from repro.solve.pipeline import PipelineConfig
from repro.ts.system import TransitionSystem

#: A cube literal: state variable name, bit index, required value.
CubeLit = tuple[str, int, bool]

#: A cube — a partial assignment of state bits, as a sorted literal tuple.
Cube = tuple[CubeLit, ...]

#: Environment variable setting the process-default CTG recursion depth.
ENV_PDR_CTG = "REPRO_PDR_CTG"
#: Default CTG recursion depth (0 = plain MIC, no CTG handling).
DEFAULT_CTG_DEPTH = 1
#: CTG blocking attempts per failed generalisation trial before giving up
#: on the literal.
_MAX_CTGS = 3


def default_ctg_depth() -> int:
    """The process default CTG depth: ``$REPRO_PDR_CTG`` when set, else 1."""
    raw = os.environ.get(ENV_PDR_CTG)  # selflint: allow-env
    if raw is None or raw.strip() == "":
        return DEFAULT_CTG_DEPTH
    try:
        value = int(raw)
    except ValueError:
        raise PdrError(f"{ENV_PDR_CTG} must be a non-negative integer, got {raw!r}")
    if value < 0:
        raise PdrError(f"{ENV_PDR_CTG} must be a non-negative integer, got {raw!r}")
    return value


def resolve_ctg_depth(ctg_depth: Optional[int]) -> int:
    """Normalise a ``ctg_depth`` argument (``None`` = process default)."""
    if ctg_depth is None:
        return default_ctg_depth()
    if ctg_depth < 0:
        raise PdrError(f"ctg_depth must be >= 0, got {ctg_depth}")
    return int(ctg_depth)


def cube_clause_term(ts: TransitionSystem, cube: Cube) -> BV:
    """The blocked cube's clause ``¬cube`` over ``ts``'s state symbols.

    Also the bridge for results that crossed a process boundary: cubes are
    plain picklable tuples, while ``BV`` terms are interned per process and
    must be rebuilt on arrival (see
    :func:`repro.par.bmc.prove_properties_parallel`).
    """
    parts = []
    for name, bit, value in cube:
        term = T.bv_extract(ts.state_symbol(name), bit, bit)
        parts.append(T.bv_not(term) if value else term)
    return T.bv_or_all(parts)


@dataclass
class PdrStats:
    """Work counters of one IC3/PDR run."""

    bad_queries: int = 0
    consecution_queries: int = 0
    init_queries: int = 0
    lift_queries: int = 0
    obligations: int = 0
    cubes_blocked: int = 0
    clauses_pushed: int = 0
    #: Literals removed by the blocking query's own failed-assumption core.
    literals_dropped_core: int = 0
    #: Literals removed by MIC drop trials (including their chained cores).
    literals_dropped_mic: int = 0
    #: Literals removed by drop trials that only went through after blocking
    #: one or more counterexamples-to-generalisation.
    literals_dropped_ctg: int = 0
    #: Counterexamples-to-generalisation blocked at a preceding frame.
    ctgs_blocked: int = 0
    #: Stored clauses retired because a newly added clause subsumes them.
    clauses_subsumed: int = 0
    #: Clauses promoted to the infinite frame (inductive without any
    #: frame's help — they hold at every depth and are never re-pushed).
    clauses_pushed_inf: int = 0
    #: Seeded candidate lemmas that survived the Init-disjointness and
    #: joint-consecution filter and entered ``F_inf`` before the main loop.
    seed_lemmas_admitted: int = 0
    #: Seeded candidates dropped by the filter (or malformed for this
    #: system, e.g. naming a state outside the property's cone).
    seed_lemmas_rejected: int = 0
    solver_stats: SolverStats = field(default_factory=SolverStats)

    @property
    def literals_dropped(self) -> int:
        """Total literals removed by generalisation, over all attributions."""
        return (
            self.literals_dropped_core
            + self.literals_dropped_mic
            + self.literals_dropped_ctg
        )


@dataclass
class PdrResult:
    """Outcome of an IC3/PDR proof attempt.

    ``proven`` is ``True`` when an inductive invariant was found (the
    property holds at *every* depth), ``False`` when a concrete
    counterexample trace exists, and ``None`` when the engine gave up
    (frame limit or conflict budget).

    On success ``invariant`` holds the clauses of the inductive frame as
    width-1 terms over the *state symbols* of the transition system; their
    conjunction ``Inv`` satisfies — under the system's global constraints —
    initiation (``Init => Inv``), consecution (``Inv ∧ T => Inv'``) and
    safety (``Inv => P``).  Re-check it independently with
    :func:`repro.pdr.invariant.check_invariant`.

    On failure ``cex_chain`` is a list of full state assignments (name ->
    value) from an initial state to a property-violating state.
    """

    proven: Optional[bool]
    property_name: str
    frames_explored: int = 0
    invariant: Optional[list[BV]] = None
    #: The same invariant as picklable ``(state, bit, value)`` cubes (one
    #: blocked cube per clause).  Unlike the ``BV`` terms — which are
    #: interned per process and must never cross a fork boundary — this
    #: form survives pickling; rebuild the terms with
    #: :func:`cube_clause_term`.
    invariant_cubes: Optional[list[Cube]] = None
    #: Frame index that became inductive (informational).
    invariant_frame: Optional[int] = None
    cex_chain: Optional[list[dict[str, int]]] = None
    elapsed_seconds: float = 0.0
    stats: PdrStats = field(default_factory=PdrStats)

    @property
    def invariant_term(self) -> Optional[BV]:
        """The invariant clauses conjoined into a single width-1 term."""
        if self.invariant is None:
            return None
        return T.bv_and_all(self.invariant) if self.invariant else T.bv_true()

    @property
    def counterexample_length(self) -> Optional[int]:
        return None if self.cex_chain is None else len(self.cex_chain)


class _GiveUp(Exception):
    """Internal: a query exhausted its conflict budget."""


class _Obligation:
    """A cube of states that must be excluded from a frame, or traced to Init.

    ``cube`` may be *lifted* (partial): every state in it steps — under the
    inputs its lifting query fixed — into the successor obligation's cube.
    ``state`` keeps the concrete solver model the cube was extracted from.
    """

    __slots__ = ("cube", "frame", "state", "successor")

    def __init__(
        self,
        cube: Cube,
        frame: int,
        state: dict[str, int],
        successor: "Optional[_Obligation]" = None,
    ):
        self.cube = cube
        self.frame = frame
        self.state = state
        #: The obligation this cube is a predecessor of (towards the
        #: property violation); ``None`` for the bad cube itself.
        self.successor = successor


class PdrEngine:
    """Prove (or refute) safety properties with IC3/PDR.

    ``max_frames`` bounds the number of frames explored before giving up
    (``proven=None``); ``generalize=False`` disables the extra literal-
    dropping pass after the core-driven drop (the core drop itself is free
    and always on).  ``ctg_depth`` bounds the recursion of CTG-aware
    generalisation: when a MIC drop trial fails, the counterexample-to-
    generalisation is itself blocked at the preceding frame (up to
    ``_MAX_CTGS`` attempts per trial, recursing up to ``ctg_depth``) before
    the literal is abandoned.  Depth 0 is the plain MIC fallback; ``None``
    resolves through the ``REPRO_PDR_CTG`` environment variable (default
    1).  ``conflict_budget`` caps each individual SAT query;
    ``total_conflict_budget`` caps the *cumulative* effort of the whole run
    (each query charges its conflicts plus one, so propagation-only query
    storms count too) — the knob campaign drivers use to bound a run whose
    individual queries are all cheap but whose obligation count is not (the
    QED processor models produce exactly that shape).  Exhausting either
    budget aborts the run with ``proven=None``.

    ``seed_lemmas`` supplies candidate cubes whose negated clauses are
    *offered* to the infinite frame before the main loop.  ``None`` (the
    default) derives them from the :mod:`repro.absint` fixpoint when the
    pipeline's ``absint`` knob is on; pass an empty iterable to disable
    seeding outright.  Candidates are only *candidates*: each one must be
    disjoint from ``Init`` and the set must pass a joint consecution
    fixpoint (see ``_PdrRun._admit_seed_lemmas``) before admission, so a
    wrong seed costs a few queries but can never unsoundly strengthen the
    proof.
    """

    def __init__(
        self,
        ts: TransitionSystem,
        backend: str = "cdcl",
        opt_level: "PipelineConfig | int | None" = None,
        max_frames: int = 100,
        generalize: bool = True,
        ctg_depth: Optional[int] = None,
        seed_lemmas: Optional[Iterable[Cube]] = None,
    ):
        ts.validate()
        if max_frames < 1:
            raise PdrError(f"max_frames must be >= 1, got {max_frames}")
        self.ts = ts
        self.backend = backend
        self.pipeline = PipelineConfig.resolve(opt_level)
        self.max_frames = max_frames
        self.generalize = generalize
        self.ctg_depth = resolve_ctg_depth(ctg_depth)
        self.seed_lemmas = None if seed_lemmas is None else list(seed_lemmas)

    def prove(
        self,
        property_name: str,
        max_frames: Optional[int] = None,
        conflict_budget: Optional[int] = None,
        total_conflict_budget: Optional[int] = None,
    ) -> PdrResult:
        """Run IC3/PDR on ``property_name``."""
        if property_name not in self.ts.properties:
            raise PdrError(f"unknown property {property_name!r}")
        if total_conflict_budget is not None and total_conflict_budget < 0:
            raise PdrError(
                f"total_conflict_budget must be >= 0, got {total_conflict_budget}"
            )
        run = _PdrRun(
            self.ts,
            property_name,
            backend=self.backend,
            pipeline=self.pipeline,
            max_frames=max_frames if max_frames is not None else self.max_frames,
            generalize=self.generalize,
            ctg_depth=self.ctg_depth,
            conflict_budget=conflict_budget,
            total_conflict_budget=total_conflict_budget,
            seed_lemmas=self.seed_lemmas,
        )
        return run.prove()


class _PdrRun:
    """All per-run state of one :meth:`PdrEngine.prove` call."""

    def __init__(
        self,
        ts: TransitionSystem,
        property_name: str,
        backend: str,
        pipeline: PipelineConfig,
        max_frames: int,
        generalize: bool,
        conflict_budget: Optional[int],
        total_conflict_budget: Optional[int] = None,
        ctg_depth: int = DEFAULT_CTG_DEPTH,
        seed_lemmas: Optional[Iterable[Cube]] = None,
    ):
        self.property_name = property_name
        self.max_frames = max_frames
        self.generalize = generalize
        self.ctg_depth = ctg_depth
        self.conflict_budget = conflict_budget
        self.total_conflict_budget = total_conflict_budget
        self._conflicts_spent = 0
        self.stats = PdrStats()

        # The property only needs its cone of influence (same reduction the
        # BMC/k-induction engines apply); invariant clauses stay valid for
        # the original system because kept states keep their next functions.
        reduced, _reduction = prepare_property_system(ts, property_name, pipeline)
        self.ts = reduced
        prop = reduced.properties[property_name]

        # Candidate F_inf lemmas: explicit, or the abstract-interpretation
        # fixpoint's per-latch facts (computed on the reduced system, whose
        # states are exactly the ones the run can talk about).
        if seed_lemmas is None and pipeline.use_absint:
            from repro.absint import analyze, pdr_seed_cubes

            seed_lemmas = pdr_seed_cubes(reduced, analyze(reduced))
        self._seed_lemmas: list[Cube] = (
            [] if seed_lemmas is None else [tuple(cube) for cube in seed_lemmas]
        )

        # One shared set of "current state" / input variables for all three
        # contexts: terms are hash-consed globally, so each context blasts
        # the same term graph into its own clause space.
        self._state_widths: dict[str, int] = {}
        curr_map: dict[BV, BV] = {}
        self._curr_vars: dict[str, BV] = {}
        for state in reduced.states:
            var = T.fresh_var(f"pdr_{state.name}", state.width)
            self._state_widths[state.name] = state.width
            self._curr_vars[state.name] = var
            curr_map[state.symbol] = var
        input_map: dict[BV, BV] = {}
        next_input_map: dict[BV, BV] = {}
        for symbol in reduced.inputs:
            assert symbol.name is not None
            input_map[symbol] = T.fresh_var(f"pdr_in_{symbol.name}", symbol.width)
            next_input_map[symbol] = T.fresh_var(
                f"pdr_in1_{symbol.name}", symbol.width
            )
        full_curr = {**curr_map, **input_map}

        # next(S, I) per state, and the frame-1 mapping for constraints'.
        self._next_exprs: dict[str, BV] = {}
        next_map: dict[BV, BV] = dict(next_input_map)
        for state in reduced.states:
            assert state.next is not None
            expr = substitute(state.next, full_curr)
            self._next_exprs[state.name] = expr
            next_map[state.symbol] = expr

        init_parts = []
        for state in reduced.states:
            if state.init is not None:
                init_parts.append(
                    T.bv_eq(self._curr_vars[state.name], substitute(state.init, full_curr))
                )
        self._init_term = T.bv_and_all(init_parts) if init_parts else T.bv_true()

        constraints_curr = [substitute(c, full_curr) for c in reduced.constraints]
        constraints_next = [substitute(c, next_map) for c in reduced.constraints]
        self._prop_curr = substitute(prop, full_curr)
        self._not_prop_curr = T.bv_not(self._prop_curr)

        # Consecution context: one transition relation, frames as
        # activation-guarded clauses, queried backwards from every frame.
        self._cons = SolverContext(backend=backend, opt_level=pipeline)
        for term in constraints_curr:
            self._cons.add(term)
        for term in constraints_next:
            self._cons.add(term)
        # Bad-state context: no transition, permanently asserts ¬P.
        self._bad = SolverContext(backend=backend, opt_level=pipeline)
        for term in constraints_curr:
            self._bad.add(term)
        self._bad.add(self._not_prop_curr)
        # Initiation context: Init plus the step constraints.
        self._init = SolverContext(backend=backend, opt_level=pipeline)
        for term in constraints_curr:
            self._init.add(term)
        self._init.add(self._init_term)
        # Lifting context for bad states: asserts P, so a bad state's cube
        # literals are jointly UNSAT and the core names the bits that
        # already force the violation.
        self._safe = SolverContext(backend=backend, opt_level=pipeline)
        for term in constraints_curr:
            self._safe.add(term)
        self._safe.add(self._prop_curr)

        # Frame activation variables and delta-encoded cube store.
        # acts[0] guards Init inside the consecution context; acts[i >= 1]
        # guard the clauses stored at frame i (in cons and bad contexts).
        self._acts: list[BV] = []
        self._act_tids: set[int] = set()
        self._frames: list[list[Cube]] = []
        # The infinite frame F_inf: clauses inductive relative to F_inf
        # alone hold at every depth.  One permanent activation variable
        # guards them and is assumed by every frame's assumption set, so
        # every query — consecution, bad-state, propagation — benefits and
        # the clauses are never re-pushed.
        self._act_inf = T.fresh_var(f"pdr_actinf_{property_name}", 1)
        self._frames_inf: list[Cube] = []
        self._ensure_frame(0)
        self._cons.add(T.bv_or(T.bv_not(self._acts[0]), self._init_term))

        # Cached bit-literal terms.
        self._curr_bits: dict[tuple[str, int], BV] = {}
        self._next_bits: dict[tuple[str, int], BV] = {}
        self._input_bits: dict[tuple[str, int], BV] = {}
        self._input_vars: dict[str, BV] = {
            symbol.name: input_map[symbol] for symbol in reduced.inputs
        }
        self._input_widths: dict[str, int] = {
            symbol.name: symbol.width for symbol in reduced.inputs
        }

    # ------------------------------------------------------------ frame store

    def _ensure_frame(self, k: int) -> None:
        while len(self._acts) <= k:
            index = len(self._acts)
            act = T.fresh_var(f"pdr_act{index}_{self.property_name}", 1)
            self._acts.append(act)
            self._act_tids.add(act.tid)
            self._frames.append([])

    def _frame_assumptions(self, k: int) -> list[BV]:
        """Activation variables selecting ``F_k`` (frames ``k..top`` + F_inf)."""
        return [self._act_inf, *self._acts[k:]]

    # ------------------------------------------------------------- cube terms

    def _curr_bit(self, name: str, bit: int) -> BV:
        key = (name, bit)
        term = self._curr_bits.get(key)
        if term is None:
            term = T.bv_extract(self._curr_vars[name], bit, bit)
            self._curr_bits[key] = term
        return term

    def _next_bit(self, name: str, bit: int) -> BV:
        key = (name, bit)
        term = self._next_bits.get(key)
        if term is None:
            term = T.bv_extract(self._next_exprs[name], bit, bit)
            self._next_bits[key] = term
        return term

    def _lit_curr(self, lit: CubeLit) -> BV:
        name, bit, value = lit
        term = self._curr_bit(name, bit)
        return term if value else T.bv_not(term)

    def _lit_next(self, lit: CubeLit) -> BV:
        name, bit, value = lit
        term = self._next_bit(name, bit)
        return term if value else T.bv_not(term)

    def _input_lit(self, name: str, bit: int, value: bool) -> BV:
        key = (name, bit)
        term = self._input_bits.get(key)
        if term is None:
            term = T.bv_extract(self._input_vars[name], bit, bit)
            self._input_bits[key] = term
        return term if value else T.bv_not(term)

    def _clause_curr(self, cube: Cube) -> BV:
        """``¬cube`` over the current-state variables."""
        return T.bv_or_all([T.bv_not(self._lit_curr(lit)) for lit in cube])

    def _clause_symbols(self, cube: Cube) -> BV:
        """``¬cube`` over the transition system's state symbols."""
        return cube_clause_term(self.ts, cube)

    def _extract_cube(self, model: dict[str, int]) -> tuple[Cube, dict[str, int]]:
        """Full-state cube (and state assignment) from a solver model."""
        lits: list[CubeLit] = []
        state: dict[str, int] = {}
        for name, width in self._state_widths.items():
            value = model.get(self._curr_vars[name].name or "", 0)
            state[name] = value
            for bit in range(width):
                lits.append((name, bit, bool((value >> bit) & 1)))
        return tuple(sorted(lits)), state

    # ---------------------------------------------------------------- queries

    def _check(self, ctx: SolverContext, assumptions, need_model: bool):
        budget = self.conflict_budget
        if self.total_conflict_budget is not None:
            remaining = self.total_conflict_budget - self._conflicts_spent
            if remaining <= 0:
                raise _GiveUp()
            budget = remaining if budget is None else min(budget, remaining)
        result = ctx.check(
            assumptions=assumptions,
            conflict_budget=budget,
            full_model=need_model,
            need_model=need_model,
        )
        # Each query charges its conflicts plus one: obligation storms on
        # buggy models are dominated by propagation-only queries (measured
        # ~0.2 conflicts/query), so a pure conflict count would never bound
        # them.  The +1 makes the total budget also a query budget.
        self._conflicts_spent += 1 + result.stats.conflicts
        if result.satisfiable is None:
            raise _GiveUp()
        return result

    def _intersects_init(self, cube: Cube) -> bool:
        """Does any ``Init``-state (satisfying the constraints) match ``cube``?"""
        self.stats.init_queries += 1
        result = self._check(
            self._init,
            [self._lit_curr(lit) for lit in cube],
            need_model=False,
        )
        return bool(result.satisfiable)

    def _init_state_in(self, cube: Cube) -> Optional[dict[str, int]]:
        """A concrete initial state inside ``cube``, or ``None``."""
        self.stats.init_queries += 1
        result = self._check(
            self._init,
            [self._lit_curr(lit) for lit in cube],
            need_model=True,
        )
        if not result.satisfiable:
            return None
        _cube, state = self._extract_cube(result.model)
        return state

    def _extract_input_lits(self, model: dict[str, int]) -> list[BV]:
        """The model's input assignment as per-bit assumption terms."""
        lits: list[BV] = []
        for name, width in self._input_widths.items():
            value = model.get(self._input_vars[name].name or "", 0)
            for bit in range(width):
                lits.append(self._input_lit(name, bit, bool((value >> bit) & 1)))
        return lits

    def _lift_cube(self, cube: Cube, core: Optional[list[BV]]) -> Cube:
        """Keep only the cube literals named by a failed-assumption core."""
        if core is None:
            return cube
        core_ids = {term.tid for term in core}
        lifted = tuple(
            lit for lit in cube if self._lit_curr(lit).tid in core_ids
        )
        return lifted if lifted else cube

    def _lift_bad(self, cube: Cube) -> Cube:
        """Shrink a bad state to the bits that already force ``¬P``.

        The lifting context asserts ``P``, so the state's literals are
        jointly UNSAT there and the core names the responsible bits: every
        state matching them (and the constraints) violates the property.
        """
        self.stats.lift_queries += 1
        result = self._check(
            self._safe, [self._lit_curr(lit) for lit in cube], need_model=False
        )
        if result.satisfiable is not False:
            return cube
        return self._lift_cube(cube, result.core)

    def _lift_predecessor(self, cube: Cube, input_lits: list[BV], succ: Cube) -> Cube:
        """Shrink a concrete predecessor to the bits forcing the transition.

        The transition functions are deterministic, so the predecessor's
        state and input literals together with ``¬succ'`` are UNSAT in the
        consecution context; the core's state literals describe a whole
        family of states that — under the same inputs — all step into the
        successor cube.  (The frame clauses asserted in the context are
        activation-guarded and their activation variables are left free, so
        they cannot contribute to the refutation.)
        """
        self.stats.lift_queries += 1
        not_succ_next = T.bv_or_all(
            [T.bv_not(self._lit_next(lit)) for lit in succ]
        )
        assumptions = [self._lit_curr(lit) for lit in cube]
        assumptions.extend(input_lits)
        assumptions.append(not_succ_next)
        result = self._check(self._cons, assumptions, need_model=False)
        if result.satisfiable is not False:
            return cube
        return self._lift_cube(cube, result.core)

    def _relative_induction(self, cube: Cube, frame: int, need_model: bool = True):
        """SAT query ``F_{frame-1} ∧ ¬cube ∧ T ∧ cube'``.

        UNSAT means no ``F_{frame-1}``-state outside the cube can step into
        it, so its negated clause may strengthen frames ``1..frame``.  The
        per-literal ``cube'`` assumptions make the failed-assumption core
        name exactly the literals the refutation needed.  Callers that only
        consume the verdict/core (generalisation trials) pass
        ``need_model=False`` — model reconstruction through the
        preprocessor's eliminated variables is the most expensive part of a
        SAT answer.
        """
        self.stats.consecution_queries += 1
        assumptions = list(self._frame_assumptions(frame - 1))
        assumptions.append(self._clause_curr(cube))
        assumptions.extend(self._lit_next(lit) for lit in cube)
        return self._check(self._cons, assumptions, need_model=need_model)

    # ------------------------------------------------------ counterexamples

    def _state_lits(self, state: dict[str, int]) -> list[BV]:
        """Every bit of a concrete state as current-frame assumption terms."""
        lits: list[BV] = []
        for name, width in self._state_widths.items():
            value = state.get(name, 0)
            for bit in range(width):
                lits.append(
                    self._lit_curr((name, bit, bool((value >> bit) & 1)))
                )
        return lits

    def _concretize_step(
        self, state: dict[str, int], succ_cube: Cube
    ) -> Optional[dict[str, int]]:
        """A concrete successor of ``state`` inside ``succ_cube`` (or ``None``)."""
        assumptions = self._state_lits(state)
        assumptions.extend(self._lit_next(lit) for lit in succ_cube)
        result = self._check(self._cons, assumptions, need_model=True)
        if not result.satisfiable:
            return None
        assignment = dict(result.model)
        successor: dict[str, int] = {}
        for name, expr in self._next_exprs.items():
            for var in free_variables(expr):
                assignment.setdefault(var.name or "", 0)
            successor[name] = evaluate(expr, assignment)
        return successor

    def _build_cex(
        self, start_state: dict[str, int], ob: _Obligation
    ) -> list[dict[str, int]]:
        """Concretise the obligation chain into an executable state sequence.

        ``start_state`` is an initial state inside ``ob.cube``.  Each link
        re-queries the transition for a concrete successor in the next
        obligation's (possibly lifted) cube, so the returned chain is a real
        run of the system, not just a sequence of abstract cubes.
        """
        states = [dict(start_state)]
        node = ob.successor
        current = start_state
        while node is not None:
            successor = self._concretize_step(current, node.cube)
            if successor is None:
                # Only possible when the global constraints admit dead-end
                # states (no constraint-satisfying input); the abstract
                # chain is then unrealisable and the verdict would be
                # unsound — fail loudly instead of guessing.
                raise PdrError(
                    "counterexample concretisation hit a constraint dead end; "
                    "the design's constraints admit states without successors"
                )
            states.append(successor)
            current = successor
            node = node.successor
        return states

    # ----------------------------------------------------------- strengthening

    def _retire_subsumed(self, cube: Cube, frame: int) -> None:
        """Retire stored cubes that a newly added ``cube`` subsumes.

        A smaller cube blocks a superset of states, so its clause makes
        every superset cube's clause redundant.  Only the frame *store*
        shrinks — the retired clauses stay asserted in the solver contexts
        (activation-guarded, sound but idle) — which keeps ``_is_blocked``,
        propagation and invariant extraction from re-visiting them.  A cube
        stored at frame ``i`` guards exactly ``F_1..F_i``, so only levels
        ``<= frame`` are covered by the newcomer.
        """
        lits = set(cube)
        top = min(frame, len(self._frames) - 1)
        for level in range(1, top + 1):
            stored = self._frames[level]
            survivors = [d for d in stored if not set(d).issuperset(lits)]
            if len(survivors) != len(stored):
                self.stats.clauses_subsumed += len(stored) - len(survivors)
                self._frames[level] = survivors

    def _add_blocked(self, cube: Cube, frame: int) -> None:
        """Store ``¬cube`` at ``frame`` (delta encoding) in both contexts."""
        self._ensure_frame(frame)
        self._retire_subsumed(cube, frame)
        self._frames[frame].append(cube)
        guard = T.bv_not(self._acts[frame])
        clause = T.bv_or(guard, self._clause_curr(cube))
        self._cons.add(clause)
        self._bad.add(clause)
        self.stats.cubes_blocked += 1

    def _add_inf(self, cube: Cube) -> None:
        """Promote ``¬cube`` to the infinite frame ``F_inf``.

        The clause is inductive without any finite frame's help, so it
        holds at every depth: it subsumes copies at every finite level, is
        never pushed again, and strengthens every future query through the
        permanently assumed ``act_inf``.
        """
        self._retire_subsumed(cube, len(self._frames) - 1)
        self._frames_inf.append(cube)
        guard = T.bv_not(self._act_inf)
        clause = T.bv_or(guard, self._clause_curr(cube))
        self._cons.add(clause)
        self._bad.add(clause)
        self.stats.clauses_pushed_inf += 1

    def _admit_seed_lemmas(self) -> None:
        """Filter the seeded candidate cubes and promote survivors to F_inf.

        Admission requires exactly what soundness of ``F_inf`` requires:

        * *initiation* — no constraint-satisfying initial state matches the
          cube (checked per cube on the initiation context);
        * *consecution* — ``Seeds ∧ F_inf ∧ T ∧ cube'`` is UNSAT, where
          ``Seeds`` is the conjunction of the surviving candidates' clauses.

        Consecution is checked as a greatest fixpoint: every round asserts
        the current candidates under a fresh activation variable, queries
        each one, and drops the failures; dropping a cube weakens ``Seeds``,
        so the remaining cubes are re-checked until a round drops nothing.
        Whatever survives is jointly inductive and Init-disjoint — i.e. an
        over-approximation of the reachable states — so promotion to the
        permanently assumed infinite frame cannot change any verdict, only
        prune unreachable states from every later query.

        Malformed candidates (empty cube, unknown state name — e.g. a latch
        outside this property's cone — or an out-of-range bit index) are
        rejected up front rather than raised: seeds are advisory by design.
        """
        candidates: list[Cube] = []
        seen: set[Cube] = set()
        for raw in self._seed_lemmas:
            cube = tuple(sorted(set(raw)))
            if cube in seen:
                continue
            seen.add(cube)
            well_formed = bool(cube) and all(
                isinstance(value, bool)
                and name in self._state_widths
                and 0 <= bit < self._state_widths[name]
                for name, bit, value in cube
            )
            if not well_formed or self._intersects_init(cube):
                self.stats.seed_lemmas_rejected += 1
                continue
            candidates.append(cube)
        while candidates:
            act = T.fresh_var(f"pdr_actseed_{self.property_name}", 1)
            guard = T.bv_not(act)
            for cube in candidates:
                self._cons.add(T.bv_or(guard, self._clause_curr(cube)))
            survivors: list[Cube] = []
            dropped = 0
            for cube in candidates:
                self.stats.consecution_queries += 1
                result = self._check(
                    self._cons,
                    [self._act_inf, act, *(self._lit_next(lit) for lit in cube)],
                    need_model=False,
                )
                if result.satisfiable is False:
                    survivors.append(cube)
                else:
                    dropped += 1
            if dropped == 0:
                for cube in survivors:
                    self._add_inf(cube)
                    # Seeded, not pushed: keep clauses_pushed_inf meaning
                    # "promoted by propagation/blocking".
                    self.stats.clauses_pushed_inf -= 1
                    self.stats.seed_lemmas_admitted += 1
                return
            self.stats.seed_lemmas_rejected += dropped
            # The failed round's guarded clauses stay asserted but inert:
            # their activation variable is never assumed again.
            candidates = survivors

    def _is_blocked(self, cube: Cube, frame: int) -> bool:
        """Syntactic subsumption: a stored cube at ``>= frame`` covers this one."""
        lits = set(cube)
        for blocked in self._frames_inf:
            if lits.issuperset(blocked):
                return True
        for level in range(frame, len(self._frames)):
            for blocked in self._frames[level]:
                if lits.issuperset(blocked):
                    return True
        return False

    def _count_dropped(self, bucket: str, count: int) -> None:
        if count <= 0:
            return
        if bucket == "core":
            self.stats.literals_dropped_core += count
        elif bucket == "ctg":
            self.stats.literals_dropped_ctg += count
        else:
            self.stats.literals_dropped_mic += count

    def _core_shrink(
        self, lits: list[CubeLit], core: Optional[list[BV]], bucket: str = "core"
    ) -> list[CubeLit]:
        """Drop every literal whose primed assumption the core did not need.

        Sound without re-querying: the kept assumptions are a superset of
        the core, and the shrunken ``¬cube`` assumption only strengthens
        the query.  Dropping literals can make the cube reach into
        ``Init``; re-add dropped literals until it is disjoint again (the
        original cube is Init-disjoint, so the repair terminates).
        ``bucket`` attributes the removals to the stats counter of the
        pass that produced the core (``core``/``mic``/``ctg``).
        """
        if core is None:
            return lits
        core_ids = {term.tid for term in core}
        kept = [lit for lit in lits if self._lit_next(lit).tid in core_ids]
        dropped = [lit for lit in lits if self._lit_next(lit).tid not in core_ids]
        if not dropped:
            # Nothing shrank: the input cube is already known Init-disjoint,
            # so skip the (solver-query) repair check entirely.
            return kept
        while not kept or self._intersects_init(tuple(sorted(kept))):
            if not dropped:
                kept = list(lits)
                break
            kept.append(dropped.pop())
        self._count_dropped(bucket, len(lits) - len(kept))
        return kept

    def _generalize(
        self, cube: Cube, frame: int, core: Optional[list[BV]], depth: int = 0
    ) -> Cube:
        """Shrink a refuted cube while keeping it refuted and Init-disjoint.

        The free shrink comes from the blocking query's own core
        (:meth:`_core_shrink`).  With ``generalize`` on, a MIC-style pass
        then tries to drop each surviving literal with a verdict-only
        relative-induction query; when a drop trial fails and ``ctg_depth``
        allows, the trial's counterexample-to-generalisation is blocked at
        the preceding frame before the trial is retried
        (:meth:`_ctg_down`).  ``depth`` is the current CTG recursion depth.
        """
        kept = self._core_shrink(list(cube), core, bucket="core")
        if self.generalize and len(kept) > 1:
            kept = self._mic(kept, frame, depth)
        return tuple(sorted(kept))

    def _mic(self, kept: list[CubeLit], frame: int, depth: int) -> list[CubeLit]:
        """Try to drop each literal in turn, keeping the cube inductive.

        Every successful trial's *own* core shrinks the cube further, so
        one query often removes several literals at once.
        """
        for lit in list(kept):
            if len(kept) <= 1:
                break
            if lit not in kept:
                continue  # already dropped by an earlier trial's core
            candidate = [q for q in kept if q != lit]
            if self._intersects_init(tuple(sorted(candidate))):
                continue
            shrunk = self._ctg_down(candidate, frame, depth)
            if shrunk is not None:
                kept = shrunk
        return kept

    def _ctg_down(
        self, candidate: list[CubeLit], frame: int, depth: int
    ) -> Optional[list[CubeLit]]:
        """One MIC drop trial with CTG handling.

        Returns the (further core-shrunk) literal list when the candidate
        cube is relatively inductive — possibly after blocking up to
        ``_MAX_CTGS`` counterexamples-to-generalisation at the preceding
        frame — or ``None`` when the drop must be abandoned.  A CTG is the
        ``F_{frame-1}`` predecessor state the failed trial's model
        exposes: blocking *it* (recursively generalised at ``depth + 1``)
        strengthens ``F_{frame-1}`` enough that the retried trial often
        succeeds, yielding much shorter clauses on the deep QED models.
        """
        ctgs = 0
        while True:
            want_model = depth < self.ctg_depth and frame > 1 and ctgs < _MAX_CTGS
            trial = tuple(sorted(candidate))
            result = self._relative_induction(trial, frame, need_model=want_model)
            if result.satisfiable is False:
                bucket = "ctg" if ctgs else "mic"
                self._count_dropped(bucket, 1)
                return self._core_shrink(candidate, result.core, bucket=bucket)
            if not want_model:
                return None
            ctg_cube, _state = self._extract_cube(result.model)
            if self._intersects_init(ctg_cube):
                return None
            ctg_result = self._relative_induction(ctg_cube, frame - 1, need_model=False)
            if ctg_result.satisfiable is not False:
                return None
            blocked = self._generalize(ctg_cube, frame - 1, ctg_result.core, depth + 1)
            # Push the CTG clause as far forward as it stays inductive so
            # it keeps helping at the trial's own frame.
            level = frame - 1
            while level < len(self._acts) - 1:
                push = self._relative_induction(blocked, level + 1, need_model=False)
                if push.satisfiable is not False:
                    break
                level += 1
            self._add_blocked(blocked, level)
            self.stats.ctgs_blocked += 1
            ctgs += 1

    # ------------------------------------------------------------- main loop

    def _block_obligation(self, bad: _Obligation, frontier: int) -> bool:
        """Discharge ``bad`` (a frontier bad cube); False means counterexample."""
        queue: list[tuple[int, int, _Obligation]] = []
        seq = 0
        heapq.heappush(queue, (bad.frame, seq, bad))
        while queue:
            frame, _, ob = heapq.heappop(queue)
            self.stats.obligations += 1
            if frame == 0:
                # The cube came from a query that assumed F_0 = Init, so
                # its stored model state is a real initial state.
                self._cex = self._build_cex(ob.state, ob)
                return False
            init_state = self._init_state_in(ob.cube)
            if init_state is not None:
                # A lifted cube may reach into Init even though the state
                # it was extracted from does not: that is still a real
                # counterexample, every cube state steps into the chain.
                self._cex = self._build_cex(init_state, ob)
                return False
            if self._is_blocked(ob.cube, frame):
                continue
            result = self._relative_induction(ob.cube, frame)
            if result.satisfiable is False:
                cube = self._generalize(ob.cube, frame, result.core)
                self._add_blocked(cube, frame)
                if frame < frontier:
                    # Chase the same cube at the next frame: its states may
                    # still be reachable in more steps within the frontier.
                    seq += 1
                    heapq.heappush(queue, (frame + 1, seq, _Obligation(
                        ob.cube, frame + 1, ob.state, ob.successor
                    )))
            else:
                pred_cube, pred_state = self._extract_cube(result.model)
                pred_cube = self._lift_predecessor(
                    pred_cube, self._extract_input_lits(result.model), ob.cube
                )
                seq += 1
                heapq.heappush(
                    queue,
                    (frame - 1, seq, _Obligation(pred_cube, frame - 1, pred_state, ob)),
                )
                seq += 1
                heapq.heappush(queue, (frame, seq, ob))
        return True

    def _propagate(self, frontier: int) -> Optional[int]:
        """Push clauses forward; returns the index of an inductive frame.

        Push queries are verdict-only (no model is ever read), and every
        successful push inspects its failed-assumption core: when no
        *finite* frame's activation variable appears in it, the refutation
        used only ``F_inf`` and the clause's own induction hypothesis — the
        clause is inductive at every depth and is promoted to ``F_inf``
        instead of crawling one frame per pass.
        """
        self._ensure_frame(frontier + 1)
        for level in range(1, frontier + 1):
            for cube in list(self._frames[level]):
                if cube not in self._frames[level]:
                    continue  # retired by a subsuming push this pass
                result = self._relative_induction(cube, level + 1, need_model=False)
                if result.satisfiable is False:
                    self._frames[level].remove(cube)
                    if result.core is not None and not any(
                        term.tid in self._act_tids for term in result.core
                    ):
                        self._add_inf(cube)
                    else:
                        self._add_blocked(cube, level + 1)
                        self.stats.cubes_blocked -= 1  # moved, not newly blocked
                    self.stats.clauses_pushed += 1
            if not self._frames[level]:
                return level
        return None

    def _collect_stats(self) -> PdrStats:
        merged = SolverStats()
        for ctx in (self._cons, self._bad, self._init, self._safe):
            merged.merge(ctx.stats.copy())
        self.stats.solver_stats = merged
        return self.stats

    def _result(self, start: float, **kwargs) -> PdrResult:
        return PdrResult(
            property_name=self.property_name,
            elapsed_seconds=time.perf_counter() - start,
            stats=self._collect_stats(),
            **kwargs,
        )

    def prove(self) -> PdrResult:
        start = time.perf_counter()
        self._cex: Optional[list[dict[str, int]]] = None
        frontier = 0
        try:
            # Depth 0: an initial state violating P needs no frames.
            self.stats.init_queries += 1
            base = self._check(
                self._init, [self._not_prop_curr], need_model=True
            )
            if base.satisfiable:
                _cube, state = self._extract_cube(base.model)
                return self._result(
                    start, proven=False, frames_explored=0, cex_chain=[state]
                )

            if self._seed_lemmas:
                self._admit_seed_lemmas()

            frontier = 1
            self._ensure_frame(1)
            while frontier <= self.max_frames:
                while True:
                    self.stats.bad_queries += 1
                    bad = self._check(
                        self._bad,
                        self._frame_assumptions(frontier),
                        need_model=True,
                    )
                    if not bad.satisfiable:
                        break
                    cube, state = self._extract_cube(bad.model)
                    cube = self._lift_bad(cube)
                    obligation = _Obligation(cube, frontier, state)
                    if not self._block_obligation(obligation, frontier):
                        return self._result(
                            start,
                            proven=False,
                            frames_explored=frontier,
                            cex_chain=self._cex,
                        )
                inductive = self._propagate(frontier)
                if inductive is not None:
                    cubes = [
                        cube
                        for level in range(inductive + 1, len(self._frames))
                        for cube in self._frames[level]
                    ]
                    cubes.extend(self._frames_inf)
                    return self._result(
                        start,
                        proven=True,
                        frames_explored=frontier,
                        invariant=[self._clause_symbols(cube) for cube in cubes],
                        invariant_cubes=cubes,
                        invariant_frame=inductive,
                    )
                frontier += 1
        except _GiveUp:
            pass
        return self._result(start, proven=None, frames_explored=min(frontier, self.max_frames))
