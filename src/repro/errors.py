"""Exception hierarchy for the SEPE-SQED reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SatError(ReproError):
    """Malformed CNF input or misuse of the SAT solver API."""


class SmtError(ReproError):
    """Ill-typed bit-vector terms or unsupported operations."""


class SolveError(ReproError):
    """Misuse of the persistent solver context or an unavailable backend."""


class IsaError(ReproError):
    """Unknown instruction, bad operand, or encoding/decoding failure."""


class AssemblerError(IsaError):
    """Syntax error in assembly text."""


class SynthesisError(ReproError):
    """Program synthesis failed in an unexpected way (not mere UNSAT)."""


class TransitionSystemError(ReproError):
    """Inconsistent transition-system definition (missing next/init, type clash)."""


class Btor2Error(ReproError):
    """Malformed BTOR2 text or unsupported node during conversion."""


class BmcError(ReproError):
    """Bounded-model-checking driver misuse (bad bound, missing property)."""


class PdrError(ReproError):
    """IC3/PDR engine misuse (missing property, invalid configuration)."""


class ProcessorError(ReproError):
    """Invalid processor configuration or unknown bug identifier."""


class UnknownBugError(ProcessorError, KeyError):
    """Bug name not in the catalog.

    Subclasses :class:`KeyError` too, so dict-style lookups through
    :func:`repro.proc.bugs.get_bug` can be caught either way.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return Exception.__str__(self)


class ZooError(ReproError):
    """Bug-zoo misuse: unknown family, invalid recipe, or bad campaign config."""


class LintError(ReproError):
    """Static analysis failure: a lint gate rejected a model, or lint misuse."""


class AbsintError(ReproError):
    """Abstract-interpretation misuse or a diverging fixpoint iteration."""


class SanitizerError(ReproError):
    """A kernel sanitizer (``REPRO_SANITIZE=1``) found a violated invariant.

    Raised from inside :class:`~repro.sat.solver.SatSolver` /
    :class:`~repro.sat.arena.ArenaSolver` when a debug-mode consistency
    check fails — watched literals, trail monotonicity, reason clauses,
    arena compaction, or the final model.  Always indicates kernel
    corruption, never a property of the input formula.
    """


class QedError(ReproError):
    """Invalid QED register partition or transformation failure."""


class VerificationError(ReproError):
    """Top-level SQED / SEPE-SQED flow failure."""
