"""Parameterized, seeded mutation families — the generative bug zoo.

Each family is a template of processor bugs: :meth:`MutationFamily.sample`
draws concrete parameters from a seeded RNG and :meth:`MutationFamily.build`
turns a ``(family, params, seed)`` recipe into a ready-to-verify
:class:`ZooInstance` (an injectable :class:`~repro.proc.bugs.Bug` plus the
processor configuration, flow kind and BMC bound it should be verified
under).  The same recipe always rebuilds the same instance, which is what
makes campaign failures reproducible from three values.

Family-to-detector mapping (the paper's core observation): a mutation that
corrupts one instruction's semantics *uniformly* corrupts the original and
its EDDI-V duplicate identically, so classic SQED cannot see it — those
families carry ``flow_kind="sepe"`` (SEPE-SQED's equivalent programs avoid
the corrupted data path).  Mutations of the hazard-handling logic
(forwarding, write-back) fire asymmetrically between the original and
duplicated instruction streams and are SQED-detectable
(``flow_kind="sqed"``).

The ISSUE's family names map onto this three-stage pipeline as follows:
"wrong-forward source" → :class:`ForwardCorruptionFamily`; "dropped/extra
stall" → :class:`ForwardDropFamily` / the overreach modes (the model has no
stall unit — hazards are handled purely by forwarding, so dropping or
over-extending a forward is exactly a dropped or extra hazard fix);
"off-by-one decode field" → :class:`OperandSwapFamily` and the ``delta=1``
corner of :class:`AluResultOffsetFamily`; "ALU op swap" →
:class:`AluOpSwapFamily`; "flush-condition negation" → the ``negated`` mode
of :class:`WbDropFamily` (the write-back enable is the pipeline's only
squash condition); "immediate sign-extension flips" →
:class:`ImmSextFlipFamily`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import ZooError
from repro.isa.config import IsaConfig
from repro.isa.instructions import get_instruction
from repro.proc.bugs import Bug, BugKind, BugRecipe
from repro.proc.config import ProcessorConfig
from repro.smt import terms as T
from repro.smt.terms import BV

#: Flow kinds an instance can ask for.
FLOW_SQED = "sqed"
FLOW_SEPE = "sepe"


@dataclass(frozen=True)
class ZooInstance:
    """A fully instantiated zoo bug: recipe, injectable bug and model shape."""

    recipe: BugRecipe
    bug: Bug
    config: ProcessorConfig
    flow_kind: str
    #: BMC bound at which the family guarantees detection (with margin).
    bound: int
    fifo_depth: int = 2

    @property
    def family(self) -> str:
        return self.recipe.family

    def control_key(self) -> tuple:
        """Instances sharing this key share one bug-free control run."""
        return (self.flow_kind, self.config, self.fifo_depth, self.bound)


def _params_dict(recipe: BugRecipe) -> dict:
    return {k: v for k, v in recipe.params}


def _small_isa(xlen: int, num_regs: int, imm_width: Optional[int] = None) -> IsaConfig:
    return IsaConfig(
        xlen=xlen,
        num_regs=num_regs,
        imm_width=imm_width if imm_width is not None else min(12, xlen),
        mem_words=4,
    )


class MutationFamily:
    """One parameterized mutation template."""

    name = "abstract"
    flow_kind = FLOW_SQED
    description = ""

    def sample(self, rng: random.Random) -> dict:
        """Draw concrete parameters for one instance."""
        raise NotImplementedError

    def build(self, recipe: BugRecipe) -> ZooInstance:
        """Instantiate a recipe of this family."""
        raise NotImplementedError

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        """Strictly simpler parameter dicts to try during shrinking.

        Ordered most-aggressive first; the shrinker keeps a candidate only
        if the instance still reproduces the original verdict.
        """
        return []

    # ------------------------------------------------------------- helpers

    def _bug(self, recipe: BugRecipe, description: str, hooks: dict,
             target_ops: tuple = (), recommended_pool: tuple = (),
             kind: BugKind = BugKind.SINGLE_INSTRUCTION) -> Bug:
        return Bug(
            name=f"zoo_{recipe.family}_s{recipe.seed}",
            kind=kind,
            description=description,
            hooks=hooks,
            target_ops=target_ops,
            recommended_pool=recommended_pool,
            recipe=recipe,
        )

    def _sepe_config(self, bug: Bug, xlen: int) -> ProcessorConfig:
        from repro.core.flow import pool_for_bug
        from repro.qed.equivalents import default_equivalent_programs

        isa = _small_isa(xlen, num_regs=8)
        pool = pool_for_bug(bug, equivalents=default_equivalent_programs(isa))
        return ProcessorConfig(isa=isa, supported_ops=pool)


# ---------------------------------------------------------------------------
# SEPE-detectable families (uniform single-instruction semantics mutations)
# ---------------------------------------------------------------------------

#: R-type opcodes with curated equivalent programs (candidates for swapping).
_R_OPS = ("ADD", "SUB", "XOR", "OR", "AND", "SLT", "SLTU")

#: Non-commutative R-type opcodes (operand-swap targets).
_NONCOMM_OPS = ("SUB", "SLT", "SLTU")

#: I-type logic opcodes whose equivalent programs avoid the op itself.
_IMM_OPS = ("XORI", "ORI", "ANDI")


class AluOpSwapFamily(MutationFamily):
    """The ALU computes opcode ``replacement`` whenever ``op`` is decoded."""

    name = "alu_op_swap"
    flow_kind = FLOW_SEPE
    description = "ALU executes a different opcode's semantics for one op"

    def sample(self, rng: random.Random) -> dict:
        op = rng.choice(_R_OPS)
        replacement = rng.choice([o for o in _R_OPS if o != op])
        return {"op": op, "replacement": replacement, "xlen": 4}

    def build(self, recipe: BugRecipe) -> ZooInstance:
        params = _params_dict(recipe)
        op, replacement = params["op"], params["replacement"]
        if op == replacement:
            raise ZooError(f"alu_op_swap: op and replacement are both {op!r}")
        repl_defn = get_instruction(replacement)

        def hook(cfg: ProcessorConfig, ctx: dict) -> BV:
            wrong = repl_defn.symbolic(cfg.isa, ctx["a"], ctx["b"], ctx["imm"])
            return T.bv_ite(ctx["op_is"][op], wrong, ctx["result"])

        bug = self._bug(
            recipe,
            f"{op} executes {replacement} semantics",
            {"alu_result": hook},
            target_ops=(op,),
        )
        return ZooInstance(
            recipe=recipe,
            bug=bug,
            config=self._sepe_config(bug, xlen=int(params.get("xlen", 4))),
            flow_kind=FLOW_SEPE,
            bound=int(params.get("bound", 9)),
        )

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        out = []
        if params.get("op") != "ADD" and params.get("replacement") != "ADD":
            out.append({**params, "op": "ADD", "replacement": "SUB"})
        if int(params.get("xlen", 4)) > 4:
            out.append({**params, "xlen": 4})
        return out


class AluResultOffsetFamily(MutationFamily):
    """One opcode's ALU result is off by a constant ``delta``."""

    name = "alu_result_offset"
    flow_kind = FLOW_SEPE
    description = "ALU result off by a constant for one op (delta=1: off-by-one)"

    def sample(self, rng: random.Random) -> dict:
        xlen = 4
        return {
            "op": rng.choice(_R_OPS),
            "delta": rng.randrange(1, (1 << xlen)),
            "xlen": xlen,
        }

    def build(self, recipe: BugRecipe) -> ZooInstance:
        params = _params_dict(recipe)
        op, delta = params["op"], int(params["delta"])
        if delta % (1 << int(params.get("xlen", 4))) == 0:
            raise ZooError(
                f"alu_result_offset: delta {delta} is zero modulo 2^xlen "
                "(the mutation would be the identity)"
            )

        def hook(cfg: ProcessorConfig, ctx: dict) -> BV:
            wrong = T.bv_add(ctx["result"], T.bv_const(delta, cfg.isa.xlen))
            return T.bv_ite(ctx["op_is"][op], wrong, ctx["result"])

        bug = self._bug(
            recipe,
            f"{op} result off by {delta}",
            {"alu_result": hook},
            target_ops=(op,),
        )
        return ZooInstance(
            recipe=recipe,
            bug=bug,
            config=self._sepe_config(bug, xlen=int(params.get("xlen", 4))),
            flow_kind=FLOW_SEPE,
            bound=int(params.get("bound", 9)),
        )

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        out = []
        if int(params.get("delta", 1)) != 1:
            out.append({**params, "delta": 1})
        if params.get("op") != "ADD":
            out.append({**params, "op": "ADD"})
        return out


class OperandSwapFamily(MutationFamily):
    """A non-commutative opcode reads its operands swapped (decode-field bug)."""

    name = "operand_swap"
    flow_kind = FLOW_SEPE
    description = "rs1/rs2 swapped in the decode of one non-commutative op"

    def sample(self, rng: random.Random) -> dict:
        return {"op": rng.choice(_NONCOMM_OPS), "xlen": 4}

    def build(self, recipe: BugRecipe) -> ZooInstance:
        params = _params_dict(recipe)
        op = params["op"]
        defn = get_instruction(op)

        def hook(cfg: ProcessorConfig, ctx: dict) -> BV:
            wrong = defn.symbolic(cfg.isa, ctx["b"], ctx["a"], ctx["imm"])
            return T.bv_ite(ctx["op_is"][op], wrong, ctx["result"])

        bug = self._bug(
            recipe,
            f"{op} computed with swapped operands",
            {"alu_result": hook},
            target_ops=(op,),
        )
        return ZooInstance(
            recipe=recipe,
            bug=bug,
            config=self._sepe_config(bug, xlen=int(params.get("xlen", 4))),
            flow_kind=FLOW_SEPE,
            bound=int(params.get("bound", 9)),
        )

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        if params.get("op") != "SUB":
            return [{**params, "op": "SUB"}]
        return []


class ImmSextFlipFamily(MutationFamily):
    """An I-type opcode zero-extends its immediate instead of sign-extending.

    Only visible when ``imm_width < xlen`` (sign extension is the identity
    otherwise), so these instances run on a custom narrow-immediate ISA.
    """

    name = "imm_sext_flip"
    flow_kind = FLOW_SEPE
    description = "I-type immediate zero-extended instead of sign-extended"

    _SEMANTICS = {"XORI": T.bv_xor, "ORI": T.bv_or, "ANDI": T.bv_and}

    def sample(self, rng: random.Random) -> dict:
        return {"op": rng.choice(_IMM_OPS), "xlen": 4, "imm_width": 2}

    def build(self, recipe: BugRecipe) -> ZooInstance:
        params = _params_dict(recipe)
        op = params["op"]
        combine = self._SEMANTICS.get(op)
        if combine is None:
            raise ZooError(
                f"imm_sext_flip: unsupported op {op!r}; "
                f"expected one of {sorted(self._SEMANTICS)}"
            )
        xlen = int(params.get("xlen", 4))
        imm_width = int(params.get("imm_width", 2))
        if imm_width >= xlen:
            raise ZooError(
                "imm_sext_flip needs imm_width < xlen (sign extension is the "
                f"identity otherwise); got imm_width={imm_width}, xlen={xlen}"
            )

        def hook(cfg: ProcessorConfig, ctx: dict) -> BV:
            wrong = combine(ctx["a"], T.bv_zext(ctx["imm"], cfg.isa.xlen))
            return T.bv_ite(ctx["op_is"][op], wrong, ctx["result"])

        bug = self._bug(
            recipe,
            f"{op} zero-extends its immediate",
            {"alu_result": hook},
            target_ops=(op,),
        )
        from repro.core.flow import pool_for_bug
        from repro.qed.equivalents import default_equivalent_programs

        isa = _small_isa(xlen, num_regs=8, imm_width=imm_width)
        pool = pool_for_bug(bug, equivalents=default_equivalent_programs(isa))
        return ZooInstance(
            recipe=recipe,
            bug=bug,
            config=ProcessorConfig(isa=isa, supported_ops=pool),
            flow_kind=FLOW_SEPE,
            bound=int(params.get("bound", 9)),
        )

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        if params.get("op") != "XORI":
            return [{**params, "op": "XORI"}]
        return []


# ---------------------------------------------------------------------------
# SQED-detectable families (hazard-handling mutations)
# ---------------------------------------------------------------------------

_FORWARD_HOOKS = {
    "ex_rs1": "forward_ex_rs1",
    "ex_rs2": "forward_ex_rs2",
    "wb_rs1": "forward_wb_rs1",
    "wb_rs2": "forward_wb_rs2",
    "store": "forward_ex_rs2_store",
}


def _cond_false(_cfg: ProcessorConfig, _ctx: dict) -> BV:
    return T.bv_false()


class ForwardDropFamily(MutationFamily):
    """One forwarding path is missing (a dropped hazard fix)."""

    name = "forward_drop"
    flow_kind = FLOW_SQED
    description = "one operand-forwarding path dropped"

    def sample(self, rng: random.Random) -> dict:
        return {"which": rng.choice(sorted(_FORWARD_HOOKS)), "xlen": 4}

    def build(self, recipe: BugRecipe) -> ZooInstance:
        params = _params_dict(recipe)
        which = params["which"]
        hook_name = _FORWARD_HOOKS.get(which)
        if hook_name is None:
            raise ZooError(
                f"forward_drop: unknown path {which!r}; "
                f"expected one of {sorted(_FORWARD_HOOKS)}"
            )
        bug = self._bug(
            recipe,
            f"forwarding path {which} dropped",
            {hook_name: _cond_false},
            target_ops=("ADD",),
            kind=BugKind.MULTIPLE_INSTRUCTION,
        )
        xlen = int(params.get("xlen", 4))
        pool = ("ADD", "SW") if which == "store" else ("ADD", "SUB")
        return ZooInstance(
            recipe=recipe,
            bug=bug,
            config=ProcessorConfig(
                isa=_small_isa(xlen, num_regs=4), supported_ops=pool
            ),
            flow_kind=FLOW_SQED,
            bound=int(params.get("bound", 8)),
        )

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        if params.get("which") not in ("ex_rs1",):
            return [{**params, "which": "ex_rs1"}]
        return []


class ForwardCorruptionFamily(MutationFamily):
    """The forwarding network forwards the wrong thing (extra hazard 'fix')."""

    name = "forward_corruption"
    flow_kind = FLOW_SQED
    description = "forwarding fires wrongly: bad source or overreach"

    # priority_swap (write-back beats execute when both match) needs three
    # same-rd writers in flight: its shortest counterexample sits past
    # bound 9, so the mode carries its own deeper per-mode default bound
    # instead of the family-wide 8.  The mode is back in the registry —
    # recipes build, replay and shrink like any other — but random
    # campaign sampling sticks to the cheap modes: the bound-11 UNSAT
    # prefix exhausts the oracle's default 200k-conflict BMC budget
    # (degrading to ``inconclusive``, measured at ~11 CPU-minutes), and
    # an unbudgeted run costs tens of CPU-minutes on the pure-Python
    # kernels even with the LBD/minimisation/phase-saving heuristics.
    # Deep modes are for explicit recipes with raised budgets, not
    # blind sampling.
    _MODES = ("wrong_value", "ignore_write_enable", "priority_swap")
    #: Modes eligible for random campaign sampling (cheap ones only).
    _SAMPLE_MODES = ("wrong_value", "ignore_write_enable")
    #: Per-mode BMC bound overrides (modes absent here use the family default).
    _MODE_BOUNDS = {"priority_swap": 11}

    def sample(self, rng: random.Random) -> dict:
        return {"mode": rng.choice(self._SAMPLE_MODES), "xlen": 4}

    def build(self, recipe: BugRecipe) -> ZooInstance:
        params = _params_dict(recipe)
        mode = params["mode"]
        xlen = int(params.get("xlen", 4))
        pool: tuple = ("ADD", "SUB")
        if mode == "wrong_value":
            hooks = {"forward_ex_value": lambda cfg, ctx: ctx["ex_a"]}
            description = "execute stage forwards its first operand, not its result"
        elif mode == "ignore_write_enable":
            def overreach(cfg: ProcessorConfig, ctx: dict) -> BV:
                return T.bv_and(
                    T.bv_and(ctx["ex_valid"], T.bv_eq(ctx["ex_rd"], ctx["rs_idx"])),
                    T.bv_ne(ctx["rs_idx"], T.bv_const(0, ctx["rs_idx"].width)),
                )

            hooks = {"forward_ex_rs1": overreach}
            description = "forwarding triggers even from non-writing producers"
            pool = ("ADD", "SW")
        elif mode == "priority_swap":
            hooks = {"forward_priority": lambda cfg, ctx: T.bv_true()}
            description = (
                "when execute and write-back both match, the older "
                "(write-back) value wins"
            )
        else:
            raise ZooError(
                f"forward_corruption: unknown mode {mode!r}; "
                f"expected one of {self._MODES}"
            )
        bug = self._bug(
            recipe,
            description,
            hooks,
            target_ops=("ADD",),
            kind=BugKind.MULTIPLE_INSTRUCTION,
        )
        return ZooInstance(
            recipe=recipe,
            bug=bug,
            config=ProcessorConfig(
                isa=_small_isa(xlen, num_regs=4), supported_ops=pool
            ),
            flow_kind=FLOW_SQED,
            bound=int(params.get("bound", self._MODE_BOUNDS.get(mode, 8))),
        )

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        if params.get("mode") != "wrong_value":
            return [{**params, "mode": "wrong_value"}]
        return []


class WbDropFamily(MutationFamily):
    """The register-file write enable is corrupted in the write-back stage."""

    name = "wb_drop"
    flow_kind = FLOW_SQED
    description = "write-back enable dropped under a condition, or negated"

    _MODES = ("double_write", "after_op", "negated")

    def sample(self, rng: random.Random) -> dict:
        mode = rng.choice(self._MODES)
        params: dict = {"mode": mode, "xlen": 4}
        if mode == "after_op":
            params["op"] = rng.choice(("ADD", "SUB"))
        return params

    def build(self, recipe: BugRecipe) -> ZooInstance:
        params = _params_dict(recipe)
        mode = params["mode"]
        xlen = int(params.get("xlen", 4))
        pool: tuple = ("ADD", "SUB")
        if mode == "double_write":
            def hook(cfg: ProcessorConfig, ctx: dict) -> BV:
                return T.bv_and(
                    ctx["cond"],
                    T.bv_not(
                        T.bv_and(ctx["ex_valid"], T.bv_eq(ctx["ex_rd"], ctx["wb_rd"]))
                    ),
                )

            description = "write dropped when the next instruction names the same rd"
            # The drop is architecturally invisible if the trailing
            # instruction really writes rd (it overwrites anyway) — SW
            # carries an rd field without writing it, which exposes the bug.
            pool = ("ADD", "SW")
        elif mode == "after_op":
            op = params.get("op", "SUB")

            def hook(cfg: ProcessorConfig, ctx: dict, _op=op) -> BV:
                return T.bv_and(
                    ctx["cond"],
                    T.bv_not(T.bv_and(ctx["ex_valid"], ctx["ex_op_is"][_op])),
                )

            description = f"write dropped when the next instruction is {op}"
        elif mode == "negated":
            def hook(cfg: ProcessorConfig, ctx: dict) -> BV:
                return T.bv_not(ctx["cond"])

            description = "write-back enable negated (the squash condition flipped)"
            pool = ("ADD", "SW")
        else:
            raise ZooError(
                f"wb_drop: unknown mode {mode!r}; expected one of {self._MODES}"
            )
        bug = self._bug(
            recipe,
            description,
            {"wb_write_cond": hook},
            target_ops=("ADD",),
            kind=BugKind.MULTIPLE_INSTRUCTION,
        )
        # double_write's shortest trace needs one extra frame (the asymmetric
        # drop only shows when the two streams interleave differently).
        default_bound = 9 if mode == "double_write" else 8
        return ZooInstance(
            recipe=recipe,
            bug=bug,
            config=ProcessorConfig(
                isa=_small_isa(xlen, num_regs=4), supported_ops=pool
            ),
            flow_kind=FLOW_SQED,
            bound=int(params.get("bound", default_bound)),
        )

    def shrink_candidates(self, params: Mapping) -> list[dict]:
        if params.get("mode") != "double_write":
            return [{k: v for k, v in params.items() if k != "op"}
                    | {"mode": "double_write"}]
        return []


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

FAMILIES: dict[str, MutationFamily] = {
    family.name: family
    for family in (
        AluOpSwapFamily(),
        AluResultOffsetFamily(),
        OperandSwapFamily(),
        ImmSextFlipFamily(),
        ForwardDropFamily(),
        ForwardCorruptionFamily(),
        WbDropFamily(),
    )
}


def get_family(name: str) -> MutationFamily:
    family = FAMILIES.get(name)
    if family is None:
        raise ZooError(
            f"unknown mutation family {name!r}; known families: "
            + ", ".join(sorted(FAMILIES))
        )
    return family


def sample_recipe(family_name: str, seed: int) -> BugRecipe:
    """Deterministically draw one recipe of ``family_name`` from ``seed``."""
    family = get_family(family_name)
    params = family.sample(random.Random(seed))
    return BugRecipe(
        family=family_name, params=tuple(sorted(params.items())), seed=seed
    )


def instantiate(recipe: BugRecipe) -> ZooInstance:
    """Rebuild the exact instance a recipe describes."""
    return get_family(recipe.family).build(recipe)
