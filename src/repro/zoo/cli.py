"""Command-line front end for the bug zoo: ``python -m repro.zoo``.

Subcommands::

    list                        show registered mutation families
    generate  --count N         sample recipes to a JSON file (or stdout)
    run       --count N         sample + run a campaign, print the report
    replay    --recipes FILE    re-run committed recipes through the oracle
    shrink    --family F --seed S   minimise one instance's recipe

Everything is seeded and deterministic; exit status is the verdict gate
(0 = all oracle checks passed, 1 = disagreement / false alarm / error).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.proc.bugs import BugRecipe
from repro.zoo.campaign import (
    CampaignConfig,
    generate_recipes,
    load_recipes,
    run_campaign,
    save_recipes,
    summarize,
)
from repro.zoo.families import FAMILIES, get_family, instantiate, sample_recipe
from repro.zoo.oracle import OracleSettings, run_instance
from repro.zoo.shrink import shrink_recipe


def _settings(args: argparse.Namespace) -> OracleSettings:
    engines = tuple(args.engines.split(","))
    return OracleSettings(
        engines=engines,
        bmc_conflict_budget=args.bmc_budget,
        pdr_total_budget=args.pdr_budget,
        backend=args.backend,
        opt_level=args.opt_level,
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engines",
        default="bmc,pdr",
        help="comma-separated oracle legs: bmc[,pdr][,kinduction]",
    )
    parser.add_argument("--bmc-budget", type=int, default=200_000)
    parser.add_argument(
        "--pdr-budget",
        type=int,
        default=4_000,
        help="cumulative PDR effort budget; exhausted ⇒ inconclusive",
    )
    parser.add_argument("--backend", default="cdcl")
    parser.add_argument("--opt-level", type=int, default=None)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.zoo", description=__doc__.split("\n\n")[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered mutation families")

    gen = sub.add_parser("generate", help="sample recipes to JSON")
    gen.add_argument("--count", type=int, default=12)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--families", default="", help="comma-separated subset")
    gen.add_argument("--out", default="", help="output file (default stdout)")

    run = sub.add_parser("run", help="sample + run a campaign")
    run.add_argument("--count", type=int, default=12)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--families", default="")
    run.add_argument("--jobs", type=int, default=1)
    run.add_argument("--no-controls", action="store_true")
    run.add_argument("--out", default="", help="write full JSON report here")
    _add_engine_args(run)

    replay = sub.add_parser("replay", help="re-run recipes from a JSON file")
    replay.add_argument("--recipes", required=True)
    replay.add_argument("--jobs", type=int, default=1)
    _add_engine_args(replay)

    shr = sub.add_parser("shrink", help="minimise one instance's recipe")
    shr.add_argument("--family", required=True)
    shr.add_argument("--seed", type=int, required=True)
    shr.add_argument("--out", default="", help="write shrunk recipe JSON here")
    _add_engine_args(shr)
    return parser


def _cmd_list() -> int:
    for name in sorted(FAMILIES):
        family = get_family(name)
        print(f"{name:20s} [{family.flow_kind}] {family.description}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    families = tuple(f for f in args.families.split(",") if f)
    config = CampaignConfig(count=args.count, seed=args.seed, families=families)
    recipes = generate_recipes(config)
    if args.out:
        save_recipes(recipes, args.out)
        print(f"wrote {len(recipes)} recipes to {args.out}")
    else:
        json.dump([r.as_dict() for r in recipes], sys.stdout, indent=2)
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    families = tuple(f for f in args.families.split(",") if f)
    config = CampaignConfig(
        count=args.count,
        seed=args.seed,
        families=families,
        settings=_settings(args),
        jobs=args.jobs,
        run_controls=not args.no_controls,
    )
    report = run_campaign(config)
    print(json.dumps(report.summary, indent=2))
    if args.out:
        Path(args.out).write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"full report: {args.out}")
    return 0 if report.passed else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    recipes = load_recipes(args.recipes)
    settings = _settings(args)
    reports = [run_instance(instantiate(r), settings) for r in recipes]
    summary = summarize(reports, [])
    print(json.dumps(summary, indent=2))
    return 0 if summary["passed"] else 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    recipe = sample_recipe(args.family, seed=args.seed)
    result = shrink_recipe(recipe, settings=_settings(args))
    print(json.dumps(asdict(result), indent=2))
    if args.out:
        shrunk = BugRecipe.from_dict(result.shrunk)
        save_recipes([shrunk], args.out)
        print(f"shrunk recipe: {args.out}")
    return 0 if result.status == "detected" else 1


def main(argv: Optional[list[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "shrink":
            return _cmd_shrink(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
