"""Greedy recipe shrinking: reduce a failing instance to its simplest form.

When the oracle flags an instance (a detection, or worse a disagreement),
the campaign wants to commit a *minimal* reproducer, not whatever the
random sampler happened to draw.  The shrinker walks the family's own
``shrink_candidates`` lattice — strictly-simpler parameter dicts, most
aggressive first — and keeps a step only when the simplified instance
still reproduces the original verdict signature (same status, still
concretising, counterexample no longer than before).  Shrinking runs the
BMC leg only: the signature it preserves is the counterexample, and
re-running PDR per step would dominate the cost for no extra information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.proc.bugs import BugRecipe
from repro.zoo.families import get_family, instantiate
from repro.zoo.oracle import OracleReport, OracleSettings, run_instance


@dataclass
class ShrinkResult:
    """Outcome of one shrink run (picklable)."""

    original: dict
    shrunk: dict
    steps_taken: int
    candidates_tried: int
    original_cex_length: Optional[int]
    shrunk_cex_length: Optional[int]
    status: str

    @property
    def reduced(self) -> bool:
        return self.shrunk != self.original


def _bmc_only(settings: Optional[OracleSettings]) -> OracleSettings:
    base = settings or OracleSettings()
    return OracleSettings(
        engines=("bmc",),
        bmc_conflict_budget=base.bmc_conflict_budget,
        backend=base.backend,
        opt_level=base.opt_level,
        jobs=base.jobs,
    )


def _signature(report: OracleReport) -> tuple:
    return (report.status, report.concretized)


def shrink_recipe(
    recipe: BugRecipe,
    settings: Optional[OracleSettings] = None,
    max_steps: int = 12,
) -> ShrinkResult:
    """Greedily simplify ``recipe`` while its oracle verdict reproduces.

    The returned recipe has the same family and seed; only its parameters
    move down the family's shrink lattice.  If the original instance does
    not produce a BMC counterexample at all there is nothing to preserve
    and the recipe is returned unchanged.
    """
    settings = _bmc_only(settings)
    family = get_family(recipe.family)

    current = recipe
    report = run_instance(instantiate(current), settings)
    target = _signature(report)
    best_len = report.cex_length
    original_len = report.cex_length

    steps = 0
    tried = 0
    if report.cex_length is not None:
        while steps < max_steps:
            progressed = False
            for params in family.shrink_candidates(dict(current.params)):
                candidate = BugRecipe(
                    family=current.family,
                    params=tuple(sorted(params.items())),
                    seed=current.seed,
                )
                if candidate == current:
                    continue
                tried += 1
                cand_report = run_instance(instantiate(candidate), settings)
                if _signature(cand_report) != target:
                    continue
                if (
                    cand_report.cex_length is not None
                    and best_len is not None
                    and cand_report.cex_length > best_len
                ):
                    continue
                current = candidate
                best_len = cand_report.cex_length
                steps += 1
                progressed = True
                break
            if not progressed:
                break

    return ShrinkResult(
        original=recipe.as_dict(),
        shrunk=current.as_dict(),
        steps_taken=steps,
        candidates_tried=tried,
        original_cex_length=original_len,
        shrunk_cex_length=best_len,
        status=report.status,
    )
