"""Campaign driver: sample, evaluate and score a population of zoo bugs.

A campaign draws ``count`` seeded instances round-robin across the enabled
mutation families, runs every one through the three-way oracle, runs one
bug-free control per *distinct verification configuration* (controls are
deduplicated on :meth:`ZooInstance.control_key` — many instances of one
family share a processor config and would re-prove the identical golden
model), and aggregates a verdict-gated report:

* every seeded, non-inconclusive instance must be ``detected`` with a
  concretised counterexample;
* every control must be ``clean`` (or inconclusive under budget);
* ``disagreement`` anywhere fails the campaign.

Counters are structural — detection rate, counterexample lengths, conflict
counts — never wall-clock, so the report is stable across machines.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ZooError
from repro.par import TaskPool
from repro.proc.bugs import BugRecipe
from repro.zoo.families import FAMILIES, ZooInstance, instantiate, sample_recipe
from repro.zoo.oracle import (
    OracleReport,
    OracleSettings,
    STATUS_CLEAN,
    STATUS_DETECTED,
    STATUS_DISAGREEMENT,
    STATUS_INCONCLUSIVE,
    run_control,
    run_instance,
)


@dataclass
class CampaignConfig:
    """What to run and how hard to try."""

    count: int = 20
    seed: int = 0
    families: tuple[str, ...] = ()  # empty ⇒ all registered families
    settings: OracleSettings = field(default_factory=OracleSettings)
    jobs: int = 1
    run_controls: bool = True

    def family_names(self) -> tuple[str, ...]:
        names = self.families or tuple(sorted(FAMILIES))
        for name in names:
            if name not in FAMILIES:
                known = ", ".join(sorted(FAMILIES))
                raise ZooError(f"unknown family {name!r}; known: {known}")
        return names


@dataclass
class CampaignReport:
    """Aggregated, verdict-gated campaign outcome (JSON-serialisable)."""

    config: dict
    seeded: list[OracleReport]
    controls: list[OracleReport]
    summary: dict

    @property
    def passed(self) -> bool:
        return bool(self.summary["passed"])

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "summary": self.summary,
            "seeded": [asdict(r) for r in self.seeded],
            "controls": [asdict(r) for r in self.controls],
        }


def generate_recipes(config: CampaignConfig) -> list[BugRecipe]:
    """Deterministic round-robin sample: family ``i % n``, seed derived
    from the campaign seed and the instance index."""
    if config.count < 1:
        raise ZooError("campaign count must be positive")
    names = config.family_names()
    return [
        sample_recipe(names[i % len(names)], seed=config.seed * 100_003 + i)
        for i in range(config.count)
    ]


def _dedup_controls(
    instances: list[ZooInstance],
) -> list[ZooInstance]:
    seen: set = set()
    unique: list[ZooInstance] = []
    for instance in instances:
        key = instance.control_key()
        if key not in seen:
            seen.add(key)
            unique.append(instance)
    return unique


def _run_seeded(task) -> OracleReport:
    recipe, settings = task
    return run_instance(instantiate(recipe), settings)


def _run_control(task) -> OracleReport:
    instance, settings = task
    return run_control(instance, settings)


def summarize(
    seeded: list[OracleReport], controls: list[OracleReport]
) -> dict:
    """Verdict gates + structural counters (no wall-clock anywhere)."""
    conclusive = [r for r in seeded if r.status != STATUS_INCONCLUSIVE]
    detected = [r for r in conclusive if r.status == STATUS_DETECTED]
    disagreements = [
        r
        for r in seeded + controls
        if r.status == STATUS_DISAGREEMENT
    ]
    false_alarms = [
        r for r in controls if r.status not in (STATUS_CLEAN, STATUS_INCONCLUSIVE)
    ]
    lengths = sorted(r.cex_length for r in detected if r.cex_length is not None)
    per_family: dict[str, dict] = {}
    for r in seeded:
        row = per_family.setdefault(
            r.family, {"total": 0, "detected": 0, "inconclusive": 0}
        )
        row["total"] += 1
        row["detected"] += r.status == STATUS_DETECTED
        row["inconclusive"] += r.status == STATUS_INCONCLUSIVE
    all_concretized = all(r.concretized for r in detected)
    detection_rate = (len(detected) / len(conclusive)) if conclusive else None
    return {
        "instances": len(seeded),
        "controls": len(controls),
        "detected": len(detected),
        "inconclusive": sum(
            r.status == STATUS_INCONCLUSIVE for r in seeded
        ),
        "disagreements": len(disagreements),
        "false_alarms": len(false_alarms),
        "detection_rate": detection_rate,
        "all_detected_concretized": all_concretized,
        "cex_length_min": lengths[0] if lengths else None,
        "cex_length_max": lengths[-1] if lengths else None,
        "total_conflicts": sum(r.conflicts for r in seeded + controls),
        "per_family": per_family,
        "passed": (
            not disagreements
            and not false_alarms
            and all_concretized
            and (detection_rate is None or detection_rate == 1.0)
        ),
        "failures": [
            {"family": r.family, "kind": r.kind, "failure": r.failure}
            for r in disagreements + false_alarms
        ],
    }


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run the whole campaign, fanning instances across ``config.jobs``
    forked workers (reports are plain dataclasses, so they pickle)."""
    recipes = generate_recipes(config)
    instances = [instantiate(r) for r in recipes]

    pool = TaskPool(jobs=config.jobs)
    seeded = pool.map(
        _run_seeded, [(r, config.settings) for r in recipes]
    )
    controls: list[OracleReport] = []
    if config.run_controls:
        unique = _dedup_controls(instances)
        controls = pool.map(
            _run_control, [(i, config.settings) for i in unique]
        )

    return CampaignReport(
        config={
            "count": config.count,
            "seed": config.seed,
            "families": list(config.family_names()),
            "jobs": config.jobs,
            "engines": list(config.settings.engines),
            "pdr_total_budget": config.settings.pdr_total_budget,
            "bmc_conflict_budget": config.settings.bmc_conflict_budget,
            "control_bound": config.settings.control_bound,
            "backend": config.settings.backend,
            "opt_level": config.settings.opt_level,
        },
        seeded=seeded,
        controls=controls,
        summary=summarize(seeded, controls),
    )


# ---------------------------------------------------------------------------
# Recipe files (committed regression reproducers)
# ---------------------------------------------------------------------------


def save_recipes(recipes: list[BugRecipe], path: str | Path) -> None:
    Path(path).write_text(
        json.dumps([r.as_dict() for r in recipes], indent=2) + "\n"
    )


def load_recipes(path: str | Path) -> list[BugRecipe]:
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ZooError(f"cannot read recipe file {path}: {exc}") from exc
    if not isinstance(raw, list):
        raise ZooError(f"recipe file {path} must hold a JSON list")
    return [BugRecipe.from_dict(entry) for entry in raw]
