"""Entry point for ``python -m repro.zoo``."""

import sys

from repro.zoo.cli import main

sys.exit(main())
