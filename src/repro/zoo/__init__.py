"""Generative bug zoo: seeded mutation families + three-way differential
oracle (executor replay ∥ BMC ∥ PDR/k-induction) + campaign driver.

Every bug instance is reproducible from a ``(family, params, seed)``
:class:`~repro.proc.bugs.BugRecipe`; ``python -m repro.zoo`` is the CLI.
"""

from repro.zoo.campaign import (
    CampaignConfig,
    CampaignReport,
    generate_recipes,
    load_recipes,
    run_campaign,
    save_recipes,
    summarize,
)
from repro.zoo.families import (
    FAMILIES,
    FLOW_SEPE,
    FLOW_SQED,
    MutationFamily,
    ZooInstance,
    get_family,
    instantiate,
    sample_recipe,
)
from repro.zoo.oracle import (
    OracleReport,
    OracleSettings,
    concretize_trace,
    replay_check,
    run_control,
    run_instance,
    run_recipe,
)
from repro.zoo.shrink import ShrinkResult, shrink_recipe

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "FAMILIES",
    "FLOW_SEPE",
    "FLOW_SQED",
    "MutationFamily",
    "OracleReport",
    "OracleSettings",
    "ShrinkResult",
    "ZooInstance",
    "concretize_trace",
    "generate_recipes",
    "get_family",
    "instantiate",
    "load_recipes",
    "replay_check",
    "run_campaign",
    "run_control",
    "run_instance",
    "run_recipe",
    "sample_recipe",
    "save_recipes",
    "shrink_recipe",
    "summarize",
]
