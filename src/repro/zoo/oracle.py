"""Three-way differential oracle: executor replay ∥ BMC ∥ PDR/k-induction.

For a seeded zoo instance the oracle demands:

* **BMC** finds a counterexample within the family's bound;
* the counterexample **concretises**: the dispatched instruction sequence
  extracted from the trace, replayed on the golden architectural executor
  (:mod:`repro.isa.executor`), ends QED-consistent — while the (buggy) DUV
  states in the trace end inconsistent and diverge from the replay.  This
  is what makes a "detection" a real bug and not an encoding artefact;
* **PDR** and **k-induction**, when asked, must *not* prove the buggy
  design safe; a PDR refutation's obligation chain must end in a state
  that violates the consistency property and be at least as long as the
  shortest BMC trace.

For a bug-free control the oracle demands that no engine reports a
counterexample.  Budget-exhausted engines report ``inconclusive`` — an
instance is only *inconclusive overall* if BMC itself ran out of budget;
any cross-engine contradiction is a ``disagreement``, the one status that
should never occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bmc.trace import Trace
from repro.core.flow import SepeSqedFlow, SqedFlow, _BaseFlow
from repro.errors import ZooError
from repro.isa.executor import ArchState, execute_program
from repro.isa.instructions import Instruction
from repro.lint.model import lint_transition_system
from repro.proc.bugs import BugRecipe
from repro.qed.module import (
    QedVerificationModel,
    SEL_ORIGINAL,
    SEL_TRANSFORMED,
)
from repro.qed.scheme import EntryFields
from repro.smt import terms as T
from repro.smt.evaluator import evaluate
from repro.zoo.families import FLOW_SEPE, ZooInstance, instantiate

#: Overall instance statuses.
STATUS_DETECTED = "detected"
STATUS_CLEAN = "clean"
STATUS_INCONCLUSIVE = "inconclusive"
STATUS_DISAGREEMENT = "disagreement"

#: Per-engine verdicts.
CEX, SAFE, UNKNOWN = "cex", "safe", "inconclusive"


@dataclass
class OracleSettings:
    """Engine selection and budgets for one oracle evaluation."""

    engines: tuple[str, ...] = ("bmc", "pdr", "kinduction")
    #: Per-instance budget for the whole BMC run (cumulative over frames).
    bmc_conflict_budget: int = 200_000
    #: Cumulative effort budget for the PDR leg (conflicts + queries); PDR
    #: on buggy QED models is an obligation storm, so this is what keeps a
    #: campaign from hanging (satellite: budget-exceeded ⇒ inconclusive).
    pdr_total_budget: int = 4_000
    pdr_max_frames: int = 8
    kinduction_max_k: int = 3
    #: Bound cap for control (bug-free) BMC runs.  Golden-model UNSAT cost
    #: explodes per frame (measured ~2.6s at bound 7 vs ~330s at bound 9 on
    #: the SEPE configuration); a false alarm — an encoding artefact — would
    #: surface at small bounds too, and the PDR/k-induction control legs
    #: cover depths beyond it.
    control_bound: int = 7
    backend: str = "cdcl"
    opt_level: Optional[int] = None
    jobs: int = 1


@dataclass
class OracleReport:
    """Picklable per-instance result (workers return these across forks)."""

    family: str
    recipe: dict
    flow_kind: str
    kind: str  # "seeded" or "control"
    status: str
    bmc_verdict: str = UNKNOWN
    pdr_verdict: str = "skipped"
    kinduction_verdict: str = "skipped"
    cex_length: Optional[int] = None
    pdr_chain_length: Optional[int] = None
    concretized: Optional[bool] = None
    conflicts: int = 0
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_DETECTED, STATUS_CLEAN, STATUS_INCONCLUSIVE)


# ---------------------------------------------------------------------------
# Trace concretization
# ---------------------------------------------------------------------------


def _model_prefix(model: QedVerificationModel) -> str:
    name = model.inputs["qed_sel"].name
    assert name is not None and name.endswith("_qed_sel")
    return name[: -len("_qed_sel")]


def _eval_const(term) -> int:
    """Evaluate a term that must not contain free variables."""
    return evaluate(term, {})


def concretize_trace(
    model: QedVerificationModel, trace: Trace
) -> tuple[ArchState, list[Instruction]]:
    """Extract the initial state and dispatched instruction sequence.

    The returned program replays the trace on the golden architectural
    executor: original instructions come straight from the trace inputs;
    transformed instructions are rebuilt by pushing the concrete FIFO head
    through the scheme's ``transformed_instruction`` and constant-folding
    the result.
    """
    config = model.config
    isa = config.isa
    mp = _model_prefix(model)

    first = trace.steps[0]
    regs = [0] * isa.num_regs
    for i in range(1, isa.num_regs):
        regs[i] = first.states[f"{mp}_duv_reg{i}"]
    mem = [first.states[f"{mp}_duv_mem{w}"] for w in range(isa.mem_words)]
    initial = ArchState(config=isa, regs=regs, mem=mem)

    program: list[Instruction] = []
    # Inputs of the final frame never reach the state the property judges.
    for step in trace.steps[:-1]:
        sel = step.inputs[f"{mp}_qed_sel"]
        if sel == SEL_ORIGINAL:
            op_name = config.supported_ops[step.inputs[f"{mp}_orig_op"]]
            program.append(
                Instruction(
                    name=op_name,
                    rd=step.inputs[f"{mp}_orig_rd"],
                    rs1=step.inputs[f"{mp}_orig_rs1"],
                    rs2=step.inputs[f"{mp}_orig_rs2"],
                    imm=step.inputs[f"{mp}_orig_imm"],
                )
            )
        elif sel == SEL_TRANSFORMED:
            if step.states[f"{mp}_qed_count"] == 0:
                raise ZooError(
                    f"frame {step.frame}: transformed dispatch from an empty "
                    "FIFO (the model constraints forbid this)"
                )
            head_op = config.supported_ops[step.states[f"{mp}_qed_fifo0_op"]]
            entry = EntryFields(
                op=T.bv_const(step.states[f"{mp}_qed_fifo0_op"], config.op_width),
                rd=T.bv_const(step.states[f"{mp}_qed_fifo0_rd"], isa.reg_index_width),
                rs1=T.bv_const(step.states[f"{mp}_qed_fifo0_rs1"], isa.reg_index_width),
                rs2=T.bv_const(step.states[f"{mp}_qed_fifo0_rs2"], isa.reg_index_width),
                imm=T.bv_const(step.states[f"{mp}_qed_fifo0_imm"], isa.imm_width),
            )
            fields = model.scheme.transformed_instruction(
                config, head_op, step.states[f"{mp}_qed_seq_pos"], entry
            )
            program.append(
                Instruction(
                    name=config.supported_ops[_eval_const(fields.op)],
                    rd=_eval_const(fields.rd),
                    rs1=_eval_const(fields.rs1),
                    rs2=_eval_const(fields.rs2),
                    imm=_eval_const(fields.imm),
                )
            )
        # SEL_BUBBLE: nothing dispatched.
    return initial, program


def _compared_memory(model: QedVerificationModel) -> bool:
    from repro.isa.instructions import get_instruction

    return any(
        get_instruction(op).is_load or get_instruction(op).is_store
        for op in model.allowed_ops
    )


def _consistent_state(model: QedVerificationModel, regs, mem) -> bool:
    partition = model.scheme.partition
    for o, s in partition.compare_pairs(include_zero=False):
        if regs[o] != regs[s]:
            return False
    if _compared_memory(model):
        for o, s in model.scheme.memory.compare_pairs():
            if mem[o] != mem[s]:
                return False
    return True


def replay_check(model: QedVerificationModel, trace: Trace) -> Optional[str]:
    """Concretise and replay a BMC counterexample; ``None`` means it is real.

    Three facts must hold for a trace to count as a genuine bug witness:
    the golden executor replay of the dispatched program ends consistent
    (no false alarm — a correct machine running the same program satisfies
    the property), the DUV's final trace state is inconsistent (the
    property really is violated), and the two final states differ (the
    divergence is architectural, not an encoding artefact).
    """
    try:
        initial, program = concretize_trace(model, trace)
    except (KeyError, ZooError) as exc:
        return f"concretization failed: {exc}"
    final = execute_program(initial.copy(), program)

    if not _consistent_state(model, final.regs, final.mem):
        return "golden replay of the dispatched program ends QED-inconsistent"

    isa = model.config.isa
    mp = _model_prefix(model)
    last = trace.steps[-1]
    duv_regs = [0] + [
        last.states[f"{mp}_duv_reg{i}"] for i in range(1, isa.num_regs)
    ]
    duv_mem = [last.states[f"{mp}_duv_mem{w}"] for w in range(isa.mem_words)]
    if _consistent_state(model, duv_regs, duv_mem):
        return "trace's final DUV state does not violate the property"
    if duv_regs == final.regs and duv_mem == final.mem:
        return "DUV final state equals the golden replay (no divergence)"
    return None


def _pdr_chain_check(model: QedVerificationModel, chain) -> Optional[str]:
    """The final obligation-chain state must actually violate the property."""
    last = chain[-1]
    try:
        ready = evaluate(model.qed_ready, last)
        consistent = evaluate(model.consistent, last)
    except Exception as exc:  # missing state name ⇒ malformed chain
        return f"PDR chain evaluation failed: {exc}"
    if not (ready == 1 and consistent == 0):
        return (
            f"PDR chain ends qed_ready={ready}, consistent={consistent} "
            "(expected a property violation)"
        )
    return None


# ---------------------------------------------------------------------------
# Running one instance / control through the oracle
# ---------------------------------------------------------------------------


def make_flow(instance: ZooInstance, settings: OracleSettings) -> _BaseFlow:
    cls = SepeSqedFlow if instance.flow_kind == FLOW_SEPE else SqedFlow
    return cls(
        instance.config,
        fifo_depth=instance.fifo_depth,
        backend=settings.backend,
        opt_level=settings.opt_level,
    )


def _charge_run(report: OracleReport, outcome) -> None:
    if outcome.bmc_result is not None:
        report.conflicts += outcome.bmc_result.stats.solver_stats.conflicts


def _charge_proof(report: OracleReport, proof) -> None:
    if proof.pdr_result is not None:
        report.conflicts += proof.pdr_result.stats.solver_stats.conflicts
    if proof.kinduction_result is not None:
        kind = proof.kinduction_result
        report.conflicts += kind.step_solver_stats.conflicts
        if kind.base_result is not None:
            report.conflicts += kind.base_result.stats.solver_stats.conflicts


def run_instance(
    instance: ZooInstance, settings: Optional[OracleSettings] = None
) -> OracleReport:
    """Evaluate one seeded instance against every requested engine."""
    settings = settings or OracleSettings()
    report = OracleReport(
        family=instance.family,
        recipe=instance.recipe.as_dict(),
        flow_kind=instance.flow_kind,
        kind="seeded",
        status=STATUS_INCONCLUSIVE,
    )
    flow = make_flow(instance, settings)

    if "bmc" not in settings.engines:
        raise ZooError("the oracle always needs the BMC leg ('bmc' engine)")
    # Static pre-check: a seeded mutation must still produce a well-formed
    # model.  Error-severity lint findings mean the mutation broke the
    # *encoding*, not the design's behaviour — that is an artefact of the
    # family, not a bug instance, and counts as a disagreement so campaigns
    # surface it instead of crediting a detection.
    lint_report = lint_transition_system(flow.build_model(instance.bug).ts)
    if lint_report.errors:
        report.status = STATUS_DISAGREEMENT
        report.failure = "seeded model failed lint: " + "; ".join(
            f.render() for f in lint_report.errors[:3]
        )
        return report
    outcome = flow.run(
        instance.bug,
        bound=instance.bound,
        conflict_budget=settings.bmc_conflict_budget,
        jobs=settings.jobs,
    )
    _charge_run(report, outcome)
    if outcome.detected is None:
        report.bmc_verdict = UNKNOWN
        report.status = STATUS_INCONCLUSIVE
        return report
    if outcome.detected is False:
        # The family guarantees detectability within its bound: a bounded
        # all-clear on a seeded bug is a real three-way disagreement
        # (mutation, model and engine cannot all be right).
        report.bmc_verdict = SAFE
        report.status = STATUS_DISAGREEMENT
        report.failure = (
            f"seeded {instance.family} bug not detected by BMC at bound "
            f"{instance.bound}"
        )
        return report

    report.bmc_verdict = CEX
    report.cex_length = outcome.counterexample_length
    # The trace came from an identically-built model; symbol names match
    # because flows build models deterministically — but never reuse the
    # *outcome's* trace against a model with a different prefix.
    failure = replay_check_from_run(flow, instance, outcome)
    if failure is not None:
        report.concretized = False
        report.status = STATUS_DISAGREEMENT
        report.failure = failure
        return report
    report.concretized = True
    report.status = STATUS_DETECTED

    if "pdr" in settings.engines:
        proof = flow.prove(
            instance.bug,
            engine="pdr",
            max_frames=settings.pdr_max_frames,
            total_conflict_budget=settings.pdr_total_budget,
        )
        _charge_proof(report, proof)
        if proof.proven is True:
            report.pdr_verdict = SAFE
            report.status = STATUS_DISAGREEMENT
            report.failure = "PDR proved a seeded buggy design safe"
            return report
        if proof.proven is False:
            report.pdr_verdict = CEX
            chain = proof.pdr_result.cex_chain
            report.pdr_chain_length = None if chain is None else len(chain)
            failure = _pdr_chain_check(proof.model, chain) if chain else (
                "PDR refuted without an obligation chain"
            )
            if failure is None and report.cex_length is not None and len(
                chain
            ) < report.cex_length:
                failure = (
                    f"PDR chain ({len(chain)}) shorter than the minimal BMC "
                    f"counterexample ({report.cex_length})"
                )
            if failure is not None:
                report.status = STATUS_DISAGREEMENT
                report.failure = failure
                return report
        else:
            report.pdr_verdict = UNKNOWN

    if "kinduction" in settings.engines:
        proof = flow.prove(
            instance.bug,
            engine="kinduction",
            max_k=settings.kinduction_max_k,
            conflict_budget=settings.bmc_conflict_budget,
        )
        _charge_proof(report, proof)
        if proof.proven is True:
            report.kinduction_verdict = SAFE
            report.status = STATUS_DISAGREEMENT
            report.failure = "k-induction proved a seeded buggy design safe"
            return report
        report.kinduction_verdict = CEX if proof.proven is False else UNKNOWN

    return report


def replay_check_from_run(
    flow: _BaseFlow, instance: ZooInstance, outcome
) -> Optional[str]:
    """Replay-check a flow.run outcome's trace against a matching model.

    ``flow.run`` built its own model internally (with its own symbol
    prefix), so the trace must be checked against a model whose names come
    from the *trace itself*: we rebuild and rely on deterministic
    construction, then remap by position if prefixes differ.
    """
    trace = None if outcome.bmc_result is None else outcome.bmc_result.trace
    if trace is None:
        return "BMC reported a counterexample but produced no trace"
    model = flow.build_model(instance.bug)
    fresh_prefix = _model_prefix(model)
    # The trace's prefix is whatever run() minted; recover it from any
    # qed_sel input key.
    sel_keys = [k for k in trace.steps[0].inputs if k.endswith("_qed_sel")]
    if len(sel_keys) != 1:
        return f"cannot identify the trace's model prefix: {sel_keys}"
    trace_prefix = sel_keys[0][: -len("_qed_sel")]
    if trace_prefix != fresh_prefix:
        trace = _remap_trace(trace, trace_prefix, fresh_prefix)
    return replay_check(model, trace)


def _remap_trace(trace: Trace, old: str, new: str) -> Trace:
    from repro.bmc.trace import TraceStep

    def remap(d: dict) -> dict:
        return {
            (new + k[len(old):] if k.startswith(old) else k): v
            for k, v in d.items()
        }

    return Trace(
        steps=[
            TraceStep(frame=s.frame, states=remap(s.states), inputs=remap(s.inputs))
            for s in trace.steps
        ],
        property_name=trace.property_name,
    )


def run_control(
    instance: ZooInstance, settings: Optional[OracleSettings] = None
) -> OracleReport:
    """Verify the matching bug-free control produces no false alarm."""
    settings = settings or OracleSettings()
    report = OracleReport(
        family=instance.family,
        recipe={"control_for": instance.recipe.as_dict()},
        flow_kind=instance.flow_kind,
        kind="control",
        status=STATUS_CLEAN,
    )
    flow = make_flow(instance, settings)
    outcome = flow.run(
        None,
        bound=min(instance.bound, settings.control_bound),
        conflict_budget=settings.bmc_conflict_budget,
        jobs=settings.jobs,
    )
    _charge_run(report, outcome)
    if outcome.detected is True:
        report.bmc_verdict = CEX
        report.status = STATUS_DISAGREEMENT
        report.failure = "false alarm: BMC refuted a bug-free control"
        return report
    report.bmc_verdict = SAFE if outcome.detected is False else UNKNOWN
    if report.bmc_verdict == UNKNOWN:
        report.status = STATUS_INCONCLUSIVE

    if "pdr" in settings.engines:
        proof = flow.prove(
            None,
            engine="pdr",
            max_frames=settings.pdr_max_frames,
            total_conflict_budget=settings.pdr_total_budget,
        )
        _charge_proof(report, proof)
        if proof.proven is False:
            report.pdr_verdict = CEX
            report.status = STATUS_DISAGREEMENT
            report.failure = "false alarm: PDR refuted a bug-free control"
            return report
        report.pdr_verdict = SAFE if proof.proven else UNKNOWN

    if "kinduction" in settings.engines:
        proof = flow.prove(
            None,
            engine="kinduction",
            max_k=settings.kinduction_max_k,
            conflict_budget=settings.bmc_conflict_budget,
        )
        _charge_proof(report, proof)
        if proof.proven is False:
            report.kinduction_verdict = CEX
            report.status = STATUS_DISAGREEMENT
            report.failure = "false alarm: k-induction refuted a bug-free control"
            return report
        report.kinduction_verdict = SAFE if proof.proven else UNKNOWN
    return report


def run_recipe(
    recipe: BugRecipe, settings: Optional[OracleSettings] = None
) -> OracleReport:
    """Instantiate and evaluate one recipe (the replay entry point)."""
    return run_instance(instantiate(recipe), settings)
