"""SEPE-SQED: Symbolic Quick Error Detection by Semantically Equivalent Program Execution.

A from-scratch Python reproduction of the DAC 2024 paper, including every
substrate the method depends on: a CDCL SAT solver, a bit-vector SMT layer,
transition systems with a BTOR2 bridge, a bounded model checker, an RV32IM
subset with concrete and symbolic semantics, component-based program
synthesis (classical / iterative / HPF CEGIS), symbolic pipelined processor
models with injectable mutations, and the EDDI-V / EDSEP-V QED modules.

Quickstart::

    from repro import (
        IsaConfig, ProcessorConfig, SepeSqedFlow, SqedFlow, get_bug, pool_for_bug,
        default_equivalent_programs,
    )

    isa = IsaConfig.small()
    equivalents = default_equivalent_programs(isa)
    bug = get_bug("single_add_off_by_one")
    pool = pool_for_bug(bug, equivalents)
    config = ProcessorConfig(isa=isa, supported_ops=pool)
    outcome = SepeSqedFlow(config).run(bug, bound=10)
    assert outcome.detected

See ``examples/`` and ``EXPERIMENTS.md`` for the full experiment harnesses.
"""

from repro.isa.config import IsaConfig
from repro.isa.instructions import Instruction, instruction_names, get_instruction
from repro.isa.executor import ArchState, execute_instruction, execute_program
from repro.isa.assembler import assemble
from repro.proc.config import ProcessorConfig
from repro.proc.bugs import (
    Bug,
    BugKind,
    BugRecipe,
    bug_catalog,
    get_bug,
    single_instruction_bugs,
    multiple_instruction_bugs,
)
from repro.synth.components import build_default_library, ComponentLibrary
from repro.synth.spec import spec_from_instruction
from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.hpf import HpfCegis
from repro.synth.iterative import IterativeCegis
from repro.synth.classical import ClassicalCegis
from repro.qed.equivalents import (
    default_equivalent_programs,
    verify_equivalence,
    verify_equivalences,
)
from repro.qed.mapping import RegisterPartition, MemoryPartition
from repro.par import (
    PortfolioConfig,
    PortfolioSolver,
    TaskPool,
    check_frames_sharded,
    check_properties_parallel,
    prove_properties_parallel,
    verify_equivalences_parallel,
)
from repro.core.flow import SqedFlow, SepeSqedFlow, pool_for_bug
from repro.core.results import ProofOutcome, VerificationOutcome
from repro.bmc.engine import BmcEngine, BmcSession
from repro.bmc.kinduction import KInductionEngine, KInductionResult
from repro.pdr import InvariantCheck, PdrEngine, PdrResult, check_invariant
from repro.solve import EncodingStats, PipelineConfig, SolverContext, default_opt_level
from repro.ts.system import TransitionSystem
from repro.btor import write_btor2, parse_btor2
from repro.zoo import (
    CampaignConfig,
    OracleReport,
    OracleSettings,
    ZooInstance,
    run_campaign,
    run_instance,
    sample_recipe,
    shrink_recipe,
)

__version__ = "1.0.0"

__all__ = [
    "IsaConfig",
    "Instruction",
    "instruction_names",
    "get_instruction",
    "ArchState",
    "execute_instruction",
    "execute_program",
    "assemble",
    "ProcessorConfig",
    "Bug",
    "BugKind",
    "BugRecipe",
    "bug_catalog",
    "get_bug",
    "single_instruction_bugs",
    "multiple_instruction_bugs",
    "build_default_library",
    "ComponentLibrary",
    "spec_from_instruction",
    "CegisConfig",
    "CegisEngine",
    "HpfCegis",
    "IterativeCegis",
    "ClassicalCegis",
    "default_equivalent_programs",
    "verify_equivalence",
    "verify_equivalences",
    "RegisterPartition",
    "MemoryPartition",
    "PortfolioConfig",
    "PortfolioSolver",
    "TaskPool",
    "check_frames_sharded",
    "check_properties_parallel",
    "prove_properties_parallel",
    "verify_equivalences_parallel",
    "SqedFlow",
    "SepeSqedFlow",
    "pool_for_bug",
    "ProofOutcome",
    "VerificationOutcome",
    "BmcEngine",
    "BmcSession",
    "KInductionEngine",
    "KInductionResult",
    "InvariantCheck",
    "PdrEngine",
    "PdrResult",
    "check_invariant",
    "EncodingStats",
    "PipelineConfig",
    "SolverContext",
    "default_opt_level",
    "TransitionSystem",
    "write_btor2",
    "parse_btor2",
    "CampaignConfig",
    "OracleReport",
    "OracleSettings",
    "ZooInstance",
    "run_campaign",
    "run_instance",
    "sample_recipe",
    "shrink_recipe",
    "__version__",
]
