"""Build the complete QED verification model (Figure 2 of the paper).

The model wires together:

* the symbolic instruction source (free BMC inputs for the original
  instruction fields plus the ``or || eq`` dispatch selector),
* the QED module proper — a small FIFO of recorded original instructions, a
  position counter stepping through the transformed sequence of the head
  entry, dispatch bookkeeping and the ``QED-ready`` flag,
* the DUV (:class:`~repro.proc.pipeline.PipelineProcessor`), fed by either
  the original instruction or the transformed instruction selected this
  cycle,
* the universal consistency property ``QED-ready ⇒ ⋀ regs[o] == regs[e]``
  (plus the memory-half comparison when loads/stores are in the pool).

The initial state is *QED-consistent but otherwise arbitrary*: paired
registers (and paired memory words) share a fresh symbolic initial value,
which is how SQED formulations avoid long initialisation prefixes in the
bug traces.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import QedError
from repro.isa.instructions import get_instruction
from repro.proc.bugs import Bug
from repro.proc.config import ProcessorConfig
from repro.proc.pipeline import InstructionSignals, PipelineProcessor, ProcessorHandles
from repro.qed.scheme import EntryFields, TransformScheme
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.ts.system import TransitionSystem
from repro.utils.bitops import clog2

#: Dispatch selector values (the ``or || eq`` signal of Figure 2).
SEL_BUBBLE = 0
SEL_ORIGINAL = 1
SEL_TRANSFORMED = 2

PROPERTY_NAME = "qed_consistency"

# Each built model gets a unique symbol prefix so several models (EDDI-V and
# EDSEP-V, different pools, different bugs) can coexist in one process
# without clashing in the hash-consed variable table.
_MODEL_COUNTER = [0]

_PREFIX_PATTERN = re.compile(r"^m(\d+)_")


def reserve_model_prefixes(names: Iterable[str]) -> None:
    """Advance the model-prefix counter past any ``m<N>_*`` symbol in ``names``.

    A model *parsed* back from BTOR2 re-interns its original ``m<N>_``
    symbols in the process-wide variable table; without this, the next
    built model would reuse the same prefix and clash on any signal whose
    width differs (a different instruction pool changes opcode and
    immediate widths).  Importers call this after introducing foreign
    symbol names into the process.
    """
    for name in names:
        match = _PREFIX_PATTERN.match(name)
        if match:
            _MODEL_COUNTER[0] = max(_MODEL_COUNTER[0], int(match.group(1)))


@dataclass
class QedVerificationModel:
    """The assembled verification model plus handy signal handles."""

    ts: TransitionSystem
    config: ProcessorConfig
    scheme: TransformScheme
    property_name: str
    handles: ProcessorHandles
    allowed_ops: list[str]
    qed_ready: BV
    consistent: BV
    inputs: dict[str, BV] = field(default_factory=dict)


def build_verification_model(
    config: ProcessorConfig,
    scheme: TransformScheme,
    bug: Optional[Bug] = None,
    fifo_depth: int = 2,
    compare_memory: bool = True,
    name: Optional[str] = None,
) -> QedVerificationModel:
    """Assemble the transition system for one (DUV, transformation) pair."""
    if fifo_depth < 1:
        raise QedError("fifo_depth must be at least 1")
    isa = config.isa
    regw = isa.reg_index_width
    partition = scheme.partition
    if partition.num_regs != isa.num_regs:
        raise QedError("register partition does not match the ISA register count")

    allowed = scheme.allowed_ops(config)
    if not allowed:
        raise QedError("the transformation scheme supports none of the pool opcodes")

    model_name = name or f"{scheme.name}_{'buggy_' + bug.name if bug else 'golden'}"
    ts = TransitionSystem(name=model_name)
    _MODEL_COUNTER[0] += 1
    mp = f"m{_MODEL_COUNTER[0]}"  # unique symbol prefix for this model

    # ----------------------------------------------------------- BMC inputs
    sel = ts.add_input(f"{mp}_qed_sel", 2)
    orig_op = ts.add_input(f"{mp}_orig_op", config.op_width)
    orig_rd = ts.add_input(f"{mp}_orig_rd", regw)
    orig_rs1 = ts.add_input(f"{mp}_orig_rs1", regw)
    orig_rs2 = ts.add_input(f"{mp}_orig_rs2", regw)
    orig_imm = ts.add_input(f"{mp}_orig_imm", isa.imm_width)
    inputs = {
        "qed_sel": sel,
        "orig_op": orig_op,
        "orig_rd": orig_rd,
        "orig_rs1": orig_rs1,
        "orig_rs2": orig_rs2,
        "orig_imm": orig_imm,
    }

    sel_original = T.bv_eq(sel, T.bv_const(SEL_ORIGINAL, 2))
    sel_transformed = T.bv_eq(sel, T.bv_const(SEL_TRANSFORMED, 2))

    # ------------------------------------------------- QED-consistent init
    initial_regs: list[BV] = [T.bv_const(0, isa.xlen)] * isa.num_regs
    for original, shadow in partition.compare_pairs(include_zero=False):
        shared = T.fresh_var(f"{mp}_init_reg{original}", isa.xlen)
        initial_regs[original] = shared
        initial_regs[shadow] = shared
    initial_mem: list[BV] = [T.bv_const(0, isa.xlen)] * isa.mem_words
    for original, shadow in scheme.memory.compare_pairs():
        shared = T.fresh_var(f"{mp}_init_mem{original}", isa.xlen)
        initial_mem[original] = shared
        initial_mem[shadow] = shared

    # -------------------------------------------------------- QED module state
    max_seq = scheme.max_sequence_length(config)
    seq_width = max(1, clog2(max_seq + 1))
    count_width = max(2, clog2(fifo_depth + 1))
    counter_width = 4

    fifo_valid = [ts.add_state(f"{mp}_qed_fifo{e}_valid", 1, init=0) for e in range(fifo_depth)]
    fifo_op = [ts.add_state(f"{mp}_qed_fifo{e}_op", config.op_width, init=0) for e in range(fifo_depth)]
    fifo_rd = [ts.add_state(f"{mp}_qed_fifo{e}_rd", regw, init=0) for e in range(fifo_depth)]
    fifo_rs1 = [ts.add_state(f"{mp}_qed_fifo{e}_rs1", regw, init=0) for e in range(fifo_depth)]
    fifo_rs2 = [ts.add_state(f"{mp}_qed_fifo{e}_rs2", regw, init=0) for e in range(fifo_depth)]
    fifo_imm = [ts.add_state(f"{mp}_qed_fifo{e}_imm", isa.imm_width, init=0) for e in range(fifo_depth)]
    count = ts.add_state(f"{mp}_qed_count", count_width, init=0)
    seq_pos = ts.add_state(f"{mp}_qed_seq_pos", seq_width, init=0)
    orig_count = ts.add_state(f"{mp}_qed_orig_count", counter_width, init=0)
    done_count = ts.add_state(f"{mp}_qed_done_count", counter_width, init=0)

    fifo_nonempty = T.bv_ult(T.bv_const(0, count_width), count)
    fifo_full = T.bv_eq(count, T.bv_const(fifo_depth, count_width))

    head = EntryFields(
        op=fifo_op[0], rd=fifo_rd[0], rs1=fifo_rs1[0], rs2=fifo_rs2[0], imm=fifo_imm[0]
    )

    # ------------------------------------------- transformed instruction mux
    def op_condition(op_name: str, op_term: BV) -> BV:
        return T.bv_eq(op_term, T.bv_const(config.op_index(op_name), config.op_width))

    transformed_op = T.bv_const(0, config.op_width)
    transformed_rd = T.bv_const(0, regw)
    transformed_rs1 = T.bv_const(0, regw)
    transformed_rs2 = T.bv_const(0, regw)
    transformed_imm = T.bv_const(0, isa.imm_width)
    head_seq_len = T.bv_const(1, seq_width)

    for op_name in allowed:
        cond_op = op_condition(op_name, head.op)
        length = scheme.sequence_length(op_name)
        head_seq_len = T.bv_ite(cond_op, T.bv_const(length, seq_width), head_seq_len)
        for position in range(length):
            cond = T.bv_and(cond_op, T.bv_eq(seq_pos, T.bv_const(position, seq_width)))
            fields = scheme.transformed_instruction(config, op_name, position, head)
            transformed_op = T.bv_ite(cond, fields.op, transformed_op)
            transformed_rd = T.bv_ite(cond, fields.rd, transformed_rd)
            transformed_rs1 = T.bv_ite(cond, fields.rs1, transformed_rs1)
            transformed_rs2 = T.bv_ite(cond, fields.rs2, transformed_rs2)
            transformed_imm = T.bv_ite(cond, fields.imm, transformed_imm)

    dispatch_transformed = T.bv_and(sel_transformed, fifo_nonempty)
    duv_valid = T.bv_or(sel_original, dispatch_transformed)
    duv = InstructionSignals(
        valid=duv_valid,
        op=T.bv_ite(sel_original, orig_op, transformed_op),
        rd=T.bv_ite(sel_original, orig_rd, transformed_rd),
        rs1=T.bv_ite(sel_original, orig_rs1, transformed_rs1),
        rs2=T.bv_ite(sel_original, orig_rs2, transformed_rs2),
        imm=T.bv_ite(sel_original, orig_imm, transformed_imm),
    )

    # ---------------------------------------------------------------- DUV
    processor = PipelineProcessor(config, bug=bug, name_prefix=f"{mp}_duv")
    handles = processor.build(ts, duv, initial_regs=initial_regs, initial_mem=initial_mem)

    # -------------------------------------------------- QED module updates
    head_done = T.bv_and(
        dispatch_transformed,
        T.bv_eq(T.bv_zext(seq_pos, seq_width), T.bv_sub(head_seq_len, T.bv_const(1, seq_width))),
    )
    enqueue = sel_original

    def fifo_next(entries: list[BV], new_value: BV, zero: BV) -> None:
        for e in range(fifo_depth):
            shifted = entries[e + 1] if e + 1 < fifo_depth else zero
            after_dequeue = T.bv_ite(head_done, shifted, entries[e])
            slot_matches = T.bv_eq(count, T.bv_const(e, count_width))
            after_enqueue = T.bv_ite(
                T.bv_and(enqueue, slot_matches), new_value, after_dequeue
            )
            ts.set_next(entries[e], after_enqueue)

    fifo_next(fifo_valid, T.bv_true(), T.bv_false())
    fifo_next(fifo_op, orig_op, T.bv_const(0, config.op_width))
    fifo_next(fifo_rd, orig_rd, T.bv_const(0, regw))
    fifo_next(fifo_rs1, orig_rs1, T.bv_const(0, regw))
    fifo_next(fifo_rs2, orig_rs2, T.bv_const(0, regw))
    fifo_next(fifo_imm, orig_imm, T.bv_const(0, isa.imm_width))

    one_count = T.bv_const(1, count_width)
    next_count = T.bv_ite(
        enqueue,
        T.bv_add(count, one_count),
        T.bv_ite(head_done, T.bv_sub(count, one_count), count),
    )
    ts.set_next(count, next_count)
    ts.set_next(
        seq_pos,
        T.bv_ite(
            dispatch_transformed,
            T.bv_ite(head_done, T.bv_const(0, seq_width), T.bv_add(seq_pos, T.bv_const(1, seq_width))),
            seq_pos,
        ),
    )
    one_counter = T.bv_const(1, counter_width)
    ts.set_next(orig_count, T.bv_ite(enqueue, T.bv_add(orig_count, one_counter), orig_count))
    ts.set_next(done_count, T.bv_ite(head_done, T.bv_add(done_count, one_counter), done_count))

    # ------------------------------------------------------------ constraints
    ts.add_constraint(T.bv_ne(sel, T.bv_const(3, 2)))
    ts.add_constraint(T.bv_implies(sel_original, T.bv_not(fifo_full)))
    ts.add_constraint(T.bv_implies(sel_transformed, fifo_nonempty))

    allowed_op_terms = [op_condition(op_name, orig_op) for op_name in allowed]
    num_original_regs = len(partition.original)
    orig_field_constraints = [
        T.bv_or_all(allowed_op_terms),
        T.bv_ult(T.bv_const(0, regw), orig_rd),
        T.bv_ult(orig_rd, T.bv_const(num_original_regs, regw)),
        T.bv_ult(orig_rs1, T.bv_const(num_original_regs, regw)),
        T.bv_ult(orig_rs2, T.bv_const(num_original_regs, regw)),
    ]
    # Loads and stores are restricted to x0-based addressing into the lower
    # (original) half of the data memory, which keeps the EDDI-V / EDSEP-V
    # memory offsetting sound (see DESIGN.md).
    memory_ops = [
        op_name for op_name in allowed if get_instruction(op_name).is_load or get_instruction(op_name).is_store
    ]
    if memory_ops:
        is_memory_op = T.bv_or_all(op_condition(op_name, orig_op) for op_name in memory_ops)
        orig_field_constraints.append(
            T.bv_implies(
                is_memory_op,
                T.bv_and(
                    T.bv_eq(orig_rs1, T.bv_const(0, regw)),
                    T.bv_ult(orig_imm, T.bv_const(scheme.memory.half, isa.imm_width)),
                ),
            )
        )
    ts.add_constraint(
        T.bv_implies(sel_original, T.bv_and_all(orig_field_constraints))
    )

    # ---------------------------------------------------------- the property
    qed_ready = T.bv_and_all(
        [
            T.bv_eq(orig_count, done_count),
            T.bv_ult(T.bv_const(0, counter_width), orig_count),
            T.bv_eq(count, T.bv_const(0, count_width)),
            handles.pipeline_empty,
        ]
    )
    comparisons = [
        T.bv_eq(handles.reg_symbols[o], handles.reg_symbols[s])
        for o, s in partition.compare_pairs(include_zero=False)
    ]
    if compare_memory and memory_ops:
        comparisons.extend(
            T.bv_eq(handles.mem_symbols[o], handles.mem_symbols[s])
            for o, s in scheme.memory.compare_pairs()
        )
    consistent = T.bv_and_all(comparisons)
    ts.add_property(PROPERTY_NAME, T.bv_implies(qed_ready, consistent))

    return QedVerificationModel(
        ts=ts,
        config=config,
        scheme=scheme,
        property_name=PROPERTY_NAME,
        handles=handles,
        allowed_ops=allowed,
        qed_ready=qed_ready,
        consistent=consistent,
        inputs=inputs,
    )
