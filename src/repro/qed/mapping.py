"""Register-file and memory partitioning for the QED transformations.

EDDI-V splits the register file into two halves (originals and duplicates)
related by a bijective map; EDSEP-V splits it into three parts (Section 5):

* ``O`` — registers the original instructions may use,
* ``E`` — registers of the semantically equivalent program, paired
  one-to-one with ``O``,
* ``T`` — scratch registers for the equivalent program's intermediate
  values.

For the paper's 32-register core this yields O = x0..x12, E = x13..x25,
T = x26..x31; the same construction scales down to the narrow register files
used by the experiments here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QedError


@dataclass(frozen=True)
class RegisterPartition:
    """A partition of the register file into original / shadow / temp sets."""

    num_regs: int
    original: tuple[int, ...]
    shadow: tuple[int, ...]
    temps: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.original) != len(self.shadow):
            raise QedError("original and shadow register sets must have equal size")
        all_regs = set(self.original) | set(self.shadow) | set(self.temps)
        if len(all_regs) != len(self.original) + len(self.shadow) + len(self.temps):
            raise QedError("register partition sets overlap")
        if any(r < 0 or r >= self.num_regs for r in all_regs):
            raise QedError("register partition references registers out of range")
        if 0 not in self.original:
            raise QedError("register x0 must belong to the original set")

    @property
    def offset(self) -> int:
        """Distance between an original register and its shadow counterpart."""
        return self.shadow[0] - self.original[0]

    def shadow_of(self, reg: int) -> int:
        """The shadow register paired with original register ``reg``."""
        if reg not in self.original:
            raise QedError(f"register x{reg} is not in the original set")
        return self.shadow[self.original.index(reg)]

    def compare_pairs(self, include_zero: bool = False) -> list[tuple[int, int]]:
        """(original, shadow) pairs the consistency property compares.

        Register x0 is hard-wired to zero and is excluded by default, as in
        the paper's property which starts the conjunction at the first
        writable register.
        """
        pairs = list(zip(self.original, self.shadow))
        if not include_zero:
            pairs = [(o, s) for o, s in pairs if o != 0]
        return pairs

    @classmethod
    def eddiv(cls, num_regs: int) -> "RegisterPartition":
        """EDDI-V: lower half originals, upper half duplicates, no temps."""
        half = num_regs // 2
        return cls(
            num_regs=num_regs,
            original=tuple(range(half)),
            shadow=tuple(range(half, num_regs)),
            temps=(),
        )

    @classmethod
    def edsepv(cls, num_regs: int, num_temps: int | None = None) -> "RegisterPartition":
        """EDSEP-V: O / E / T split (Section 5 of the paper).

        For 32 registers with the default temp count this gives
        O = x0..x12, E = x13..x25, T = x26..x31, exactly as in the paper.
        """
        if num_temps is None:
            num_temps = max(2, num_regs * 6 // 32)
        paired = (num_regs - num_temps) // 2
        if paired < 2:
            raise QedError(
                f"register file of {num_regs} registers is too small for EDSEP-V "
                f"with {num_temps} temporaries"
            )
        original = tuple(range(paired))
        shadow = tuple(range(paired, 2 * paired))
        temps = tuple(range(2 * paired, num_regs))
        return cls(num_regs=num_regs, original=original, shadow=shadow, temps=temps)


@dataclass(frozen=True)
class MemoryPartition:
    """Memory split into an original half and a shadow half."""

    num_words: int

    @property
    def half(self) -> int:
        return self.num_words // 2

    def compare_pairs(self) -> list[tuple[int, int]]:
        """(original word, shadow word) pairs compared by the property."""
        return [(w, w + self.half) for w in range(self.half)]
