"""Transformation schemes: how an original instruction is re-expressed.

* :class:`EddivScheme` — EDDI-V (classic SQED): each original instruction is
  duplicated onto the shadow half of the register file (and, for loads and
  stores, onto the shadow half of the memory).
* :class:`EdsepvScheme` — EDSEP-V (SEPE-SQED): each original instruction is
  replaced by its synthesized semantically equivalent program, with the
  program's register inputs mapped O→E, its intermediate values allocated to
  the T registers (read-after-write order preserved, Section 5), and loads /
  stores completed by a final memory access on the shadow memory half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import QedError
from repro.isa.instructions import get_instruction
from repro.proc.config import ProcessorConfig
from repro.qed.mapping import MemoryPartition, RegisterPartition
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.synth.program import SynthesizedProgram, TemplateInstruction, TemplateOperand
from repro.utils.bitops import mask


@dataclass
class EntryFields:
    """Symbolic fields of a recorded original instruction (one FIFO entry)."""

    op: BV
    rd: BV
    rs1: BV
    rs2: BV
    imm: BV


@dataclass
class TransformedFields:
    """Symbolic fields of one transformed instruction sent to the DUV."""

    op: BV
    rd: BV
    rs1: BV
    rs2: BV
    imm: BV


class TransformScheme:
    """Common interface of the EDDI-V and EDSEP-V transformations."""

    name = "abstract"

    def __init__(self, partition: RegisterPartition, memory: MemoryPartition):
        self.partition = partition
        self.memory = memory

    def allowed_ops(self, cfg: ProcessorConfig) -> list[str]:
        """Original opcodes this scheme can transform (within the DUV pool)."""
        raise NotImplementedError

    def sequence_length(self, op: str) -> int:
        """Number of transformed instructions dispatched per original ``op``."""
        raise NotImplementedError

    def max_sequence_length(self, cfg: ProcessorConfig) -> int:
        return max(self.sequence_length(op) for op in self.allowed_ops(cfg))

    def transformed_instruction(
        self, cfg: ProcessorConfig, op: str, position: int, entry: EntryFields
    ) -> TransformedFields:
        """The ``position``-th transformed instruction for original ``op``."""
        raise NotImplementedError

    # ---------------------------------------------------------------- helpers

    def _shift_register(self, cfg: ProcessorConfig, index_term: BV) -> BV:
        """Map an original register index onto its shadow counterpart."""
        offset = T.bv_const(self.partition.offset, cfg.isa.reg_index_width)
        return T.bv_add(index_term, offset)


class EddivScheme(TransformScheme):
    """EDDI-V: duplicate every original instruction onto the shadow registers."""

    name = "eddiv"

    def allowed_ops(self, cfg: ProcessorConfig) -> list[str]:
        return list(cfg.supported_ops)

    def sequence_length(self, op: str) -> int:
        return 1

    def transformed_instruction(
        self, cfg: ProcessorConfig, op: str, position: int, entry: EntryFields
    ) -> TransformedFields:
        if position != 0:
            raise QedError("EDDI-V sequences have length one")
        defn = get_instruction(op)
        imm = entry.imm
        if defn.is_load or defn.is_store:
            imm = T.bv_add(entry.imm, T.bv_const(self.memory.half, cfg.isa.imm_width))
        return TransformedFields(
            op=T.bv_const(cfg.op_index(op), cfg.op_width),
            rd=self._shift_register(cfg, entry.rd),
            rs1=self._shift_register(cfg, entry.rs1),
            rs2=self._shift_register(cfg, entry.rs2),
            imm=imm,
        )


class EdsepvScheme(TransformScheme):
    """EDSEP-V: replace each original instruction by its equivalent program."""

    name = "edsepv"

    def __init__(
        self,
        partition: RegisterPartition,
        memory: MemoryPartition,
        equivalents: Mapping[str, SynthesizedProgram],
    ):
        super().__init__(partition, memory)
        if not partition.temps:
            raise QedError("EDSEP-V needs at least one temporary register")
        self.equivalents = dict(equivalents)
        self._plans: dict[str, list[_PlannedInstruction]] = {}
        for op, program in self.equivalents.items():
            self._plans[op] = self._plan(op, program)

    # ------------------------------------------------------------- planning

    def _plan(self, op: str, program: SynthesizedProgram) -> list["_PlannedInstruction"]:
        """Expand a synthesized program and allocate its temporaries."""
        defn = get_instruction(op)
        templates = list(program.expand())
        is_memory_op = defn.is_load or defn.is_store

        appended: Optional[TemplateInstruction] = None
        if is_memory_op:
            # The program computes the effective address; complete it with a
            # real memory access on the shadow half of the memory.
            address_virtual = TemplateOperand("virtual", len(templates) - 1)
            if defn.is_store:
                appended = TemplateInstruction(
                    "SW",
                    rd=TemplateOperand("zero"),
                    rs1=address_virtual,
                    rs2=TemplateOperand("prog_reg", 1),
                    imm=TemplateOperand("const", self.memory.half),
                )
            else:
                appended = TemplateInstruction(
                    "LW",
                    rd=TemplateOperand("shadow_rd"),
                    rs1=address_virtual,
                    imm=TemplateOperand("const", self.memory.half),
                )

        all_instructions = templates + ([appended] if appended is not None else [])

        # Liveness of each virtual value (last position where it is read).
        last_use: dict[int, int] = {}
        for index, instr in enumerate(all_instructions):
            for operand in (instr.rs1, instr.rs2):
                if operand is not None and operand.kind == "virtual":
                    last_use[operand.index] = index

        free_temps = list(self.partition.temps)
        virtual_to_reg: dict[int, int] = {}
        planned: list[_PlannedInstruction] = []
        final_output_virtual = len(templates) - 1

        for index, instr in enumerate(all_instructions):
            # Resolve source operands before anything else (they read the
            # current virtual-to-register mapping).
            rs1_source = self._planned_operand(instr.rs1, virtual_to_reg)
            rs2_source = self._planned_operand(instr.rs2, virtual_to_reg)

            # Registers whose value is read for the last time by this very
            # instruction can be reused as its destination (read-before-write
            # within one instruction), so release them now.
            for virtual, reg in list(virtual_to_reg.items()):
                if last_use.get(virtual, -1) <= index and reg not in free_temps:
                    free_temps.append(reg)
                    del virtual_to_reg[virtual]

            dest_kind = "none"
            dest_temp = 0
            if instr.rd is not None and instr.rd.kind == "virtual":
                virtual = instr.rd.index
                if virtual == final_output_virtual and not is_memory_op and defn.writes_rd:
                    dest_kind = "shadow_rd"
                elif virtual in last_use:
                    if not free_temps:
                        raise QedError(
                            f"equivalent program for {op} needs more temporary "
                            f"registers than the partition provides"
                        )
                    dest_temp = free_temps.pop(0)
                    virtual_to_reg[virtual] = dest_temp
                    dest_kind = "temp"
                else:
                    # The value is never read again; still needs a destination.
                    dest_temp = free_temps[0] if free_temps else self.partition.temps[-1]
                    virtual_to_reg[virtual] = dest_temp
                    dest_kind = "temp"
            elif instr.rd is not None and instr.rd.kind == "shadow_rd":
                dest_kind = "shadow_rd"

            planned.append(
                _PlannedInstruction(
                    mnemonic=instr.mnemonic,
                    dest_kind=dest_kind,
                    dest_temp=dest_temp,
                    rs1=rs1_source,
                    rs2=rs2_source,
                    imm=instr.imm,
                )
            )
        return planned

    @staticmethod
    def _planned_operand(
        operand: Optional[TemplateOperand], virtual_to_reg: dict[int, int]
    ) -> Optional[tuple[str, int]]:
        if operand is None:
            return None
        if operand.kind == "virtual":
            if operand.index not in virtual_to_reg:
                raise QedError("equivalent program reads a value that was never produced")
            return ("temp", virtual_to_reg[operand.index])
        if operand.kind == "prog_reg":
            return ("prog_reg", operand.index)
        if operand.kind == "zero":
            return ("zero", 0)
        raise QedError(f"unexpected operand kind {operand.kind!r} in register position")

    # ------------------------------------------------------------ interface

    def allowed_ops(self, cfg: ProcessorConfig) -> list[str]:
        ops = []
        for op, plan in self._plans.items():
            if op not in cfg.supported_ops:
                continue
            if all(step.mnemonic in cfg.supported_ops for step in plan):
                ops.append(op)
        return ops

    def sequence_length(self, op: str) -> int:
        if op not in self._plans:
            raise QedError(f"no equivalent program registered for {op!r}")
        return len(self._plans[op])

    def plan_for(self, op: str) -> list["_PlannedInstruction"]:
        """The planned (register-allocated) sequence for an original opcode."""
        if op not in self._plans:
            raise QedError(f"no equivalent program registered for {op!r}")
        return list(self._plans[op])

    def transformed_instruction(
        self, cfg: ProcessorConfig, op: str, position: int, entry: EntryFields
    ) -> TransformedFields:
        plan = self.plan_for(op)
        if not (0 <= position < len(plan)):
            raise QedError(f"position {position} out of range for {op}")
        step = plan[position]
        isa = cfg.isa
        regw = isa.reg_index_width
        zero_reg = T.bv_const(0, regw)

        def register_operand(source: Optional[tuple[str, int]]) -> BV:
            if source is None:
                return zero_reg
            kind, value = source
            if kind == "temp":
                return T.bv_const(value, regw)
            if kind == "zero":
                return zero_reg
            if kind == "prog_reg":
                base = entry.rs1 if value == 0 else entry.rs2
                return self._shift_register(cfg, base)
            raise QedError(f"unexpected planned operand {kind!r}")

        if step.dest_kind == "shadow_rd":
            rd_term = self._shift_register(cfg, entry.rd)
        elif step.dest_kind == "temp":
            rd_term = T.bv_const(step.dest_temp, regw)
        else:
            rd_term = zero_reg

        if step.imm is None:
            imm_term = T.bv_const(0, isa.imm_width)
        elif step.imm.kind == "const":
            imm_term = T.bv_const(step.imm.index & mask(isa.imm_width), isa.imm_width)
        elif step.imm.kind == "prog_imm":
            imm_term = entry.imm
        else:
            raise QedError(f"unexpected immediate operand kind {step.imm.kind!r}")

        return TransformedFields(
            op=T.bv_const(cfg.op_index(step.mnemonic), cfg.op_width),
            rd=rd_term,
            rs1=register_operand(step.rs1),
            rs2=register_operand(step.rs2),
            imm=imm_term,
        )


@dataclass
class _PlannedInstruction:
    """One instruction of an equivalent program after register allocation."""

    mnemonic: str
    dest_kind: str  # "shadow_rd", "temp" or "none"
    dest_temp: int
    rs1: Optional[tuple[str, int]]
    rs2: Optional[tuple[str, int]]
    imm: Optional[TemplateOperand]
