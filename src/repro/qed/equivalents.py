"""Known-good equivalent programs and equivalence checking.

SEPE-SQED needs one semantically equivalent program per original
instruction.  They normally come out of HPF-CEGIS (:mod:`repro.synth.hpf`);
that path is exercised by the Figure 3 experiment, the examples and the
tests.  For the RTL experiments (Table 1, Figure 4) re-running synthesis for
every bug would dominate the runtime without adding information, so this
module also provides :func:`default_equivalent_programs`: a curated set of
equivalent programs built directly from the component library.  Every
program — synthesized or curated — can be checked against its specification
with :func:`verify_equivalence`, and the test suite does exactly that.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.errors import QedError
from repro.isa.config import IsaConfig
from repro.smt import terms as T
from repro.solve.context import SolverContext
from repro.synth.components import ComponentLibrary, build_default_library
from repro.synth.program import ProgramSlot, SynthesizedProgram
from repro.synth.spec import spec_from_instruction
from repro.utils.bitops import mask


def verify_equivalence(
    program: SynthesizedProgram,
    context: Optional[SolverContext] = None,
    opt_level: Optional[int] = None,
) -> bool:
    """Prove (by exhaustive bit-vector reasoning) that a program matches its spec.

    Pass a shared ``context`` to amortise the encoding across a batch of
    checks: each program's disagreement constraint then lives in a push/pop
    scope, so component semantics shared between programs blast once and
    the SAT backend keeps its learned clauses from check to check.
    ``opt_level`` selects the compilation pipeline for an internally built
    context (a supplied context already carries its own).
    """
    spec = program.spec
    inputs = spec.fresh_input_terms(prefix="eqcheck")
    disagreement = T.bv_ne(spec.output_term(inputs), program.output_term(inputs))
    if context is None:
        ctx = SolverContext(opt_level=opt_level)
        ctx.add(disagreement)
        return not ctx.check().satisfiable
    context.push()
    try:
        context.add(disagreement)
        result = context.check()
    finally:
        context.pop()
    return not result.satisfiable


def verify_equivalences(
    programs: Mapping[str, SynthesizedProgram],
    context: Optional[SolverContext] = None,
    opt_level: Optional[int] = None,
) -> dict[str, bool]:
    """Check a whole table of equivalent programs on one shared context."""
    ctx = context if context is not None else SolverContext(opt_level=opt_level)
    return {name: verify_equivalence(program, ctx) for name, program in programs.items()}


def _slot(library: ComponentLibrary, name: str, sources, attrs=()) -> ProgramSlot:
    return ProgramSlot(
        component=library.by_name(name),
        input_sources=tuple(sources),
        attributes=tuple(attrs),
    )


def _extra_nic(cfg: IsaConfig, mnemonic: str) -> "ProgramSlot.__class__":
    """A register-register component outside the default 29-component library.

    The curated MUL recipe needs a plain MUL building block; the synthesis
    library intentionally only carries multiply-by-constant (MUL.C), so we
    construct the component ad hoc here.
    """
    from repro.isa.instructions import get_instruction
    from repro.synth.components import Component, ComponentClass, ExpansionStep, OperandSource

    defn = get_instruction(mnemonic)

    def semantics(config, inputs, attrs):
        return defn.symbolic(config, inputs[0], inputs[1], T.bv_const(0, config.imm_width))

    return Component(
        name=f"{mnemonic}.X",
        component_class=ComponentClass.NIC,
        input_widths=(cfg.xlen, cfg.xlen),
        attribute_widths=(),
        semantics=semantics,
        expansion=(
            ExpansionStep(mnemonic, rs1=OperandSource("input", 0), rs2=OperandSource("input", 1)),
        ),
        base_instruction=mnemonic,
        description=f"{defn.description} (curated-recipe building block)",
    )


def default_equivalent_programs(
    cfg: IsaConfig,
    ops: Optional[Iterable[str]] = None,
    library: Optional[ComponentLibrary] = None,
) -> dict[str, SynthesizedProgram]:
    """Curated equivalent programs for (most of) the supported instructions.

    The programs deliberately avoid the data path of the instruction they
    replace wherever the component library allows it, which is what makes
    the single-instruction bugs of Table 1 observable.  ``MULHU`` and
    ``MULHSU`` have no entry (the library has no component covering them
    without using the same data path), matching the paper's point that CIC
    components are added exactly where needed.
    """
    library = library or build_default_library(cfg)
    imm_all_ones = mask(cfg.imm_width)
    zero_shift_up = cfg.xlen - cfg.imm_width
    zero_shift_down = max(0, cfg.xlen - cfg.imm_width - cfg.lui_shift)

    IN = "input"
    SL = "slot"

    recipes: dict[str, list[ProgramSlot]] = {
        # a + b  ==  a - (0 - b)
        "ADD": [
            _slot(library, "SUB", [(IN, 1), (IN, 1)]),
            _slot(library, "SUB", [(SL, 0), (IN, 1)]),
            _slot(library, "SUB", [(IN, 0), (SL, 1)]),
        ],
        # a - b  ==  ~(~a + b)
        "SUB": [
            _slot(library, "XORI.D", [(IN, 0)], [imm_all_ones]),
            _slot(library, "ADD", [(SL, 0), (IN, 1)]),
            _slot(library, "XORI.D", [(SL, 1)], [imm_all_ones]),
        ],
        # a ^ b  ==  (a | b) - (a & b)
        "XOR": [
            _slot(library, "OR", [(IN, 0), (IN, 1)]),
            _slot(library, "AND", [(IN, 0), (IN, 1)]),
            _slot(library, "SUB", [(SL, 0), (SL, 1)]),
        ],
        # a | b  ==  (a ^ b) + (a & b)
        "OR": [
            _slot(library, "XOR", [(IN, 0), (IN, 1)]),
            _slot(library, "AND", [(IN, 0), (IN, 1)]),
            _slot(library, "ADD", [(SL, 0), (SL, 1)]),
        ],
        # a & b  ==  (a | b) - (a ^ b)
        "AND": [
            _slot(library, "OR", [(IN, 0), (IN, 1)]),
            _slot(library, "XOR", [(IN, 0), (IN, 1)]),
            _slot(library, "SUB", [(SL, 0), (SL, 1)]),
        ],
        # signed compare via sign-flipped unsigned compare (CIC)
        "SLT": [
            _slot(library, "SLT.C", [(IN, 0), (IN, 1)]),
        ],
        # a <u b  ==  signed compare after flipping the sign bits (when the
        # sign bit fits an immediate), otherwise via ~b <u ~a.
        "SLTU": (
            [
                _slot(library, "XORI.D", [(IN, 0)], [1 << (cfg.imm_width - 1)]),
                _slot(library, "XORI.D", [(IN, 1)], [1 << (cfg.imm_width - 1)]),
                _slot(library, "SLT", [(SL, 0), (SL, 1)]),
            ]
            if cfg.imm_width == cfg.xlen
            else [
                _slot(library, "XORI.D", [(IN, 0)], [imm_all_ones]),
                _slot(library, "XORI.D", [(IN, 1)], [imm_all_ones]),
                _slot(library, "SLTU", [(SL, 1), (SL, 0)]),
            ]
        ),
        # a >>s b  ==  ~(~a >>s b)
        "SRA": [
            _slot(library, "XORI.D", [(IN, 0)], [imm_all_ones]),
            _slot(library, "SRA", [(SL, 0), (IN, 1)]),
            _slot(library, "XORI.D", [(SL, 1)], [imm_all_ones]),
        ],
        # copy the operand, then shift (structurally different from SRL alone)
        "SRL": [
            _slot(library, "ADDI.D", [(IN, 1)], [0]),
            _slot(library, "SRL", [(IN, 0), (SL, 0)]),
        ],
        "SLL": [
            _slot(library, "ADDI.D", [(IN, 1)], [0]),
            _slot(library, "SLL", [(IN, 0), (SL, 0)]),
        ],
        "MUL": [
            _slot(library, "ADDI.D", [(IN, 0)], [0]),
            ProgramSlot(
                component=_extra_nic(cfg, "MUL"),
                input_sources=((SL, 0), (IN, 1)),
                attributes=(),
            ),
        ],
        # signed multiply-high from MULHU with sign corrections (CIC)
        "MULH": [
            _slot(library, "MULH.C", [(IN, 0), (IN, 1)]),
        ],
        # a + sext(imm): materialise sext(imm) in a register, then ADD
        "ADDI": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 1)]),
            _slot(library, "ADD", [(IN, 0), (SL, 1)]),
        ],
        # a ^ sext(imm) == (a | sext(imm)) - (a & sext(imm))
        "XORI": [
            _slot(library, "ORI.C", [(IN, 0), (IN, 1)]),
            _slot(library, "ANDI.C", [(IN, 0), (IN, 1)]),
            _slot(library, "SUB", [(SL, 0), (SL, 1)]),
        ],
        # a | sext(imm) == (a ^ sext(imm)) + (a & sext(imm))
        "ORI": [
            _slot(library, "XORI.C", [(IN, 0), (IN, 1)]),
            _slot(library, "ANDI.C", [(IN, 0), (IN, 1)]),
            _slot(library, "ADD", [(SL, 0), (SL, 1)]),
        ],
        # a & sext(imm) == (a | sext(imm)) - (a ^ sext(imm))
        "ANDI": [
            _slot(library, "ORI.C", [(IN, 0), (IN, 1)]),
            _slot(library, "XORI.C", [(IN, 0), (IN, 1)]),
            _slot(library, "SUB", [(SL, 0), (SL, 1)]),
        ],
        "SLTI": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 1)]),
            _slot(library, "SLT", [(IN, 0), (SL, 1)]),
        ],
        "SLTIU": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 1)]),
            _slot(library, "SLTU", [(IN, 0), (SL, 1)]),
        ],
        # materialise the shift amount, then use the register-shift form
        "SLLI": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 1)]),
            _slot(library, "SLL", [(IN, 0), (SL, 1)]),
        ],
        "SRLI": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 1)]),
            _slot(library, "SRL", [(IN, 0), (SL, 1)]),
        ],
        "SRAI": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 1)]),
            _slot(library, "SRA", [(IN, 0), (SL, 1)]),
        ],
        # zext(imm) << lui_shift, built without using LUI's own data path
        # for the dynamic part: sext(imm) << (xlen-imm_width) >>u correction.
        "LUI": [
            _slot(library, "CONST.C", [], [0, 0]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 0)]),
            _slot(library, "SLLI.D", [(SL, 1)], [zero_shift_up]),
            _slot(library, "SRLI.D", [(SL, 2)], [zero_shift_down]),
        ],
        # effective address rs1 + sext(imm), computed without LW/SW
        "LW": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 1)]),
            _slot(library, "ADD", [(IN, 0), (SL, 1)]),
        ],
        "SW": [
            _slot(library, "SUB", [(IN, 0), (IN, 0)]),
            _slot(library, "ADDI.C", [(SL, 0), (IN, 2)]),
            _slot(library, "ADD", [(IN, 0), (SL, 1)]),
        ],
    }

    requested = list(ops) if ops is not None else list(recipes)
    programs: dict[str, SynthesizedProgram] = {}
    for op in requested:
        if op not in recipes:
            raise QedError(f"no curated equivalent program for {op!r}")
        spec = spec_from_instruction(op, cfg)
        programs[op] = SynthesizedProgram(spec, recipes[op])
    return programs


def equivalents_from_runs(runs: Mapping[str, "object"]) -> dict[str, SynthesizedProgram]:
    """Pick the shortest program from a set of synthesis runs (see Figure 3)."""
    selected: dict[str, SynthesizedProgram] = {}
    for name, run in runs.items():
        programs = getattr(run, "programs", None)
        if programs:
            selected[name] = min(programs, key=lambda p: p.num_instructions)
    return selected
