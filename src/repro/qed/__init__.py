"""QED modules: the EDDI-V (SQED) and EDSEP-V (SEPE-SQED) transformations.

Following Figure 2 of the paper, a QED module sits between the symbolic
instruction source and the DUV: the bounded model checker freely chooses
original instructions (restricted to the *original* register set); the
module records them and, on demand, dispatches their transformed
counterparts — exact duplicates over the shadow registers for EDDI-V, the
synthesized semantically equivalent program over the E/T register sets for
EDSEP-V.  Once the number of committed originals matches the number of
completed transformed groups and the pipeline has drained, the ``QED-ready``
flag rises and the universal consistency property must hold.
"""

from repro.qed.mapping import RegisterPartition, MemoryPartition
from repro.qed.scheme import TransformScheme, EddivScheme, EdsepvScheme
from repro.qed.module import QedVerificationModel, build_verification_model
from repro.qed.equivalents import (
    default_equivalent_programs,
    verify_equivalence,
    verify_equivalences,
)

__all__ = [
    "RegisterPartition",
    "MemoryPartition",
    "TransformScheme",
    "EddivScheme",
    "EdsepvScheme",
    "QedVerificationModel",
    "build_verification_model",
    "default_equivalent_programs",
    "verify_equivalence",
    "verify_equivalences",
]
