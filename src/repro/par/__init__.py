"""Parallel portfolio and sharded verification (:mod:`repro.par`).

The subsystem has three layers:

* :mod:`repro.par.pool` — a fork-based :class:`TaskPool` with deterministic
  result ordering, graceful worker-failure handling and a true sequential
  degenerate case at ``jobs=1``,
* :mod:`repro.par.portfolio` — :class:`PortfolioSolver`, racing
  complementary solver configurations on one query (first verdict wins,
  losers are cancelled),
* sharded drivers — :func:`verify_equivalences_parallel` for batch QED
  equivalence checking, :func:`check_properties_parallel` /
  :func:`prove_properties_parallel` for property sweeps, and
  :func:`check_frames_sharded` for depth-sharding a single BMC run.

Everything is also reachable through the ``jobs=N`` knobs on
:class:`~repro.core.flow.SqedFlow` / :class:`~repro.core.flow.SepeSqedFlow`
and on the Table 1 / Figure 3 experiment harnesses.
"""

from repro.par.bmc import (
    check_frames_sharded,
    check_properties_parallel,
    prove_properties_parallel,
)
from repro.par.pool import ParError, TaskPool, TaskResult, resolve_jobs
from repro.par.portfolio import (
    DEFAULT_PORTFOLIO,
    PortfolioConfig,
    PortfolioResult,
    PortfolioSolver,
)
from repro.par.qed import verify_equivalences_parallel

__all__ = [
    "DEFAULT_PORTFOLIO",
    "ParError",
    "PortfolioConfig",
    "PortfolioResult",
    "PortfolioSolver",
    "TaskPool",
    "TaskResult",
    "check_frames_sharded",
    "check_properties_parallel",
    "prove_properties_parallel",
    "resolve_jobs",
    "verify_equivalences_parallel",
]
