"""Portfolio solving: race complementary solver configurations on one query.

CDCL behaviour is notoriously sensitive to its heuristic parameters — the
branching phase default, the VSIDS decay rate, the restart cadence — and no
single configuration dominates across SAT *and* UNSAT queries.  A portfolio
exploits that: the same query runs under N configurations concurrently, the
first decided verdict wins, and the losers are cancelled.  The verdict is
deterministic (every sound configuration agrees on SAT/UNSAT); the winning
configuration and the model of a SAT answer may vary run to run.

Queries travel to the racing processes by fork inheritance (the whole
hash-consed term graph is shared copy-on-write), so racing costs one
``fork`` per configuration, not a re-encode.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.par.pool import ParError, resolve_jobs
from repro.solve.backend import (
    TUNABLE_BACKEND_SPECS,
    CdclBackend,
    create_backend,
    is_builtin_backend,
)


@dataclass(frozen=True)
class PortfolioConfig:
    """One racing entry: a backend spec plus CDCL tuning knobs.

    The tuning knobs apply to any builtin CDCL spec — ``cdcl`` / ``builtin``
    (process-default kernel) as well as the kernel-pinned ``arena`` and
    ``reference`` specs, so a portfolio can race the two kernels against
    each other.  For any other spec (e.g. ``dimacs:kissat``) the spec
    string is used as-is and the knobs are ignored.
    """

    name: str
    backend: str = "cdcl"
    var_decay: float = 0.95
    default_phase: bool = False
    restart_interval: int = 100
    lbd_tiers: bool = True
    phase_saving: bool = True
    minimize: bool = True

    def build_backend(self):
        if is_builtin_backend(self.backend):
            return CdclBackend(
                var_decay=self.var_decay,
                default_phase=self.default_phase,
                restart_interval=self.restart_interval,
                kernel=TUNABLE_BACKEND_SPECS[self.backend],
                lbd_tiers=self.lbd_tiers,
                phase_saving=self.phase_saving,
                minimize=self.minimize,
            )
        return create_backend(self.backend)


#: Complementary default configurations (phase polarity, decay, restarts,
#: conflict-quality heuristics).  The reference-kernel entry doubles as a
#: live differential check: it races the same query on the per-object
#: solver, and soundness means it can only ever agree with an arena winner.
#: The classic-heuristics entry races with every conflict-quality knob off
#: (pure-activity retention, default phases, unminimised clauses) — a
#: second behavioural baseline on the fast kernel.
DEFAULT_PORTFOLIO: tuple[PortfolioConfig, ...] = (
    PortfolioConfig("cdcl-baseline"),
    PortfolioConfig("cdcl-positive-phase", default_phase=True),
    PortfolioConfig("cdcl-slow-decay", var_decay=0.99),
    PortfolioConfig("cdcl-rapid-restarts", restart_interval=30),
    PortfolioConfig(
        "cdcl-classic-heuristics",
        lbd_tiers=False,
        phase_saving=False,
        minimize=False,
    ),
    PortfolioConfig("cdcl-reference-kernel", backend="reference"),
)


@dataclass
class PortfolioResult:
    """First decided verdict of the race."""

    satisfiable: Optional[bool]
    model: dict[str, int] = field(default_factory=dict)
    winner: Optional[str] = None
    elapsed_seconds: float = 0.0
    racers: int = 0

    def __bool__(self) -> bool:
        return bool(self.satisfiable)


def _race_worker(config, assertions, assumptions, need_model, results, name):
    from repro.solve.context import SolverContext

    started = time.perf_counter()
    context = SolverContext(backend=config.build_backend())
    for term in assertions:
        context.add(term)
    result = context.check(assumptions=assumptions, need_model=need_model)
    results.put(
        (name, result.satisfiable, dict(result.model), time.perf_counter() - started)
    )


class PortfolioSolver:
    """Race N solver configurations on single QF_BV queries."""

    def __init__(
        self,
        configs: Optional[Sequence[PortfolioConfig]] = None,
        jobs: Optional[int] = None,
        poll_interval: float = 0.02,
    ):
        self.configs = tuple(configs) if configs is not None else DEFAULT_PORTFOLIO
        if not self.configs:
            raise ParError("a portfolio needs at least one configuration")
        names = [config.name for config in self.configs]
        if len(set(names)) != len(names):
            raise ParError(f"portfolio configuration names must be unique: {names}")
        # jobs=None races every configuration (capped at the CPU count).
        self.jobs = min(resolve_jobs(jobs), len(self.configs))
        self.poll_interval = poll_interval

    def check(
        self,
        assertions: Iterable,
        assumptions: Iterable = (),
        need_model: bool = True,
    ) -> PortfolioResult:
        """Decide ``assertions`` (+ per-query ``assumptions``); first verdict wins."""
        assertions = list(assertions)
        assumptions = list(assumptions)
        racers = self.configs[: self.jobs]
        if len(racers) == 1:
            return self._check_sequential(racers[0], assertions, assumptions, need_model)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            return self._check_sequential(racers[0], assertions, assumptions, need_model)
        started = time.perf_counter()
        results = ctx.Queue()
        processes = {}
        for config in racers:
            process = ctx.Process(
                target=_race_worker,
                args=(config, assertions, assumptions, need_model, results, config.name),
                daemon=True,
            )
            process.start()
            processes[config.name] = process
        undecided: Optional[str] = None
        reported = 0
        try:
            while True:
                try:
                    name, satisfiable, model, _seconds = results.get(
                        timeout=self.poll_interval
                    )
                except queue_module.Empty:
                    if any(p.is_alive() for p in processes.values()):
                        continue
                    # All racers exited.  One may have flushed its result
                    # right before dying, so drain without blocking.
                    try:
                        name, satisfiable, model, _seconds = results.get_nowait()
                    except queue_module.Empty:
                        if undecided is not None:
                            # Every surviving racer gave up: report the
                            # undecided verdict rather than a crash.
                            return PortfolioResult(
                                satisfiable=None,
                                winner=undecided,
                                elapsed_seconds=time.perf_counter() - started,
                                racers=len(racers),
                            )
                        raise ParError(
                            "every portfolio configuration crashed without "
                            "reporting a verdict"
                        ) from None
                reported += 1
                if satisfiable is None:
                    # This racer gave up; let the others keep going unless
                    # every racer has now reported an undecided verdict.
                    undecided = name
                    if reported < len(racers):
                        continue
                return PortfolioResult(
                    satisfiable=satisfiable,
                    model=model,
                    winner=name,
                    elapsed_seconds=time.perf_counter() - started,
                    racers=len(racers),
                )
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            for process in processes.values():
                process.join(timeout=1.0)
            # A loser stuck in uninterruptible work (or with SIGTERM masked
            # by a C extension) survives terminate(): escalate to SIGKILL
            # and reap unconditionally so no zombie outlives the call.
            for process in processes.values():
                if process.is_alive():
                    process.kill()
                process.join()

    @staticmethod
    def _check_sequential(config, assertions, assumptions, need_model) -> PortfolioResult:
        from repro.solve.context import SolverContext

        started = time.perf_counter()
        context = SolverContext(backend=config.build_backend())
        for term in assertions:
            context.add(term)
        result = context.check(assumptions=assumptions, need_model=need_model)
        return PortfolioResult(
            satisfiable=result.satisfiable,
            model=dict(result.model),
            winner=config.name,
            elapsed_seconds=time.perf_counter() - started,
            racers=1,
        )
