"""Sharded batch QED equivalence checking.

Every equivalent program is checked against its specification by an
independent UNSAT query, so a batch of programs shards perfectly: worker
``i`` proves its programs on a fresh :class:`~repro.solve.context.SolverContext`
each.  With ``jobs=1`` this delegates to the sequential
:func:`~repro.qed.equivalents.verify_equivalences` (one shared incremental
context), so the degenerate case is *the* sequential path, not a
reimplementation of it — and the parallel result is required (and tested)
to be equal to it key for key.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.par.pool import TaskPool, resolve_jobs
from repro.qed.equivalents import verify_equivalence, verify_equivalences
from repro.synth.program import SynthesizedProgram


def verify_equivalences_parallel(
    programs: Mapping[str, SynthesizedProgram],
    jobs: Optional[int] = 1,
    pool: Optional[TaskPool] = None,
) -> dict[str, bool]:
    """Check a table of equivalent programs across ``jobs`` workers.

    Returns the same ``{name: verdict}`` dict as the sequential
    :func:`~repro.qed.equivalents.verify_equivalences`, in the same order.
    """
    names = list(programs)
    if pool is None:
        if resolve_jobs(jobs) == 1:
            return verify_equivalences(programs)
        pool = TaskPool(jobs)

    def task(name: str) -> bool:
        return verify_equivalence(programs[name])

    verdicts = pool.map(task, names)
    return dict(zip(names, verdicts))
