"""A multiprocessing task pool with deterministic results and crash recovery.

The experiments and batch drivers all reduce to the same shape: a list of
independent tasks whose results must come back *in task order*, regardless
of which worker finished first.  :class:`TaskPool` provides exactly that:

* ``jobs=1`` degenerates to plain in-process sequential execution — no
  subprocess, no pickling, bit-identical to a hand-written ``for`` loop.
  Every parallel driver in :mod:`repro.par` leans on this to guarantee the
  sequential path stays available for differential testing.
* ``jobs>1`` forks worker processes.  Tasks are dispatched by the parent
  one at a time (a worker asks for work when idle), so the parent always
  knows which task a worker is holding; results stream back over a queue
  and are slotted into their task index.
* a worker that *raises* reports the failure as a :class:`TaskResult` with
  ``ok=False`` and keeps serving tasks; a worker that *dies* (segfault,
  ``os._exit``, OOM-kill) is detected by liveness polling, its in-flight
  task is marked failed, and a replacement worker is forked so the pool
  retains its capacity for the remaining tasks.

Tasks travel to the workers through fork inheritance, so they do not need
to be picklable (closures over term graphs and component libraries are
fine); task *descriptions* shipped by the built-in drivers are kept
picklable anyway so they can migrate to spawn-based transports later.
Results cross a process boundary and therefore must pickle; a result that
fails to pickle is reported as a failed task, not a hung pool.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import SolveError


class ParError(SolveError):
    """Raised for unrecoverable parallel-execution failures."""


@dataclass
class TaskResult:
    """Outcome of one task: either a value or an error description."""

    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None

    def unwrap(self) -> Any:
        if not self.ok:
            raise ParError(f"task {self.index} failed: {self.error}")
        return self.value


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` knob: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ParError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _worker_main(worker_fn, tasks, inbox, results, worker_id) -> None:
    """Worker loop: ask for an index, claim it, run it, report, repeat.

    The "claim" message lets the parent distinguish a worker that died
    *executing* a task (fail the task) from one that died before picking a
    dispatched task up (requeue it).  Values are pickled eagerly here
    because ``Queue.put`` pickles in a background feeder thread — a pickle
    error there is printed and the message silently dropped, which would
    leave the parent waiting forever.
    """
    while True:
        index = inbox.get()
        if index is None:
            break
        results.put(("claim", worker_id, index, None, None))
        try:
            value = worker_fn(tasks[index])
            payload = pickle.dumps(value)
            message = ("done", worker_id, index, payload, None)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            message = ("done", worker_id, index, None, f"{type(exc).__name__}: {exc}")
        results.put(message)


class TaskPool:
    """Run independent tasks, optionally across forked worker processes."""

    def __init__(self, jobs: Optional[int] = 1, poll_interval: float = 0.05):
        self.jobs = resolve_jobs(jobs)
        self.poll_interval = poll_interval

    # ------------------------------------------------------------------- API

    def run(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[TaskResult]:
        """Apply ``fn`` to every task; results come back in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            return self._run_sequential(fn, tasks)
        return self._run_forked(fn, tasks)

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Like :meth:`run` but unwraps values, raising on the first failure."""
        return [result.unwrap() for result in self.run(fn, tasks)]

    # ------------------------------------------------------------ sequential

    @staticmethod
    def _run_sequential(fn, tasks) -> list[TaskResult]:
        results = []
        for index, task in enumerate(tasks):
            try:
                results.append(TaskResult(index, True, fn(task)))
            except (Exception, SystemExit) as exc:
                # SystemExit is included to mirror the forked workers, which
                # report any BaseException from a task as a failed result.
                # KeyboardInterrupt still propagates: in-process it is the
                # user interrupting the driver, not the task failing.
                results.append(
                    TaskResult(index, False, error=f"{type(exc).__name__}: {exc}")
                )
        return results

    # ---------------------------------------------------------------- forked

    def _run_forked(self, fn, tasks) -> list[TaskResult]:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            # No fork on this platform: sequential is always correct.
            return self._run_sequential(fn, tasks)
        results_queue = ctx.Queue()
        pending = list(range(len(tasks)))  # not yet dispatched, in order
        requeued: set[int] = set()
        slots: dict[int, dict] = {}
        num_workers = min(self.jobs, len(tasks))
        results: list[Optional[TaskResult]] = [None] * len(tasks)
        completed = 0

        def spawn(worker_id: int) -> None:
            inbox = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(fn, tasks, inbox, results_queue, worker_id),
                daemon=True,
            )
            process.start()
            slots[worker_id] = {
                "process": process,
                "inbox": inbox,
                "task": None,  # dispatched index
                "claimed": None,  # index the worker confirmed it is executing
            }

        def dispatch(worker_id: int) -> None:
            slot = slots[worker_id]
            slot["claimed"] = None
            if pending:
                slot["task"] = pending.pop(0)
                slot["inbox"].put(slot["task"])
            else:
                slot["task"] = None
                slot["inbox"].put(None)

        try:
            for worker_id in range(num_workers):
                spawn(worker_id)
                dispatch(worker_id)
            while completed < len(tasks):
                try:
                    kind, worker_id, index, payload, error = results_queue.get(
                        timeout=self.poll_interval
                    )
                except queue_module.Empty:
                    completed += self._reap_crashed(
                        spawn, dispatch, slots, results, pending, requeued
                    )
                    continue
                slot = slots.get(worker_id)
                if kind == "claim":
                    if slot is not None and slot["task"] == index:
                        slot["claimed"] = index
                    continue
                if results[index] is None:
                    # A late message for a task already failed by crash
                    # detection is dropped: every index resolves exactly once.
                    if error is None:
                        results[index] = TaskResult(index, True, pickle.loads(payload))
                    else:
                        results[index] = TaskResult(index, False, error=error)
                    completed += 1
                if slot is not None and slot["task"] == index:
                    dispatch(worker_id)
        finally:
            self._shutdown(slots)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    @staticmethod
    def _reap_crashed(spawn, dispatch, slots, results, pending, requeued) -> int:
        """Handle dead workers: fail the task they were executing (claimed),
        requeue a task they never picked up, and refill the slot."""
        reaped = 0
        for worker_id, slot in list(slots.items()):
            process = slot["process"]
            if process.is_alive():
                continue
            index = slot["task"]
            if index is None:
                # Finished cleanly after its poison pill.
                del slots[worker_id]
                continue
            if slot["claimed"] == index or index in requeued:
                # Died while executing (or already got its one retry): the
                # task itself may be the cause, so it is failed rather than
                # retried — a poison task must not take down every
                # replacement worker in turn.  A crash can outrun the flush
                # of its own claim message, which is why an unclaimed task
                # is requeued at most once instead of unconditionally.
                results[index] = TaskResult(
                    index,
                    False,
                    error=f"worker crashed (exit code {process.exitcode})",
                )
                reaped += 1
            else:
                # Dispatched but (as far as the parent knows) never picked
                # up: send it back to the front of the queue once.
                requeued.add(index)
                pending.insert(0, index)
            spawn(worker_id)
            dispatch(worker_id)
        return reaped

    def _shutdown(self, slots) -> None:
        for slot in slots.values():
            if slot["process"].is_alive():
                try:
                    slot["inbox"].put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 2.0
        for slot in slots.values():
            slot["process"].join(timeout=max(0.0, deadline - time.monotonic()))
            if slot["process"].is_alive():
                slot["process"].terminate()
                slot["process"].join(timeout=1.0)
