"""Sharded bounded model checking and parallel property sweeps.

Two independent axes of parallelism live here:

* :func:`check_properties_parallel` / :func:`prove_properties_parallel` —
  the *sweep* axis: independent properties (or the same property on
  independent bug variants) each get their own incremental engine in their
  own worker.  This is embarrassingly parallel and verdict-identical to
  running the engines one after another.
* :func:`check_frames_sharded` — the *depth* axis for a single property:
  the frames ``0..bound`` are dealt round-robin to N workers, each worker
  runs one incremental :class:`~repro.solve.context.SolverContext` over its
  frames in ascending order and stops at its first violation, and the
  parent returns the verdict of the *smallest* violated frame.  That
  minimum is what the sequential engine reports too, so the verdict and
  counterexample depth are deterministic and shard-count independent (the
  trace contents of a SAT frame may differ — any satisfying model is a
  valid counterexample).

``conflict_budget`` in the sharded driver caps each frame's query
individually (the sequential engine's budget is cumulative across a call —
a cumulative cap is meaningless when frames race).  An undecided frame
below the smallest violation makes the overall verdict inconclusive.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import Iterable, Optional, Sequence

from repro.bmc.engine import (
    BmcEngine,
    BmcResult,
    BmcStats,
    build_trace,
    load_frame_constraints,
    prepare_absint_fold,
    prepare_property_system,
)
from repro.bmc.kinduction import KInductionEngine, KInductionResult
from repro.errors import BmcError
from repro.par.pool import TaskPool, resolve_jobs
from repro.pdr.engine import PdrEngine, PdrResult, cube_clause_term
from repro.smt import terms as T
from repro.solve.context import SolverContext
from repro.solve.pipeline import PipelineConfig
from repro.ts.system import TransitionSystem
from repro.ts.unroll import Unroller


def check_properties_parallel(
    ts: TransitionSystem,
    property_names: Sequence[str],
    bound: int,
    jobs: Optional[int] = 1,
    backend: str = "cdcl",
    conflict_budget: Optional[int] = None,
    opt_level: Optional[int] = None,
) -> dict[str, BmcResult]:
    """Run one incremental BMC engine per property, ``jobs`` at a time."""
    names = list(property_names)

    def task(name: str) -> BmcResult:
        return BmcEngine(ts, backend=backend, opt_level=opt_level).check(
            name, bound=bound, conflict_budget=conflict_budget
        )

    results = TaskPool(jobs).map(task, names)
    return dict(zip(names, results))


def prove_properties_parallel(
    ts: TransitionSystem,
    property_names: Sequence[str],
    max_k: int = 4,
    jobs: Optional[int] = 1,
    backend: str = "cdcl",
    conflict_budget: Optional[int] = None,
    opt_level: Optional[int] = None,
    engine: str = "kinduction",
    max_frames: int = 20,
) -> "dict[str, KInductionResult | PdrResult]":
    """Run one proof engine per property, ``jobs`` at a time.

    ``engine`` selects the prover per property: ``"kinduction"`` (the
    default, bounded by ``max_k``) or ``"pdr"`` (IC3/PDR, bounded by
    ``max_frames``; its results carry the inductive invariant of every
    proven property).  Verdicts are identical to running the same engine
    sequentially per property.
    """
    if engine not in ("kinduction", "pdr"):
        raise BmcError(
            f"unknown proof engine {engine!r}; expected 'kinduction' or 'pdr'"
        )
    names = list(property_names)

    def task(name: str) -> "KInductionResult | PdrResult":
        if engine == "pdr":
            result = PdrEngine(
                ts, backend=backend, opt_level=opt_level, max_frames=max_frames
            ).prove(name, conflict_budget=conflict_budget)
            # BV terms are interned per process: a worker-built term pickled
            # back to the parent keeps a worker-local tid and would silently
            # collide with unrelated parent terms in every tid-keyed cache.
            # Ship only the picklable cube form; the parent rebuilds below.
            return dataclasses.replace(result, invariant=None)
        return KInductionEngine(ts, backend=backend, opt_level=opt_level).prove(
            name, max_k=max_k, conflict_budget=conflict_budget
        )

    results = TaskPool(jobs).map(task, names)
    if engine == "pdr":
        for result in results:
            if result.invariant_cubes is not None:
                result.invariant = [
                    cube_clause_term(ts, cube) for cube in result.invariant_cubes
                ]
    return dict(zip(names, results))


def _check_frame_shard(
    ts: TransitionSystem,
    property_name: str,
    frames: Iterable[int],
    backend: str,
    conflict_budget: Optional[int],
    best_violation,
    pipeline: Optional[PipelineConfig] = None,
) -> dict:
    """Worker: decide a set of frames on one incremental context.

    ``best_violation`` is a cross-shard ``multiprocessing.Value`` holding
    the smallest violated frame found so far by *any* shard.  Frames at or
    beyond it cannot improve the minimum, so they are skipped — that is the
    sharded equivalent of the sequential engine stopping at its first
    violation, and it keeps a shallow counterexample from waiting on the
    deepest (hardest) queries of the other shards.

    Returns a picklable summary: per-frame verdicts, the first violated
    frame with its trace, the first undecided frame, and solver counters.
    """
    frames = sorted(frames)
    pipeline = pipeline if pipeline is not None else PipelineConfig.resolve(None)
    reduced_ts, reduction = prepare_property_system(ts, property_name, pipeline)
    fold = prepare_absint_fold(reduced_ts, pipeline)
    if fold is not None:
        reduced_ts = fold.ts
    unroller = Unroller(reduced_ts)
    context = SolverContext(backend=backend, opt_level=pipeline)
    loaded = 0
    violated: Optional[int] = None
    undecided: Optional[int] = None
    trace = None
    solver_calls = 0
    decided: list[int] = []
    frame_seconds: list[tuple[int, float]] = []
    for frame in frames:
        if frame >= best_violation.value:
            break
        loaded = load_frame_constraints(unroller, context, loaded, frame)
        frame_start = time.perf_counter()
        violation = T.bv_not(unroller.property_at(property_name, frame))
        if violation.is_const and violation.const_value() == 0:
            decided.append(frame)
            frame_seconds.append((frame, time.perf_counter() - frame_start))
            continue
        solver_calls += 1
        result = context.check(
            assumptions=[violation],
            conflict_budget=conflict_budget,
            full_model=True,
        )
        if result.satisfiable is None:
            # Mirror the sequential engine: undecided frames stay out of the
            # per-frame timings so they align with the decided-frame count.
            undecided = frame
            break
        decided.append(frame)
        frame_seconds.append((frame, time.perf_counter() - frame_start))
        if result.satisfiable:
            violated = frame
            trace = build_trace(
                ts,
                unroller,
                property_name,
                result.model,
                frame,
                reduction=reduction,
                fold=fold,
            )
            with best_violation.get_lock():
                if frame < best_violation.value:
                    best_violation.value = frame
            break
    return {
        "decided": decided,
        "violated": violated,
        "undecided": undecided,
        "trace": trace,
        "solver_calls": solver_calls,
        "frame_seconds": frame_seconds,
        "solver_stats": context.stats.copy(),
    }


def check_frames_sharded(
    ts: TransitionSystem,
    property_name: str,
    bound: int,
    jobs: Optional[int] = 1,
    backend: str = "cdcl",
    start_frame: int = 0,
    conflict_budget: Optional[int] = None,
    opt_level: Optional[int] = None,
) -> BmcResult:
    """BMC one property to ``bound``, frames dealt round-robin to workers."""
    if bound < 0:
        raise BmcError(f"bound must be non-negative, got {bound}")
    pipeline = PipelineConfig.resolve(opt_level)
    jobs = resolve_jobs(jobs)
    if jobs == 1:
        return BmcEngine(
            ts, start_frame=start_frame, backend=backend, opt_level=pipeline
        ).check(property_name, bound=bound, conflict_budget=conflict_budget)
    ts.validate()
    if property_name not in ts.properties:
        raise BmcError(f"unknown property {property_name!r}")
    try:
        fork_ctx = multiprocessing.get_context("fork")
    except ValueError:
        # No fork on this platform: the sequential engine is always correct.
        return BmcEngine(
            ts, start_frame=start_frame, backend=backend, opt_level=pipeline
        ).check(property_name, bound=bound, conflict_budget=conflict_budget)
    frames = list(range(start_frame, bound + 1))
    shards = [frames[i::jobs] for i in range(jobs)]
    shards = [shard for shard in shards if shard]
    # Shared minimum-violated-frame; fork-inherited by every shard worker.
    best_violation = fork_ctx.Value("q", bound + 1)

    def task(shard: list[int]) -> dict:
        return _check_frame_shard(
            ts,
            property_name,
            shard,
            backend,
            conflict_budget,
            best_violation,
            pipeline=pipeline,
        )

    summaries = TaskPool(len(shards)).map(task, shards)

    stats = BmcStats()
    merged_frame_seconds: list[tuple[int, float]] = []
    violations: list[tuple[int, object]] = []
    undecided_frames: list[int] = []
    for summary in summaries:
        stats.solver_calls += summary["solver_calls"]
        stats.frames_checked += len(summary["decided"])
        merged_frame_seconds.extend(summary["frame_seconds"])
        stats.solver_stats.merge(summary["solver_stats"])
        if summary["violated"] is not None:
            violations.append((summary["violated"], summary["trace"]))
        if summary["undecided"] is not None:
            undecided_frames.append(summary["undecided"])
    stats.per_frame_seconds = [
        seconds for _frame, seconds in sorted(merged_frame_seconds)
    ]

    first_violation = min(violations, default=None, key=lambda pair: pair[0])
    first_undecided = min(undecided_frames, default=None)
    if first_violation is not None and (
        first_undecided is None or first_violation[0] < first_undecided
    ):
        frame, trace = first_violation
        return BmcResult(
            holds=False,
            bound=frame,
            property_name=property_name,
            trace=trace,
            stats=stats,
        )
    if first_undecided is not None:
        return BmcResult(
            holds=None,
            bound=first_undecided,
            property_name=property_name,
            stats=stats,
        )
    return BmcResult(
        holds=True, bound=bound, property_name=property_name, stats=stats
    )
