"""Experiment harnesses that regenerate the paper's tables and figures.

Each module can be run directly (``python -m repro.experiments.figure3``)
and is also imported by the pytest-benchmark suites under ``benchmarks/``.
The harnesses print the same rows/series the paper reports; EXPERIMENTS.md
records the measured numbers next to the paper's.

All experiments run on a scaled-down datapath (see DESIGN.md): absolute
times differ from the paper (our backend is a pure-Python SAT solver), but
the qualitative shape — HPF-CEGIS beating iterative CEGIS, SQED missing all
single-instruction bugs while SEPE-SQED catches them, both methods catching
multiple-instruction bugs with comparable traces — is what is reproduced.
"""

from repro.experiments.figure3 import run_figure3, Figure3Config
from repro.experiments.table1 import run_table1, Table1Config
from repro.experiments.figure4 import run_figure4, Figure4Config

__all__ = [
    "run_figure3",
    "Figure3Config",
    "run_table1",
    "Table1Config",
    "run_figure4",
    "Figure4Config",
]
