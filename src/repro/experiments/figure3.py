"""Figure 3 — synthesis time: HPF-CEGIS vs. iterative CEGIS.

The paper synthesizes equivalent programs for 26 cases with a library of 29
components and reports the per-case time of HPF-CEGIS against the shuffled
iterative CEGIS baseline, observing an average ~50% reduction (up to 90% in
some cases).  This harness runs both algorithms over a configurable set of
cases and prints the per-case times plus the aggregate reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.config import IsaConfig
from repro.synth.cegis import CegisConfig
from repro.synth.components import build_default_library
from repro.synth.hpf import HpfCegis
from repro.synth.iterative import IterativeCegis
from repro.synth.search import SynthesisRun
from repro.synth.spec import spec_from_instruction, synthesis_case_names
from repro.utils.tables import TextTable

#: Default case list: all 26 supported instructions, as in the paper.
ALL_CASES = synthesis_case_names()

#: A compact case list used by the benchmark suite so a full run stays fast.
#: (The full 26-case sweep is available via ``python -m repro.experiments.figure3 --full``.)
QUICK_CASES = ["ADD", "SLT"]


@dataclass
class Figure3Config:
    """Knobs of the Figure 3 experiment."""

    cases: list[str] = field(default_factory=lambda: list(QUICK_CASES))
    xlen: int = 8
    num_regs: int = 8
    multiset_size: int = 3
    target_programs: int = 2
    max_multisets: Optional[int] = 60
    shuffle_seed: int = 2024
    max_cegis_iterations: int = 12


@dataclass
class Figure3Result:
    """Per-case synthesis times for both algorithms."""

    hpf: dict[str, SynthesisRun]
    iterative: dict[str, SynthesisRun]

    def reduction_percent(self) -> float:
        """Average per-case reduction of HPF vs iterative (positive = faster)."""
        reductions = []
        for name, hpf_run in self.hpf.items():
            base = self.iterative[name].elapsed_seconds
            if base > 0:
                reductions.append(100.0 * (base - hpf_run.elapsed_seconds) / base)
        return sum(reductions) / len(reductions) if reductions else 0.0

    def render(self) -> str:
        table = TextTable(
            ["case", "HPF-CEGIS (s)", "iterative CEGIS (s)", "HPF programs", "iter programs", "reduction"]
        )
        for name in self.hpf:
            hpf_run = self.hpf[name]
            it_run = self.iterative[name]
            base = it_run.elapsed_seconds
            reduction = "-" if base == 0 else f"{100.0 * (base - hpf_run.elapsed_seconds) / base:.0f}%"
            table.add_row(
                [
                    name,
                    f"{hpf_run.elapsed_seconds:.2f}",
                    f"{it_run.elapsed_seconds:.2f}",
                    len(hpf_run.programs),
                    len(it_run.programs),
                    reduction,
                ]
            )
        lines = [table.render()]
        lines.append(f"average reduction: {self.reduction_percent():.0f}% (paper reports ~50%)")
        return "\n".join(lines)


def run_figure3(config: Figure3Config | None = None) -> Figure3Result:
    """Run the HPF vs iterative comparison and return the per-case runs."""
    config = config or Figure3Config()
    isa = IsaConfig.small(xlen=config.xlen, num_regs=config.num_regs)
    library = build_default_library(isa)
    cegis_cfg = CegisConfig(max_iterations=config.max_cegis_iterations)

    hpf = HpfCegis(
        library,
        multiset_size=config.multiset_size,
        target_programs=config.target_programs,
        cegis_config=cegis_cfg,
        max_multisets=config.max_multisets,
    )
    iterative = IterativeCegis(
        library,
        multiset_size=config.multiset_size,
        target_programs=config.target_programs,
        cegis_config=cegis_cfg,
        shuffle_seed=config.shuffle_seed,
        max_multisets=config.max_multisets,
    )

    specs = [spec_from_instruction(name, isa) for name in config.cases]
    hpf_runs = hpf.synthesize_all(specs)
    iterative_runs = iterative.synthesize_all(specs)
    return Figure3Result(hpf=hpf_runs, iterative=iterative_runs)


def main() -> None:  # pragma: no cover - CLI entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all 26 cases")
    parser.add_argument("--cases", nargs="*", default=None, help="explicit case list")
    parser.add_argument("--max-multisets", type=int, default=60)
    args = parser.parse_args()

    config = Figure3Config(max_multisets=args.max_multisets)
    if args.full:
        config.cases = list(ALL_CASES)
    if args.cases:
        config.cases = [c.upper() for c in args.cases]
    result = run_figure3(config)
    print(result.render())


if __name__ == "__main__":  # pragma: no cover
    main()
