"""Figure 3 — synthesis time: HPF-CEGIS vs. iterative CEGIS.

The paper synthesizes equivalent programs for 26 cases with a library of 29
components and reports the per-case time of HPF-CEGIS against the shuffled
iterative CEGIS baseline, observing an average ~50% reduction (up to 90% in
some cases).  This harness runs both algorithms over a configurable set of
cases and prints the per-case times plus the aggregate reduction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.config import IsaConfig
from repro.par.pool import TaskPool, resolve_jobs
from repro.solve.pipeline import PipelineConfig
from repro.synth.cegis import CegisConfig
from repro.synth.components import build_default_library
from repro.synth.hpf import HpfCegis
from repro.synth.iterative import IterativeCegis
from repro.synth.program import ProgramSlot, SynthesizedProgram
from repro.synth.search import SynthesisRun
from repro.synth.spec import spec_from_instruction, synthesis_case_names
from repro.utils.tables import TextTable

#: Default case list: all 26 supported instructions, as in the paper.
ALL_CASES = synthesis_case_names()

#: A compact case list used by the benchmark suite so a full run stays fast.
#: (The full 26-case sweep is available via ``python -m repro.experiments.figure3 --full``.)
QUICK_CASES = ["ADD", "SLT"]


@dataclass
class Figure3Config:
    """Knobs of the Figure 3 experiment."""

    cases: list[str] = field(default_factory=lambda: list(QUICK_CASES))
    xlen: int = 8
    num_regs: int = 8
    multiset_size: int = 3
    target_programs: int = 2
    max_multisets: Optional[int] = 60
    shuffle_seed: int = 2024
    max_cegis_iterations: int = 12
    #: Cases synthesized concurrently (each case runs both algorithms in its
    #: worker).  ``0`` means one per CPU.
    jobs: int = 1
    #: Compilation-pipeline level for every CEGIS solver context
    #: (``None`` = process default, see :mod:`repro.solve.pipeline`).
    opt_level: Optional[int] = None
    #: Abstract-interpretation knob (``None`` = process default, see
    #: ``$REPRO_ABSINT``).  CEGIS contexts never encode transition systems,
    #: so the knob is inert here; it exists so sweep drivers can set one
    #: flag uniformly across every experiment CLI.
    absint: Optional[bool] = None


@dataclass
class Figure3Result:
    """Per-case synthesis times for both algorithms."""

    hpf: dict[str, SynthesisRun]
    iterative: dict[str, SynthesisRun]

    def reduction_percent(self) -> float:
        """Average per-case reduction of HPF vs iterative (positive = faster)."""
        reductions = []
        for name, hpf_run in self.hpf.items():
            base = self.iterative[name].elapsed_seconds
            if base > 0:
                reductions.append(100.0 * (base - hpf_run.elapsed_seconds) / base)
        return sum(reductions) / len(reductions) if reductions else 0.0

    def render(self) -> str:
        table = TextTable(
            ["case", "HPF-CEGIS (s)", "iterative CEGIS (s)", "HPF programs", "iter programs", "reduction"]
        )
        for name in self.hpf:
            hpf_run = self.hpf[name]
            it_run = self.iterative[name]
            base = it_run.elapsed_seconds
            reduction = "-" if base == 0 else f"{100.0 * (base - hpf_run.elapsed_seconds) / base:.0f}%"
            table.add_row(
                [
                    name,
                    f"{hpf_run.elapsed_seconds:.2f}",
                    f"{it_run.elapsed_seconds:.2f}",
                    len(hpf_run.programs),
                    len(it_run.programs),
                    reduction,
                ]
            )
        lines = [table.render()]
        lines.append(f"average reduction: {self.reduction_percent():.0f}% (paper reports ~50%)")
        return "\n".join(lines)


def _encode_run(run: SynthesisRun) -> dict:
    """A picklable summary of a run: programs become component recipes."""
    return {
        "spec_name": run.spec_name,
        "elapsed_seconds": run.elapsed_seconds,
        "cegis_calls": run.cegis_calls,
        "multisets_tried": run.multisets_tried,
        "multisets_total": run.multisets_total,
        "exhausted": run.exhausted,
        "programs": [
            [
                (slot.component.name, slot.input_sources, slot.attributes)
                for slot in program.slots
            ]
            for program in run.programs
        ],
    }


def _decode_run(payload: dict, isa: IsaConfig, library) -> SynthesisRun:
    """Rebuild a run in the parent from the worker's recipe encoding."""
    spec = spec_from_instruction(payload["spec_name"], isa)
    programs = [
        SynthesizedProgram(
            spec,
            [
                ProgramSlot(
                    component=library.by_name(name),
                    input_sources=sources,
                    attributes=attributes,
                )
                for name, sources, attributes in slots
            ],
        )
        for slots in payload["programs"]
    ]
    return SynthesisRun(
        spec_name=payload["spec_name"],
        programs=programs,
        elapsed_seconds=payload["elapsed_seconds"],
        cegis_calls=payload["cegis_calls"],
        multisets_tried=payload["multisets_tried"],
        multisets_total=payload["multisets_total"],
        exhausted=payload["exhausted"],
    )


def run_figure3(config: Figure3Config | None = None) -> Figure3Result:
    """Run the HPF vs iterative comparison and return the per-case runs.

    With ``jobs > 1`` the cases shard across worker processes; each worker
    synthesizes one case with both algorithms, so the per-case comparison
    stays apples-to-apples (same process, same warmed caches).  ``jobs=1``
    runs the historical batch path on shared engine objects, where HPF's
    priority weights carry over from case to case; sharded cases instead
    start from the initial priority dictionary (fresh engines per case, so
    results do not depend on which worker served which case).
    """
    config = config or Figure3Config()
    isa = IsaConfig.small(xlen=config.xlen, num_regs=config.num_regs)
    library = build_default_library(isa)
    opt_level: "PipelineConfig | int | None" = config.opt_level
    if config.absint is not None:
        resolved = PipelineConfig.resolve(config.opt_level)
        opt_level = dataclasses.replace(resolved, absint=config.absint)
    cegis_cfg = CegisConfig(
        max_iterations=config.max_cegis_iterations, opt_level=opt_level
    )

    def build_engines() -> tuple[HpfCegis, IterativeCegis]:
        hpf = HpfCegis(
            library,
            multiset_size=config.multiset_size,
            target_programs=config.target_programs,
            cegis_config=cegis_cfg,
            max_multisets=config.max_multisets,
        )
        iterative = IterativeCegis(
            library,
            multiset_size=config.multiset_size,
            target_programs=config.target_programs,
            cegis_config=cegis_cfg,
            shuffle_seed=config.shuffle_seed,
            max_multisets=config.max_multisets,
        )
        return hpf, iterative

    if resolve_jobs(config.jobs) == 1:
        # Historical batch path: one engine pair across every case, HPF
        # priority weights carrying over from case to case.
        hpf, iterative = build_engines()
        specs = [spec_from_instruction(name, isa) for name in config.cases]
        return Figure3Result(
            hpf=hpf.synthesize_all(specs),
            iterative=iterative.synthesize_all(specs),
        )

    def case_task(name: str) -> tuple[dict, dict]:
        # Fresh engines per case: a worker serves several cases, so reusing
        # engines would leak HPF priorities between whichever cases happen
        # to land on the same worker — schedule-dependent, nondeterministic.
        hpf, iterative = build_engines()
        spec = spec_from_instruction(name, isa)
        hpf_run = hpf.synthesize_all([spec])[name]
        iterative_run = iterative.synthesize_all([spec])[name]
        return _encode_run(hpf_run), _encode_run(iterative_run)

    payloads = TaskPool(config.jobs).map(case_task, config.cases)
    hpf_runs: dict[str, SynthesisRun] = {}
    iterative_runs: dict[str, SynthesisRun] = {}
    for name, (hpf_payload, iterative_payload) in zip(config.cases, payloads):
        hpf_runs[name] = _decode_run(hpf_payload, isa, library)
        iterative_runs[name] = _decode_run(iterative_payload, isa, library)
    return Figure3Result(hpf=hpf_runs, iterative=iterative_runs)


def main() -> None:  # pragma: no cover - CLI entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all 26 cases")
    parser.add_argument("--cases", nargs="*", default=None, help="explicit case list")
    parser.add_argument("--max-multisets", type=int, default=60)
    parser.add_argument(
        "--jobs", type=int, default=1, help="cases synthesized concurrently (0 = one per CPU)"
    )
    parser.add_argument(
        "--opt-level",
        type=int,
        choices=(0, 1, 2),
        default=None,
        help="compilation pipeline level (default: $REPRO_OPT_LEVEL or 2)",
    )
    parser.add_argument(
        "--absint",
        type=int,
        choices=(0, 1),
        default=None,
        help="abstract-interpretation layer (default: $REPRO_ABSINT or 1)",
    )
    args = parser.parse_args()

    config = Figure3Config(
        max_multisets=args.max_multisets,
        jobs=args.jobs,
        opt_level=args.opt_level,
        absint=None if args.absint is None else bool(args.absint),
    )
    if args.full:
        config.cases = list(ALL_CASES)
    if args.cases:
        config.cases = [c.upper() for c in args.cases]
    result = run_figure3(config)
    print(result.render())


if __name__ == "__main__":  # pragma: no cover
    main()
