"""Table 1 — injected single-instruction bugs.

For every single-instruction mutation the paper reports the SEPE-SQED
detection time and a dash for SQED (which, by construction, cannot observe
a bug that corrupts the original instruction and its duplicate identically).
This harness reproduces exactly that: for each bug it runs SEPE-SQED
(expecting a counterexample) and SQED (expecting the property to hold up to
the bound) and prints the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.flow import SepeSqedFlow, SqedFlow, pool_for_bug
from repro.core.results import ProofOutcome, VerificationOutcome
from repro.isa.config import IsaConfig
from repro.par.pool import TaskPool
from repro.proc.bugs import Bug, single_instruction_bugs
from repro.proc.config import ProcessorConfig
from repro.qed.equivalents import default_equivalent_programs
from repro.utils.tables import TextTable

#: The bug subset used by the benchmark suite (full set via --full).
QUICK_BUGS = [
    "single_add_off_by_one",
    "single_xor_as_or",
    "single_and_as_or",
]


@dataclass
class Table1Config:
    """Knobs of the Table 1 experiment."""

    bug_names: Optional[list[str]] = None
    xlen: int = 8
    num_regs: int = 8
    sepe_bound: int = 10
    sqed_bound: int = 5
    fifo_depth: int = 2
    #: Conflict budget for the SQED runs.  SQED provably cannot detect these
    #: bugs, so its BMC queries are all UNSAT; bounding the proof effort keeps
    #: the harness fast.  An exhausted budget is reported as "-" (no bug trace
    #: found), matching the paper's Table 1 column for SQED.
    sqed_conflict_budget: int = 20_000
    #: Rows (bugs) verified concurrently; each row is an independent pair of
    #: flows, so the table shards perfectly.  ``0`` means one per CPU.
    jobs: int = 1
    #: Compilation-pipeline level for every solver in the experiment
    #: (``None`` = process default, see :mod:`repro.solve.pipeline`).
    opt_level: Optional[int] = None
    #: Abstract-interpretation knob for every flow (``None`` = process
    #: default, see ``$REPRO_ABSINT``).
    absint: Optional[bool] = None
    #: Solver backend spec for every flow in the experiment — ``"cdcl"``
    #: follows ``$REPRO_SAT_BACKEND``; ``"arena"`` / ``"reference"`` pin a
    #: kernel (see :mod:`repro.solve.backend`).
    backend: str = "cdcl"
    #: Engine for the SQED column: ``"bmc"`` (the paper's bounded check, the
    #: default) or an unbounded prover (``"kinduction"`` / ``"pdr"``) that
    #: upgrades the dash to a *proof* that SQED cannot detect the bug at any
    #: depth.  The unbounded engines can be slow on full-size processor
    #: configurations; they are opt-in.
    engine: str = "bmc"
    #: Depth limits for the unbounded SQED engines.
    sqed_max_k: int = 4
    sqed_max_frames: int = 10


@dataclass
class Table1Row:
    bug: Bug
    sepe: VerificationOutcome
    sqed: VerificationOutcome
    #: Populated when the SQED column ran an unbounded engine
    #: (``Table1Config.engine != "bmc"``).
    sqed_proof: Optional[ProofOutcome] = None


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        table = TextTable(
            ["Type", "Function", "SEPE-SQED", "SQED"]
        )
        for row in self.rows:
            sepe_cell = (
                f"{row.sepe.runtime_seconds:.2f}s"
                if row.sepe.detected
                else ("inconclusive" if row.sepe.detected is None else "MISSED")
            )
            if row.sqed.detected:
                sqed_cell = f"FALSE DETECTION {row.sqed.runtime_seconds:.2f}s"
            elif row.sqed_proof is not None and row.sqed_proof.proven:
                # The unbounded engine upgraded the dash to a proof.
                sqed_cell = (
                    f"- (proven absent, {row.sqed_proof.engine} "
                    f"depth {row.sqed_proof.depth})"
                )
            else:
                sqed_cell = "-"
            table.add_row(
                [row.bug.target_ops[0], row.bug.description, sepe_cell, sqed_cell]
            )
        return table.render()

    @property
    def all_detected_by_sepe(self) -> bool:
        return all(row.sepe.detected for row in self.rows)

    @property
    def none_detected_by_sqed(self) -> bool:
        return all(not row.sqed.detected for row in self.rows)


def run_table1(config: Table1Config | None = None) -> Table1Result:
    """Run the single-instruction-bug comparison."""
    config = config or Table1Config()
    isa = IsaConfig.small(xlen=config.xlen, num_regs=config.num_regs)
    equivalents_all = default_equivalent_programs(isa)

    bugs = single_instruction_bugs()
    if config.bug_names is not None:
        requested = {name for name in config.bug_names}
        bugs = [bug for bug in bugs if bug.name in requested]

    def row_task(
        bug: Bug,
    ) -> tuple[VerificationOutcome, VerificationOutcome, Optional[ProofOutcome]]:
        pool = pool_for_bug(bug, equivalents_all)
        proc_config = ProcessorConfig(isa=isa, supported_ops=pool)
        equivalents = {
            op: program for op, program in equivalents_all.items() if op in pool
        }
        sepe = SepeSqedFlow(
            proc_config,
            equivalents=equivalents,
            fifo_depth=config.fifo_depth,
            backend=config.backend,
            opt_level=config.opt_level,
            absint=config.absint,
        )
        sqed = SqedFlow(
            proc_config,
            fifo_depth=config.fifo_depth,
            backend=config.backend,
            opt_level=config.opt_level,
            absint=config.absint,
        )
        sepe_outcome = sepe.run(bug, bound=config.sepe_bound)
        if config.engine == "bmc":
            sqed_outcome = sqed.run(
                bug,
                bound=config.sqed_bound,
                conflict_budget=config.sqed_conflict_budget,
            )
            return sepe_outcome, sqed_outcome, None
        # Unbounded SQED column: prove (rather than bound-check) that the
        # self-consistency property survives the bug.
        sqed_proof = sqed.prove(
            bug,
            engine=config.engine,
            max_k=config.sqed_max_k,
            max_frames=config.sqed_max_frames,
            conflict_budget=config.sqed_conflict_budget,
        )
        detected: Optional[bool]
        if sqed_proof.proven is None:
            detected = None
        else:
            detected = not sqed_proof.proven
        sqed_outcome = VerificationOutcome(
            method="SQED",
            bug_name=bug.name,
            detected=detected,
            runtime_seconds=sqed_proof.runtime_seconds,
            bound=sqed_proof.depth,
        )
        return sepe_outcome, sqed_outcome, sqed_proof

    result = Table1Result()
    outcomes = TaskPool(config.jobs).map(row_task, bugs)
    for bug, (sepe_outcome, sqed_outcome, sqed_proof) in zip(bugs, outcomes):
        result.rows.append(
            Table1Row(
                bug=bug, sepe=sepe_outcome, sqed=sqed_outcome, sqed_proof=sqed_proof
            )
        )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run every Table 1 bug")
    parser.add_argument("--bugs", nargs="*", default=None)
    parser.add_argument(
        "--jobs", type=int, default=1, help="rows verified concurrently (0 = one per CPU)"
    )
    parser.add_argument(
        "--opt-level",
        type=int,
        choices=(0, 1, 2),
        default=None,
        help="compilation pipeline level (default: $REPRO_OPT_LEVEL or 2)",
    )
    parser.add_argument(
        "--absint",
        type=int,
        choices=(0, 1),
        default=None,
        help="abstract-interpretation layer (default: $REPRO_ABSINT or 1)",
    )
    parser.add_argument(
        "--engine",
        choices=("bmc", "kinduction", "pdr"),
        default="bmc",
        help=(
            "SQED-column engine: bounded 'bmc' (paper-faithful, default) or "
            "an unbounded prover ('kinduction'/'pdr') that turns the dash "
            "into a proof of non-detection"
        ),
    )
    parser.add_argument(
        "--sat-backend",
        choices=("cdcl", "arena", "reference"),
        default="cdcl",
        help=(
            "SAT backend spec: 'cdcl' follows $REPRO_SAT_BACKEND (default "
            "arena); 'arena'/'reference' pin one CDCL kernel"
        ),
    )
    args = parser.parse_args()

    config = Table1Config(
        bug_names=list(QUICK_BUGS),
        jobs=args.jobs,
        opt_level=args.opt_level,
        absint=None if args.absint is None else bool(args.absint),
        engine=args.engine,
        backend=args.sat_backend,
    )
    if args.full:
        config.bug_names = None
    if args.bugs:
        config.bug_names = args.bugs
    result = run_table1(config)
    print(result.render())
    print(
        f"SEPE-SQED detected all: {result.all_detected_by_sepe}; "
        f"SQED detected none: {result.none_detected_by_sqed}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
