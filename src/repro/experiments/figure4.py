"""Figure 4 — multiple-instruction bugs: runtime and counterexample length.

Both methods detect sequence-dependent bugs; the paper plots, per bug, the
detection time of each method together with the SQED / SEPE-SQED ratios of
runtime and counterexample length, observing that EDSEP-V's extra machinery
does not cost much and sometimes yields *shorter* traces.  This harness runs
both flows on each multiple-instruction mutation and prints the same series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.flow import SepeSqedFlow, SqedFlow, pool_for_bug
from repro.core.results import VerificationOutcome
from repro.isa.config import IsaConfig
from repro.proc.bugs import Bug, multiple_instruction_bugs
from repro.proc.config import ProcessorConfig
from repro.qed.equivalents import default_equivalent_programs
from repro.utils.tables import TextTable

#: Subset used by the benchmark suite.
QUICK_BUGS = [
    "multi_no_forward_ex_rs1",
    "multi_wb_dropped_on_double_write",
]


@dataclass
class Figure4Config:
    """Knobs of the Figure 4 experiment."""

    bug_names: Optional[list[str]] = None
    xlen: int = 8
    num_regs: int = 8
    bound: int = 10
    fifo_depth: int = 2
    #: Compilation-pipeline level for every solver in the experiment
    #: (``None`` = process default, see :mod:`repro.solve.pipeline`).
    opt_level: Optional[int] = None
    #: Abstract-interpretation knob for every flow (``None`` = process
    #: default, see ``$REPRO_ABSINT``).
    absint: Optional[bool] = None
    #: Solver backend spec (``"arena"``/``"reference"`` pin a CDCL kernel,
    #: see :mod:`repro.solve.backend`).
    backend: str = "cdcl"


@dataclass
class Figure4Row:
    bug: Bug
    sepe: VerificationOutcome
    sqed: VerificationOutcome

    @property
    def runtime_ratio(self) -> Optional[float]:
        """SQED / SEPE-SQED detection-time ratio (the paper's blue curve)."""
        if not (self.sepe.detected and self.sqed.detected):
            return None
        if self.sepe.runtime_seconds == 0:
            return None
        return self.sqed.runtime_seconds / self.sepe.runtime_seconds

    @property
    def length_ratio(self) -> Optional[float]:
        """SQED / SEPE-SQED counterexample-length ratio (the yellow curve)."""
        if self.sepe.counterexample_length and self.sqed.counterexample_length:
            return self.sqed.counterexample_length / self.sepe.counterexample_length
        return None


@dataclass
class Figure4Result:
    rows: list[Figure4Row] = field(default_factory=list)

    def render(self) -> str:
        table = TextTable(
            [
                "No.", "bug", "SQED (s)", "SEPE-SQED (s)",
                "SQED len", "SEPE len", "runtime ratio", "length ratio",
            ]
        )
        for index, row in enumerate(self.rows, start=1):
            table.add_row(
                [
                    index,
                    row.bug.name,
                    f"{row.sqed.runtime_seconds:.2f}" if row.sqed.detected else "miss",
                    f"{row.sepe.runtime_seconds:.2f}" if row.sepe.detected else "miss",
                    row.sqed.counterexample_length or "-",
                    row.sepe.counterexample_length or "-",
                    f"{row.runtime_ratio:.2f}" if row.runtime_ratio else "-",
                    f"{row.length_ratio:.2f}" if row.length_ratio else "-",
                ]
            )
        return table.render()

    @property
    def both_detect_all(self) -> bool:
        return all(row.sepe.detected and row.sqed.detected for row in self.rows)


def run_figure4(config: Figure4Config | None = None) -> Figure4Result:
    """Run the multiple-instruction-bug comparison."""
    config = config or Figure4Config()
    isa = IsaConfig.small(xlen=config.xlen, num_regs=config.num_regs)
    equivalents_all = default_equivalent_programs(isa)

    bugs = multiple_instruction_bugs()
    if config.bug_names is not None:
        requested = set(config.bug_names)
        bugs = [bug for bug in bugs if bug.name in requested]

    result = Figure4Result()
    for bug in bugs:
        pool = pool_for_bug(bug, equivalents_all, extra_ops=bug.recommended_pool)
        proc_config = ProcessorConfig(isa=isa, supported_ops=pool)
        equivalents = {
            op: program for op, program in equivalents_all.items() if op in pool
        }
        sepe = SepeSqedFlow(
            proc_config,
            equivalents=equivalents,
            fifo_depth=config.fifo_depth,
            backend=config.backend,
            opt_level=config.opt_level,
            absint=config.absint,
        )
        sqed = SqedFlow(
            proc_config,
            fifo_depth=config.fifo_depth,
            backend=config.backend,
            opt_level=config.opt_level,
            absint=config.absint,
        )
        sepe_outcome = sepe.run(bug, bound=config.bound)
        sqed_outcome = sqed.run(bug, bound=config.bound)
        result.rows.append(Figure4Row(bug=bug, sepe=sepe_outcome, sqed=sqed_outcome))
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run every Figure 4 bug")
    parser.add_argument("--bugs", nargs="*", default=None)
    parser.add_argument(
        "--opt-level",
        type=int,
        choices=(0, 1, 2),
        default=None,
        help="compilation pipeline level (default: $REPRO_OPT_LEVEL or 2)",
    )
    parser.add_argument(
        "--absint",
        type=int,
        choices=(0, 1),
        default=None,
        help="abstract-interpretation layer (default: $REPRO_ABSINT or 1)",
    )
    parser.add_argument(
        "--sat-backend",
        choices=("cdcl", "arena", "reference"),
        default="cdcl",
        help=(
            "SAT backend spec: 'cdcl' follows $REPRO_SAT_BACKEND (default "
            "arena); 'arena'/'reference' pin one CDCL kernel"
        ),
    )
    args = parser.parse_args()

    config = Figure4Config(
        bug_names=list(QUICK_BUGS),
        opt_level=args.opt_level,
        absint=None if args.absint is None else bool(args.absint),
        backend=args.sat_backend,
    )
    if args.full:
        config.bug_names = None
    if args.bugs:
        config.bug_names = args.bugs
    result = run_figure4(config)
    print(result.render())
    print(f"both methods detect every bug: {result.both_detect_all}")


if __name__ == "__main__":  # pragma: no cover
    main()
