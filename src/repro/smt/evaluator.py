"""Concrete evaluation and substitution over bit-vector terms.

``evaluate`` interprets a term under an assignment of integer values to
variables; ``substitute`` rewrites a term replacing variables (or arbitrary
sub-terms) with other terms.  Both are iterative (explicit stack) so deep
pipelines unrolled over many cycles do not hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SmtError
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.utils.bitops import mask, to_signed


def evaluate(term: BV, assignment: Mapping[str, int] | None = None) -> int:
    """Evaluate ``term`` to an unsigned integer.

    ``assignment`` maps variable *names* to integer values; a missing
    variable is an error so silent mis-evaluations cannot slip through.
    """
    assignment = assignment or {}
    cache: dict[int, int] = {}
    stack: list[tuple[BV, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node.tid in cache:
            continue
        if node.op == T.OP_CONST:
            cache[node.tid] = node.const_value()
            continue
        if node.op == T.OP_VAR:
            assert node.name is not None
            if node.name not in assignment:
                raise SmtError(f"no value for variable {node.name!r}")
            cache[node.tid] = assignment[node.name] & mask(node.width)
            continue
        if not expanded:
            stack.append((node, True))
            for arg in node.args:
                if arg.tid not in cache:
                    stack.append((arg, False))
            continue
        args = [cache[a.tid] for a in node.args]
        cache[node.tid] = _apply(node, args)
    return cache[term.tid]


def _apply(node: BV, args: list[int]) -> int:
    """Evaluate a single operator given the values of its children."""
    op = node.op
    w = node.width
    if op == T.OP_NOT:
        return (~args[0]) & mask(w)
    if op == T.OP_AND:
        return args[0] & args[1]
    if op == T.OP_OR:
        return args[0] | args[1]
    if op == T.OP_XOR:
        return args[0] ^ args[1]
    if op == T.OP_ADD:
        return (args[0] + args[1]) & mask(w)
    if op == T.OP_SUB:
        return (args[0] - args[1]) & mask(w)
    if op == T.OP_MUL:
        return (args[0] * args[1]) & mask(w)
    if op == T.OP_EQ:
        return 1 if args[0] == args[1] else 0
    if op == T.OP_ULT:
        return 1 if args[0] < args[1] else 0
    if op == T.OP_SLT:
        aw = node.args[0].width
        return 1 if to_signed(args[0], aw) < to_signed(args[1], aw) else 0
    if op == T.OP_ITE:
        return args[1] if args[0] == 1 else args[2]
    if op == T.OP_CONCAT:
        low_width = node.args[1].width
        return (args[0] << low_width) | args[1]
    if op == T.OP_EXTRACT:
        high, low = node.params
        return (args[0] >> low) & mask(high - low + 1)
    if op == T.OP_SHL:
        amt = args[1]
        return 0 if amt >= w else (args[0] << amt) & mask(w)
    if op == T.OP_LSHR:
        amt = args[1]
        return 0 if amt >= w else args[0] >> amt
    if op == T.OP_ASHR:
        aw = node.args[0].width
        amt = min(args[1], aw - 1)
        return (to_signed(args[0], aw) >> amt) & mask(w)
    raise SmtError(f"cannot evaluate operator {op!r}")


def substitute(term: BV, mapping: Mapping[BV, BV]) -> BV:
    """Return ``term`` with every occurrence of a key replaced by its value.

    Keys are matched by term identity (hash-consing makes this equivalent to
    structural matching).  The rewrite is applied bottom-up, so replaced
    sub-terms are not re-visited.
    """
    cache: dict[int, BV] = {}
    for key, value in mapping.items():
        if key.width != value.width:
            raise SmtError(
                f"substitution width mismatch: {key.width} vs {value.width}"
            )
        cache[key.tid] = value

    stack: list[tuple[BV, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node.tid in cache:
            continue
        if not node.args:
            cache[node.tid] = node
            continue
        if not expanded:
            stack.append((node, True))
            for arg in node.args:
                if arg.tid not in cache:
                    stack.append((arg, False))
            continue
        new_args = [cache[a.tid] for a in node.args]
        if all(new is old for new, old in zip(new_args, node.args)):
            cache[node.tid] = node
        else:
            cache[node.tid] = _rebuild(node, new_args)
    return cache[term.tid]


def _rebuild(node: BV, args: list[BV]) -> BV:
    """Re-apply the smart constructor for ``node`` with new children."""
    op = node.op
    if op == T.OP_NOT:
        return T.bv_not(args[0])
    if op == T.OP_AND:
        return T.bv_and(args[0], args[1])
    if op == T.OP_OR:
        return T.bv_or(args[0], args[1])
    if op == T.OP_XOR:
        return T.bv_xor(args[0], args[1])
    if op == T.OP_ADD:
        return T.bv_add(args[0], args[1])
    if op == T.OP_SUB:
        return T.bv_sub(args[0], args[1])
    if op == T.OP_MUL:
        return T.bv_mul(args[0], args[1])
    if op == T.OP_EQ:
        return T.bv_eq(args[0], args[1])
    if op == T.OP_ULT:
        return T.bv_ult(args[0], args[1])
    if op == T.OP_SLT:
        return T.bv_slt(args[0], args[1])
    if op == T.OP_ITE:
        return T.bv_ite(args[0], args[1], args[2])
    if op == T.OP_CONCAT:
        return T.bv_concat(args[0], args[1])
    if op == T.OP_EXTRACT:
        high, low = node.params
        return T.bv_extract(args[0], high, low)
    if op == T.OP_SHL:
        return T.bv_shl(args[0], args[1])
    if op == T.OP_LSHR:
        return T.bv_lshr(args[0], args[1])
    if op == T.OP_ASHR:
        return T.bv_ashr(args[0], args[1])
    raise SmtError(f"cannot rebuild operator {op!r}")


def free_variables(term: BV) -> set[BV]:
    """Collect every variable occurring in ``term``."""
    seen: set[int] = set()
    variables: set[BV] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if node.tid in seen:
            continue
        seen.add(node.tid)
        if node.is_var:
            variables.add(node)
        stack.extend(node.args)
    return variables
