"""A small QF_BV solver facade: assert terms, check, read back models.

``BVSolver`` mirrors the slice of an SMT solver API that the CEGIS engine
and the BMC engine need: assert width-1 terms, check satisfiability (with
optional width-1 assumptions), and query integer values of arbitrary terms
in the found model.

Since the ``repro.solve`` refactor the facade is *incremental*: it owns a
persistent :class:`~repro.solve.context.SolverContext`, so repeated
``check`` calls reuse the bit-blasted encoding and the backend's learned
clauses instead of re-blasting the whole assertion set.  Free-variable sets
are cached per assertion as they are added, and ``push``/``pop`` expose the
context's assumption-scoped retractable assertions.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import SmtError
from repro.solve.backend import SatBackend, is_default_backend
from repro.solve.context import BVResult, SolverContext
from repro.smt.terms import BV

__all__ = ["BVResult", "BVSolver", "check_sat", "check_valid"]


class BVSolver:
    """Accumulate width-1 assertions and solve them incrementally.

    The solver is a thin facade over :class:`~repro.solve.context.SolverContext`:
    one bit-blaster and one SAT backend live as long as the solver, every
    assertion is blasted exactly once, and learned clauses survive across
    ``check`` calls.  Pass ``backend`` to select a different SAT backend, or
    ``context`` to share an existing context with other components.
    """

    def __init__(
        self,
        backend: "str | SatBackend" = "cdcl",
        context: Optional[SolverContext] = None,
        opt_level: "int | None" = None,
    ) -> None:
        if context is not None and not is_default_backend(backend):
            raise SmtError(
                "pass either a backend spec or an explicit context, not both: "
                "a supplied context already carries its own backend"
            )
        if context is not None and opt_level is not None:
            raise SmtError(
                "pass either an opt_level or an explicit context, not both: "
                "a supplied context already carries its pipeline config"
            )
        self._ctx = (
            context
            if context is not None
            else SolverContext(backend=backend, opt_level=opt_level)
        )

    @property
    def context(self) -> SolverContext:
        """The underlying persistent solver context."""
        return self._ctx

    @property
    def stats(self):
        """Cumulative backend counters over the solver's lifetime."""
        return self._ctx.stats

    def add(self, term: BV) -> None:
        """Assert a width-1 term."""
        self._ctx.add(term)

    def add_all(self, terms: Iterable[BV]) -> None:
        for term in terms:
            self._ctx.add(term)

    @property
    def assertions(self) -> list[BV]:
        return self._ctx.assertions

    def push(self) -> int:
        """Open a retractable assertion scope."""
        return self._ctx.push()

    def pop(self) -> None:
        """Retract the innermost assertion scope."""
        self._ctx.pop()

    def check(
        self,
        assumptions: Iterable[BV] = (),
        conflict_budget: Optional[int] = None,
    ) -> BVResult:
        """Check satisfiability of the conjunction of assertions and assumptions."""
        return self._ctx.check(
            assumptions=assumptions, conflict_budget=conflict_budget
        )


def check_sat(terms: Iterable[BV]) -> BVResult:
    """One-shot satisfiability check of a collection of width-1 terms."""
    solver = BVSolver()
    solver.add_all(terms)
    return solver.check()


def check_valid(term: BV) -> bool:
    """Return True when a width-1 term holds for every variable assignment."""
    from repro.smt.terms import bv_not

    solver = BVSolver()
    solver.add(bv_not(term))
    return not solver.check().satisfiable
