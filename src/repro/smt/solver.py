"""A small QF_BV solver facade: assert terms, check, read back models.

``BVSolver`` mirrors the slice of an SMT solver API that the CEGIS engine
and the BMC engine need: assert width-1 terms, check satisfiability (with
optional width-1 assumptions), and query integer values of arbitrary terms
in the found model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import SmtError
from repro.sat.solver import SatSolver
from repro.smt.bitblast import BitBlaster
from repro.smt.evaluator import evaluate, free_variables
from repro.smt.terms import BV
from repro.utils.bitops import from_bits


@dataclass
class BVResult:
    """Outcome of a bit-vector satisfiability check."""

    satisfiable: Optional[bool]
    model: dict[str, int] = field(default_factory=dict)
    num_clauses: int = 0
    num_vars: int = 0

    def __bool__(self) -> bool:
        return bool(self.satisfiable)

    def value_of(self, term: BV) -> int:
        """Evaluate ``term`` under the model (unassigned variables read as 0)."""
        if not self.satisfiable:
            raise SmtError("no model available: formula not satisfiable")
        assignment = dict(self.model)
        for var in free_variables(term):
            assignment.setdefault(var.name or "", 0)
        return evaluate(term, assignment)


class BVSolver:
    """Accumulate width-1 assertions and solve them by bit-blasting.

    The solver is not incremental at the SAT level: every ``check`` call
    re-blasts the current assertion set.  Word-level simplification plus the
    modest problem sizes used in the experiments keep this affordable, and it
    sidesteps the subtle invalidation issues a true incremental interface
    would bring.
    """

    def __init__(self) -> None:
        self._assertions: list[BV] = []

    def add(self, term: BV) -> None:
        """Assert a width-1 term."""
        if term.width != 1:
            raise SmtError(f"assertions must have width 1, got {term.width}")
        self._assertions.append(term)

    def add_all(self, terms: Iterable[BV]) -> None:
        for term in terms:
            self.add(term)

    @property
    def assertions(self) -> list[BV]:
        return list(self._assertions)

    def check(
        self,
        assumptions: Iterable[BV] = (),
        conflict_budget: Optional[int] = None,
    ) -> BVResult:
        """Check satisfiability of the conjunction of assertions and assumptions."""
        blaster = BitBlaster()
        for term in self._assertions:
            if term.is_const:
                if term.const_value() == 0:
                    return BVResult(False)
                continue
            blaster.assert_term(term)
        assumption_lits = []
        for term in assumptions:
            if term.is_const:
                if term.const_value() == 0:
                    return BVResult(False)
                continue
            assumption_lits.append(blaster.assumption_literal(term))

        solver = SatSolver(blaster.cnf)
        result = solver.solve(
            assumptions=assumption_lits, conflict_budget=conflict_budget
        )
        if result.satisfiable is None:
            return BVResult(None)
        if not result.satisfiable:
            return BVResult(
                False,
                num_clauses=len(blaster.cnf.clauses),
                num_vars=blaster.cnf.num_vars,
            )

        model: dict[str, int] = {}
        relevant = set()
        for term in self._assertions:
            relevant |= free_variables(term)
        for term in assumptions:
            relevant |= free_variables(term)
        for var in relevant:
            assert var.name is not None
            bits = blaster.variable_bits(var.name)
            if bits is None:
                model[var.name] = 0
                continue
            values = [1 if result.model.get(abs(b), False) == (b > 0) else 0 for b in bits]
            model[var.name] = from_bits(values)
        return BVResult(
            True,
            model=model,
            num_clauses=len(blaster.cnf.clauses),
            num_vars=blaster.cnf.num_vars,
        )


def check_sat(terms: Iterable[BV]) -> BVResult:
    """One-shot satisfiability check of a collection of width-1 terms."""
    solver = BVSolver()
    solver.add_all(terms)
    return solver.check()


def check_valid(term: BV) -> bool:
    """Return True when a width-1 term holds for every variable assignment."""
    from repro.smt.terms import bv_not

    solver = BVSolver()
    solver.add(bv_not(term))
    return not solver.check().satisfiable
