"""Word-level bit-vector terms, simplification, bit-blasting and solving.

This package is the stand-in for the SMT solver the paper's toolchain uses
(QF_BV queries from CEGIS, and the backend of the BMC engine).  It provides:

* :mod:`repro.smt.terms` — an immutable, hash-consed bit-vector term DSL
  with eager constant folding and algebraic simplification,
* :mod:`repro.smt.bitblast` — a Tseitin bit-blaster producing CNF for the
  CDCL solver in :mod:`repro.sat`,
* :mod:`repro.smt.solver` — a small ``BVSolver`` facade (assert / check /
  model) plus a concrete evaluator used for trace replay and testing.
"""

from repro.smt.terms import (
    BV,
    TermManager,
    bv_const,
    bv_var,
    bv_true,
    bv_false,
    bv_and,
    bv_or,
    bv_xor,
    bv_not,
    bv_add,
    bv_sub,
    bv_neg,
    bv_mul,
    bv_eq,
    bv_ne,
    bv_ult,
    bv_ule,
    bv_slt,
    bv_sle,
    bv_ite,
    bv_concat,
    bv_extract,
    bv_zext,
    bv_sext,
    bv_shl,
    bv_lshr,
    bv_ashr,
    bv_implies,
    bv_and_all,
    bv_or_all,
)
from repro.smt.evaluator import evaluate
from repro.smt.bitblast import BitBlaster
from repro.smt.solver import BVSolver, BVResult

__all__ = [
    "BV",
    "TermManager",
    "bv_const",
    "bv_var",
    "bv_true",
    "bv_false",
    "bv_and",
    "bv_or",
    "bv_xor",
    "bv_not",
    "bv_add",
    "bv_sub",
    "bv_neg",
    "bv_mul",
    "bv_eq",
    "bv_ne",
    "bv_ult",
    "bv_ule",
    "bv_slt",
    "bv_sle",
    "bv_ite",
    "bv_concat",
    "bv_extract",
    "bv_zext",
    "bv_sext",
    "bv_shl",
    "bv_lshr",
    "bv_ashr",
    "bv_implies",
    "bv_and_all",
    "bv_or_all",
    "evaluate",
    "BitBlaster",
    "BVSolver",
    "BVResult",
]
