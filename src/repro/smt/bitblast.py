"""Bit-blasting of bit-vector terms, either directly to CNF or via the AIG.

The blaster has two modes, selected by the
:class:`~repro.solve.pipeline.PipelineConfig` it is constructed with:

* **naive** (``opt_level=0``, the default for a bare ``BitBlaster()``) —
  classic Tseitin encoding: every gate immediately becomes a fresh DIMACS
  variable plus its clauses, with local structural gate caching.  Two
  reserved literals stand for the constants: a dedicated variable is forced
  true so ``TRUE`` is that variable and ``FALSE`` is its negation.
* **AIG** (``opt_level>=1``) — gates are built in a
  :class:`~repro.aig.AIG` (structural hashing, constant propagation,
  two-level rewrites, native XOR/ITE nodes) and only the cones of asserted
  or assumed terms are lowered to CNF on demand.  In this mode the literal
  lists returned by :meth:`blast` live in the AIG's literal space;
  :meth:`assert_term`, :meth:`assumption_literal` and
  :meth:`variable_bits` translate to CNF literals at the boundary.

In both modes all gate encoders first simplify against the constant
literals, which — combined with the word-level simplification done by the
smart constructors — keeps the CNF for the early BMC frames small.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SmtError
from repro.sat.cnf import CNF
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.utils.bitops import clog2

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.solve.pipeline import PipelineConfig

_GATE_AND = 0
_GATE_XOR = 1


class BitBlaster:
    """Translate :class:`~repro.smt.terms.BV` terms into CNF clauses."""

    def __init__(self, pipeline: "PipelineConfig | int | None" = 0) -> None:
        from repro.solve.pipeline import PipelineConfig

        self.pipeline = PipelineConfig.resolve(pipeline)
        self._use_aig = self.pipeline.use_aig
        self.cnf = CNF()
        self._const_var = self.cnf.new_var()
        self.cnf.add_clause([self._const_var])
        if self._use_aig:
            from repro.aig import AIG, CnfLowering

            self.aig: "AIG | None" = AIG()
            self._lower = CnfLowering(self.aig, self.cnf, self._const_var)
            self.TRUE = self.aig.TRUE
            self.FALSE = self.aig.FALSE
        else:
            self.aig = None
            self._lower = None
            self.TRUE = self._const_var
            self.FALSE = -self._const_var
        # CNF vars of named-variable bits not yet reported through
        # :meth:`drain_protected_vars` (naive mode; the AIG mode tracks
        # lazily lowered bits inside the lowering instead).
        self._protected_pending: list[int] = []
        # term id -> list of literals (LSB first)
        self._cache: dict[int, list[int]] = {}
        # variable name -> list of literals
        self._var_bits: dict[str, list[int]] = {}
        # structural hashing of gates: (kind, a, b) -> output literal, with
        # operands canonically ordered.  Distinct terms that bit-blast to the
        # same gate structure (repeated pipeline logic across BMC frames,
        # re-instantiated CEGIS examples) then share literals and clauses.
        # (The AIG mode hashes inside the graph instead.)
        self._gate_cache: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------ primitives

    def _new_lit(self) -> int:
        if self._use_aig:
            return self.aig.add_input()
        return self.cnf.new_var()

    def _not(self, a: int) -> int:
        return -a

    def _and(self, a: int, b: int) -> int:
        if self._use_aig:
            return self.aig.and_(a, b)
        if a == self.FALSE or b == self.FALSE:
            return self.FALSE
        if a == self.TRUE:
            return b
        if b == self.TRUE:
            return a
        if a == b:
            return a
        if a == -b:
            return self.FALSE
        if a > b:
            a, b = b, a
        key = (_GATE_AND, a, b)
        out = self._gate_cache.get(key)
        if out is not None:
            return out
        out = self._new_lit()
        self.cnf.add_clause([-out, a])
        self.cnf.add_clause([-out, b])
        self.cnf.add_clause([out, -a, -b])
        self._gate_cache[key] = out
        return out

    def _or(self, a: int, b: int) -> int:
        return -self._and(-a, -b)

    def _xor(self, a: int, b: int) -> int:
        if self._use_aig:
            return self.aig.xor_(a, b)
        if a == self.FALSE:
            return b
        if b == self.FALSE:
            return a
        if a == self.TRUE:
            return -b
        if b == self.TRUE:
            return -a
        if a == b:
            return self.FALSE
        if a == -b:
            return self.TRUE
        # xor is symmetric under operand order and pushes negations to the
        # output (a ^ b == -(−a ^ b)), so normalise to positive, ordered
        # operands and track the sign of the result.
        sign = 1
        if a < 0:
            a, sign = -a, -sign
        if b < 0:
            b, sign = -b, -sign
        if a > b:
            a, b = b, a
        key = (_GATE_XOR, a, b)
        out = self._gate_cache.get(key)
        if out is None:
            out = self._new_lit()
            self.cnf.add_clause([-out, a, b])
            self.cnf.add_clause([-out, -a, -b])
            self.cnf.add_clause([out, -a, b])
            self.cnf.add_clause([out, a, -b])
            self._gate_cache[key] = out
        return sign * out

    def _ite(self, cond: int, then_lit: int, else_lit: int) -> int:
        if self._use_aig:
            # A native mux node lowers to 4 clauses; the or-of-ands expansion
            # below costs 3 auxiliary variables and 9 clauses.
            return self.aig.ite(cond, then_lit, else_lit)
        if cond == self.TRUE:
            return then_lit
        if cond == self.FALSE:
            return else_lit
        if then_lit == else_lit:
            return then_lit
        return self._or(self._and(cond, then_lit), self._and(-cond, else_lit))

    def _full_adder(self, a: int, b: int, carry: int) -> tuple[int, int]:
        total = self._xor(self._xor(a, b), carry)
        carry_out = self._or(
            self._and(a, b), self._or(self._and(a, carry), self._and(b, carry))
        )
        return total, carry_out

    # ----------------------------------------------------------- word blocks

    def _add_bits(self, a: list[int], b: list[int], carry_in: int) -> list[int]:
        out: list[int] = []
        carry = carry_in
        for abit, bbit in zip(a, b):
            s, carry = self._full_adder(abit, bbit, carry)
            out.append(s)
        return out

    def _sub_bits(self, a: list[int], b: list[int]) -> list[int]:
        return self._add_bits(a, [-bit for bit in b], self.TRUE)

    def _mul_bits(self, a: list[int], b: list[int]) -> list[int]:
        width = len(a)
        acc = [self.FALSE] * width
        for i in range(width):
            partial = [self.FALSE] * i + [
                self._and(a[j], b[i]) for j in range(width - i)
            ]
            acc = self._add_bits(acc, partial, self.FALSE)
        return acc

    def _ult_bits(self, a: list[int], b: list[int]) -> int:
        """Unsigned a < b, computed MSB-down."""
        result = self.FALSE
        equal_so_far = self.TRUE
        for abit, bbit in zip(reversed(a), reversed(b)):
            lt_here = self._and(-abit, bbit)
            result = self._or(result, self._and(equal_so_far, lt_here))
            equal_so_far = self._and(equal_so_far, -self._xor(abit, bbit))
        return result

    def _eq_bits(self, a: list[int], b: list[int]) -> int:
        result = self.TRUE
        for abit, bbit in zip(a, b):
            result = self._and(result, -self._xor(abit, bbit))
        return result

    def _shift_bits(self, a: list[int], amount: list[int], kind: str) -> list[int]:
        """Barrel shifter; ``kind`` is one of ``shl``, ``lshr``, ``ashr``."""
        width = len(a)
        stages = clog2(width) if width > 1 else 1
        fill = a[-1] if kind == "ashr" else self.FALSE
        current = list(a)
        for stage in range(stages):
            shift = 1 << stage
            if stage < len(amount):
                sel = amount[stage]
            else:
                sel = self.FALSE
            shifted = []
            for i in range(width):
                if kind == "shl":
                    src = current[i - shift] if i - shift >= 0 else self.FALSE
                else:
                    src = current[i + shift] if i + shift < width else fill
                shifted.append(self._ite(sel, src, current[i]))
            current = shifted
        # If any amount bit beyond the barrel range is set, the result is the
        # overflow fill value (zero, or sign-fill for ashr).
        overflow = self.FALSE
        for i in range(stages, len(amount)):
            overflow = self._or(overflow, amount[i])
        # Shifting by >= width with in-range barrel bits: amounts up to
        # 2**stages - 1 are representable; when width is not a power of two
        # amounts in [width, 2**stages) must also produce the fill value.
        if width != (1 << stages):
            width_bits = [
                self.TRUE if (width >> i) & 1 else self.FALSE
                for i in range(len(amount))
            ]
            ge_width = -self._ult_bits(amount, width_bits)
            overflow = self._or(overflow, ge_width)
        return [self._ite(overflow, fill, bit) for bit in current]

    # ------------------------------------------------------------------ main

    def blast(self, term: BV) -> list[int]:
        """Return the literal list (LSB first) encoding ``term``."""
        stack: list[tuple[BV, bool]] = [(term, False)]
        cache = self._cache
        while stack:
            node, expanded = stack.pop()
            if node.tid in cache:
                continue
            if node.op in (T.OP_CONST, T.OP_VAR):
                cache[node.tid] = self._blast_leaf(node)
                continue
            if not expanded:
                stack.append((node, True))
                for arg in node.args:
                    if arg.tid not in cache:
                        stack.append((arg, False))
                continue
            args = [cache[a.tid] for a in node.args]
            cache[node.tid] = self._blast_node(node, args)
        return cache[term.tid]

    def _blast_leaf(self, node: BV) -> list[int]:
        if node.op == T.OP_CONST:
            value = node.const_value()
            return [
                self.TRUE if (value >> i) & 1 else self.FALSE
                for i in range(node.width)
            ]
        assert node.name is not None
        bits = self._var_bits.get(node.name)
        if bits is None:
            bits = [self._new_lit() for _ in range(node.width)]
            self._var_bits[node.name] = bits
            if self._use_aig:
                self._lower.watched.update(bits)
            else:
                self._protected_pending.extend(bits)
        return bits

    def _blast_node(self, node: BV, args: list[list[int]]) -> list[int]:
        op = node.op
        if op == T.OP_NOT:
            return [-b for b in args[0]]
        if op == T.OP_AND:
            return [self._and(a, b) for a, b in zip(args[0], args[1])]
        if op == T.OP_OR:
            return [self._or(a, b) for a, b in zip(args[0], args[1])]
        if op == T.OP_XOR:
            return [self._xor(a, b) for a, b in zip(args[0], args[1])]
        if op == T.OP_ADD:
            return self._add_bits(args[0], args[1], self.FALSE)
        if op == T.OP_SUB:
            return self._sub_bits(args[0], args[1])
        if op == T.OP_MUL:
            return self._mul_bits(args[0], args[1])
        if op == T.OP_EQ:
            return [self._eq_bits(args[0], args[1])]
        if op == T.OP_ULT:
            return [self._ult_bits(args[0], args[1])]
        if op == T.OP_SLT:
            a, b = args[0], args[1]
            # signed compare: flip the sign bits and compare unsigned
            a_flipped = a[:-1] + [-a[-1]]
            b_flipped = b[:-1] + [-b[-1]]
            return [self._ult_bits(a_flipped, b_flipped)]
        if op == T.OP_ITE:
            cond = args[0][0]
            return [
                self._ite(cond, t, e) for t, e in zip(args[1], args[2])
            ]
        if op == T.OP_CONCAT:
            return args[1] + args[0]
        if op == T.OP_EXTRACT:
            high, low = node.params
            return args[0][low : high + 1]
        if op == T.OP_SHL:
            return self._shift_bits(args[0], args[1], "shl")
        if op == T.OP_LSHR:
            return self._shift_bits(args[0], args[1], "lshr")
        if op == T.OP_ASHR:
            return self._shift_bits(args[0], args[1], "ashr")
        raise SmtError(f"cannot bit-blast operator {op!r}")

    # -------------------------------------------------------------- frontend

    def materialize(self, lit: int) -> int:
        """Translate a blast-domain literal into a CNF literal.

        In naive mode this is the identity; in AIG mode the literal's cone
        is lowered into the CNF on first use.
        """
        if self._use_aig:
            return self._lower.materialize(lit)
        return lit

    def assert_term(self, term: BV) -> None:
        """Assert that a width-1 term is true."""
        if term.width != 1:
            raise SmtError(f"assertions must have width 1, got {term.width}")
        bits = self.blast(term)
        self.cnf.add_clause([self.materialize(bits[0])])

    def assumption_literal(self, term: BV) -> int:
        """Bit-blast a width-1 term and return its CNF literal, unasserted."""
        if term.width != 1:
            raise SmtError(f"assumptions must have width 1, got {term.width}")
        return self.materialize(self.blast(term)[0])

    def variable_bits(self, name: str) -> list[int] | None:
        """CNF literals backing variable ``name`` (``None`` if unused)."""
        bits = self._var_bits.get(name)
        if bits is None or not self._use_aig:
            return bits
        return [self._lower.materialize(bit) for bit in bits]

    def drain_protected_vars(self) -> list[int]:
        """CNF variables of named-variable bits that reached the CNF since
        the last drain.

        The preprocessor must never eliminate these (model extraction reads
        them); bits whose cone was never lowered have no CNF presence yet
        and need no protection — they surface in the drain that follows
        their lowering.  Each variable is reported exactly once.
        """
        if self._use_aig:
            out = self._lower.watched_lowered
            self._lower.watched_lowered = []
        else:
            out = self._protected_pending
            self._protected_pending = []
        return out
