"""Immutable, hash-consed bit-vector terms with eager simplification.

Every term is a :class:`BV` node with an operator, a width and children.
Terms are built through module-level smart constructors (``bv_add``,
``bv_ite``, ...) that perform constant folding and a handful of algebraic
rewrites at construction time.  Eager simplification matters a lot here:
the BMC unroller starts from a fully concrete initial state, so large parts
of the first frames collapse into constants before ever reaching the
bit-blaster.

Booleans are represented as width-1 bit-vectors (``1`` = true), which keeps
the type system to a single sort and mirrors how the downstream bit-blaster
treats them anyway.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import SmtError
from repro.utils.bitops import mask, to_signed

# Operator tags.  Kept as plain strings for cheap hashing and readable reprs.
OP_CONST = "const"
OP_VAR = "var"
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_XOR = "xor"
OP_ADD = "add"
OP_SUB = "sub"
OP_NEG = "neg"
OP_MUL = "mul"
OP_EQ = "eq"
OP_ULT = "ult"
OP_SLT = "slt"
OP_ITE = "ite"
OP_CONCAT = "concat"
OP_EXTRACT = "extract"
OP_SHL = "shl"
OP_LSHR = "lshr"
OP_ASHR = "ashr"

_ALL_OPS = {
    OP_CONST,
    OP_VAR,
    OP_NOT,
    OP_AND,
    OP_OR,
    OP_XOR,
    OP_ADD,
    OP_SUB,
    OP_NEG,
    OP_MUL,
    OP_EQ,
    OP_ULT,
    OP_SLT,
    OP_ITE,
    OP_CONCAT,
    OP_EXTRACT,
    OP_SHL,
    OP_LSHR,
    OP_ASHR,
}


class BV:
    """A single hash-consed bit-vector term.

    Instances should never be constructed directly; use the smart
    constructors in this module (or the operator overloads, which forward to
    them).
    """

    __slots__ = ("op", "width", "args", "value", "name", "params", "_hash", "tid")

    def __init__(
        self,
        op: str,
        width: int,
        args: tuple["BV", ...] = (),
        value: Optional[int] = None,
        name: Optional[str] = None,
        params: tuple[int, ...] = (),
        tid: int = -1,
    ):
        self.op = op
        self.width = width
        self.args = args
        self.value = value
        self.name = name
        self.params = params
        self.tid = tid
        self._hash = hash((op, width, tuple(a.tid for a in args), value, name, params))

    # Identity-based equality is safe because of hash-consing; `==` is
    # reserved for building equality *terms*, so real comparisons go through
    # `is` / `same_term`.
    def same_term(self, other: "BV") -> bool:
        """Structural equality (terms are hash-consed, so identity suffices)."""
        return self is other

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------ predicates

    @property
    def is_const(self) -> bool:
        return self.op == OP_CONST

    @property
    def is_var(self) -> bool:
        return self.op == OP_VAR

    def const_value(self) -> int:
        if not self.is_const:
            raise SmtError(f"term {self!r} is not a constant")
        assert self.value is not None
        return self.value

    # ------------------------------------------------------------- operators

    def __add__(self, other: "BV | int") -> "BV":
        return bv_add(self, _coerce(other, self.width))

    def __sub__(self, other: "BV | int") -> "BV":
        return bv_sub(self, _coerce(other, self.width))

    def __mul__(self, other: "BV | int") -> "BV":
        return bv_mul(self, _coerce(other, self.width))

    def __and__(self, other: "BV | int") -> "BV":
        return bv_and(self, _coerce(other, self.width))

    def __or__(self, other: "BV | int") -> "BV":
        return bv_or(self, _coerce(other, self.width))

    def __xor__(self, other: "BV | int") -> "BV":
        return bv_xor(self, _coerce(other, self.width))

    def __invert__(self) -> "BV":
        return bv_not(self)

    def __neg__(self) -> "BV":
        return bv_neg(self)

    def __lshift__(self, other: "BV | int") -> "BV":
        return bv_shl(self, _coerce(other, self.width))

    def __rshift__(self, other: "BV | int") -> "BV":
        return bv_lshr(self, _coerce(other, self.width))

    def eq(self, other: "BV | int") -> "BV":
        """Equality as a width-1 term."""
        return bv_eq(self, _coerce(other, self.width))

    def ne(self, other: "BV | int") -> "BV":
        """Disequality as a width-1 term."""
        return bv_ne(self, _coerce(other, self.width))

    def ult(self, other: "BV | int") -> "BV":
        return bv_ult(self, _coerce(other, self.width))

    def ule(self, other: "BV | int") -> "BV":
        return bv_ule(self, _coerce(other, self.width))

    def slt(self, other: "BV | int") -> "BV":
        return bv_slt(self, _coerce(other, self.width))

    def sle(self, other: "BV | int") -> "BV":
        return bv_sle(self, _coerce(other, self.width))

    def ite(self, then_term: "BV", else_term: "BV") -> "BV":
        """Use this width-1 term as the condition of an if-then-else."""
        return bv_ite(self, then_term, else_term)

    def extract(self, high: int, low: int) -> "BV":
        return bv_extract(self, high, low)

    def zext(self, to_width: int) -> "BV":
        return bv_zext(self, to_width)

    def sext(self, to_width: int) -> "BV":
        return bv_sext(self, to_width)

    def implies(self, other: "BV") -> "BV":
        return bv_implies(self, other)

    # ----------------------------------------------------------------- repr

    def __repr__(self) -> str:
        if self.op == OP_CONST:
            return f"BV({self.value:#x}[{self.width}])"
        if self.op == OP_VAR:
            return f"BV({self.name}[{self.width}])"
        if self.op == OP_EXTRACT:
            return f"BV(extract[{self.params[0]}:{self.params[1]}] {self.args[0]!r})"
        inner = ", ".join(repr(a) for a in self.args)
        return f"BV({self.op}[{self.width}] {inner})"


class TermManager:
    """Hash-consing table for :class:`BV` terms.

    A single default manager is used by the module-level constructors; tests
    may create separate managers to verify structural sharing in isolation.
    """

    def __init__(self) -> None:
        self._table: dict[tuple, BV] = {}
        self._next_tid = 0
        self._var_names: dict[str, BV] = {}

    def make(
        self,
        op: str,
        width: int,
        args: tuple[BV, ...] = (),
        value: Optional[int] = None,
        name: Optional[str] = None,
        params: tuple[int, ...] = (),
    ) -> BV:
        if op not in _ALL_OPS:
            raise SmtError(f"unknown operator {op!r}")
        if width <= 0:
            raise SmtError(f"bit-vector width must be positive, got {width}")
        key = (op, width, tuple(a.tid for a in args), value, name, params)
        hit = self._table.get(key)
        if hit is not None:
            return hit
        term = BV(op, width, args, value=value, name=name, params=params, tid=self._next_tid)
        self._next_tid += 1
        self._table[key] = term
        return term

    def var(self, name: str, width: int) -> BV:
        """Return the variable ``name``; width clashes are an error."""
        existing = self._var_names.get(name)
        if existing is not None:
            if existing.width != width:
                raise SmtError(
                    f"variable {name!r} already exists with width {existing.width}"
                )
            return existing
        term = self.make(OP_VAR, width, name=name)
        self._var_names[name] = term
        return term

    def num_terms(self) -> int:
        return len(self._table)


_DEFAULT_MANAGER = TermManager()


def default_manager() -> TermManager:
    """The process-wide term manager used by the smart constructors."""
    return _DEFAULT_MANAGER


def _coerce(value: "BV | int", width: int) -> BV:
    if isinstance(value, BV):
        return value
    return bv_const(value, width)


def _check_same_width(a: BV, b: BV, op: str) -> None:
    if a.width != b.width:
        raise SmtError(f"{op}: width mismatch {a.width} vs {b.width}")


# --------------------------------------------------------------------------
# Leaf constructors
# --------------------------------------------------------------------------


def bv_const(value: int, width: int, mgr: TermManager | None = None) -> BV:
    """A constant of the given width; ``value`` is truncated to ``width`` bits."""
    mgr = mgr or _DEFAULT_MANAGER
    return mgr.make(OP_CONST, width, value=value & mask(width))


def bv_var(name: str, width: int, mgr: TermManager | None = None) -> BV:
    """A free bit-vector variable (hash-consed by name)."""
    mgr = mgr or _DEFAULT_MANAGER
    return mgr.var(name, width)


_FRESH_COUNTER = [0]


def fresh_var(prefix: str, width: int, mgr: TermManager | None = None) -> BV:
    """A variable with a globally unique name derived from ``prefix``.

    Used by layers (unroller, CEGIS encoder) that need throw-away symbols
    and must not collide with user-chosen names or with each other.
    """
    _FRESH_COUNTER[0] += 1
    return bv_var(f"{prefix}!{_FRESH_COUNTER[0]}", width, mgr)


def bv_true(mgr: TermManager | None = None) -> BV:
    return bv_const(1, 1, mgr)


def bv_false(mgr: TermManager | None = None) -> BV:
    return bv_const(0, 1, mgr)


# --------------------------------------------------------------------------
# Bitwise operations
# --------------------------------------------------------------------------


def bv_not(a: BV) -> BV:
    if a.is_const:
        return bv_const(~a.const_value(), a.width)
    if a.op == OP_NOT:
        return a.args[0]
    return _DEFAULT_MANAGER.make(OP_NOT, a.width, (a,))


def bv_and(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "and")
    if a.is_const and b.is_const:
        return bv_const(a.const_value() & b.const_value(), a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.const_value() == 0:
                return bv_const(0, a.width)
            if x.const_value() == mask(a.width):
                return y
    if a is b:
        return a
    return _DEFAULT_MANAGER.make(OP_AND, a.width, _ordered(a, b))


def bv_or(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "or")
    if a.is_const and b.is_const:
        return bv_const(a.const_value() | b.const_value(), a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.const_value() == 0:
                return y
            if x.const_value() == mask(a.width):
                return bv_const(mask(a.width), a.width)
    if a is b:
        return a
    return _DEFAULT_MANAGER.make(OP_OR, a.width, _ordered(a, b))


def bv_xor(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "xor")
    if a.is_const and b.is_const:
        return bv_const(a.const_value() ^ b.const_value(), a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.const_value() == 0:
                return y
            if x.const_value() == mask(a.width):
                return bv_not(y)
    if a is b:
        return bv_const(0, a.width)
    return _DEFAULT_MANAGER.make(OP_XOR, a.width, _ordered(a, b))


def _ordered(a: BV, b: BV) -> tuple[BV, BV]:
    """Canonical argument order for commutative operators (by term id)."""
    return (a, b) if a.tid <= b.tid else (b, a)


# --------------------------------------------------------------------------
# Arithmetic
# --------------------------------------------------------------------------


def bv_add(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "add")
    if a.is_const and b.is_const:
        return bv_const(a.const_value() + b.const_value(), a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.const_value() == 0:
            return y
    return _DEFAULT_MANAGER.make(OP_ADD, a.width, _ordered(a, b))


def bv_sub(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "sub")
    if a.is_const and b.is_const:
        return bv_const(a.const_value() - b.const_value(), a.width)
    if b.is_const and b.const_value() == 0:
        return a
    if a is b:
        return bv_const(0, a.width)
    return _DEFAULT_MANAGER.make(OP_SUB, a.width, (a, b))


def bv_neg(a: BV) -> BV:
    if a.is_const:
        return bv_const(-a.const_value(), a.width)
    return bv_sub(bv_const(0, a.width), a)


def bv_mul(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "mul")
    if a.is_const and b.is_const:
        return bv_const(a.const_value() * b.const_value(), a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.const_value() == 0:
                return bv_const(0, a.width)
            if x.const_value() == 1:
                return y
    return _DEFAULT_MANAGER.make(OP_MUL, a.width, _ordered(a, b))


# --------------------------------------------------------------------------
# Comparisons (width-1 results)
# --------------------------------------------------------------------------


def bv_eq(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "eq")
    if a is b:
        return bv_true()
    if a.is_const and b.is_const:
        return bv_true() if a.const_value() == b.const_value() else bv_false()
    return _DEFAULT_MANAGER.make(OP_EQ, 1, _ordered(a, b))


def bv_ne(a: BV, b: BV) -> BV:
    return bv_not(bv_eq(a, b))


def bv_ult(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "ult")
    if a.is_const and b.is_const:
        return bv_true() if a.const_value() < b.const_value() else bv_false()
    if a is b:
        return bv_false()
    return _DEFAULT_MANAGER.make(OP_ULT, 1, (a, b))


def bv_ule(a: BV, b: BV) -> BV:
    return bv_not(bv_ult(b, a))


def bv_slt(a: BV, b: BV) -> BV:
    _check_same_width(a, b, "slt")
    if a.is_const and b.is_const:
        lhs = to_signed(a.const_value(), a.width)
        rhs = to_signed(b.const_value(), b.width)
        return bv_true() if lhs < rhs else bv_false()
    if a is b:
        return bv_false()
    return _DEFAULT_MANAGER.make(OP_SLT, 1, (a, b))


def bv_sle(a: BV, b: BV) -> BV:
    return bv_not(bv_slt(b, a))


# --------------------------------------------------------------------------
# Structural operations
# --------------------------------------------------------------------------


def bv_ite(cond: BV, then_term: BV, else_term: BV) -> BV:
    if cond.width != 1:
        raise SmtError(f"ite condition must have width 1, got {cond.width}")
    _check_same_width(then_term, else_term, "ite")
    if cond.is_const:
        return then_term if cond.const_value() == 1 else else_term
    if then_term is else_term:
        return then_term
    # Boolean-valued ite over constants collapses to cond / not(cond).
    if then_term.width == 1 and then_term.is_const and else_term.is_const:
        if then_term.const_value() == 1 and else_term.const_value() == 0:
            return cond
        if then_term.const_value() == 0 and else_term.const_value() == 1:
            return bv_not(cond)
    return _DEFAULT_MANAGER.make(OP_ITE, then_term.width, (cond, then_term, else_term))


def bv_concat(high: BV, low: BV) -> BV:
    """Concatenate ``high`` above ``low`` (result width is the sum)."""
    if high.is_const and low.is_const:
        return bv_const(
            (high.const_value() << low.width) | low.const_value(),
            high.width + low.width,
        )
    return _DEFAULT_MANAGER.make(OP_CONCAT, high.width + low.width, (high, low))


def bv_extract(a: BV, high: int, low: int) -> BV:
    if not (0 <= low <= high < a.width):
        raise SmtError(
            f"extract [{high}:{low}] out of range for width {a.width}"
        )
    if a.is_const:
        return bv_const(a.const_value() >> low, high - low + 1)
    if low == 0 and high == a.width - 1:
        return a
    if a.op == OP_EXTRACT:
        inner_low = a.params[1]
        return bv_extract(a.args[0], inner_low + high, inner_low + low)
    return _DEFAULT_MANAGER.make(OP_EXTRACT, high - low + 1, (a,), params=(high, low))


def bv_zext(a: BV, to_width: int) -> BV:
    if to_width < a.width:
        raise SmtError(f"cannot zero-extend width {a.width} to {to_width}")
    if to_width == a.width:
        return a
    if a.is_const:
        return bv_const(a.const_value(), to_width)
    return bv_concat(bv_const(0, to_width - a.width), a)


def bv_sext(a: BV, to_width: int) -> BV:
    if to_width < a.width:
        raise SmtError(f"cannot sign-extend width {a.width} to {to_width}")
    if to_width == a.width:
        return a
    if a.is_const:
        extended = to_signed(a.const_value(), a.width)
        return bv_const(extended, to_width)
    sign = bv_extract(a, a.width - 1, a.width - 1)
    ext = bv_ite(
        sign.eq(bv_const(1, 1)),
        bv_const(mask(to_width - a.width), to_width - a.width),
        bv_const(0, to_width - a.width),
    )
    return bv_concat(ext, a)


# --------------------------------------------------------------------------
# Shifts (shift amount is a same-width term; constant amounts fold)
# --------------------------------------------------------------------------


def bv_shl(a: BV, amount: BV) -> BV:
    _check_same_width(a, amount, "shl")
    if a.is_const and amount.is_const:
        amt = amount.const_value()
        if amt >= a.width:
            return bv_const(0, a.width)
        return bv_const(a.const_value() << amt, a.width)
    if amount.is_const and amount.const_value() == 0:
        return a
    return _DEFAULT_MANAGER.make(OP_SHL, a.width, (a, amount))


def bv_lshr(a: BV, amount: BV) -> BV:
    _check_same_width(a, amount, "lshr")
    if a.is_const and amount.is_const:
        amt = amount.const_value()
        if amt >= a.width:
            return bv_const(0, a.width)
        return bv_const(a.const_value() >> amt, a.width)
    if amount.is_const and amount.const_value() == 0:
        return a
    return _DEFAULT_MANAGER.make(OP_LSHR, a.width, (a, amount))


def bv_ashr(a: BV, amount: BV) -> BV:
    _check_same_width(a, amount, "ashr")
    if a.is_const and amount.is_const:
        amt = min(amount.const_value(), a.width - 1)
        return bv_const(to_signed(a.const_value(), a.width) >> amt, a.width)
    if amount.is_const and amount.const_value() == 0:
        return a
    return _DEFAULT_MANAGER.make(OP_ASHR, a.width, (a, amount))


# --------------------------------------------------------------------------
# Boolean convenience helpers (width-1 terms)
# --------------------------------------------------------------------------


def bv_implies(a: BV, b: BV) -> BV:
    if a.width != 1 or b.width != 1:
        raise SmtError("implies expects width-1 operands")
    return bv_or(bv_not(a), b)


def bv_and_all(terms: Iterable[BV]) -> BV:
    """Conjunction of width-1 terms (true for the empty sequence)."""
    result = bv_true()
    for term in terms:
        result = bv_and(result, term)
    return result


def bv_or_all(terms: Iterable[BV]) -> BV:
    """Disjunction of width-1 terms (false for the empty sequence)."""
    result = bv_false()
    for term in terms:
        result = bv_or(result, term)
    return result


def bv_distinct(terms: Sequence[BV]) -> BV:
    """Pairwise-distinct constraint over a sequence of same-width terms."""
    constraints = []
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            constraints.append(bv_ne(terms[i], terms[j]))
    return bv_and_all(constraints)
