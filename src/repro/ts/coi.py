"""Cone-of-influence reduction of transition systems.

Before unrolling, a BMC (or k-induction) run for one property only needs
the state variables and inputs that can actually influence that property or
any global constraint.  The closure is computed at the word level: seed
with the free variables of the property and of every constraint, then add,
for each reached state variable, the free variables of its ``next`` (and
``init``) functions, until a fixpoint.

Everything outside the cone is dropped from the reduced system:

* dropped *state variables* — their init/next terms are never instantiated,
  so none of their (potentially deep) logic gets unrolled or encoded;
* dropped *inputs* — only ever read by dropped next-state functions (the
  closure guarantees this), so no fresh per-frame symbols are created.

Constraints are always kept (dropping an assumption could introduce
spurious counterexamples), which is why their variables join the seed set.
Verdict equivalence is preserved: the encoded formula over the reduced
system is the projection of the original onto the cone, and the dropped
state variables are functionally determined by (and never feed back into)
the cone, so satisfiability is unchanged frame by frame.

For counterexample traces the dropped signals can be reconstructed by
forward simulation — see :meth:`CoiReduction.replay_state` — with dropped
inputs reading as 0 (they are unconstrained, so any value is consistent).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import TransitionSystemError
from repro.smt.evaluator import evaluate, free_variables
from repro.ts.system import StateVar, TransitionSystem


@dataclass
class CoiReduction:
    """Outcome of a cone-of-influence reduction for one property."""

    ts: TransitionSystem
    original: TransitionSystem
    property_name: str
    kept_states: list[str] = field(default_factory=list)
    dropped_states: list[str] = field(default_factory=list)
    kept_inputs: list[str] = field(default_factory=list)
    dropped_inputs: list[str] = field(default_factory=list)

    @property
    def dropped_state_bits(self) -> int:
        original_states = {s.name: s for s in self.original.states}
        return sum(original_states[name].width for name in self.dropped_states)

    @property
    def reduced(self) -> bool:
        return bool(self.dropped_states or self.dropped_inputs)

    def replay_state(
        self,
        state: StateVar,
        frame: int,
        previous: Optional[Mapping[str, int]],
        model: Mapping[str, int],
    ) -> int:
        """Value of a dropped state variable at ``frame`` by forward simulation.

        ``previous`` maps every state/input name to its frame ``frame - 1``
        value (``None`` for frame 0, where the init term is evaluated
        instead).  ``model`` supplies values for rigid symbolic constants
        (e.g. shared initial-value symbols); anything unknown reads as 0.
        """
        if frame == 0:
            term = state.init
            if term is None:
                return 0  # unconstrained initial value
            assignment = dict(model)
        else:
            assert previous is not None
            term = state.next
            assert term is not None
            assignment = dict(model)
            assignment.update(previous)
        for var in free_variables(term):
            assignment.setdefault(var.name or "", 0)
        return evaluate(term, assignment)


# One cone per (system, property), shared by the lint rules, the BMC
# session and the analysis layers so repeated runs over the same design
# (e.g. ``--design all --zoo-sample 20``) never re-derive identical cones.
# Systems are mutable builders, so entries carry a term-id fingerprint and
# are recomputed whenever the system's structure changes.
_CONE_CACHE: "weakref.WeakKeyDictionary[TransitionSystem, dict[str, tuple[tuple, CoiReduction]]]"
_CONE_CACHE = weakref.WeakKeyDictionary()


def _cone_fingerprint(ts: TransitionSystem) -> tuple:
    states = tuple(
        (
            s.name,
            s.width,
            s.init.tid if s.init is not None else -1,
            s.next.tid if s.next is not None else -1,
        )
        for s in ts.states
    )
    inputs = tuple((i.name, i.width) for i in ts.inputs)
    props = tuple((name, term.tid) for name, term in ts.properties.items())
    constraints = tuple(c.tid for c in ts.constraints)
    return (states, inputs, props, constraints)


def cached_property_cone(ts: TransitionSystem, property_name: str) -> CoiReduction:
    """Memoised :func:`reduce_to_property_cone` for unchanged systems."""
    fingerprint = _cone_fingerprint(ts)
    per_prop = _CONE_CACHE.setdefault(ts, {})
    cached = per_prop.get(property_name)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    reduction = reduce_to_property_cone(ts, property_name)
    per_prop[property_name] = (fingerprint, reduction)
    return reduction


def reduce_to_property_cone(
    ts: TransitionSystem, property_name: str
) -> CoiReduction:
    """Build the reduced system for ``property_name`` (validated input)."""
    if property_name not in ts.properties:
        raise TransitionSystemError(f"unknown property {property_name!r}")
    ts.validate()

    states = {s.name: s for s in ts.states}
    input_names = {symbol.name for symbol in ts.inputs}

    # Seed: property + every constraint (constraints must be kept whole).
    seeds = [ts.properties[property_name]]
    seeds.extend(ts.constraints)
    cone: set[str] = set()
    work: list[str] = []
    for term in seeds:
        for var in free_variables(term):
            name = var.name or ""
            if name not in cone and (name in states or name in input_names):
                cone.add(name)
                work.append(name)
    while work:
        name = work.pop()
        state = states.get(name)
        if state is None:
            continue  # inputs have no dependencies
        deps = set(free_variables(state.next))  # validated: next is not None
        if state.init is not None:
            deps |= free_variables(state.init)
        for var in deps:
            dep_name = var.name or ""
            if dep_name not in cone and (
                dep_name in states or dep_name in input_names
            ):
                cone.add(dep_name)
                work.append(dep_name)

    kept_states = [s.name for s in ts.states if s.name in cone]
    dropped_states = [s.name for s in ts.states if s.name not in cone]
    kept_inputs = [i.name for i in ts.inputs if i.name in cone]
    dropped_inputs = [i.name for i in ts.inputs if i.name not in cone]

    if not dropped_states and not dropped_inputs:
        return CoiReduction(
            ts=ts,
            original=ts,
            property_name=property_name,
            kept_states=kept_states,
            kept_inputs=kept_inputs,
        )

    # Symbols are hash-consed by name, so re-declaring them in the reduced
    # system returns the very same terms and the original init/next/property
    # terms remain valid as-is.
    reduced = TransitionSystem(name=f"{ts.name}#coi[{property_name}]")
    for state in ts.states:
        if state.name not in cone:
            continue
        reduced.add_state(state.name, state.width)
        if state.init is not None:
            reduced.set_init(state.name, state.init)
        reduced.set_next(state.name, state.next)
    for symbol in ts.inputs:
        if symbol.name in cone:
            reduced.add_input(symbol.name, symbol.width)
    for constraint in ts.constraints:
        reduced.add_constraint(constraint)
    reduced.add_property(property_name, ts.properties[property_name])
    return CoiReduction(
        ts=reduced,
        original=ts,
        property_name=property_name,
        kept_states=kept_states,
        dropped_states=dropped_states,
        kept_inputs=kept_inputs,
        dropped_inputs=dropped_inputs,
    )
