"""Time-frame expansion (unrolling) of a transition system.

The unroller substitutes, frame by frame, the current-state terms into every
next-state function, constraint and property.  Because the processor models
start from a fully concrete initial state, the first frames constant-fold
aggressively inside the smart constructors, which keeps the bit-blasted BMC
queries small.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import TransitionSystemError
from repro.smt import terms as T
from repro.smt.evaluator import substitute
from repro.smt.terms import BV
from repro.ts.system import TransitionSystem


class Unroller:
    """Unrolls a validated transition system over discrete time frames."""

    def __init__(self, ts: TransitionSystem):
        ts.validate()
        self.ts = ts
        # _frames[k] maps every state/input symbol to its frame-k term.
        self._frames: list[dict[BV, BV]] = []
        self._input_vars: list[dict[str, BV]] = []
        self._build_frame_zero()

    def _build_frame_zero(self) -> None:
        mapping: dict[BV, BV] = {}
        inputs: dict[str, BV] = {}
        for state in self.ts.states:
            if state.init is not None:
                mapping[state.symbol] = state.init
            else:
                mapping[state.symbol] = T.fresh_var(f"{state.name}@0", state.width)
        for symbol in self.ts.inputs:
            assert symbol.name is not None
            var = T.fresh_var(f"{symbol.name}@0", symbol.width)
            mapping[symbol] = var
            inputs[symbol.name] = var
        self._frames.append(mapping)
        self._input_vars.append(inputs)

    def _extend_to(self, frame: int) -> None:
        while len(self._frames) <= frame:
            k = len(self._frames)
            prev = self._frames[k - 1]
            mapping: dict[BV, BV] = {}
            inputs: dict[str, BV] = {}
            for symbol in self.ts.inputs:
                assert symbol.name is not None
                var = T.fresh_var(f"{symbol.name}@{k}", symbol.width)
                mapping[symbol] = var
                inputs[symbol.name] = var
            for state in self.ts.states:
                assert state.next is not None
                mapping[state.symbol] = substitute(state.next, prev)
            self._frames.append(mapping)
            self._input_vars.append(inputs)

    # ------------------------------------------------------------------ API

    def at_frame(self, term: BV, frame: int) -> BV:
        """Return ``term`` with states/inputs replaced by their frame-``frame`` terms.

        Note that inputs referenced by a *next-state* function conceptually
        belong to the frame in which the transition fires; ``at_frame`` maps
        plain state/input symbols, which is what constraints and properties
        use.
        """
        if frame < 0:
            raise TransitionSystemError(f"frame must be non-negative, got {frame}")
        self._extend_to(frame)
        return substitute(term, self._frames[frame])

    def state_term(self, name: str, frame: int) -> BV:
        """The frame-``frame`` term of state variable ``name``."""
        return self.at_frame(self.ts.state_symbol(name), frame)

    def input_term(self, name: str, frame: int) -> BV:
        """The fresh variable standing for input ``name`` at frame ``frame``."""
        self._extend_to(frame)
        if name not in self._input_vars[frame]:
            raise TransitionSystemError(f"unknown input {name!r}")
        return self._input_vars[frame][name]

    def frame_mapping(self, frame: int) -> Mapping[BV, BV]:
        """The full symbol-to-term mapping of a frame (read-only use)."""
        self._extend_to(frame)
        return dict(self._frames[frame])

    def constraints_at(self, frame: int) -> list[BV]:
        """All global constraints instantiated at ``frame``."""
        return [self.at_frame(c, frame) for c in self.ts.constraints]

    def property_at(self, name: str, frame: int) -> BV:
        """Property ``name`` instantiated at ``frame``."""
        if name not in self.ts.properties:
            raise TransitionSystemError(f"unknown property {name!r}")
        return self.at_frame(self.ts.properties[name], frame)
