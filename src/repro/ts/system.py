"""Word-level transition-system representation.

State variables and inputs are plain bit-vector variables; ``init`` and
``next`` are terms over those variables.  Constraints are assumptions that
hold in every reachable step (the standard BTOR2 ``constraint`` semantics);
properties are safety properties expected to hold in every reachable step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TransitionSystemError
from repro.smt import terms as T
from repro.smt.terms import BV


@dataclass
class StateVar:
    """One state element: its symbol, optional init term and next-state term."""

    symbol: BV
    init: Optional[BV] = None
    next: Optional[BV] = None

    @property
    def name(self) -> str:
        assert self.symbol.name is not None
        return self.symbol.name

    @property
    def width(self) -> int:
        return self.symbol.width


class TransitionSystem:
    """A synchronous design: states, inputs, init, next, constraints, properties."""

    def __init__(self, name: str = "design"):
        self.name = name
        self._states: dict[str, StateVar] = {}
        self._inputs: dict[str, BV] = {}
        self.constraints: list[BV] = []
        self.properties: dict[str, BV] = {}

    # ------------------------------------------------------------- definition

    def add_state(self, name: str, width: int, init: Optional[BV | int] = None) -> BV:
        """Declare a state variable; returns its symbol."""
        if name in self._states or name in self._inputs:
            raise TransitionSystemError(f"symbol {name!r} already declared")
        symbol = T.bv_var(name, width)
        init_term: Optional[BV] = None
        if init is not None:
            init_term = T.bv_const(init, width) if isinstance(init, int) else init
            if init_term.width != width:
                raise TransitionSystemError(
                    f"init width {init_term.width} does not match state width {width}"
                )
        self._states[name] = StateVar(symbol=symbol, init=init_term)
        return symbol

    def add_input(self, name: str, width: int) -> BV:
        """Declare a free input; returns its symbol."""
        if name in self._states or name in self._inputs:
            raise TransitionSystemError(f"symbol {name!r} already declared")
        symbol = T.bv_var(name, width)
        self._inputs[name] = symbol
        return symbol

    def set_next(self, symbol: BV | str, next_term: BV) -> None:
        """Define the next-state function of a declared state variable."""
        state = self._lookup_state(symbol)
        if next_term.width != state.width:
            raise TransitionSystemError(
                f"next width {next_term.width} does not match state width {state.width}"
            )
        state.next = next_term

    def set_init(self, symbol: BV | str, init_term: BV | int) -> None:
        """Define (or override) the initial value of a state variable."""
        state = self._lookup_state(symbol)
        if isinstance(init_term, int):
            init_term = T.bv_const(init_term, state.width)
        if init_term.width != state.width:
            raise TransitionSystemError(
                f"init width {init_term.width} does not match state width {state.width}"
            )
        state.init = init_term

    def add_constraint(self, term: BV) -> None:
        """Add a global assumption (must be a width-1 term)."""
        if term.width != 1:
            raise TransitionSystemError("constraints must have width 1")
        self.constraints.append(term)

    def add_property(self, name: str, term: BV) -> None:
        """Add a named safety property (width-1 term over state/inputs)."""
        if term.width != 1:
            raise TransitionSystemError("properties must have width 1")
        if name in self.properties:
            raise TransitionSystemError(f"property {name!r} already defined")
        self.properties[name] = term

    # ---------------------------------------------------------------- queries

    def _lookup_state(self, symbol: BV | str) -> StateVar:
        name = symbol if isinstance(symbol, str) else symbol.name
        if name is None or name not in self._states:
            raise TransitionSystemError(f"unknown state variable {name!r}")
        return self._states[name]

    @property
    def states(self) -> list[StateVar]:
        return list(self._states.values())

    @property
    def inputs(self) -> list[BV]:
        return list(self._inputs.values())

    def state_symbol(self, name: str) -> BV:
        return self._lookup_state(name).symbol

    def input_symbol(self, name: str) -> BV:
        if name not in self._inputs:
            raise TransitionSystemError(f"unknown input {name!r}")
        return self._inputs[name]

    def num_state_bits(self) -> int:
        """Total number of state bits (a rough size metric)."""
        return sum(state.width for state in self._states.values())

    def validate(self) -> None:
        """Check that every state variable has a next-state function."""
        missing = [s.name for s in self._states.values() if s.next is None]
        if missing:
            raise TransitionSystemError(
                f"state variables without next-state function: {missing}"
            )

    def __repr__(self) -> str:
        return (
            f"TransitionSystem({self.name!r}, states={len(self._states)}, "
            f"inputs={len(self._inputs)}, properties={list(self.properties)})"
        )
