"""Symbolic transition systems (the BTOR2-level view of a design).

A :class:`TransitionSystem` is the word-level equivalent of what Yosys emits
for Pono in the paper's flow: state variables with init/next functions,
free inputs, global constraints (assumptions) and safety properties.
"""

from repro.ts.coi import CoiReduction, reduce_to_property_cone
from repro.ts.system import StateVar, TransitionSystem
from repro.ts.unroll import Unroller

__all__ = [
    "CoiReduction",
    "StateVar",
    "TransitionSystem",
    "Unroller",
    "reduce_to_property_cone",
]
