"""Simple k-induction prover (an extension beyond the paper's BMC usage).

SQED-style properties are usually checked with plain BMC, but a k-induction
engine is handy for proving the absence of bugs on small designs (e.g. the
bug-free baseline processor in the test suite).  The implementation is the
textbook one: the base case is BMC up to ``k``; the inductive step checks
that ``k`` consecutive property-satisfying steps (from an arbitrary state
satisfying the constraints) force the property in step ``k + 1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.bmc.engine import BmcEngine, BmcResult
from repro.errors import BmcError
from repro.smt import terms as T
from repro.smt.evaluator import substitute
from repro.smt.solver import BVSolver
from repro.ts.system import TransitionSystem


@dataclass
class KInductionResult:
    """Outcome of a k-induction proof attempt."""

    proven: Optional[bool]
    k: int
    property_name: str
    base_result: Optional[BmcResult] = None
    elapsed_seconds: float = 0.0


class KInductionEngine:
    """Prove safety properties by k-induction."""

    def __init__(self, ts: TransitionSystem):
        ts.validate()
        self.ts = ts

    def _symbolic_frames(self, count: int) -> list[dict]:
        """Frame maps starting from a fully symbolic state (no init)."""
        frames: list[dict] = []
        mapping: dict = {}
        for state in self.ts.states:
            mapping[state.symbol] = T.fresh_var(f"ind_{state.name}@0", state.width)
        for symbol in self.ts.inputs:
            mapping[symbol] = T.fresh_var(f"ind_{symbol.name}@0", symbol.width)
        frames.append(mapping)
        for k in range(1, count):
            prev = frames[k - 1]
            new_map: dict = {}
            for symbol in self.ts.inputs:
                new_map[symbol] = T.fresh_var(f"ind_{symbol.name}@{k}", symbol.width)
            for state in self.ts.states:
                assert state.next is not None
                new_map[state.symbol] = substitute(state.next, prev)
            frames.append(new_map)
        return frames

    def prove(
        self,
        property_name: str,
        max_k: int = 4,
        conflict_budget: Optional[int] = None,
    ) -> KInductionResult:
        """Try to prove ``property_name`` with induction depth up to ``max_k``."""
        if property_name not in self.ts.properties:
            raise BmcError(f"unknown property {property_name!r}")
        start = time.perf_counter()
        prop = self.ts.properties[property_name]

        for k in range(1, max_k + 1):
            # Base case: no counterexample of length <= k from the initial state.
            base = BmcEngine(self.ts).check(property_name, bound=k, conflict_budget=conflict_budget)
            if base.holds is False:
                return KInductionResult(
                    proven=False,
                    k=k,
                    property_name=property_name,
                    base_result=base,
                    elapsed_seconds=time.perf_counter() - start,
                )
            if base.holds is None:
                return KInductionResult(
                    proven=None,
                    k=k,
                    property_name=property_name,
                    base_result=base,
                    elapsed_seconds=time.perf_counter() - start,
                )
            # Inductive step.
            frames = self._symbolic_frames(k + 1)
            solver = BVSolver()
            for i in range(k + 1):
                for constraint in self.ts.constraints:
                    solver.add(substitute(constraint, frames[i]))
            for i in range(k):
                solver.add(substitute(prop, frames[i]))
            solver.add(T.bv_not(substitute(prop, frames[k])))
            result = solver.check(conflict_budget=conflict_budget)
            if result.satisfiable is False:
                return KInductionResult(
                    proven=True,
                    k=k,
                    property_name=property_name,
                    base_result=base,
                    elapsed_seconds=time.perf_counter() - start,
                )
        return KInductionResult(
            proven=None,
            k=max_k,
            property_name=property_name,
            elapsed_seconds=time.perf_counter() - start,
        )
