"""Simple k-induction prover (an extension beyond the paper's BMC usage).

SQED-style properties are usually checked with plain BMC, but a k-induction
engine is handy for proving the absence of bugs on small designs (e.g. the
bug-free baseline processor in the test suite).  The implementation is the
textbook one: the base case is BMC up to ``k``; the inductive step checks
that ``k`` consecutive property-satisfying steps (from an arbitrary state
satisfying the constraints) force the property in step ``k + 1``.

Both halves run on persistent :class:`~repro.solve.context.SolverContext`
state.  The base case is one :class:`~repro.bmc.engine.BmcSession` extended
frame by frame as ``k`` grows, so no base frame is ever re-checked.  The
inductive step keeps a single context across all depths: the symbolic
frames are extended instead of rebuilt, ``P`` at frames ``0..k-1`` is
asserted permanently as the depth grows, and only the violation ``¬P`` at
frame ``k`` — which must be retracted at the next depth — is passed as an
assumption, so the step solver's learned clauses survive from depth to
depth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.bmc.engine import BmcResult, BmcSession, prepare_property_system
from repro.errors import BmcError
from repro.sat.solver import SolverStats
from repro.smt import terms as T
from repro.smt.evaluator import substitute
from repro.solve.context import SolverContext
from repro.solve.pipeline import PipelineConfig
from repro.ts.system import TransitionSystem


@dataclass
class KInductionResult:
    """Outcome of a k-induction proof attempt."""

    proven: Optional[bool]
    k: int
    property_name: str
    base_result: Optional[BmcResult] = None
    elapsed_seconds: float = 0.0
    step_solver_stats: SolverStats = field(default_factory=SolverStats)


class KInductionEngine:
    """Prove safety properties by k-induction."""

    def __init__(
        self,
        ts: TransitionSystem,
        backend: str = "cdcl",
        opt_level: "PipelineConfig | int | None" = None,
    ):
        ts.validate()
        self.ts = ts
        self.backend = backend
        self.pipeline = PipelineConfig.resolve(opt_level)

    @staticmethod
    def _initial_frame(ts: TransitionSystem) -> dict:
        """Frame map for a fully symbolic state (no init)."""
        mapping: dict = {}
        for state in ts.states:
            mapping[state.symbol] = T.fresh_var(f"ind_{state.name}@0", state.width)
        for symbol in ts.inputs:
            mapping[symbol] = T.fresh_var(f"ind_{symbol.name}@0", symbol.width)
        return mapping

    @staticmethod
    def _extend_frames(ts: TransitionSystem, frames: list[dict]) -> None:
        """Append the successor of the last frame (fresh inputs, stepped states)."""
        k = len(frames)
        prev = frames[k - 1]
        new_map: dict = {}
        for symbol in ts.inputs:
            new_map[symbol] = T.fresh_var(f"ind_{symbol.name}@{k}", symbol.width)
        for state in ts.states:
            assert state.next is not None
            new_map[state.symbol] = substitute(state.next, prev)
        frames.append(new_map)

    def prove(
        self,
        property_name: str,
        max_k: int = 4,
        conflict_budget: Optional[int] = None,
    ) -> KInductionResult:
        """Try to prove ``property_name`` with induction depth up to ``max_k``."""
        if property_name not in self.ts.properties:
            raise BmcError(f"unknown property {property_name!r}")
        start = time.perf_counter()
        prop = self.ts.properties[property_name]

        # The inductive step only needs the property's cone of influence;
        # the base session applies the same reduction internally.
        step_ts, _reduction = prepare_property_system(
            self.ts, property_name, self.pipeline
        )

        # One incremental session for every base case, one persistent context
        # for every inductive step.
        base_session = BmcSession(
            self.ts, property_name, backend=self.backend, opt_level=self.pipeline
        )
        step_ctx = SolverContext(backend=self.backend, opt_level=self.pipeline)
        frames = [self._initial_frame(step_ts)]
        for constraint in step_ts.constraints:
            step_ctx.add(substitute(constraint, frames[0]))

        # Abstract-interpretation strengthening: the fixpoint facts form an
        # inductive invariant that holds initially, so conjoining them to
        # every symbolic step frame only discards unreachable states.  That
        # can turn a ``None`` (not k-inductive) into a proof, never flip a
        # verdict — the base case alone decides ``False``.
        strengthening: list = []
        if self.pipeline.use_absint:
            from repro.absint import analyze, strengthening_terms

            strengthening = strengthening_terms(step_ts, analyze(step_ts))
            for fact in strengthening:
                step_ctx.add(substitute(fact, frames[0]))

        base: Optional[BmcResult] = None

        for k in range(1, max_k + 1):
            # Base case: no counterexample of length <= k from the initial
            # state.  Only the frames beyond the previous depth are checked.
            base = base_session.extend_to(k, conflict_budget=conflict_budget)
            if base.holds is False:
                return KInductionResult(
                    proven=False,
                    k=k,
                    property_name=property_name,
                    base_result=base,
                    elapsed_seconds=time.perf_counter() - start,
                    step_solver_stats=step_ctx.stats.copy(),
                )
            if base.holds is None:
                return KInductionResult(
                    proven=None,
                    k=k,
                    property_name=property_name,
                    base_result=base,
                    elapsed_seconds=time.perf_counter() - start,
                    step_solver_stats=step_ctx.stats.copy(),
                )
            # Inductive step at depth k: extend the symbolic unrolling by one
            # frame, permanently assert P at frame k-1 (sound for all later
            # depths), and assume the violation at frame k for this query
            # only.
            self._extend_frames(step_ts, frames)
            for constraint in step_ts.constraints:
                step_ctx.add(substitute(constraint, frames[k]))
            for fact in strengthening:
                step_ctx.add(substitute(fact, frames[k]))
            step_ctx.add(substitute(prop, frames[k - 1]))
            result = step_ctx.check(
                assumptions=[T.bv_not(substitute(prop, frames[k]))],
                conflict_budget=conflict_budget,
                need_model=False,
            )
            if result.satisfiable is False:
                return KInductionResult(
                    proven=True,
                    k=k,
                    property_name=property_name,
                    base_result=base,
                    elapsed_seconds=time.perf_counter() - start,
                    step_solver_stats=step_ctx.stats.copy(),
                )
        # max_k exhausted: the last base result still tells the caller the
        # property held up to that depth (dropping it made the inconclusive
        # answer indistinguishable from "never even checked the base case").
        return KInductionResult(
            proven=None,
            k=max_k,
            property_name=property_name,
            base_result=base,
            elapsed_seconds=time.perf_counter() - start,
            step_solver_stats=step_ctx.stats.copy(),
        )
