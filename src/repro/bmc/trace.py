"""Counterexample traces produced by the BMC engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.tables import TextTable


@dataclass
class TraceStep:
    """Concrete values of every state variable and input at one time frame."""

    frame: int
    states: dict[str, int] = field(default_factory=dict)
    inputs: dict[str, int] = field(default_factory=dict)

    def value(self, name: str) -> int:
        """Look up a state or input value by name."""
        if name in self.states:
            return self.states[name]
        if name in self.inputs:
            return self.inputs[name]
        raise KeyError(f"no value for {name!r} at frame {self.frame}")


@dataclass
class Trace:
    """A finite counterexample: one :class:`TraceStep` per frame."""

    steps: list[TraceStep] = field(default_factory=list)
    property_name: Optional[str] = None

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def length(self) -> int:
        """Counterexample length in clock cycles (number of frames)."""
        return len(self.steps)

    def step(self, frame: int) -> TraceStep:
        return self.steps[frame]

    def values_over_time(self, name: str) -> list[int]:
        """The value of one signal across all frames."""
        return [step.value(name) for step in self.steps]

    def render(self, signals: Optional[list[str]] = None) -> str:
        """Render selected signals (default: all inputs) as a text table."""
        if not self.steps:
            return "<empty trace>"
        if signals is None:
            signals = sorted(self.steps[0].inputs)
        table = TextTable(["frame"] + signals)
        for step in self.steps:
            table.add_row([step.frame] + [step.value(s) for s in signals])
        return table.render()
