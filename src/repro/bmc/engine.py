"""The bounded model checker.

For a bound ``K`` the engine checks, for ``k = 0..K`` in increasing order,
whether the constraints of frames ``0..k`` are satisfiable together with the
negation of the property at frame ``k``.  The first satisfiable query yields
the shortest counterexample within the bound, which is what both Table 1
(detection time) and Figure 4 (counterexample length) report.

The work happens in :class:`BmcSession`, which keeps one persistent
:class:`~repro.solve.context.SolverContext` for its lifetime: frame
constraints are asserted permanently, the property violation of the frame
under test is passed as an assumption, and the session can be *extended* to
larger bounds without redoing earlier frames.  ``BmcEngine`` is the classic
one-call facade; ``KInductionEngine`` drives one session across its whole
base-case schedule.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BmcError
from repro.sat.solver import SolverStats
from repro.smt import terms as T
from repro.smt.evaluator import evaluate, free_variables
from repro.solve.backend import is_default_backend
from repro.solve.context import SolverContext
from repro.solve.pipeline import EncodingStats, PipelineConfig
from repro.ts.coi import CoiReduction, cached_property_cone
from repro.ts.system import TransitionSystem
from repro.ts.unroll import Unroller
from repro.bmc.trace import Trace, TraceStep


@dataclass
class BmcStats:
    """Work counters for one BMC run."""

    solver_calls: int = 0
    frames_checked: int = 0
    elapsed_seconds: float = 0.0
    per_frame_seconds: list[float] = field(default_factory=list)
    solver_stats: SolverStats = field(default_factory=SolverStats)
    #: Compilation-pipeline counters (AIG size, CNF before/after
    #: preprocessing, cone-of-influence reduction) of the session's context.
    encoding: EncodingStats = field(default_factory=EncodingStats)

    def copy(self) -> "BmcStats":
        """A detached snapshot (lists and nested stats copied)."""
        return dataclasses.replace(
            self,
            per_frame_seconds=list(self.per_frame_seconds),
            solver_stats=self.solver_stats.copy(),
            encoding=self.encoding.copy(),
        )


@dataclass
class BmcResult:
    """Outcome of a bounded model-checking run.

    ``holds`` is ``True`` when no counterexample exists up to the bound,
    ``False`` when a counterexample was found (``trace`` is then populated),
    and ``None`` when the engine gave up (budget exhausted).
    """

    holds: Optional[bool]
    bound: int
    property_name: str
    trace: Optional[Trace] = None
    stats: BmcStats = field(default_factory=BmcStats)

    @property
    def found_bug(self) -> bool:
        return self.holds is False

    @property
    def counterexample_length(self) -> Optional[int]:
        return None if self.trace is None else self.trace.length


def load_frame_constraints(
    unroller: Unroller, context: SolverContext, loaded: int, frame: int
) -> int:
    """Assert the global constraints of frames ``loaded..frame`` into ``context``.

    Returns the new count of loaded frames.  Shared by the incremental
    session and the sharded workers so the two paths cannot drift.
    """
    while loaded <= frame:
        for constraint in unroller.constraints_at(loaded):
            if constraint.is_const:
                if constraint.const_value() == 0:
                    raise BmcError("a global constraint is constantly false")
                continue
            context.add(constraint)
        loaded += 1
    return loaded


def prepare_property_system(
    ts: TransitionSystem,
    property_name: str,
    pipeline: PipelineConfig,
) -> tuple[TransitionSystem, Optional[CoiReduction]]:
    """The system to unroll for ``property_name`` under ``pipeline``.

    At ``opt_level >= 1`` the transition system is restricted to the
    property's cone of influence; the returned reduction (``None`` when
    nothing was dropped or COI is off) carries what a trace builder needs to
    reconstruct the dropped signals.  Shared by the incremental session and
    the sharded workers so the two paths cannot drift.
    """
    if not pipeline.coi:
        return ts, None
    reduction = cached_property_cone(ts, property_name)
    if not reduction.reduced:
        return ts, None
    return reduction.ts, reduction


def prepare_absint_fold(ts: TransitionSystem, pipeline: PipelineConfig):
    """The abstract-interpretation fold of ``ts``, or ``None``.

    Folds proven-constant latches/bits out of the (already COI-reduced)
    system before unrolling.  Returns ``None`` when the layer is disabled,
    nothing folds, or a constraint would fold to constant false — that
    last case means the constraints are unsatisfiable on the abstract
    reachable set, and the unfolded path must keep reporting it through
    its own semantics (``load_frame_constraints``) rather than ours.
    Shared by the incremental session and the sharded workers so the two
    paths cannot drift.
    """
    if not pipeline.use_absint:
        return None
    from repro.absint import analyze, fold_system

    fold = fold_system(ts, analyze(ts))
    if fold is None:
        return None
    for constraint in fold.ts.constraints:
        if constraint.is_const and constraint.const_value() == 0:
            return None
    return fold


def build_trace(
    ts: TransitionSystem,
    unroller: Unroller,
    property_name: str,
    model: dict[str, int],
    last_frame: int,
    reduction: Optional[CoiReduction] = None,
    fold=None,
) -> Trace:
    """Concretise a full bit-blasted model into a counterexample trace.

    ``ts`` is the *original* system; when ``reduction`` is given, the
    unroller only covers the cone, and the dropped signals are reconstructed
    by forward simulation (dropped inputs read 0 — they are unconstrained,
    so any value yields a consistent run).  When ``fold`` (an
    :class:`~repro.absint.AbsintFold`) is given, the unroller covers the
    folded system and each original latch is read back through its
    assembly term, so traces are reported in original coordinates.
    """

    def value_of(term: T.BV) -> int:
        assignment = dict(model)
        for var in free_variables(term):
            assignment.setdefault(var.name or "", 0)
        return evaluate(term, assignment)

    dropped_states: set[str] = set()
    dropped_inputs: set[str] = set()
    if reduction is not None and reduction.reduced:
        dropped_states = set(reduction.dropped_states)
        dropped_inputs = set(reduction.dropped_inputs)

    def kept_state_term(name: str, frame: int) -> T.BV:
        if fold is not None:
            return unroller.at_frame(fold.state_terms[name], frame)
        return unroller.state_term(name, frame)

    trace = Trace(property_name=property_name)
    previous: Optional[dict[str, int]] = None
    for frame in range(0, last_frame + 1):
        step = TraceStep(frame=frame)
        for state in ts.states:
            if state.name not in dropped_states:
                step.states[state.name] = value_of(
                    kept_state_term(state.name, frame)
                )
        for symbol in ts.inputs:
            assert symbol.name is not None
            if symbol.name in dropped_inputs:
                step.inputs[symbol.name] = 0
            else:
                step.inputs[symbol.name] = value_of(
                    unroller.input_term(symbol.name, frame)
                )
        if dropped_states:
            for state in ts.states:
                if state.name in dropped_states:
                    step.states[state.name] = reduction.replay_state(
                        state, frame, previous, model
                    )
        previous = {**step.states, **step.inputs}
        trace.steps.append(step)
    return trace


class BmcSession:
    """Incremental BMC over one persistent solver context.

    A session may be extended repeatedly: ``extend_to(8)`` followed by
    ``extend_to(12)`` checks frames 9..12 only, reusing every clause and
    every learned clause from the earlier frames.  ``stats`` accumulates
    over the session's lifetime.
    """

    def __init__(
        self,
        ts: TransitionSystem,
        property_name: str,
        start_frame: int = 0,
        backend: str = "cdcl",
        context: Optional[SolverContext] = None,
        opt_level: "PipelineConfig | int | None" = None,
        lint: Optional[str] = None,
    ):
        # Pre-solve lint gate (``lint`` = "error"/"warn"/"off"; None defers
        # to $REPRO_LINT_GATE, default off).  Runs before validate() so a
        # gated session reports *every* model defect, not just the first
        # missing next-state function.
        from repro.lint.gate import gate_transition_system

        gate_transition_system(ts, lint, where="BmcSession")
        ts.validate()
        if property_name not in ts.properties:
            raise BmcError(f"unknown property {property_name!r}")
        self.ts = ts
        self.property_name = property_name
        self.start_frame = start_frame
        if context is not None and not is_default_backend(backend):
            raise BmcError(
                "pass either a backend spec or an explicit context, not both: "
                "a supplied context already carries its own backend"
            )
        if context is not None and opt_level is not None:
            raise BmcError(
                "pass either an opt_level or an explicit context, not both: "
                "a supplied context already carries its pipeline config"
            )
        if context is not None:
            self.pipeline = context.pipeline
        else:
            self.pipeline = PipelineConfig.resolve(opt_level)
        # Cone-of-influence reduction: unroll (and therefore encode) only
        # the state and logic the checked property can observe.
        reduced_ts, self.reduction = prepare_property_system(
            ts, property_name, self.pipeline
        )
        # Abstract-interpretation fold: drop proven-constant latches and
        # narrow partially-known ones before unrolling.  Facts are
        # invariants, so verdicts and counterexample frames are unchanged
        # (the differential REPRO_ABSINT=0-vs-1 suite gates on this).
        self.fold = prepare_absint_fold(reduced_ts, self.pipeline)
        if self.fold is not None:
            reduced_ts = self.fold.ts
        self.unroller = Unroller(reduced_ts)
        self.context = (
            context
            if context is not None
            else SolverContext(backend=backend, opt_level=self.pipeline)
        )
        # Solver work is accumulated per extend_to call, so queries a shared
        # context serves before or between calls are never attributed to
        # this session.
        self._session_solver_stats = SolverStats()
        self.stats = BmcStats()
        self._constraints_loaded = 0  # frames whose constraints are asserted
        self._next_frame = 0  # first frame not yet decided safe

    # ---------------------------------------------------------------- loading

    def _load_constraints(self, frame: int) -> None:
        self._constraints_loaded = load_frame_constraints(
            self.unroller, self.context, self._constraints_loaded, frame
        )

    # --------------------------------------------------------------- encoding

    def encode_to(self, bound: int) -> "EncodingStats":
        """Encode every frame up to ``bound`` without solving anything.

        Loads the frame constraints and blasts each frame's property
        violation through the full compilation pipeline (including
        preprocessing and assumption-variable restoration), exactly as
        :meth:`extend_to` would, but never queries the SAT backend.  Used
        to measure formula sizes on bounds whose queries would be
        expensive to actually decide; the returned stats match what a real
        frame sweep would have fed the backend.  Mixing with
        :meth:`extend_to` on the same session is fine — the context is
        shared and nothing is encoded twice.
        """
        if bound < 0:
            raise BmcError(f"bound must be non-negative, got {bound}")
        for frame in range(0, bound + 1):
            self._load_constraints(frame)
            violation = T.bv_not(
                self.unroller.property_at(self.property_name, frame)
            )
            if violation.is_const and violation.const_value() == 0:
                # Mirror extend_to: a constant-true property needs no query,
                # and deferring the sync keeps the preprocessing batch
                # boundaries — and therefore the clause counts — identical
                # to the solving path.
                continue
            self.context.encode(assumptions=[violation])
        return self._encoding_snapshot()

    def _encoding_snapshot(self) -> "EncodingStats":
        """Context encoding stats with this session's COI numbers patched in."""
        stats = self.context.encoding_stats()
        if self.reduction is not None:
            stats.coi_states_kept = len(self.reduction.kept_states)
            stats.coi_states_dropped = len(self.reduction.dropped_states)
            stats.coi_state_bits_dropped = self.reduction.dropped_state_bits
        else:
            stats.coi_states_kept = len(self.ts.states)
        if self.fold is not None:
            stats.absint_states_folded = self.fold.states_folded
            stats.absint_bits_folded = self.fold.bits_folded
        return stats

    # --------------------------------------------------------------- checking

    def extend_to(
        self, bound: int, conflict_budget: Optional[int] = None
    ) -> BmcResult:
        """Check all not-yet-checked frames up to ``bound`` (inclusive).

        ``conflict_budget`` caps the *total* conflicts of this call across
        all frames (matching the historical one-solver-per-check semantics),
        not each frame individually.
        """
        if bound < 0:
            raise BmcError(f"bound must be non-negative, got {bound}")
        stats = self.stats
        start_time = time.perf_counter()
        remaining_budget = conflict_budget
        stats_origin = self.context.stats.copy()

        def finish(holds: Optional[bool], bound_out: int, trace=None) -> BmcResult:
            stats.elapsed_seconds += time.perf_counter() - start_time
            self._session_solver_stats.merge(self.context.stats.since(stats_origin))
            stats.solver_stats = self._session_solver_stats
            stats.encoding = self._encoding_snapshot()
            # Hand each result a detached snapshot: the session keeps
            # accumulating into its own stats on later extend_to calls.
            return BmcResult(
                holds=holds,
                bound=bound_out,
                property_name=self.property_name,
                trace=trace,
                stats=stats.copy(),
            )

        for frame in range(self._next_frame, bound + 1):
            self._load_constraints(frame)
            if frame < self.start_frame:
                self._next_frame = frame + 1
                continue
            frame_start = time.perf_counter()
            property_term = self.unroller.property_at(self.property_name, frame)
            violation = T.bv_not(property_term)
            if violation.is_const and violation.const_value() == 0:
                # The property reduced to true at this frame; no query needed.
                stats.frames_checked += 1
                stats.per_frame_seconds.append(time.perf_counter() - frame_start)
                self._next_frame = frame + 1
                continue
            if remaining_budget is not None and remaining_budget <= 0:
                # Budget exhausted before this frame was attempted: report
                # inconclusive without counting the frame, so a re-extend
                # with a fresh budget does not double-count it.
                return finish(None, frame)
            stats.solver_calls += 1
            result = self.context.check(
                assumptions=[violation],
                conflict_budget=remaining_budget,
                full_model=True,
            )
            if remaining_budget is not None:
                remaining_budget -= result.stats.conflicts
            if result.satisfiable is None:
                # Undecided: the frame stays pending (and uncounted), so a
                # re-extend with a fresh budget retries it without skewing
                # frames_checked / per_frame_seconds.
                return finish(None, frame)
            stats.frames_checked += 1
            stats.per_frame_seconds.append(time.perf_counter() - frame_start)
            if result.satisfiable:
                trace = self._build_trace(result.model, frame)
                return finish(False, frame, trace=trace)
            self._next_frame = frame + 1
        return finish(True, bound)

    # ------------------------------------------------------------------ trace

    def _build_trace(self, model: dict[str, int], last_frame: int) -> Trace:
        return build_trace(
            self.ts,
            self.unroller,
            self.property_name,
            model,
            last_frame,
            reduction=self.reduction,
            fold=self.fold,
        )


class BmcEngine:
    """Bounded model checking over :class:`~repro.ts.system.TransitionSystem`."""

    def __init__(
        self,
        ts: TransitionSystem,
        start_frame: int = 0,
        backend: str = "cdcl",
        opt_level: "PipelineConfig | int | None" = None,
        lint: Optional[str] = None,
    ):
        ts.validate()
        self.ts = ts
        self.start_frame = start_frame
        self.backend = backend
        self.opt_level = opt_level
        self.lint = lint

    def session(self, property_name: str) -> BmcSession:
        """A fresh incremental session for ``property_name``."""
        return BmcSession(
            self.ts,
            property_name,
            start_frame=self.start_frame,
            backend=self.backend,
            opt_level=self.opt_level,
            lint=self.lint,
        )

    def check(
        self,
        property_name: str,
        bound: int,
        conflict_budget: Optional[int] = None,
    ) -> BmcResult:
        """Check a named property up to ``bound`` frames (inclusive)."""
        return self.session(property_name).extend_to(
            bound, conflict_budget=conflict_budget
        )
