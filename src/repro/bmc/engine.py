"""The bounded model checker.

For a bound ``K`` the engine checks, for ``k = 0..K`` in increasing order,
whether the constraints of frames ``0..k`` are satisfiable together with the
negation of the property at frame ``k``.  The first satisfiable query yields
the shortest counterexample within the bound, which is what both Table 1
(detection time) and Figure 4 (counterexample length) report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BmcError
from repro.sat.solver import SatSolver
from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster
from repro.smt.evaluator import evaluate, free_variables
from repro.ts.system import TransitionSystem
from repro.ts.unroll import Unroller
from repro.bmc.trace import Trace, TraceStep
from repro.utils.bitops import from_bits


@dataclass
class BmcStats:
    """Work counters for one BMC run."""

    solver_calls: int = 0
    frames_checked: int = 0
    elapsed_seconds: float = 0.0
    per_frame_seconds: list[float] = field(default_factory=list)


@dataclass
class BmcResult:
    """Outcome of a bounded model-checking run.

    ``holds`` is ``True`` when no counterexample exists up to the bound,
    ``False`` when a counterexample was found (``trace`` is then populated),
    and ``None`` when the engine gave up (budget exhausted).
    """

    holds: Optional[bool]
    bound: int
    property_name: str
    trace: Optional[Trace] = None
    stats: BmcStats = field(default_factory=BmcStats)

    @property
    def found_bug(self) -> bool:
        return self.holds is False

    @property
    def counterexample_length(self) -> Optional[int]:
        return None if self.trace is None else self.trace.length


class BmcEngine:
    """Bounded model checking over :class:`~repro.ts.system.TransitionSystem`."""

    def __init__(self, ts: TransitionSystem, start_frame: int = 0):
        ts.validate()
        self.ts = ts
        self.start_frame = start_frame

    def check(
        self,
        property_name: str,
        bound: int,
        conflict_budget: Optional[int] = None,
    ) -> BmcResult:
        """Check a named property up to ``bound`` frames (inclusive)."""
        if property_name not in self.ts.properties:
            raise BmcError(f"unknown property {property_name!r}")
        if bound < 0:
            raise BmcError(f"bound must be non-negative, got {bound}")

        stats = BmcStats()
        start_time = time.perf_counter()
        unroller = Unroller(self.ts)

        # Incremental BMC: one bit-blaster and one CDCL solver shared across
        # frames.  Constraints are asserted as clauses; the property
        # violation of the frame under test is passed as an assumption so
        # learned clauses stay valid for later frames.
        blaster = BitBlaster()
        solver = SatSolver()
        clauses_loaded = 0

        def sync_clauses() -> None:
            nonlocal clauses_loaded
            for clause in blaster.cnf.clauses[clauses_loaded:]:
                solver.add_clause(clause)
            clauses_loaded = len(blaster.cnf.clauses)

        for frame in range(0, bound + 1):
            for constraint in unroller.constraints_at(frame):
                if constraint.is_const:
                    if constraint.const_value() == 0:
                        raise BmcError("a global constraint is constantly false")
                    continue
                blaster.assert_term(constraint)
            if frame < self.start_frame:
                continue
            frame_start = time.perf_counter()
            stats.frames_checked += 1
            property_term = unroller.property_at(property_name, frame)
            violation = T.bv_not(property_term)
            if violation.is_const and violation.const_value() == 0:
                # The property reduced to true at this frame; no query needed.
                stats.per_frame_seconds.append(time.perf_counter() - frame_start)
                continue
            violation_literal = blaster.assumption_literal(violation)
            sync_clauses()
            stats.solver_calls += 1
            result = solver.solve(
                assumptions=[violation_literal], conflict_budget=conflict_budget
            )
            stats.per_frame_seconds.append(time.perf_counter() - frame_start)
            if result.satisfiable is None:
                stats.elapsed_seconds = time.perf_counter() - start_time
                return BmcResult(
                    holds=None,
                    bound=frame,
                    property_name=property_name,
                    stats=stats,
                )
            if result.satisfiable:
                model = self._extract_model(blaster, result)
                trace = self._build_trace(unroller, model, frame, property_name)
                stats.elapsed_seconds = time.perf_counter() - start_time
                return BmcResult(
                    holds=False,
                    bound=frame,
                    property_name=property_name,
                    trace=trace,
                    stats=stats,
                )
        stats.elapsed_seconds = time.perf_counter() - start_time
        return BmcResult(
            holds=True, bound=bound, property_name=property_name, stats=stats
        )

    @staticmethod
    def _extract_model(blaster: BitBlaster, result) -> dict[str, int]:
        """Read back integer values for every bit-blasted variable."""
        model: dict[str, int] = {}
        for name, bits in blaster._var_bits.items():
            values = [
                1 if result.model.get(abs(b), False) == (b > 0) else 0 for b in bits
            ]
            model[name] = from_bits(values)
        return model

    # ------------------------------------------------------------------ trace

    def _build_trace(
        self, unroller: Unroller, model: dict[str, int], last_frame: int, property_name: str
    ) -> Trace:
        def value_of(term: T.BV) -> int:
            assignment = dict(model)
            for var in free_variables(term):
                assignment.setdefault(var.name or "", 0)
            return evaluate(term, assignment)

        trace = Trace(property_name=property_name)
        for frame in range(0, last_frame + 1):
            step = TraceStep(frame=frame)
            for state in self.ts.states:
                step.states[state.name] = value_of(unroller.state_term(state.name, frame))
            for symbol in self.ts.inputs:
                assert symbol.name is not None
                step.inputs[symbol.name] = value_of(unroller.input_term(symbol.name, frame))
            trace.steps.append(step)
        return trace
