"""Bounded model checking (the role Pono plays in the paper's flow).

:class:`BmcEngine` unrolls a transition system frame by frame and asks the
bit-vector solver whether a safety property can be violated within the
bound; when it can, it reconstructs a concrete counterexample trace.  A
simple k-induction prover is included as an extension for unbounded proofs
on small designs.
"""

from repro.bmc.trace import Trace, TraceStep
from repro.bmc.engine import BmcEngine, BmcResult, BmcSession, BmcStats
from repro.bmc.kinduction import KInductionEngine, KInductionResult

__all__ = [
    "Trace",
    "TraceStep",
    "BmcEngine",
    "BmcResult",
    "BmcSession",
    "BmcStats",
    "KInductionEngine",
    "KInductionResult",
]
