"""The And-Inverter-Graph (with XOR/ITE extensions) term graph.

Literals are signed integers, mirroring the DIMACS convention used by the
rest of the stack: node ids are positive, ``-lit`` is the complement of
``lit``.  Node 1 is the constant-true node, so ``1`` is TRUE and ``-1`` is
FALSE.  Nodes are created through :meth:`AIG.and_`, :meth:`AIG.xor_` and
:meth:`AIG.ite`, which apply

* constant propagation (any operand being TRUE/FALSE folds immediately),
* one-level rules (idempotence, complement, ``ite`` branch merging),
* two-level AND rewrites in the style of Brummayer & Biere's AIG rewriting:
  containment (``a ∧ (a∧b) → a∧b``), contradiction (``a ∧ (¬a∧b) → ⊥``),
  subsumption (``¬(a∧b) ∧ ¬a → ¬a``) and substitution
  (``a ∧ ¬(a∧b) → a ∧ ¬b``),

and finally structural hashing over canonically ordered operands, so two
cones with the same structure are the same node no matter how they were
built.  XOR pushes operand negations to the output (``¬a ⊕ b = ¬(a ⊕ b)``)
and ITE canonicalises to a positive condition and a positive then-branch,
which maximises strashing hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

K_CONST = 0
K_INPUT = 1
K_AND = 2
K_XOR = 3
K_ITE = 4

_KIND_NAMES = {K_CONST: "const", K_INPUT: "input", K_AND: "and", K_XOR: "xor", K_ITE: "ite"}


@dataclass
class AigStats:
    """Structural counters of one graph (a snapshot, cheap to recompute)."""

    num_inputs: int = 0
    num_and: int = 0
    num_xor: int = 0
    num_ite: int = 0
    rewrite_hits: int = 0
    strash_hits: int = 0

    @property
    def num_gates(self) -> int:
        return self.num_and + self.num_xor + self.num_ite


class AIG:
    """A structurally hashed gate graph over signed integer literals."""

    def __init__(self) -> None:
        # Parallel arrays indexed by node id; index 0 is an unused sentinel
        # and index 1 is the constant-true node.
        self._kind: list[int] = [K_CONST, K_CONST]
        self._args: list[tuple[int, ...]] = [(), ()]
        self._strash: dict[tuple, int] = {}
        self.TRUE = 1
        self.FALSE = -1
        self._num_inputs = 0
        self._rewrite_hits = 0
        self._strash_hits = 0

    # ----------------------------------------------------------- introspection

    def num_nodes(self) -> int:
        """Gate + input node count (the constant node is not counted)."""
        return len(self._kind) - 2

    def kind(self, lit: int) -> int:
        return self._kind[abs(lit)]

    def args(self, lit: int) -> tuple[int, ...]:
        return self._args[abs(lit)]

    def stats(self) -> AigStats:
        stats = AigStats(
            num_inputs=self._num_inputs,
            rewrite_hits=self._rewrite_hits,
            strash_hits=self._strash_hits,
        )
        for kind in self._kind[2:]:
            if kind == K_AND:
                stats.num_and += 1
            elif kind == K_XOR:
                stats.num_xor += 1
            elif kind == K_ITE:
                stats.num_ite += 1
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AIG(nodes={self.num_nodes()}, inputs={self._num_inputs})"

    # ------------------------------------------------------------ construction

    def _node(self, kind: int, args: tuple[int, ...]) -> int:
        key = (kind, args)
        hit = self._strash.get(key)
        if hit is not None:
            self._strash_hits += 1
            return hit
        self._kind.append(kind)
        self._args.append(args)
        node = len(self._kind) - 1
        self._strash[key] = node
        return node

    def add_input(self) -> int:
        """A fresh primary input node (never hashed)."""
        self._kind.append(K_INPUT)
        self._args.append(())
        self._num_inputs += 1
        return len(self._kind) - 1

    def not_(self, a: int) -> int:
        return -a

    def and_(self, a: int, b: int) -> int:
        if a == self.FALSE or b == self.FALSE:
            return self.FALSE
        if a == self.TRUE:
            return b
        if b == self.TRUE:
            return a
        if a == b:
            return a
        if a == -b:
            return self.FALSE
        rewritten = self._and_two_level(a, b)
        if rewritten is not None:
            self._rewrite_hits += 1
            return rewritten
        if (abs(a), a < 0) > (abs(b), b < 0):
            a, b = b, a
        return self._node(K_AND, (a, b))

    def _and_two_level(self, a: int, b: int) -> int | None:
        """One step of the classic two-level AND rewrite rules (or ``None``)."""
        for x, y in ((a, b), (b, a)):
            if x > 0 and self._kind[x] == K_AND:
                left, right = self._args[x]
                if y == left or y == right:
                    return x  # containment: (l∧r) ∧ l
                if y == -left or y == -right:
                    return self.FALSE  # contradiction: (l∧r) ∧ ¬l
            if x < 0 and self._kind[-x] == K_AND:
                left, right = self._args[-x]
                if y == -left or y == -right:
                    return y  # subsumption: ¬(l∧r) ∧ ¬l
                if y == left:
                    return self.and_(left, -right)  # substitution
                if y == right:
                    return self.and_(right, -left)
        if (
            a > 0
            and b > 0
            and self._kind[a] == K_AND
            and self._kind[b] == K_AND
        ):
            al, ar = self._args[a]
            bl, br = self._args[b]
            if al in (-bl, -br) or ar in (-bl, -br):
                return self.FALSE  # contradiction across both conjunctions
        return None

    def or_(self, a: int, b: int) -> int:
        return -self.and_(-a, -b)

    def xor_(self, a: int, b: int) -> int:
        if a == self.FALSE:
            return b
        if b == self.FALSE:
            return a
        if a == self.TRUE:
            return -b
        if b == self.TRUE:
            return -a
        if a == b:
            return self.FALSE
        if a == -b:
            return self.TRUE
        sign = 1
        if a < 0:
            a, sign = -a, -sign
        if b < 0:
            b, sign = -b, -sign
        if a > b:
            a, b = b, a
        return sign * self._node(K_XOR, (a, b))

    def ite(self, cond: int, then_lit: int, else_lit: int) -> int:
        if cond == self.TRUE:
            return then_lit
        if cond == self.FALSE:
            return else_lit
        if then_lit == else_lit:
            return then_lit
        if cond < 0:
            cond, then_lit, else_lit = -cond, else_lit, then_lit
        if then_lit == self.TRUE:
            return self.or_(cond, else_lit)
        if then_lit == self.FALSE:
            return self.and_(-cond, else_lit)
        if else_lit == self.TRUE:
            return self.or_(-cond, then_lit)
        if else_lit == self.FALSE:
            return self.and_(cond, then_lit)
        if then_lit == cond:
            return self.or_(cond, else_lit)
        if then_lit == -cond:
            return self.and_(-cond, else_lit)
        if else_lit == cond:
            return self.and_(cond, then_lit)
        if else_lit == -cond:
            return self.or_(-cond, then_lit)
        if then_lit == -else_lit:
            return -self.xor_(cond, then_lit)
        sign = 1
        if then_lit < 0:
            then_lit, else_lit, sign = -then_lit, -else_lit, -sign
        return sign * self._node(K_ITE, (cond, then_lit, else_lit))

    # ------------------------------------------------------------- evaluation

    def evaluate(self, lit: int, inputs: Mapping[int, bool]) -> bool:
        """Interpret ``lit`` under a node-id → bool assignment of the inputs."""
        cache: dict[int, bool] = {1: True}
        stack: list[tuple[int, bool]] = [(abs(lit), False)]
        while stack:
            node, expanded = stack.pop()
            if node in cache:
                continue
            kind = self._kind[node]
            if kind == K_INPUT:
                cache[node] = bool(inputs.get(node, False))
                continue
            if not expanded:
                stack.append((node, True))
                for arg in self._args[node]:
                    if abs(arg) not in cache:
                        stack.append((abs(arg), False))
                continue
            values = [
                cache[abs(arg)] ^ (arg < 0) for arg in self._args[node]
            ]
            if kind == K_AND:
                cache[node] = values[0] and values[1]
            elif kind == K_XOR:
                cache[node] = values[0] ^ values[1]
            else:  # K_ITE
                cache[node] = values[1] if values[0] else values[2]
        return cache[abs(lit)] ^ (lit < 0)

    def cone_nodes(self, roots: Iterable[int]) -> set[int]:
        """Node ids of the transitive fan-in of ``roots`` (constants excluded)."""
        seen: set[int] = set()
        stack = [abs(root) for root in roots]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            stack.extend(abs(arg) for arg in self._args[node])
        return seen
