"""And-Inverter-Graph intermediate representation for the encoding pipeline.

At ``opt_level >= 1`` the bit-blaster no longer emits Tseitin clauses
directly: it lowers every word-level term into this IR first.  The graph is
an AIG extended with native XOR and ITE (mux) nodes — both are pervasive in
datapath logic, and a dedicated node encodes to 4 clauses where the
AND/inverter expansion would need 9 — with structural hashing and a set of
constant/two-level rewrite rules applied at construction time.  Only the
cones actually asserted or assumed are lowered to CNF
(:class:`~repro.aig.lower.CnfLowering`), so rewritten-away and never-used
gates cost nothing downstream.
"""

from repro.aig.graph import AIG, AigStats
from repro.aig.lower import CnfLowering

__all__ = ["AIG", "AigStats", "CnfLowering"]
