"""Demand-driven lowering of AIG cones into CNF.

The lowering is incremental in exactly the way the persistent
:class:`~repro.solve.context.SolverContext` needs: every
:meth:`CnfLowering.materialize` call walks only the not-yet-lowered part of
a literal's cone, allocates one CNF variable per gate and appends the
Tseitin clauses for it.  A node is lowered at most once, so cones shared
between assertions (repeated BMC frame logic, re-used CEGIS machinery)
produce their clauses exactly once, and graph nodes that are never part of
an asserted or assumed cone produce no clauses at all.

Clause shapes:

* ``AND``  — 3 clauses (the standard Tseitin conjunction),
* ``XOR``  — 4 clauses,
* ``ITE``  — 4 clauses (``out ⇔ (c ? t : e)``); the AND/OR expansion the
  naive blaster uses needs 3 auxiliary gates and 9 clauses for the same
  function, which is where much of the mux-heavy datapath's clause-count
  reduction comes from.
"""

from __future__ import annotations

from repro.aig.graph import AIG, K_AND, K_CONST, K_INPUT, K_ITE, K_XOR
from repro.sat.cnf import CNF


class CnfLowering:
    """Lower cones of one :class:`~repro.aig.graph.AIG` into one :class:`CNF`."""

    def __init__(self, aig: AIG, cnf: CNF, true_lit: int):
        self.aig = aig
        self.cnf = cnf
        # node id -> CNF literal of the positive node
        self._map: dict[int, int] = {1: true_lit}
        self.nodes_lowered = 0
        self.clauses_emitted = 0
        # Input nodes the owner wants notified about: when one is lowered,
        # its CNF variable is appended to ``watched_lowered`` (drained by
        # the owner).  The solver context uses this to freeze the bits of
        # named variables against preprocessing in O(newly lowered bits)
        # instead of rescanning every known bit per sync.
        self.watched: set[int] = set()
        self.watched_lowered: list[int] = []

    def is_lowered(self, lit: int) -> bool:
        return abs(lit) in self._map

    def materialize(self, lit: int) -> int:
        """Return the CNF literal for ``lit``, lowering its cone on demand."""
        node = abs(lit)
        out = self._map.get(node)
        if out is None:
            self._lower_cone(node)
            out = self._map[node]
        return out if lit > 0 else -out

    def _cnf_lit(self, lit: int) -> int:
        out = self._map[abs(lit)]
        return out if lit > 0 else -out

    def _lower_cone(self, root: int) -> None:
        aig = self.aig
        cnf = self.cnf
        add = cnf.add_clause
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in self._map:
                continue
            kind = aig._kind[node]
            if kind in (K_INPUT, K_CONST):
                # Inputs get a variable but no clauses; their value is free
                # until some cone constrains them.
                var = cnf.new_var()
                self._map[node] = var
                if node in self.watched:
                    self.watched_lowered.append(var)
                continue
            if not expanded:
                stack.append((node, True))
                for arg in aig._args[node]:
                    if abs(arg) not in self._map:
                        stack.append((abs(arg), False))
                continue
            out = cnf.new_var()
            before = len(cnf.clauses)
            if kind == K_AND:
                a, b = (self._cnf_lit(arg) for arg in aig._args[node])
                add([-out, a])
                add([-out, b])
                add([out, -a, -b])
            elif kind == K_XOR:
                a, b = (self._cnf_lit(arg) for arg in aig._args[node])
                add([-out, a, b])
                add([-out, -a, -b])
                add([out, -a, b])
                add([out, a, -b])
            elif kind == K_ITE:
                c, t, e = (self._cnf_lit(arg) for arg in aig._args[node])
                add([-out, -c, t])
                add([out, -c, -t])
                add([-out, c, e])
                add([out, c, -e])
            else:  # pragma: no cover - defensive
                raise ValueError(f"cannot lower AIG node kind {kind!r}")
            self.nodes_lowered += 1
            self.clauses_emitted += len(cnf.clauses) - before
            self._map[node] = out
