"""BTOR2 intermediate format support.

The paper's flow converts the RTL into BTOR2 with Yosys and feeds it to
Pono.  This package keeps that interface contract: any
:class:`~repro.ts.system.TransitionSystem` built by the processor models can
be serialised to BTOR2 text (:func:`write_btor2`) and BTOR2 text in the
supported subset can be parsed back into a transition system
(:func:`parse_btor2`).
"""

from repro.btor.writer import write_btor2
from repro.btor.parser import parse_btor2

__all__ = ["write_btor2", "parse_btor2"]
