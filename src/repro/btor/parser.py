"""Parse BTOR2 text (the subset emitted by :mod:`repro.btor.writer`).

The parser reconstructs a :class:`~repro.ts.system.TransitionSystem` from
``sort`` / ``input`` / ``state`` / ``init`` / ``next`` / ``constraint`` /
``bad`` lines plus the word-level operators our writer produces.  Anonymous
states and inputs get generated names so round-tripping always succeeds.

Every parse failure is reported as a :class:`~repro.errors.Btor2Error`
carrying the 1-based line number, the offending token, and the source line
itself, so a bad file can be fixed without bisecting it by hand.
"""

from __future__ import annotations

from repro.errors import Btor2Error
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.ts.system import TransitionSystem

_BINARY_BUILDERS = {
    "and": T.bv_and,
    "or": T.bv_or,
    "xor": T.bv_xor,
    "add": T.bv_add,
    "sub": T.bv_sub,
    "mul": T.bv_mul,
    "eq": T.bv_eq,
    "ult": T.bv_ult,
    "slt": T.bv_slt,
    "concat": T.bv_concat,
    "sll": T.bv_shl,
    "srl": T.bv_lshr,
    "sra": T.bv_ashr,
}


class _LineError(Exception):
    """Internal: a parse failure local to one line, pre-location."""

    def __init__(self, message: str, token: str = ""):
        super().__init__(message)
        self.message = message
        self.token = token


def _fail(lineno: int, line: str, message: str, token: str = "") -> None:
    at = f"line {lineno}"
    if token:
        at += f", token {token!r}"
    raise Btor2Error(f"{at}: {message}\n    {line}")


def parse_btor2(text: str, name: str = "parsed") -> TransitionSystem:
    """Parse BTOR2 ``text`` into a transition system."""
    ts = TransitionSystem(name=name)
    sorts: dict[int, int] = {}  # node id -> bit width
    terms: dict[int, BV] = {}  # node id -> term
    state_names: dict[int, str] = {}  # node id -> state name
    bad_counter = 0

    def as_int(token: str, what: str, base: int = 10) -> int:
        try:
            return int(token, base)
        except ValueError:
            raise _LineError(f"expected {what}, got {token!r}", token) from None

    def sort_width(token: str) -> int:
        sort_id = as_int(token, "a sort id")
        width = sorts.get(sort_id)
        if width is None:
            raise _LineError(f"sort {sort_id} referenced before definition", token)
        return width

    def resolve(token: str) -> BV:
        node_id = as_int(token, "a node id")
        term = terms.get(abs(node_id))
        if term is None:
            raise _LineError(
                f"node {abs(node_id)} referenced before definition", token
            )
        return T.bv_not(term) if node_id < 0 else term

    def state_name(token: str) -> str:
        state_id = as_int(token, "a state node id")
        found = state_names.get(state_id)
        if found is None:
            raise _LineError(f"node {state_id} is not a state", token)
        return found

    def arg(parts: list[str], index: int, what: str) -> str:
        if index >= len(parts):
            raise _LineError(
                f"truncated line: missing {what} "
                f"(got {len(parts)} token(s), need at least {index + 1})"
            )
        return parts[index]

    for lineno, raw_line in enumerate(text.splitlines(), 1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            node_id = as_int(parts[0], "a node id")
            kind = arg(parts, 1, "an operator")

            if kind == "sort":
                sort_kind = arg(parts, 2, "a sort kind")
                if sort_kind != "bitvec":
                    raise _LineError(
                        f"unsupported sort {sort_kind!r} (only bitvec)", sort_kind
                    )
                sorts[node_id] = as_int(arg(parts, 3, "a bit width"), "a bit width")
            elif kind in ("input", "state"):
                width = sort_width(arg(parts, 2, "a sort id"))
                symbol_name = parts[3] if len(parts) > 3 else f"{kind}_{node_id}"
                if kind == "input":
                    terms[node_id] = ts.add_input(symbol_name, width)
                else:
                    terms[node_id] = ts.add_state(symbol_name, width)
                    state_names[node_id] = symbol_name
            elif kind in ("constd", "const", "consth"):
                width = sort_width(arg(parts, 2, "a sort id"))
                base = {"constd": 10, "const": 2, "consth": 16}[kind]
                value_token = arg(parts, 3, "a constant value")
                terms[node_id] = T.bv_const(
                    as_int(value_token, f"a base-{base} constant", base), width
                )
            elif kind == "init":
                ts.set_init(
                    state_name(arg(parts, 3, "a state node id")),
                    resolve(arg(parts, 4, "a value node id")),
                )
            elif kind == "next":
                ts.set_next(
                    state_name(arg(parts, 3, "a state node id")),
                    resolve(arg(parts, 4, "a value node id")),
                )
            elif kind == "constraint":
                ts.add_constraint(resolve(arg(parts, 2, "a condition node id")))
            elif kind == "bad":
                bad_ref = resolve(arg(parts, 2, "a condition node id"))
                prop_name = parts[3] if len(parts) > 3 else f"bad_{bad_counter}"
                bad_counter += 1
                ts.add_property(prop_name, T.bv_not(bad_ref))
            elif kind == "not":
                terms[node_id] = T.bv_not(resolve(arg(parts, 3, "an operand")))
            elif kind == "ite":
                terms[node_id] = T.bv_ite(
                    resolve(arg(parts, 3, "a condition")),
                    resolve(arg(parts, 4, "a then-branch")),
                    resolve(arg(parts, 5, "an else-branch")),
                )
            elif kind == "slice":
                terms[node_id] = T.bv_extract(
                    resolve(arg(parts, 3, "an operand")),
                    as_int(arg(parts, 4, "a high bit"), "a high bit"),
                    as_int(arg(parts, 5, "a low bit"), "a low bit"),
                )
            elif kind == "uext":
                width = sort_width(arg(parts, 2, "a sort id"))
                terms[node_id] = T.bv_zext(resolve(arg(parts, 3, "an operand")), width)
            elif kind == "sext":
                width = sort_width(arg(parts, 2, "a sort id"))
                terms[node_id] = T.bv_sext(resolve(arg(parts, 3, "an operand")), width)
            elif kind in _BINARY_BUILDERS:
                terms[node_id] = _BINARY_BUILDERS[kind](
                    resolve(arg(parts, 3, "a left operand")),
                    resolve(arg(parts, 4, "a right operand")),
                )
            else:
                raise _LineError(f"unsupported BTOR2 operator {kind!r}", kind)
        except _LineError as exc:
            _fail(lineno, line, exc.message, exc.token)
    return ts
