"""Parse BTOR2 text (the subset emitted by :mod:`repro.btor.writer`).

The parser reconstructs a :class:`~repro.ts.system.TransitionSystem` from
``sort`` / ``input`` / ``state`` / ``init`` / ``next`` / ``constraint`` /
``bad`` lines plus the word-level operators our writer produces.  Anonymous
states and inputs get generated names so round-tripping always succeeds.
"""

from __future__ import annotations

from repro.errors import Btor2Error
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.ts.system import TransitionSystem

_BINARY_BUILDERS = {
    "and": T.bv_and,
    "or": T.bv_or,
    "xor": T.bv_xor,
    "add": T.bv_add,
    "sub": T.bv_sub,
    "mul": T.bv_mul,
    "eq": T.bv_eq,
    "ult": T.bv_ult,
    "slt": T.bv_slt,
    "concat": T.bv_concat,
    "sll": T.bv_shl,
    "srl": T.bv_lshr,
    "sra": T.bv_ashr,
}


def parse_btor2(text: str, name: str = "parsed") -> TransitionSystem:
    """Parse BTOR2 ``text`` into a transition system."""
    ts = TransitionSystem(name=name)
    sorts: dict[int, int] = {}  # node id -> bit width
    terms: dict[int, BV] = {}  # node id -> term
    state_names: dict[int, str] = {}  # node id -> state name
    anon_counter = 0
    bad_counter = 0

    def resolve(node_id_text: str) -> BV:
        node_id = int(node_id_text)
        if node_id >= 0:
            term = terms.get(node_id)
            if term is None:
                raise Btor2Error(f"node {node_id} referenced before definition")
            return term
        term = terms.get(-node_id)
        if term is None:
            raise Btor2Error(f"node {-node_id} referenced before definition")
        return T.bv_not(term)

    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        node_id = int(parts[0])
        kind = parts[1]

        if kind == "sort":
            if parts[2] != "bitvec":
                raise Btor2Error(f"unsupported sort {parts[2]!r} (only bitvec)")
            sorts[node_id] = int(parts[3])
        elif kind in ("input", "state"):
            width = sorts[int(parts[2])]
            if len(parts) > 3:
                symbol_name = parts[3]
            else:
                symbol_name = f"{kind}_{node_id}"
                anon_counter += 1
            if kind == "input":
                terms[node_id] = ts.add_input(symbol_name, width)
            else:
                terms[node_id] = ts.add_state(symbol_name, width)
                state_names[node_id] = symbol_name
        elif kind in ("constd", "const", "consth"):
            width = sorts[int(parts[2])]
            base = {"constd": 10, "const": 2, "consth": 16}[kind]
            terms[node_id] = T.bv_const(int(parts[3], base), width)
        elif kind == "init":
            state_id = int(parts[3])
            ts.set_init(state_names[state_id], resolve(parts[4]))
        elif kind == "next":
            state_id = int(parts[3])
            ts.set_next(state_names[state_id], resolve(parts[4]))
        elif kind == "constraint":
            ts.add_constraint(resolve(parts[2]))
        elif kind == "bad":
            prop_name = parts[3] if len(parts) > 3 else f"bad_{bad_counter}"
            bad_counter += 1
            ts.add_property(prop_name, T.bv_not(resolve(parts[2])))
        elif kind == "not":
            terms[node_id] = T.bv_not(resolve(parts[3]))
        elif kind == "ite":
            terms[node_id] = T.bv_ite(
                resolve(parts[3]), resolve(parts[4]), resolve(parts[5])
            )
        elif kind == "slice":
            terms[node_id] = T.bv_extract(
                resolve(parts[3]), int(parts[4]), int(parts[5])
            )
        elif kind == "uext":
            width = sorts[int(parts[2])]
            terms[node_id] = T.bv_zext(resolve(parts[3]), width)
        elif kind == "sext":
            width = sorts[int(parts[2])]
            terms[node_id] = T.bv_sext(resolve(parts[3]), width)
        elif kind in _BINARY_BUILDERS:
            terms[node_id] = _BINARY_BUILDERS[kind](resolve(parts[3]), resolve(parts[4]))
        else:
            raise Btor2Error(f"unsupported BTOR2 operator {kind!r}")
    return ts
