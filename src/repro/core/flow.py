"""The SQED and SEPE-SQED verification drivers."""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Mapping, Optional

from repro.bmc.engine import BmcEngine
from repro.bmc.kinduction import KInductionEngine
from repro.core.results import ProofOutcome, VerificationOutcome
from repro.errors import VerificationError
from repro.pdr.engine import PdrEngine
from repro.solve.pipeline import PipelineConfig
from repro.isa.instructions import get_instruction
from repro.proc.bugs import Bug
from repro.proc.config import ProcessorConfig
from repro.qed.equivalents import default_equivalent_programs
from repro.qed.mapping import MemoryPartition, RegisterPartition
from repro.qed.module import QedVerificationModel, build_verification_model
from repro.qed.scheme import EddivScheme, EdsepvScheme
from repro.synth.program import SynthesizedProgram


def pool_for_bug(
    bug: Bug,
    equivalents: Optional[Mapping[str, SynthesizedProgram]] = None,
    extra_ops: Iterable[str] = (),
) -> tuple[str, ...]:
    """A compact instruction pool that can trigger and expose ``bug``.

    The pool contains the bug's target opcodes, any opcodes it recommends
    (e.g. the producer of a forwarding hazard), and — when equivalent
    programs are supplied — every opcode those programs expand to, so the
    EDSEP-V transformation stays inside the DUV's supported set.
    """
    pool: list[str] = []

    def add(op: str) -> None:
        op = op.upper()
        if op not in pool:
            pool.append(op)

    for op in bug.target_ops:
        add(op)
    for op in bug.recommended_pool:
        add(op)
    for op in extra_ops:
        add(op)
    if equivalents is not None:
        for target in list(bug.target_ops) + list(extra_ops):
            program = equivalents.get(target.upper())
            if program is None:
                continue
            for template in program.expand():
                add(template.mnemonic)
            defn = get_instruction(target)
            if defn.is_load or defn.is_store:
                add("SW" if defn.is_store else "LW")
    return tuple(pool)


class _BaseFlow:
    """Shared machinery of the two flows.

    ``jobs`` controls parallel execution: with ``jobs > 1`` a single
    :meth:`run` shards the BMC frames across worker processes
    (:func:`repro.par.bmc.check_frames_sharded`) and :meth:`run_many`
    distributes independent bug variants across workers.  ``jobs=1`` (the
    default) is the plain sequential incremental path.
    """

    method = "base"

    def __init__(
        self,
        config: ProcessorConfig,
        fifo_depth: int = 2,
        compare_memory: bool = True,
        backend: str = "cdcl",
        jobs: int = 1,
        opt_level: Optional[int] = None,
        lint: Optional[str] = None,
        absint: Optional[bool] = None,
    ):
        self.config = config
        self.fifo_depth = fifo_depth
        self.compare_memory = compare_memory
        self.backend = backend
        self.jobs = jobs
        self.opt_level = opt_level
        #: Pre-solve lint gate mode ("error"/"warn"/"off"); ``None`` defers
        #: to ``$REPRO_LINT_GATE`` (default off).
        self.lint = lint
        #: Abstract-interpretation knob (fold/strengthen/seed); ``None``
        #: defers to ``$REPRO_ABSINT`` (default on at opt_level >= 1).
        self.absint = absint

    def _opt(self) -> PipelineConfig:
        """The engines' pipeline config: opt_level plus the absint override."""
        cfg = PipelineConfig.resolve(self.opt_level)
        if self.absint is not None and self.absint != cfg.absint:
            cfg = dataclasses.replace(cfg, absint=self.absint)
        return cfg

    def build_model(self, bug: Optional[Bug] = None) -> QedVerificationModel:
        raise NotImplementedError

    def _gate_model(self, model: QedVerificationModel) -> QedVerificationModel:
        """Run the configured lint gate over a freshly built model."""
        from repro.lint.gate import gate_transition_system

        gate_transition_system(
            model.ts, self.lint, where=f"{type(self).__name__}"
        )
        return model

    def run(
        self,
        bug: Optional[Bug] = None,
        bound: int = 12,
        conflict_budget: Optional[int] = None,
        jobs: Optional[int] = None,
    ) -> VerificationOutcome:
        """Build the verification model, run BMC and summarise the outcome.

        ``jobs`` overrides the flow-level knob for this run.  In sharded
        mode (``jobs > 1``) the ``conflict_budget`` caps each frame's query
        instead of the whole run — frames race, so a cumulative cap has no
        sequential order to follow.
        """
        effective_jobs = self.jobs if jobs is None else jobs
        start = time.perf_counter()
        model = self._gate_model(self.build_model(bug))
        if effective_jobs == 1:
            # lint="off": the gate above already covered this exact system.
            engine = BmcEngine(
                model.ts, backend=self.backend, opt_level=self._opt(), lint="off"
            )
            result = engine.check(
                model.property_name, bound=bound, conflict_budget=conflict_budget
            )
        else:
            from repro.par.bmc import check_frames_sharded

            result = check_frames_sharded(
                model.ts,
                model.property_name,
                bound=bound,
                jobs=effective_jobs,
                backend=self.backend,
                conflict_budget=conflict_budget,
                opt_level=self._opt(),
            )
        elapsed = time.perf_counter() - start
        detected: Optional[bool]
        if result.holds is None:
            detected = None
        else:
            detected = not result.holds
        return VerificationOutcome(
            method=self.method,
            bug_name=None if bug is None else bug.name,
            detected=detected,
            runtime_seconds=elapsed,
            bound=bound,
            counterexample_length=result.counterexample_length,
            bmc_result=result,
        )

    #: Engines accepted by :meth:`prove`.
    PROVE_ENGINES = ("pdr", "kinduction")

    def prove(
        self,
        bug: Optional[Bug] = None,
        engine: str = "pdr",
        max_k: int = 4,
        max_frames: int = 20,
        conflict_budget: Optional[int] = None,
        total_conflict_budget: Optional[int] = None,
    ) -> ProofOutcome:
        """Attempt an *unbounded* proof of the QED consistency property.

        Unlike :meth:`run`, which only searches for counterexamples up to a
        bound, a ``True`` outcome here means the property holds at **every**
        depth.  ``engine`` selects the prover: ``"pdr"`` (IC3/PDR, emits an
        inductive invariant via ``pdr_result.invariant``) or
        ``"kinduction"``.  ``max_frames`` bounds PDR's frame exploration,
        ``max_k`` bounds the induction depth, and ``conflict_budget`` caps
        each SAT query; exhausting any of them yields ``proven=None``.
        ``total_conflict_budget`` (PDR only) caps the whole run's
        cumulative effort — the knob campaign drivers use to keep
        obligation storms on buggy models from running away.

        The returned outcome carries the verification ``model`` the engine
        ran on: re-check a PDR invariant against ``outcome.model.ts`` (a
        fresh ``build_model`` call mints new symbol names, so the check
        must use this exact system).
        """
        if engine not in self.PROVE_ENGINES:
            raise VerificationError(
                f"unknown proof engine {engine!r}; expected one of {self.PROVE_ENGINES}"
            )
        start = time.perf_counter()
        model = self._gate_model(self.build_model(bug))
        bug_name = None if bug is None else bug.name
        if engine == "pdr":
            pdr = PdrEngine(
                model.ts,
                backend=self.backend,
                opt_level=self._opt(),
                max_frames=max_frames,
            ).prove(
                model.property_name,
                conflict_budget=conflict_budget,
                total_conflict_budget=total_conflict_budget,
            )
            return ProofOutcome(
                method=self.method,
                bug_name=bug_name,
                engine=engine,
                proven=pdr.proven,
                runtime_seconds=time.perf_counter() - start,
                depth=pdr.frames_explored,
                pdr_result=pdr,
                model=model,
            )
        kind = KInductionEngine(
            model.ts, backend=self.backend, opt_level=self._opt()
        ).prove(model.property_name, max_k=max_k, conflict_budget=conflict_budget)
        return ProofOutcome(
            method=self.method,
            bug_name=bug_name,
            engine=engine,
            proven=kind.proven,
            runtime_seconds=time.perf_counter() - start,
            depth=kind.k,
            kinduction_result=kind,
            model=model,
        )

    def run_many(
        self,
        bugs: Iterable[Optional[Bug]],
        bound: int = 12,
        conflict_budget: Optional[int] = None,
        jobs: Optional[int] = None,
    ) -> list[VerificationOutcome]:
        """Verify independent bug variants, ``jobs`` at a time.

        Results come back in input order; each variant runs the plain
        sequential engine inside its worker, so per-variant verdicts are
        identical to calling :meth:`run` in a loop.
        """
        from repro.par.pool import TaskPool

        bug_list = list(bugs)
        effective_jobs = self.jobs if jobs is None else jobs

        def task(bug: Optional[Bug]) -> VerificationOutcome:
            return self.run(bug, bound=bound, conflict_budget=conflict_budget, jobs=1)

        return TaskPool(effective_jobs).map(task, bug_list)


class SqedFlow(_BaseFlow):
    """Classic SQED: EDDI-V duplication plus the self-consistency property."""

    method = "SQED"

    def build_model(self, bug: Optional[Bug] = None) -> QedVerificationModel:
        isa = self.config.isa
        partition = RegisterPartition.eddiv(isa.num_regs)
        memory = MemoryPartition(isa.mem_words)
        scheme = EddivScheme(partition, memory)
        return build_verification_model(
            self.config,
            scheme,
            bug=bug,
            fifo_depth=self.fifo_depth,
            compare_memory=self.compare_memory,
        )


class SepeSqedFlow(_BaseFlow):
    """SEPE-SQED: EDSEP-V transformation with semantically equivalent programs."""

    method = "SEPE-SQED"

    def __init__(
        self,
        config: ProcessorConfig,
        equivalents: Optional[Mapping[str, SynthesizedProgram]] = None,
        fifo_depth: int = 2,
        compare_memory: bool = True,
        num_temps: Optional[int] = None,
        backend: str = "cdcl",
        jobs: int = 1,
        opt_level: Optional[int] = None,
        lint: Optional[str] = None,
        absint: Optional[bool] = None,
    ):
        super().__init__(
            config,
            fifo_depth=fifo_depth,
            compare_memory=compare_memory,
            backend=backend,
            jobs=jobs,
            opt_level=opt_level,
            lint=lint,
            absint=absint,
        )
        self.num_temps = num_temps
        if equivalents is None:
            available = default_equivalent_programs(config.isa)
            equivalents = {
                op: program
                for op, program in available.items()
                if op in config.supported_ops
            }
        if not equivalents:
            raise VerificationError(
                "SEPE-SQED needs at least one equivalent program for the pool"
            )
        self.equivalents = dict(equivalents)

    def build_model(self, bug: Optional[Bug] = None) -> QedVerificationModel:
        isa = self.config.isa
        partition = RegisterPartition.edsepv(isa.num_regs, num_temps=self.num_temps)
        memory = MemoryPartition(isa.mem_words)
        scheme = EdsepvScheme(partition, memory, self.equivalents)
        return build_verification_model(
            self.config,
            scheme,
            bug=bug,
            fifo_depth=self.fifo_depth,
            compare_memory=self.compare_memory,
        )
