"""Result records produced by the verification flows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.bmc.engine import BmcResult
from repro.bmc.kinduction import KInductionResult
from repro.bmc.trace import Trace
from repro.pdr.engine import PdrResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qed.module import QedVerificationModel
    from repro.smt.terms import BV


@dataclass
class VerificationOutcome:
    """One (method, bug) verification run.

    ``detected`` is ``True`` when BMC found a violation of the QED
    consistency property (i.e. a bug trace), ``False`` when the property held
    up to the bound, and ``None`` when the solver budget ran out.
    """

    method: str
    bug_name: Optional[str]
    detected: Optional[bool]
    runtime_seconds: float
    bound: int
    counterexample_length: Optional[int] = None
    bmc_result: Optional[BmcResult] = None

    @property
    def trace(self) -> Optional[Trace]:
        return None if self.bmc_result is None else self.bmc_result.trace

    @property
    def solver_stats(self):
        """CDCL work counters of the underlying BMC run (``None`` if absent)."""
        return None if self.bmc_result is None else self.bmc_result.stats.solver_stats

    def summary_row(self) -> list[str]:
        """Row used by the experiment harnesses' tables."""
        status = {True: "detected", False: "not detected", None: "inconclusive"}[self.detected]
        length = "-" if self.counterexample_length is None else str(self.counterexample_length)
        return [
            self.bug_name or "golden",
            self.method,
            status,
            f"{self.runtime_seconds:.2f}s",
            length,
        ]


@dataclass
class ProofOutcome:
    """One (method, bug) unbounded proof attempt.

    ``proven`` is ``True`` when the QED consistency property was proven for
    **every** depth (k-induction converged or PDR found an inductive
    invariant), ``False`` when a counterexample exists, and ``None`` when
    the engine gave up (depth/frame limit or conflict budget).  ``depth``
    is the induction depth ``k`` (k-induction) or the number of frames
    explored (PDR).

    ``model`` is the verification model the engine actually ran on.  It
    matters for invariant certification: every ``build_model`` call mints a
    fresh module prefix for its state symbols, so a PDR invariant can only
    be re-checked (``check_invariant``) against *this* transition system —
    rebuilding the model produces differently named symbols and the check
    would vacuously fail.
    """

    method: str
    bug_name: Optional[str]
    engine: str
    proven: Optional[bool]
    runtime_seconds: float
    depth: int
    kinduction_result: Optional[KInductionResult] = None
    pdr_result: Optional[PdrResult] = None
    model: "Optional[QedVerificationModel]" = None

    @property
    def invariant(self) -> "Optional[list[BV]]":
        """The PDR-emitted inductive invariant clauses (``None`` otherwise)."""
        return None if self.pdr_result is None else self.pdr_result.invariant

    @property
    def solver_stats(self):
        """CDCL work counters of the proof engine (``None`` if absent)."""
        if self.pdr_result is not None:
            return self.pdr_result.stats.solver_stats
        if self.kinduction_result is not None:
            return self.kinduction_result.step_solver_stats
        return None

    @property
    def pdr_stats(self):
        """IC3/PDR work counters — generalisation attribution (core/MIC/CTG
        literal drops), CTGs blocked, subsumption and ``F_inf`` promotion
        counts — so benchmark harnesses can attribute where a proof's
        conflict budget went.  ``None`` for non-PDR engines."""
        return None if self.pdr_result is None else self.pdr_result.stats

    def summary_row(self) -> list[str]:
        status = {True: "proven", False: "refuted", None: "inconclusive"}[self.proven]
        return [
            self.bug_name or "golden",
            f"{self.method}/{self.engine}",
            status,
            f"{self.runtime_seconds:.2f}s",
            str(self.depth),
        ]
