"""Result records produced by the verification flows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bmc.engine import BmcResult
from repro.bmc.trace import Trace


@dataclass
class VerificationOutcome:
    """One (method, bug) verification run.

    ``detected`` is ``True`` when BMC found a violation of the QED
    consistency property (i.e. a bug trace), ``False`` when the property held
    up to the bound, and ``None`` when the solver budget ran out.
    """

    method: str
    bug_name: Optional[str]
    detected: Optional[bool]
    runtime_seconds: float
    bound: int
    counterexample_length: Optional[int] = None
    bmc_result: Optional[BmcResult] = None

    @property
    def trace(self) -> Optional[Trace]:
        return None if self.bmc_result is None else self.bmc_result.trace

    @property
    def solver_stats(self):
        """CDCL work counters of the underlying BMC run (``None`` if absent)."""
        return None if self.bmc_result is None else self.bmc_result.stats.solver_stats

    def summary_row(self) -> list[str]:
        """Row used by the experiment harnesses' tables."""
        status = {True: "detected", False: "not detected", None: "inconclusive"}[self.detected]
        length = "-" if self.counterexample_length is None else str(self.counterexample_length)
        return [
            self.bug_name or "golden",
            self.method,
            status,
            f"{self.runtime_seconds:.2f}s",
            length,
        ]
