"""Top-level verification flows: SQED and SEPE-SQED.

These classes glue everything together the way Sections 3 and 5 of the
paper describe: pick (or synthesize) equivalent programs, build the QED
verification model around the DUV, run bounded model checking on the
universal consistency property, and report whether the injected bug was
detected, how long it took and how long the counterexample is.
"""

from repro.core.results import VerificationOutcome
from repro.core.flow import SqedFlow, SepeSqedFlow, pool_for_bug

__all__ = ["VerificationOutcome", "SqedFlow", "SepeSqedFlow", "pool_for_bug"]
