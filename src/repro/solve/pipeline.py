"""Configuration of the staged term → AIG → CNF → preprocess compilation.

Every solver entry point (``SolverContext``, ``BVSolver``, the BMC and
k-induction engines, CEGIS, the flows and the experiment harnesses) accepts
an ``opt_level`` that resolves to a :class:`PipelineConfig`:

* ``opt_level=0`` — the naive reference path: direct Tseitin bit-blasting
  with only local gate caching, no cone-of-influence reduction, no CNF
  preprocessing.  This is the seed encoder, kept alive for differential
  testing (CI runs the whole suite with ``REPRO_OPT_LEVEL=0``).
* ``opt_level=1`` — terms lower through the :mod:`repro.aig` IR (structural
  hashing, rewrite rules, 4-clause muxes) and BMC restricts the transition
  system to the property's cone of influence.
* ``opt_level=2`` — additionally runs the incrementality-safe CNF
  preprocessor (:mod:`repro.sat.preprocess`) before clauses reach the SAT
  backend.  This is the default.

The process-wide default comes from the ``REPRO_OPT_LEVEL`` environment
variable, so a whole test run or benchmark sweep can be pinned to the naive
path without touching call sites.

Orthogonally, ``absint`` (default on, ``REPRO_ABSINT=0`` to disable)
enables the abstract-interpretation layer from :mod:`repro.absint`:
pre-encoding constant-latch/bit folding in BMC, k-induction step
strengthening and PDR frame-∞ lemma seeding.  It only takes effect at
``opt_level >= 1`` — level 0 stays the untouched reference encoder.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.errors import SolveError

ENV_OPT_LEVEL = "REPRO_OPT_LEVEL"
DEFAULT_OPT_LEVEL = 2
MAX_OPT_LEVEL = 2
ENV_ABSINT = "REPRO_ABSINT"


def default_opt_level() -> int:
    """The process default: ``$REPRO_OPT_LEVEL`` when set, else 2."""
    raw = os.environ.get(ENV_OPT_LEVEL)
    if raw is None or raw == "":
        return DEFAULT_OPT_LEVEL
    try:
        level = int(raw)
    except ValueError:
        raise SolveError(
            f"{ENV_OPT_LEVEL} must be an integer 0..{MAX_OPT_LEVEL}, got {raw!r}"
        )
    if not 0 <= level <= MAX_OPT_LEVEL:
        raise SolveError(
            f"{ENV_OPT_LEVEL} must be in 0..{MAX_OPT_LEVEL}, got {level}"
        )
    return level


def default_absint() -> bool:
    """The process default: ``$REPRO_ABSINT`` when set, else on."""
    raw = os.environ.get(ENV_ABSINT)
    if raw is None or raw == "":
        return True
    if raw in ("0", "1"):
        return raw == "1"
    raise SolveError(f"{ENV_ABSINT} must be 0 or 1, got {raw!r}")


@dataclass(frozen=True)
class PipelineConfig:
    """Which stages of the compilation pipeline are enabled."""

    opt_level: int = DEFAULT_OPT_LEVEL
    absint: bool = dataclasses.field(default_factory=default_absint)

    def __post_init__(self) -> None:
        if not 0 <= self.opt_level <= MAX_OPT_LEVEL:
            raise SolveError(
                f"opt_level must be in 0..{MAX_OPT_LEVEL}, got {self.opt_level}"
            )
        if not isinstance(self.absint, bool):
            raise SolveError(f"absint must be a bool, got {self.absint!r}")

    @property
    def use_aig(self) -> bool:
        """Lower terms through the AIG IR instead of direct Tseitin."""
        return self.opt_level >= 1

    @property
    def coi(self) -> bool:
        """Restrict transition systems to the checked property's cone."""
        return self.opt_level >= 1

    @property
    def preprocess(self) -> bool:
        """Run CNF preprocessing before the SAT backend sees clauses."""
        return self.opt_level >= 2

    @property
    def use_absint(self) -> bool:
        """Apply abstract-interpretation facts (fold/strengthen/seed).

        Off at ``opt_level=0`` regardless of the knob: level 0 is the
        untouched reference encoder the differential legs pin against.
        """
        return self.absint and self.opt_level >= 1

    @staticmethod
    def resolve(value: "PipelineConfig | int | None") -> "PipelineConfig":
        """Normalise an ``opt_level`` argument (config, int, or None)."""
        if value is None:
            return PipelineConfig(opt_level=default_opt_level())
        if isinstance(value, PipelineConfig):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return PipelineConfig(opt_level=value)
        raise SolveError(
            f"opt_level must be a PipelineConfig, an int or None, got {value!r}"
        )


@dataclass
class EncodingStats:
    """Size and effort counters of the compilation pipeline.

    Surfaced by :meth:`repro.solve.context.SolverContext.encoding_stats`
    and aggregated into ``BmcStats`` and the benchmark JSON output.
    ``cnf_clauses_pre`` counts clauses produced by the blaster;
    ``cnf_clauses_post`` counts what actually reached the SAT backend after
    preprocessing (equal when preprocessing is off).
    """

    opt_level: int = DEFAULT_OPT_LEVEL
    aig_nodes: int = 0
    aig_and: int = 0
    aig_xor: int = 0
    aig_ite: int = 0
    aig_rewrite_hits: int = 0
    aig_strash_hits: int = 0
    cnf_vars: int = 0
    cnf_clauses_pre: int = 0
    cnf_clauses_post: int = 0
    units_found: int = 0
    subsumed: int = 0
    vars_eliminated: int = 0
    vars_restored: int = 0
    resolvents_added: int = 0
    coi_states_kept: int = 0
    coi_states_dropped: int = 0
    coi_state_bits_dropped: int = 0
    absint_states_folded: int = 0
    absint_bits_folded: int = 0
    blast_seconds: float = 0.0
    preprocess_seconds: float = 0.0

    def copy(self) -> "EncodingStats":
        return dataclasses.replace(self)

    def as_dict(self) -> dict:
        return dict(self.__dict__)
