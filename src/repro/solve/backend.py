"""Pluggable SAT backends for the persistent solver context.

A backend is anything that accepts clauses incrementally and decides
satisfiability under assumptions.  Two implementations ship here:

* :class:`CdclBackend` — the builtin CDCL solver from :mod:`repro.sat`.
  It is fully incremental: clauses, learned clauses, variable activities
  and saved phases all persist between ``solve`` calls, which is what the
  iterated solver loops (BMC, k-induction, CEGIS, QED) exploit.
* :class:`DimacsBackend` — a subprocess backend that serialises the current
  clause set to DIMACS and runs an external solver binary (MiniSat, Kissat,
  CaDiCaL, ... anything speaking the standard competition output format).
  It is one-shot per query — assumptions become temporary unit clauses —
  but lets large queries escape the pure-python solver.

Backends are resolved by :func:`create_backend` from a spec string, so the
choice threads through every layer as a plain keyword argument.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import Iterable, Optional, Protocol, Sequence, runtime_checkable

from repro.errors import SolveError
from repro.sat.arena import ArenaSolver
from repro.sat.solver import SatResult, SatSolver, SolverStats

#: Environment variable selecting the builtin CDCL kernel implementation.
ENV_SAT_BACKEND = "REPRO_SAT_BACKEND"
#: Known kernels: the flat clause-arena hot path and the per-object
#: reference implementation kept for differential testing.
SAT_KERNELS = ("arena", "reference")
DEFAULT_SAT_KERNEL = "arena"

_KERNEL_CLASSES = {"arena": ArenaSolver, "reference": SatSolver}


def default_sat_kernel() -> str:
    """The process default kernel: ``$REPRO_SAT_BACKEND`` when set, else arena."""
    raw = os.environ.get(ENV_SAT_BACKEND)
    if raw is None or raw == "":
        return DEFAULT_SAT_KERNEL
    if raw not in SAT_KERNELS:
        raise SolveError(
            f"{ENV_SAT_BACKEND} must be one of {SAT_KERNELS}, got {raw!r}"
        )
    return raw


def resolve_sat_kernel(kernel: Optional[str]) -> str:
    """Normalise a kernel argument (``None`` = process default)."""
    if kernel is None:
        return default_sat_kernel()
    if kernel not in SAT_KERNELS:
        raise SolveError(f"SAT kernel must be one of {SAT_KERNELS}, got {kernel!r}")
    return kernel


@runtime_checkable
class SatBackend(Protocol):
    """The minimal surface a :class:`~repro.solve.context.SolverContext` needs."""

    name: str

    @property
    def stats(self) -> SolverStats:
        """Cumulative work counters across every ``solve`` call."""
        ...

    def reserve(self, num_vars: int) -> None:
        """Make sure variables ``1..num_vars`` exist even if not yet constrained."""
        ...

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a permanent clause of non-zero DIMACS literals."""
        ...

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: Optional[int] = None,
        need_model: bool = True,
    ) -> SatResult:
        """Decide the current clause set under ``assumptions``.

        With ``need_model=False`` a SAT result may carry an empty model
        (lets model-less external solvers serve verdict-only queries).

        UNSAT answers carry a failed-assumption ``core`` — a subset of
        ``assumptions`` that alone keeps the clause set unsatisfiable; an
        empty core means the clause set is UNSAT without any assumptions
        (see :class:`~repro.sat.solver.SatResult`).
        """
        ...


class CdclBackend:
    """Incremental backend over the builtin CDCL solver.

    ``kernel`` picks the implementation: ``"arena"`` (the flat clause-arena
    hot path, the default) or ``"reference"`` (the per-object
    :class:`SatSolver`, kept as the differential baseline the same way the
    ``opt_level=0`` encoder anchors the compilation pipeline).  ``None``
    resolves through the ``REPRO_SAT_BACKEND`` environment variable, so a
    whole test run can be pinned to either kernel without touching call
    sites.  Both kernels implement the identical contract.

    ``conflict_budget`` is interpreted per call: the budget of one query is
    not eroded by the conflicts of earlier queries on the same context
    (both kernels count conflicts per call).  UNSAT cores come straight
    from the solver's final-conflict analysis.

    The conflict-quality knobs thread straight through to both kernels:
    ``lbd_tiers`` (glucose-style LBD-tiered learned-clause retention),
    ``phase_saving`` (saved polarities with a target-phase reset on
    restart) and ``minimize`` (recursive conflict-clause minimisation).
    All three default on; turning one off reverts to the pre-heuristic
    behaviour, which the differential fuzz suite exercises.
    """

    name = "cdcl"

    def __init__(
        self,
        var_decay: float = 0.95,
        default_phase: bool = False,
        restart_interval: int = 100,
        kernel: Optional[str] = None,
        lbd_tiers: bool = True,
        phase_saving: bool = True,
        minimize: bool = True,
    ) -> None:
        self.kernel = resolve_sat_kernel(kernel)
        self._solver = _KERNEL_CLASSES[self.kernel](
            var_decay=var_decay,
            default_phase=default_phase,
            restart_interval=restart_interval,
            lbd_tiers=lbd_tiers,
            phase_saving=phase_saving,
            minimize=minimize,
        )

    @property
    def stats(self) -> SolverStats:
        return self._solver.stats

    def reserve(self, num_vars: int) -> None:
        self._solver.reserve(num_vars)

    def add_clause(self, literals: Sequence[int]) -> None:
        self._solver.add_clause(literals)

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: Optional[int] = None,
        need_model: bool = True,
    ) -> SatResult:
        return self._solver.solve(
            assumptions=assumptions,
            conflict_budget=conflict_budget,
            need_model=need_model,
        )


class DimacsBackend:
    """One-shot subprocess backend speaking DIMACS in, competition format out.

    The backend keeps the clause set in memory; every :meth:`solve` call
    writes a fresh DIMACS file (assumptions appended as unit clauses, so
    they bind only that query) and invokes ``executable`` on it.  The
    conventional exit codes (10 = SAT, 20 = UNSAT) and the ``s``/``v``
    output lines are both understood.  ``conflict_budget`` is rejected with
    :class:`~repro.errors.SolveError` and ``stats`` stays at zero — external
    solvers manage their own effort and do not report counters on stdout,
    so budget arithmetic and per-phase conflict reporting are only
    meaningful on the builtin backend.

    **Unsat cores.**  Competition output has no core line, so the backend
    cannot minimise: an UNSAT answer under assumptions reports *all* of
    them as the core (sound — the full assumption set trivially keeps the
    query UNSAT — just not minimal).  To keep the ``empty core <=> root
    UNSAT`` contract it distinguishes root UNSAT with one extra
    assumption-free query; the root verdict is cached per clause count
    (and latched once UNSAT, since adding clauses never restores
    satisfiability), so the recheck runs at most once per clause-set
    revision.
    """

    name = "dimacs"

    def __init__(self, executable: str, extra_args: Sequence[str] = ()):
        resolved = shutil.which(executable)
        if resolved is None:
            raise SolveError(
                f"DIMACS backend executable {executable!r} not found on PATH"
            )
        self.executable = resolved
        self.extra_args = tuple(extra_args)
        self._clauses: list[tuple[int, ...]] = []
        self._num_vars = 0
        self._stats = SolverStats()
        self._root_unsat = False
        # Clause count at which the clause set was last seen root-SAT.
        self._root_sat_clauses: Optional[int] = None

    @property
    def stats(self) -> SolverStats:
        return self._stats

    def reserve(self, num_vars: int) -> None:
        self._num_vars = max(self._num_vars, num_vars)

    def add_clause(self, literals: Sequence[int]) -> None:
        clause = tuple(int(lit) for lit in literals)
        for lit in clause:
            if lit == 0:
                raise SolveError("literal 0 is not allowed in a clause")
            self._num_vars = max(self._num_vars, abs(lit))
        self._clauses.append(clause)

    def _write_query(self, path: str, assumptions: Sequence[int]) -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(
                f"p cnf {self._num_vars} {len(self._clauses) + len(assumptions)}\n"
            )
            for clause in self._clauses:
                handle.write(" ".join(str(lit) for lit in clause) + " 0\n")
            for lit in assumptions:
                handle.write(f"{lit} 0\n")

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: Optional[int] = None,
        need_model: bool = True,
    ) -> SatResult:
        if conflict_budget is not None:
            # Failing loudly beats silently running an unbounded query where
            # the caller expected an inconclusive answer.
            raise SolveError(
                "the DIMACS subprocess backend does not support conflict "
                "budgets; drop the budget or use the builtin 'cdcl' backend"
            )
        assumptions = [int(a) for a in assumptions]
        for lit in assumptions:
            self._num_vars = max(self._num_vars, abs(lit))
        result = self._run_query(assumptions, need_model)
        if result.satisfiable is False:
            result.core = self._failed_core(assumptions)
        elif result.satisfiable:
            # SAT — with or without assumptions — proves the clause set
            # alone is satisfiable at this revision, sparing the core
            # path's root-distinction query.
            self._root_sat_clauses = len(self._clauses)
        return result

    def _run_query(self, assumptions: Sequence[int], need_model: bool) -> SatResult:
        fd, path = tempfile.mkstemp(prefix="repro_query_", suffix=".cnf")
        os.close(fd)
        try:
            self._write_query(path, assumptions)
            proc = subprocess.run(
                [self.executable, *self.extra_args, path],
                capture_output=True,
                text=True,
            )
            return self._parse_output(proc, need_model)
        finally:
            os.unlink(path)

    def _failed_core(self, assumptions: Sequence[int]) -> list[int]:
        """Core of an UNSAT answer: ``[]`` for root UNSAT, else all assumptions."""
        if not assumptions:
            self._root_unsat = True
            return []
        if not self._root_unsat and self._root_sat_clauses != len(self._clauses):
            root = self._run_query((), need_model=False)
            if root.satisfiable is False:
                self._root_unsat = True
            else:
                self._root_sat_clauses = len(self._clauses)
        return [] if self._root_unsat else list(assumptions)

    def _parse_output(
        self, proc: subprocess.CompletedProcess, need_model: bool
    ) -> SatResult:
        satisfiable: Optional[bool] = None
        values: list[int] = []
        saw_values = False
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line.startswith("s "):
                verdict = line[2:].strip().upper()
                if verdict == "SATISFIABLE":
                    satisfiable = True
                elif verdict == "UNSATISFIABLE":
                    satisfiable = False
            elif line.startswith("v "):
                saw_values = True
                values.extend(int(tok) for tok in line[2:].split())
        if satisfiable is None:
            if proc.returncode == 10:
                satisfiable = True
            elif proc.returncode == 20:
                satisfiable = False
            else:
                raise SolveError(
                    f"solver {self.executable!r} produced no verdict "
                    f"(exit code {proc.returncode})"
                )
        if not satisfiable:
            return SatResult(False, stats=self._stats)
        if not saw_values:
            if not need_model:
                return SatResult(True, stats=self._stats)
            # Some solvers (e.g. MiniSat) only write the model to an output
            # file; fabricating an all-false model here would turn real
            # counterexamples into bogus traces downstream.
            raise SolveError(
                f"solver {self.executable!r} reported SAT but printed no "
                "'v' model lines; use a wrapper that emits the model on stdout"
            )
        model = {v: False for v in range(1, self._num_vars + 1)}
        for lit in values:
            if lit == 0:
                continue
            model[abs(lit)] = lit > 0
        return SatResult(True, model=model, stats=self._stats)


#: Specs naming the builtin CDCL backend (the default everywhere).
DEFAULT_BACKEND_SPECS = ("cdcl", "builtin")

#: Builtin specs that accept solver tuning knobs, mapped to the kernel they
#: pin (``None`` = follow the process default / ``REPRO_SAT_BACKEND``).
TUNABLE_BACKEND_SPECS: dict = {
    "cdcl": None,
    "builtin": None,
    "arena": "arena",
    "reference": "reference",
}


def is_default_backend(spec: "str | SatBackend") -> bool:
    """True when ``spec`` names the default builtin backend."""
    return isinstance(spec, str) and spec in DEFAULT_BACKEND_SPECS


def is_builtin_backend(spec: "str | SatBackend") -> bool:
    """True when ``spec`` names any builtin CDCL backend (either kernel)."""
    return isinstance(spec, str) and spec in TUNABLE_BACKEND_SPECS


def dimacs_solver_available(executable: str) -> bool:
    """True when ``executable`` resolves on PATH (gate for optional backends)."""
    return shutil.which(executable) is not None


def create_backend(spec: "str | SatBackend") -> SatBackend:
    """Resolve a backend from a spec.

    Accepted specs: an already-constructed backend object, ``"cdcl"`` /
    ``"builtin"`` (the builtin solver with the process-default kernel),
    ``"arena"`` / ``"reference"`` (the builtin solver pinned to one kernel,
    overriding ``REPRO_SAT_BACKEND``), or ``"dimacs:<executable>"`` for the
    subprocess backend.
    """
    if not isinstance(spec, str):
        if isinstance(spec, SatBackend):
            return spec
        raise SolveError(f"object {spec!r} does not implement the SatBackend protocol")
    if spec in TUNABLE_BACKEND_SPECS:
        return CdclBackend(kernel=TUNABLE_BACKEND_SPECS[spec])
    if spec.startswith("dimacs:"):
        executable = spec.split(":", 1)[1]
        if not executable:
            raise SolveError("dimacs backend spec needs an executable: 'dimacs:<path>'")
        return DimacsBackend(executable)
    raise SolveError(f"unknown solver backend {spec!r}")
