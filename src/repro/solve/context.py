"""A persistent, incremental QF_BV solving context.

``SolverContext`` owns one :class:`~repro.smt.bitblast.BitBlaster` and one
SAT backend for its whole lifetime.  Everything the iterated solver loops
need falls out of that single decision:

* repeated subterms — shared pipeline logic across BMC frames, repeated
  CEGIS example instantiations — hit the blaster's term and gate caches and
  blast to the same literals instead of being re-encoded,
* the backend keeps its learned clauses, variable activities and saved
  phases between queries (MiniSat-style incremental solving under
  assumptions),
* retractable assertions are supported through activation literals:
  :meth:`push` opens a scope guarded by a fresh literal, scope assertions
  become ``activation -> term`` clauses, every :meth:`check` assumes the
  activation literals of the open scopes, and :meth:`pop` retires the
  scope by asserting the negated activation literal — learned clauses
  survive the pop.

The SAT backend is pluggable (see :mod:`repro.solve.backend`): the builtin
CDCL solver by default, or a DIMACS subprocess for external solvers.

.. note::
   The imports of the :mod:`repro.smt` modules are deferred to call time.
   ``repro.smt.solver`` builds its ``BVSolver`` facade on this module, so a
   module-level import in either direction would create a cycle through the
   ``repro.smt`` package ``__init__``.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import SmtError, SolveError
from repro.sat.preprocess import Preprocessor
from repro.sat.solver import SolverStats
from repro.solve.backend import SatBackend, create_backend
from repro.solve.pipeline import EncodingStats, PipelineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smt.bitblast import BitBlaster
    from repro.smt.terms import BV


@dataclass
class BVResult:
    """Outcome of a bit-vector satisfiability check.

    ``stats`` carries the CDCL counters (decisions, conflicts, propagations,
    ...) spent on *this* query only, so callers can aggregate per phase.
    """

    satisfiable: Optional[bool]
    model: dict[str, int] = field(default_factory=dict)
    num_clauses: int = 0
    num_vars: int = 0
    stats: SolverStats = field(default_factory=SolverStats)
    #: False when the check skipped model extraction (``need_model=False``).
    #: Kept separate from ``model`` being empty: a formula without free
    #: variables legitimately has an empty model.
    has_model: bool = True
    #: Failed-assumption core of an UNSAT answer, lifted back to the
    #: term-level assumptions the caller passed: a subset of ``assumptions``
    #: that — together with the asserted formulas and the open scopes —
    #: already makes the query unsatisfiable.  ``[]`` means the query is
    #: UNSAT without any of the passed assumptions; ``None`` on SAT/unknown
    #: answers (or when the backend cannot report cores).
    core: Optional[list["BV"]] = None

    def __bool__(self) -> bool:
        return bool(self.satisfiable)

    def value_of(self, term: "BV") -> int:
        """Evaluate ``term`` under the model (unassigned variables read as 0)."""
        from repro.smt.evaluator import evaluate, free_variables

        if not self.satisfiable:
            raise SmtError("no model available: formula not satisfiable")
        if not self.has_model:
            raise SmtError(
                "no model available: the check was made with need_model=False; "
                "re-check with need_model=True to evaluate terms"
            )
        assignment = dict(self.model)
        for var in free_variables(term):
            assignment.setdefault(var.name or "", 0)
        return evaluate(term, assignment)


#: Backend instances already bound to a context (weak so contexts can die).
_CLAIMED_BACKENDS: "weakref.WeakSet" = weakref.WeakSet()

_ALREADY_OWNED = (
    "SAT backend instance is already owned by another SolverContext; "
    "pass a spec string (e.g. 'cdcl') or a fresh backend instance"
)


def _claim_backend(backend: SatBackend) -> None:
    """Bind ``backend`` to exactly one context, whatever its class shape."""
    try:
        if backend in _CLAIMED_BACKENDS:
            raise SolveError(_ALREADY_OWNED)
        _CLAIMED_BACKENDS.add(backend)
        return
    except TypeError:
        pass  # not weak-referenceable; fall back to an instance attribute
    if getattr(backend, "_solver_context_owned", False):
        raise SolveError(_ALREADY_OWNED)
    try:
        backend._solver_context_owned = True  # type: ignore[attr-defined]
    except AttributeError:
        # Neither weak-referenceable nor attribute-assignable: refusing is
        # safer than risking the silent clause/variable-space collision.
        raise SolveError(
            "cannot track ownership of this SAT backend instance "
            "(__slots__ without __weakref__); pass a spec string instead"
        )


class _Scope:
    """One assumption-guarded assertion scope."""

    __slots__ = ("activation", "terms")

    def __init__(self, activation: int):
        self.activation = activation
        self.terms: list["BV"] = []


class SolverContext:
    """Incremental QF_BV solving over one blaster and one SAT backend."""

    def __init__(
        self,
        backend: "str | SatBackend" = "cdcl",
        opt_level: "PipelineConfig | int | None" = None,
    ):
        from repro.smt.bitblast import BitBlaster

        self.pipeline = PipelineConfig.resolve(opt_level)
        self._blaster = BitBlaster(pipeline=self.pipeline)
        self._backend: SatBackend = create_backend(backend)
        # A backend holds clauses numbered by this context's blaster, so a
        # single instance must never serve two contexts: the second blaster
        # restarts variable numbering and silently collides with the first
        # context's clauses.  Spec strings always construct a fresh backend;
        # instances are claimed on first use.
        _claim_backend(self._backend)
        # CNF preprocessing (opt_level >= 2) filters every synced batch; the
        # constant-true variable is frozen forever, named-variable bits and
        # activation literals are frozen as they appear.
        self._pre: Optional[Preprocessor] = None
        if self.pipeline.preprocess:
            self._pre = Preprocessor()
            self._pre.freeze(self._blaster._const_var)
        self._backend_clauses = 0
        self._preprocess_seconds = 0.0
        self._blast_seconds = 0.0
        self._clauses_synced = 0
        # Root-level assertions in insertion order (constants included, for
        # facade parity with the historical BVSolver behaviour).
        self._root_terms: list["BV"] = []
        self._root_failed = False
        self._scopes: list[_Scope] = []
        # term id -> frozenset of variable terms (cached once per assertion)
        self._term_vars: dict[int, frozenset] = {}
        # Running union of the root assertions' variables, maintained lazily
        # so partial-model extraction costs O(new assertions) per check.
        self._root_relevant: set = set()
        self._root_vars_synced = 0

    # ------------------------------------------------------------- properties

    @property
    def backend(self) -> SatBackend:
        return self._backend

    @property
    def blaster(self) -> "BitBlaster":
        return self._blaster

    @property
    def stats(self) -> SolverStats:
        """Cumulative backend counters over the context's lifetime (live view)."""
        return self._backend.stats

    @property
    def num_clauses(self) -> int:
        return len(self._blaster.cnf.clauses)

    @property
    def num_vars(self) -> int:
        return self._blaster.cnf.num_vars

    @property
    def backend_clauses(self) -> int:
        """Clauses actually handed to the SAT backend so far."""
        return self._backend_clauses

    def encoding_stats(self) -> EncodingStats:
        """A snapshot of the compilation-pipeline size/effort counters.

        ``cnf_clauses_post`` only counts clauses already synced to the
        backend; call after a :meth:`check` for a settled picture.
        """
        stats = EncodingStats(opt_level=self.pipeline.opt_level)
        stats.cnf_vars = self.num_vars
        stats.cnf_clauses_pre = len(self._blaster.cnf.clauses)
        stats.cnf_clauses_post = self._backend_clauses
        stats.preprocess_seconds = self._preprocess_seconds
        stats.blast_seconds = self._blast_seconds
        aig = self._blaster.aig
        if aig is not None:
            aig_stats = aig.stats()
            stats.aig_nodes = aig.num_nodes()
            stats.aig_and = aig_stats.num_and
            stats.aig_xor = aig_stats.num_xor
            stats.aig_ite = aig_stats.num_ite
            stats.aig_rewrite_hits = aig_stats.rewrite_hits
            stats.aig_strash_hits = aig_stats.strash_hits
        if self._pre is not None:
            pre = self._pre.stats
            stats.units_found = pre.units_found
            stats.subsumed = pre.subsumed
            stats.vars_eliminated = pre.vars_eliminated
            stats.vars_restored = pre.vars_restored
            stats.resolvents_added = pre.resolvents_added
        return stats

    @property
    def assertions(self) -> list["BV"]:
        """Root assertions plus the assertions of every open scope, in order."""
        terms = list(self._root_terms)
        for scope in self._scopes:
            terms.extend(scope.terms)
        return terms

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    # ---------------------------------------------------------------- helpers

    def _vars_of(self, term: "BV") -> frozenset:
        cached = self._term_vars.get(term.tid)
        if cached is None:
            from repro.smt.evaluator import free_variables

            cached = frozenset(free_variables(term))
            self._term_vars[term.tid] = cached
        return cached

    def _sync(self) -> None:
        """Feed clauses produced by the blaster since the last query."""
        cnf = self._blaster.cnf
        clauses = cnf.clauses
        if self._pre is None:
            self._backend.reserve(cnf.num_vars)
            for index in range(self._clauses_synced, len(clauses)):
                self._backend.add_clause(clauses[index])
            self._backend_clauses += len(clauses) - self._clauses_synced
            self._clauses_synced = len(clauses)
            return
        if self._clauses_synced == len(clauses):
            self._backend.reserve(cnf.num_vars)
            return
        start = time.perf_counter()
        # Bits of named variables that reached the CNF must survive
        # preprocessing untouched: model extraction reads them directly.
        self._pre.freeze_all(self._blaster.drain_protected_vars())
        batch = clauses[self._clauses_synced :]
        self._clauses_synced = len(clauses)
        emitted = self._pre.flush(batch)
        self._preprocess_seconds += time.perf_counter() - start
        self._backend.reserve(cnf.num_vars)
        for clause in emitted:
            self._backend.add_clause(clause)
        self._backend_clauses += len(emitted)

    def _feed_restored(self, clauses: list) -> None:
        """Hand un-eliminated clauses straight to the backend."""
        for clause in clauses:
            self._backend.add_clause(clause)
        self._backend_clauses += len(clauses)

    # --------------------------------------------------------------- scoping

    def push(self) -> int:
        """Open an assertion scope; returns the new scope depth."""
        activation = self._blaster.cnf.new_var()
        if self._pre is not None:
            # The activation literal is assumed by every check and asserted
            # negatively on pop; eliminating it would break both.
            self._pre.freeze(activation)
        self._scopes.append(_Scope(activation))
        return len(self._scopes)

    def pop(self) -> None:
        """Retire the innermost scope (its assertions become unreachable)."""
        if not self._scopes:
            raise SolveError("pop() without a matching push()")
        scope = self._scopes.pop()
        # Permanently disable the activation literal: the scope's guarded
        # clauses are satisfied forever, and clauses learned from them stay
        # sound because they all contain ``-activation``.
        self._blaster.cnf.add_clause([-scope.activation])

    # ------------------------------------------------------------- assertions

    def add(self, term: "BV") -> None:
        """Assert a width-1 term (scoped to the innermost open scope, if any)."""
        if term.width != 1:
            raise SmtError(f"assertions must have width 1, got {term.width}")
        scope = self._scopes[-1] if self._scopes else None
        if scope is not None:
            scope.terms.append(term)
        else:
            self._root_terms.append(term)
        if term.is_const:
            if term.const_value() == 0:
                if scope is None:
                    self._root_failed = True
                else:
                    self._blaster.cnf.add_clause([-scope.activation])
            return
        blast_start = time.perf_counter()
        literal = self._blaster.assumption_literal(term)
        self._blast_seconds += time.perf_counter() - blast_start
        if scope is None:
            self._blaster.cnf.add_clause([literal])
        else:
            self._blaster.cnf.add_clause([-scope.activation, literal])

    def add_all(self, terms: Iterable["BV"]) -> None:
        for term in terms:
            self.add(term)

    def _blast_assumptions(
        self, assumptions: Iterable["BV"]
    ) -> tuple[list[int], list["BV"], Optional["BV"]]:
        """Blast query-scoped assumptions to CNF literals.

        Returns ``(literals, non-const terms, const_false)`` where
        ``const_false`` is an assumption term that folded to constant false
        (the query is then trivially UNSAT with that term as its own core),
        or ``None``.  Constant-true assumptions are dropped.  Shared by
        :meth:`check` and :meth:`encode` so the two paths cannot drift.
        """
        lits: list[int] = []
        terms: list["BV"] = []
        for term in assumptions:
            if term.width != 1:
                raise SmtError(f"assumptions must have width 1, got {term.width}")
            if term.is_const:
                if term.const_value() == 0:
                    return lits, terms, term
                continue
            blast_start = time.perf_counter()
            lits.append(self._blaster.assumption_literal(term))
            self._blast_seconds += time.perf_counter() - blast_start
            terms.append(term)
        return lits, terms, None

    # ----------------------------------------------------------------- encode

    def encode(self, assumptions: Iterable["BV"] = ()) -> None:
        """Blast and sync the current assertions without querying the backend.

        Runs the full compilation pipeline — blasting (AIG lowering at
        ``opt_level>=1``), preprocessing, assumption-variable restoration —
        exactly as :meth:`check` would, but skips the SAT query.  The
        backend ends up with the same clause set a real check would feed
        it, which is what encoding-size measurement needs: formula sizes
        become observable without paying for solving the formula.
        """
        assumption_lits, _terms, const_false = self._blast_assumptions(assumptions)
        if const_false is not None:
            # check() answers such a query without syncing; mirror that.
            return
        self._sync()
        if self._pre is not None and assumption_lits:
            restored = self._pre.require_vars(abs(l) for l in assumption_lits)
            if restored:
                self._feed_restored(restored)

    # ------------------------------------------------------------------ check

    def check(
        self,
        assumptions: Iterable["BV"] = (),
        conflict_budget: Optional[int] = None,
        full_model: bool = False,
        need_model: bool = True,
    ) -> BVResult:
        """Check satisfiability of the asserted terms plus ``assumptions``.

        ``assumptions`` bind only this query.  With ``full_model=True`` the
        model covers every bit-blasted variable (the BMC trace builder needs
        that); the default covers the free variables of the live assertions
        and the assumptions.  Callers that only consume the verdict (e.g.
        the k-induction step query) pass ``need_model=False`` to skip model
        extraction entirely.

        UNSAT answers carry ``core``: the failed-assumption core lifted
        back to the passed assumption terms (see :class:`BVResult`).  The
        core is *relative to the open scopes* — scope activation literals
        are assumed internally and never appear in the term core.
        """
        if self._root_failed:
            return BVResult(False, core=[])
        assumption_lits = [scope.activation for scope in self._scopes]
        lits, assumption_terms, const_false = self._blast_assumptions(assumptions)
        if const_false is not None:
            return BVResult(False, core=[const_false])
        assumption_lits.extend(lits)
        self._sync()
        if self._pre is not None:
            # Assumption variables must be live in the backend: restore the
            # stored clauses of any that bounded variable elimination took.
            restored = self._pre.require_vars(abs(l) for l in assumption_lits)
            if restored:
                self._feed_restored(restored)
            if self._pre.unsat:
                return BVResult(
                    False,
                    num_clauses=self.num_clauses,
                    num_vars=self.num_vars,
                    core=[],
                )
        before = self._backend.stats.copy()
        result = self._backend.solve(
            assumptions=assumption_lits,
            conflict_budget=conflict_budget,
            need_model=need_model,
        )
        spent = self._backend.stats.since(before)
        if result.satisfiable is None:
            return BVResult(
                None,
                num_clauses=self.num_clauses,
                num_vars=self.num_vars,
                stats=spent,
            )
        if not result.satisfiable:
            return BVResult(
                False,
                num_clauses=self.num_clauses,
                num_vars=self.num_vars,
                stats=spent,
                core=self._lift_core(result.core, lits, assumption_terms),
            )
        model: dict[str, int] = {}
        if need_model:
            backend_model = result.model
            if self._pre is not None:
                # Complete the model through eliminated auxiliary variables
                # so every CNF literal reads consistently.
                backend_model = self._pre.extend_model(backend_model)
            model = self._extract_model(backend_model, assumption_terms, full_model)
        return BVResult(
            True,
            model=model,
            num_clauses=self.num_clauses,
            num_vars=self.num_vars,
            stats=spent,
            has_model=need_model,
        )

    @staticmethod
    def _lift_core(
        backend_core: Optional[list[int]],
        assumption_lits: list[int],
        assumption_terms: list["BV"],
    ) -> Optional[list["BV"]]:
        """Map a backend literal core to the assumption terms it names.

        ``assumption_lits``/``assumption_terms`` are the aligned blast
        results of the caller's non-constant assumptions.  Scope activation
        literals in the backend core are internal and dropped; distinct
        terms sharing one blasted literal are all kept (the lifted set stays
        a subset of the assumptions and still implies UNSAT).  ``None``
        (backend without core support) is passed through.
        """
        if backend_core is None:
            return None
        failed = set(backend_core)
        return [
            term
            for lit, term in zip(assumption_lits, assumption_terms)
            if lit in failed
        ]

    def _extract_model(
        self, backend_model, assumption_terms: list["BV"], full_model: bool
    ) -> dict[str, int]:
        from repro.utils.bitops import from_bits

        blaster = self._blaster
        model: dict[str, int] = {}
        if full_model:
            names = list(blaster._var_bits)
        else:
            for index in range(self._root_vars_synced, len(self._root_terms)):
                term = self._root_terms[index]
                if not term.is_const:
                    self._root_relevant |= self._vars_of(term)
            self._root_vars_synced = len(self._root_terms)
            relevant: set = set(self._root_relevant)
            for scope in self._scopes:
                for term in scope.terms:
                    if not term.is_const:
                        relevant |= self._vars_of(term)
            for term in assumption_terms:
                relevant |= self._vars_of(term)
            names = []
            for var in relevant:
                assert var.name is not None
                names.append(var.name)
        for name in names:
            bits = blaster.variable_bits(name)
            if bits is None:
                model[name] = 0
                continue
            values = [
                1 if backend_model.get(abs(b), False) == (b > 0) else 0 for b in bits
            ]
            model[name] = from_bits(values)
        return model
