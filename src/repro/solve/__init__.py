"""Persistent incremental solving shared by BMC, k-induction, CEGIS and QED.

The subsystem has two halves:

* :mod:`repro.solve.context` — :class:`SolverContext`, a long-lived pairing
  of one bit-blaster and one SAT backend with assumption-scoped push/pop,
* :mod:`repro.solve.backend` — the pluggable backend protocol plus the
  builtin CDCL backend and a DIMACS subprocess backend.

Every solver loop in the stack (``BVSolver``, ``BmcEngine``/``BmcSession``,
``KInductionEngine``, ``CegisEngine``, ``qed.verify_equivalence``) runs on
this API.
"""

from repro.solve.backend import (
    CdclBackend,
    DimacsBackend,
    SatBackend,
    create_backend,
    dimacs_solver_available,
)
from repro.solve.context import BVResult, SolverContext
from repro.solve.pipeline import (
    EncodingStats,
    PipelineConfig,
    default_opt_level,
)

__all__ = [
    "BVResult",
    "CdclBackend",
    "DimacsBackend",
    "EncodingStats",
    "PipelineConfig",
    "SatBackend",
    "SolverContext",
    "create_backend",
    "default_opt_level",
    "dimacs_solver_available",
]
