"""A minimal plain-text table printer used by the experiment harnesses.

We render the same rows the paper's tables and figures report, so the
formatting stays deliberately simple: fixed-width columns with an ASCII
ruler, no external dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class TextTable:
    """Accumulate rows and render them as an aligned ASCII table."""

    def __init__(self, headers: Sequence[str]):
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; cells are converted with ``str``."""
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Return the table as a multi-line string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        ruler = "-+-".join("-" * w for w in widths)
        lines = [fmt(self.headers), ruler]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
