"""General-purpose utilities shared by every subsystem.

The helpers here are deliberately tiny and dependency-free: bit-level
arithmetic on arbitrary-width two's-complement integers, and a plain-text
table printer used by the experiment harnesses.
"""

from repro.utils.bitops import (
    mask,
    truncate,
    sext,
    zext,
    to_signed,
    to_unsigned,
    bit,
    bits_of,
    from_bits,
    popcount,
    clog2,
    rotate_left,
    rotate_right,
)
from repro.utils.tables import TextTable

__all__ = [
    "mask",
    "truncate",
    "sext",
    "zext",
    "to_signed",
    "to_unsigned",
    "bit",
    "bits_of",
    "from_bits",
    "popcount",
    "clog2",
    "rotate_left",
    "rotate_right",
    "TextTable",
]
