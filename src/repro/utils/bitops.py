"""Fixed-width two's-complement bit manipulation helpers.

All functions operate on Python ints interpreted as unsigned values of a
given bit ``width`` unless noted otherwise.  They are used both by the
concrete instruction-set simulator and by the bit-vector constant folder,
so correctness here is load-bearing for the whole stack.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``width`` may be zero)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to its low ``width`` bits (unsigned result)."""
    return value & mask(width)


def to_unsigned(value: int, width: int) -> int:
    """Interpret ``value`` (possibly negative) as an unsigned ``width``-bit int."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement int."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value = value & mask(width)
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value


def sext(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend the low ``from_width`` bits of ``value`` to ``to_width`` bits."""
    if to_width < from_width:
        raise ValueError(
            f"cannot sign-extend from {from_width} to narrower width {to_width}"
        )
    return to_unsigned(to_signed(value, from_width), to_width)


def zext(value: int, from_width: int, to_width: int) -> int:
    """Zero-extend the low ``from_width`` bits of ``value`` to ``to_width`` bits."""
    if to_width < from_width:
        raise ValueError(
            f"cannot zero-extend from {from_width} to narrower width {to_width}"
        )
    return value & mask(from_width)


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = LSB) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits_of(value: int, width: int) -> list[int]:
    """Return the ``width`` bits of ``value`` as a list, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: list[int]) -> int:
    """Assemble an unsigned integer from a list of bits, LSB first."""
    value = 0
    for i, b in enumerate(bits):
        if b:
            value |= 1 << i
    return value


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount requires a non-negative value")
    return bin(value).count("1")


def clog2(value: int) -> int:
    """Ceiling of log2 for positive integers; ``clog2(1) == 0``."""
    if value <= 0:
        raise ValueError(f"clog2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``amount``."""
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotate_right(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` right by ``amount``."""
    amount %= width
    return rotate_left(value, width - amount, width)
