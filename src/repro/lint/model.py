"""Model lint: well-formedness rules over a word-level transition system.

Rules (dotted ids, severity in brackets):

* ``model.missing-next`` [error] — a latch with no next-state function.
* ``model.width-mismatch`` [error] — an init/next term whose width differs
  from its latch, or a constraint/property that is not width 1 (possible by
  mutating :class:`~repro.ts.system.StateVar` fields directly, which is how
  generated models break).
* ``model.undeclared-symbol`` [error] — a next/constraint/property term
  mentioning a variable that is neither a declared state nor an input.
* ``model.symbolic-init`` [info] — an init term over undeclared rigid
  symbols.  This is the supported idiom for "same unknown initial value"
  (QED's shared ``*_init_reg*`` symbols), so it is informational only.
* ``model.init-state-ref`` [error] — an init term referencing a declared
  *state* symbol.  The unroller substitutes frame 0 in one pass, so such a
  reference does not mean "that latch's initial value": it is the
  representable form of a combinational dependency loop at reset.
* ``model.comb-cycle`` [error] — a cycle in the init-term state-reference
  graph (including a self-reference), i.e. no well-founded reset value
  exists at all.
* ``model.latch-no-init`` [warning] — a latch with no init term: its reset
  value is free, which is usually an unintended verification hole.
* ``model.dead-latch`` [warning] — a latch outside the cone of influence
  of every property (computed with :func:`repro.ts.coi.cached_property_cone`,
  so repeated lint/BMC runs over one design share the cones).
* ``model.seq-const-latch`` [warning] — a latch provably stuck at its
  (constant) initial value in every reachable state.  Backed by the
  :mod:`repro.absint` reachability fixpoint, whose constancy pass subsumes
  the original syntactic substitution algorithm (kept as the fallback when
  the fixpoint fails to converge).
* ``model.bit-stuck-latch`` [info] — a latch that is not fully constant
  but has individual bits proven stuck in every reachable state.
* ``model.interval-overflow-impossible`` [info] — add/sub/mul nodes in
  next-state or property logic whose abstract operand intervals prove the
  result can never wrap at its width (only non-trivial facts are reported:
  the proof must fail for unconstrained operands).
* ``model.unreachable-property-violation`` [info] — a property the
  abstract reachable-state over-approximation already proves (no reachable
  state can violate it), without the property being syntactically constant.
* ``model.const-property`` [error if false, warning if true] — a property
  that constant-folded during construction.
* ``model.const-constraint`` [error if false, info if true] — a constraint
  that constant-folded; a false constraint makes every property vacuous.
* ``model.free-input-in-property`` [warning] — a primary input read
  directly by a property and not mentioned by any constraint.
* ``model.no-property`` [warning] — nothing to verify.
"""

from __future__ import annotations

from repro.absint import analyze
from repro.absint import domains as D
from repro.absint.fixpoint import Analysis
from repro.absint.transfer import abstract_eval
from repro.errors import AbsintError
from repro.smt.evaluator import free_variables, substitute
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.lint.findings import (
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    LintReport,
)
from repro.ts.coi import cached_property_cone
from repro.ts.system import TransitionSystem
from repro.utils.bitops import mask


def lint_transition_system(ts: TransitionSystem) -> LintReport:
    """Run every model-lint rule over ``ts`` and return the report."""
    report = LintReport()
    states = {s.name: s for s in ts.states}
    input_names = {i.name for i in ts.inputs}
    declared = set(states) | input_names

    structurally_broken = False

    # ---------------------------------------------------- per-latch structure
    for state in ts.states:
        where = f"state {state.name}"
        if state.next is None:
            structurally_broken = True
            report.add(
                "model.missing-next",
                SEV_ERROR,
                where,
                "latch has no next-state function",
                "call ts.set_next() for every declared state",
            )
        elif state.next.width != state.width:
            structurally_broken = True
            report.add(
                "model.width-mismatch",
                SEV_ERROR,
                where,
                f"next-state term has width {state.next.width}, "
                f"latch has width {state.width}",
                "rebuild the next term at the latch width",
            )
        if state.init is None:
            report.add(
                "model.latch-no-init",
                SEV_WARNING,
                where,
                "latch has no initial value (reset state is unconstrained)",
                "pass init= to ts.add_state() or call ts.set_init()",
            )
        elif state.init.width != state.width:
            structurally_broken = True
            report.add(
                "model.width-mismatch",
                SEV_ERROR,
                where,
                f"init term has width {state.init.width}, "
                f"latch has width {state.width}",
                "rebuild the init term at the latch width",
            )

    # ------------------------------------------------------ symbol discipline
    def check_symbols(term: BV, where: str) -> None:
        unknown = sorted(
            v.name or "?" for v in free_variables(term) if (v.name or "") not in declared
        )
        if unknown:
            report.add(
                "model.undeclared-symbol",
                SEV_ERROR,
                where,
                f"references undeclared symbols: {unknown}",
                "declare them with ts.add_state()/ts.add_input()",
            )

    for state in ts.states:
        if state.next is not None:
            check_symbols(state.next, f"state {state.name} (next)")
    for index, constraint in enumerate(ts.constraints):
        check_symbols(constraint, f"constraint[{index}]")
    for prop_name, prop in ts.properties.items():
        check_symbols(prop, f"property {prop_name}")

    # Init terms follow a different discipline: undeclared rigid symbols are
    # the supported "shared unknown initial value" idiom (info), while a
    # reference to a declared *state* is ill-founded under the unroller's
    # one-pass frame-0 substitution (error).
    init_state_refs: dict[str, set[str]] = {}
    for state in ts.states:
        if state.init is None:
            continue
        where = f"state {state.name} (init)"
        init_vars = free_variables(state.init)
        rigid = sorted(
            v.name or "?" for v in init_vars if (v.name or "") not in declared
        )
        if rigid:
            report.add(
                "model.symbolic-init",
                SEV_INFO,
                where,
                f"initial value is symbolic over {rigid}",
                "",
            )
        refs = {v.name for v in init_vars if v.name in states}
        if refs:
            init_state_refs[state.name] = refs
            report.add(
                "model.init-state-ref",
                SEV_ERROR,
                where,
                f"initial value references state symbols {sorted(refs)}; "
                "the unroller treats these as rigid free symbols, not "
                "initial values",
                "use a shared fresh variable (T.fresh_var) for coupled resets",
            )

    # Cycles in the init reference graph mean no well-founded reset exists.
    for cycle in _cycles(init_state_refs):
        report.add(
            "model.comb-cycle",
            SEV_ERROR,
            f"state {cycle[0]} (init)",
            "combinational cycle through initial values: "
            + " -> ".join(cycle + (cycle[0],)),
            "break the cycle with a concrete or fresh-symbol reset value",
        )

    # ------------------------------------------------- constant-folded terms
    for prop_name, prop in ts.properties.items():
        if prop.is_const:
            if prop.const_value() == 0:
                report.add(
                    "model.const-property",
                    SEV_ERROR,
                    f"property {prop_name}",
                    "property is constant false (fails in the initial state "
                    "with no design involvement)",
                    "the property folded during construction; check its terms",
                )
            else:
                report.add(
                    "model.const-property",
                    SEV_WARNING,
                    f"property {prop_name}",
                    "property is constant true (verifies nothing)",
                    "the property folded during construction; check its terms",
                )
    for index, constraint in enumerate(ts.constraints):
        if constraint.is_const:
            if constraint.const_value() == 0:
                report.add(
                    "model.const-constraint",
                    SEV_ERROR,
                    f"constraint[{index}]",
                    "constraint is constant false (every property becomes "
                    "vacuously safe)",
                    "drop the constraint or fix the term that folded",
                )
            else:
                report.add(
                    "model.const-constraint",
                    SEV_INFO,
                    f"constraint[{index}]",
                    "constraint is constant true (has no effect)",
                    "",
                )

    if not ts.properties:
        report.add(
            "model.no-property",
            SEV_WARNING,
            f"system {ts.name}",
            "no properties defined; nothing to verify",
            "call ts.add_property()",
        )

    # -------------------------------------------------- inputs and dead logic
    constrained: set[str] = set()
    for constraint in ts.constraints:
        constrained |= {v.name or "" for v in free_variables(constraint)}
    for prop_name, prop in ts.properties.items():
        free_inputs = sorted(
            v.name or ""
            for v in free_variables(prop)
            if v.name in input_names and v.name not in constrained
        )
        if free_inputs:
            report.add(
                "model.free-input-in-property",
                SEV_WARNING,
                f"property {prop_name}",
                f"unconstrained inputs feed the property directly: {free_inputs}",
                "constrain them or make the property robust to any value",
            )

    # COI-based and evaluation-based rules need a structurally sound system.
    if not structurally_broken and ts.properties:
        live: set[str] = set()
        for prop_name in ts.properties:
            live.update(cached_property_cone(ts, prop_name).kept_states)
        for state in ts.states:
            if state.name not in live:
                report.add(
                    "model.dead-latch",
                    SEV_WARNING,
                    f"state {state.name}",
                    "latch is outside the cone of influence of every property",
                    "drop it, or add the property that should observe it",
                )

    if not structurally_broken:
        # One cached abstract-reachability analysis per design backs every
        # semantic rule below; BMC folding and PDR seeding reuse it too.
        try:
            analysis: "Analysis | None" = analyze(ts)
        except AbsintError:
            analysis = None  # non-convergence backstop: fall back below

        if analysis is not None:
            seq_const = dict(analysis.seq_const)
        else:
            seq_const = {
                name: states[name].init.const_value()
                for name in _sequentially_constant(ts, states)
            }
        for name in sorted(seq_const):
            report.add(
                "model.seq-const-latch",
                SEV_WARNING,
                f"state {name}",
                f"latch is stuck at its initial value "
                f"{seq_const[name]:#x} in every reachable state",
                "replace it with a constant, or fix the update condition",
            )

        if analysis is not None:
            for state in ts.states:
                value = analysis.latches[state.name]
                if value.is_bottom or value.is_const or value.known == 0:
                    continue
                stuck = value.width - value.unknown_count
                pattern = "".join(
                    str((value.bits >> i) & 1) if (value.known >> i) & 1 else "x"
                    for i in reversed(range(value.width))
                )
                report.add(
                    "model.bit-stuck-latch",
                    SEV_INFO,
                    f"state {state.name}",
                    f"{stuck} of {value.width} bits are stuck in every "
                    f"reachable state (msb-first pattern {pattern})",
                    "shrink the latch, or fix the update logic if the "
                    "stuck bits were meant to move",
                )

            for prop_name, prop in ts.properties.items():
                abstract = analysis.properties.get(prop_name)
                if (
                    abstract is not None
                    and abstract.is_const
                    and abstract.const_value() == 1
                    and not prop.is_const
                ):
                    report.add(
                        "model.unreachable-property-violation",
                        SEV_INFO,
                        f"property {prop_name}",
                        "abstract reachability proves no reachable state "
                        "violates this property",
                        "",
                    )

            for where, summary in _nonwrapping_arith(ts, analysis):
                report.add(
                    "model.interval-overflow-impossible",
                    SEV_INFO,
                    where,
                    "arithmetic provably never wraps at its width "
                    f"({summary})",
                    "",
                )

    return report


def _cycles(graph: dict[str, set[str]]) -> list[tuple[str, ...]]:
    """Elementary cycles of the (small) init-reference graph, one per SCC."""
    cycles: list[tuple[str, ...]] = []
    visited: set[str] = set()
    for start in sorted(graph):
        if start in visited:
            continue
        # Iterative DFS keeping the current path; good enough for the
        # handful of init references a real model can contain.
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == start and len(path) >= 1:
                    cycles.append(tuple(path))
                    visited.update(path)
                elif succ in graph and succ not in path:
                    stack.append((succ, path + [succ]))
        visited.add(start)
    return cycles


_ARITH_OPS = {T.OP_ADD: "add", T.OP_SUB: "sub", T.OP_MUL: "mul"}


def _dag_nodes(term: BV, seen: set):
    """Every distinct node of ``term``'s DAG (any order)."""
    if term.tid in seen:
        return
    seen.add(term.tid)
    stack = [term]
    while stack:
        node = stack.pop()
        yield node
        for arg in node.args:
            if arg.tid not in seen:
                seen.add(arg.tid)
                stack.append(arg)


def _wraps(op, a: "D.AbstractValue", b: "D.AbstractValue") -> bool:
    """Can this add/sub/mul wrap for operands inside the abstract boxes?"""
    m = mask(a.width)
    if op == T.OP_ADD:
        return a.hi + b.hi > m
    if op == T.OP_SUB:
        return a.lo < b.hi
    return a.hi * b.hi > m  # OP_MUL


def _nonwrapping_arith(
    ts: TransitionSystem, analysis: "Analysis"
) -> list[tuple[str, str]]:
    """Locations whose add/sub/mul nodes provably cannot wrap.

    Only non-trivial facts are reported: the no-wrap condition must fail
    for unconstrained (top) operands, so every finding reflects knowledge
    the fixpoint actually derived rather than a width truism (a 1-bit
    multiply, say, can never overflow).  Nodes shared between locations
    are attributed to the first location that walks them.
    """
    env = analysis.env()
    cache: dict[int, D.AbstractValue] = {}
    roots: list[tuple[str, BV]] = []
    for state in ts.states:
        if state.next is not None:
            roots.append((f"state {state.name} (next)", state.next))
    for prop_name, prop in ts.properties.items():
        roots.append((f"property {prop_name}", prop))

    locations: list[tuple[str, str]] = []
    walked: set[int] = set()
    for where, term in roots:
        try:
            abstract_eval(term, env, cache)
        except AbsintError:
            continue
        counts: dict[str, int] = {}
        for node in _dag_nodes(term, walked):
            opname = _ARITH_OPS.get(node.op)
            if opname is None:
                continue
            a = cache.get(node.args[0].tid)
            b = cache.get(node.args[1].tid)
            if a is None or b is None or a.is_bottom or b.is_bottom:
                continue
            trivial = not _wraps(node.op, D.top(a.width), D.top(b.width))
            if not trivial and not _wraps(node.op, a, b):
                counts[opname] = counts.get(opname, 0) + 1
        if counts:
            summary = ", ".join(
                f"{count} {op}" for op, count in sorted(counts.items())
            )
            locations.append((where, summary))
    return locations


def _sequentially_constant(
    ts: TransitionSystem, states: dict
) -> set[str]:
    """Latches provably stuck at a constant initial value.

    Greatest fixpoint: start from every latch with a constant init, then
    repeatedly discard any candidate whose next-state term does not fold to
    its initial value once all remaining candidates are substituted by
    their constants.  Inputs and non-candidate latches stay symbolic, so
    survival means the latch holds its value under *every* environment.
    """
    candidates: dict[str, int] = {
        name: s.init.const_value()
        for name, s in states.items()
        if s.init is not None and s.init.is_const and s.next is not None
    }
    while candidates:
        mapping = {
            states[name].symbol: T.bv_const(value, states[name].width)
            for name, value in candidates.items()
        }
        stuck: list[str] = []
        for name, value in candidates.items():
            folded = substitute(states[name].next, mapping)
            if not (folded.is_const and folded.const_value() == value):
                stuck.append(name)
        if not stuck:
            break
        for name in stuck:
            del candidates[name]
    return set(candidates)
