"""Structured lint findings and the report container they accumulate in."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import LintError

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

_SEVERITIES = (SEV_ERROR, SEV_WARNING, SEV_INFO)

#: Rank for threshold comparisons: lower rank = more severe.
_SEV_RANK = {SEV_ERROR: 0, SEV_WARNING: 1, SEV_INFO: 2}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation: what fired, where, and how to fix it.

    ``rule`` is a stable dotted identifier (``model.width-mismatch``,
    ``encoding.tautology``); ``location`` names the offending object in the
    linted artifact (a state/property name, a clause index, a node id).
    """

    rule: str
    severity: str
    location: str
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise LintError(f"unknown severity {self.severity!r}")

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.severity}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


class LintReport:
    """An ordered collection of findings with severity filters."""

    def __init__(self, findings: Iterable[LintFinding] = ()):
        self.findings: list[LintFinding] = list(findings)

    def add(
        self,
        rule: str,
        severity: str,
        location: str,
        message: str,
        hint: str = "",
    ) -> LintFinding:
        finding = LintFinding(rule, severity, location, message, hint)
        self.findings.append(finding)
        return finding

    def extend(self, other: "LintReport | Iterable[LintFinding]") -> None:
        if isinstance(other, LintReport):
            self.findings.extend(other.findings)
        else:
            self.findings.extend(other)

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == SEV_WARNING]

    @property
    def infos(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == SEV_INFO]

    def at_least(self, severity: str) -> list[LintFinding]:
        """Findings at ``severity`` or more severe."""
        rank = _SEV_RANK[severity]
        return [f for f in self.findings if _SEV_RANK[f.severity] <= rank]

    def by_rule(self, rule: str) -> list[LintFinding]:
        return [f for f in self.findings if f.rule == rule]

    def rules(self) -> set[str]:
        return {f.rule for f in self.findings}

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "counts": {
                SEV_ERROR: len(self.errors),
                SEV_WARNING: len(self.warnings),
                SEV_INFO: len(self.infos),
            },
        }

    def render(self) -> str:
        return "\n".join(f.render() for f in self.findings)

    def __iter__(self) -> Iterator[LintFinding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __repr__(self) -> str:
        return (
            f"LintReport(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, infos={len(self.infos)})"
        )
