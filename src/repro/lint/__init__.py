"""Static analysis over models, encodings and (via ``repro.sat``) kernels.

Three layers, one report format:

* :mod:`repro.lint.model` — well-formedness rules over a
  :class:`~repro.ts.system.TransitionSystem` (and anything imported from
  BTOR2): missing/ill-typed definitions, ill-founded initial states,
  dead or sequentially constant latches, constant-foldable properties.
* :mod:`repro.lint.encoding` — rules over the AIG and CNF layers:
  clauses that should not have survived normalisation, out-of-range
  variables, dangling gate nodes, preprocessing stat regressions.
* Kernel sanitizers live in :mod:`repro.sat.sanitize` (enabled with
  ``REPRO_SANITIZE=1``) so the SAT layer stays import-independent of this
  package; :data:`ENV_SANITIZE` is re-exported here for discoverability.

:mod:`repro.lint.gate` turns a report into a pre-solve gate
(``REPRO_LINT_GATE`` = ``error`` / ``warn`` / ``off``) used by
:class:`~repro.bmc.engine.BmcSession` and the verification flows, and
``python -m repro.lint`` runs the analyzers from the command line.
"""

from repro.lint.findings import (
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    LintFinding,
    LintReport,
)
from repro.lint.encoding import lint_aig, lint_cnf, lint_encoding_stats
from repro.lint.gate import (
    ENV_LINT_GATE,
    GATE_MODES,
    LintWarning,
    default_gate_mode,
    gate_transition_system,
    resolve_gate_mode,
)
from repro.lint.model import lint_transition_system
from repro.sat.sanitize import ENV_SANITIZE

__all__ = [
    "SEV_ERROR",
    "SEV_INFO",
    "SEV_WARNING",
    "LintFinding",
    "LintReport",
    "lint_aig",
    "lint_cnf",
    "lint_encoding_stats",
    "lint_transition_system",
    "ENV_LINT_GATE",
    "ENV_SANITIZE",
    "GATE_MODES",
    "LintWarning",
    "default_gate_mode",
    "gate_transition_system",
    "resolve_gate_mode",
]
