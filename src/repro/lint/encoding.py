"""Encoding lint: rules over the AIG and CNF layers.

These rules target artifacts that the constructors normally make
impossible (``CNF.add_clause`` drops duplicate literals and tautologies,
AIG nodes always reference earlier nodes): when one of them fires, some
layer bypassed the constructors or corrupted the containers, which is
exactly what generated encodings and preprocessing rewrites can do.

Rules:

* ``encoding.empty-clause`` [error] — an empty clause (the formula is
  trivially unsatisfiable; encoders never emit this on purpose).
* ``encoding.undefined-var`` [error] — a literal that is zero or
  references a variable above ``cnf.num_vars``.
* ``encoding.dup-lit`` [warning] — a repeated literal inside one clause.
* ``encoding.tautology`` [error] — ``l`` and ``-l`` in one clause.
* ``encoding.dup-clause`` [warning] — the same clause (as a set) occurring
  more than once.
* ``encoding.aig-order`` [error] — a gate whose argument references the
  constant sentinel, itself, or a *later* node (breaks every topological
  traversal downstream).
* ``encoding.aig-dangling`` [warning] — gates unreachable from the given
  roots (wasted encoding work; aggregated into one finding).
* ``encoding.preprocess-regression`` [warning] — preprocessing *grew* the
  clause count.
* ``encoding.restore-imbalance`` [error] — more eliminated variables
  restored than were ever eliminated (model-reconstruction corruption).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.aig.graph import AIG, K_AND, K_ITE, K_XOR
from repro.lint.findings import SEV_ERROR, SEV_WARNING, LintReport
from repro.sat.cnf import CNF


def lint_cnf(cnf: CNF) -> LintReport:
    """Run every CNF-layer rule over ``cnf``."""
    report = LintReport()
    num_vars = cnf.num_vars
    seen: dict[frozenset[int], int] = {}
    for index, clause in enumerate(cnf.clauses):
        where = f"clause[{index}]"
        if not clause:
            report.add(
                "encoding.empty-clause",
                SEV_ERROR,
                where,
                "empty clause (formula is trivially unsatisfiable)",
                "the encoder emitted a contradiction; inspect the producer",
            )
            continue
        bad = sorted({lit for lit in clause if lit == 0 or abs(lit) > num_vars})
        if bad:
            report.add(
                "encoding.undefined-var",
                SEV_ERROR,
                where,
                f"literals outside the declared variable range: {bad} "
                f"(num_vars={num_vars})",
                "allocate variables through CNF.new_var()",
            )
        lits = set(clause)
        if len(lits) < len(clause):
            report.add(
                "encoding.dup-lit",
                SEV_WARNING,
                where,
                f"duplicate literals survived normalisation: {list(clause)}",
                "route clauses through CNF.add_clause()",
            )
        if any(-lit in lits for lit in lits):
            report.add(
                "encoding.tautology",
                SEV_ERROR,
                where,
                f"tautological clause survived normalisation: {list(clause)}",
                "route clauses through CNF.add_clause()",
            )
            continue
        key = frozenset(lits)
        if key in seen:
            report.add(
                "encoding.dup-clause",
                SEV_WARNING,
                where,
                f"duplicate of clause[{seen[key]}]: {sorted(lits)}",
                "deduplicate in the producer (wasted propagation work)",
            )
        else:
            seen[key] = index
    return report


def lint_aig(aig: AIG, roots: Iterable[int] = ()) -> LintReport:
    """Run the AIG-layer rules; ``roots`` enables the dangling-node check."""
    report = LintReport()
    num = aig.num_nodes()
    top = num + 1  # valid node ids are 2..top (1 is the constant)
    for node in range(2, top + 1):
        for arg in aig.args(node):
            ref = abs(arg)
            if ref == 0 or ref >= node:
                report.add(
                    "encoding.aig-order",
                    SEV_ERROR,
                    f"node {node}",
                    f"argument {arg} does not reference an earlier node",
                    "build nodes through AIG.and_/xor_/ite only",
                )
    root_list = [abs(r) for r in roots if abs(r) > 1]
    if root_list:
        reachable: set[int] = set()
        stack = list(root_list)
        while stack:
            node = stack.pop()
            if node in reachable or node > top:
                continue
            reachable.add(node)
            stack.extend(abs(a) for a in aig.args(node) if abs(a) > 1)
        dangling = [
            node
            for node in range(2, top + 1)
            if node not in reachable and aig.kind(node) in (K_AND, K_XOR, K_ITE)
        ]
        if dangling:
            sample = dangling[:8]
            report.add(
                "encoding.aig-dangling",
                SEV_WARNING,
                f"nodes {sample}{'...' if len(dangling) > 8 else ''}",
                f"{len(dangling)} gate(s) unreachable from the given roots",
                "dead logic got encoded; check cone extraction",
            )
    return report


def lint_encoding_stats(stats) -> LintReport:
    """Rules over pre/post-preprocessing deltas of an ``EncodingStats``.

    Accepts the dataclass or any object/dict with the same field names.
    """
    report = LintReport()

    def get(name: str) -> Optional[int]:
        if isinstance(stats, dict):
            value = stats.get(name)
        else:
            value = getattr(stats, name, None)
        return value

    pre = get("cnf_clauses_pre")
    post = get("cnf_clauses_post")
    if pre is not None and post is not None and post > pre:
        report.add(
            "encoding.preprocess-regression",
            SEV_WARNING,
            "preprocess",
            f"preprocessing grew the clause count: {pre} -> {post}",
            "a rewrite is counterproductive on this workload; check "
            "resolvent bounds",
        )
    eliminated = get("vars_eliminated")
    restored = get("vars_restored")
    if (
        eliminated is not None
        and restored is not None
        and restored > eliminated
    ):
        report.add(
            "encoding.restore-imbalance",
            SEV_ERROR,
            "preprocess",
            f"{restored} variables restored but only {eliminated} were "
            "eliminated",
            "model reconstruction is corrupting the elimination stack",
        )
    return report
