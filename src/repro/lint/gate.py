"""Pre-solve lint gate for engines and flows.

A gate mode decides what happens to a model's lint report before any
engine touches it:

* ``"error"`` — error-severity findings raise
  :class:`~repro.errors.LintError`; warnings become
  :class:`LintWarning` warnings.
* ``"warn"`` — every error/warning finding becomes a :class:`LintWarning`;
  nothing raises.
* ``"off"`` — lint does not run at all (zero overhead; the default).

The process-wide default comes from ``REPRO_LINT_GATE`` (threaded exactly
like ``REPRO_SAT_BACKEND``); :class:`~repro.bmc.engine.BmcSession` and the
flows also accept an explicit ``lint=`` argument that overrides it.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro.errors import LintError
from repro.lint.findings import LintReport
from repro.lint.model import lint_transition_system
from repro.ts.system import TransitionSystem

#: Environment variable holding the process-wide gate mode.
ENV_LINT_GATE = "REPRO_LINT_GATE"

GATE_MODES = ("error", "warn", "off")


class LintWarning(UserWarning):
    """Warning-severity lint findings surfaced by a gate."""


def default_gate_mode() -> str:
    """The process default: ``$REPRO_LINT_GATE`` when set, else ``"off"``."""
    raw = os.environ.get(ENV_LINT_GATE)
    if raw is None:
        return "off"
    mode = raw.strip().lower()
    if mode not in GATE_MODES:
        raise LintError(
            f"{ENV_LINT_GATE} must be one of {GATE_MODES}, got {raw!r}"
        )
    return mode


def resolve_gate_mode(mode: Optional[str]) -> str:
    """Normalise a gate-mode argument (``None`` = process default)."""
    if mode is None:
        return default_gate_mode()
    if mode not in GATE_MODES:
        raise LintError(f"lint gate mode must be one of {GATE_MODES}, got {mode!r}")
    return mode


def gate_transition_system(
    ts: TransitionSystem,
    mode: Optional[str] = None,
    where: str = "",
) -> LintReport:
    """Lint ``ts`` and enforce ``mode``; returns the report when it passes.

    ``where`` names the call site in raised/warned messages (e.g.
    ``"BmcSession"``).
    """
    mode = resolve_gate_mode(mode)
    if mode == "off":
        return LintReport()
    report = lint_transition_system(ts)
    prefix = f"{where}: " if where else ""
    if mode == "error":
        errors = report.errors
        if errors:
            rendered = "\n".join(f.render() for f in errors)
            raise LintError(
                f"{prefix}model {ts.name!r} failed lint with "
                f"{len(errors)} error(s):\n{rendered}"
            )
        for finding in report.warnings:
            warnings.warn(f"{prefix}{finding.render()}", LintWarning, stacklevel=3)
    else:  # warn
        for finding in report.at_least("warning"):
            warnings.warn(f"{prefix}{finding.render()}", LintWarning, stacklevel=3)
    return report
