"""Command-line front end: ``python -m repro.lint``.

Targets, combinable in one invocation:

* positional paths — ``.btor2`` files, parsed and model-linted;
* ``--design NAME`` (repeatable, or ``all``) — entries of the built-in
  design gallery (the PDR designs, clean and buggy variants);
* ``--zoo-sample N`` — N generated bug-zoo instances (seeded, reproducible
  via ``--zoo-seed``), each built and model-linted;
* ``--encode-bound K`` — additionally unroll each target to bound K and
  run the encoding lint over the produced CNF/AIG and pipeline stats.

Exit status: 0 clean, 1 when findings at or above ``--fail-on`` severity
exist, 2 on usage/parse errors.

Examples::

    python -m repro.lint sepe_sqed_model.btor2
    python -m repro.lint --design all --json
    python -m repro.lint --zoo-sample 20 --zoo-seed 7 --fail-on error
    python -m repro.lint sepe_sqed_model.btor2 --encode-bound 3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Optional

from repro.errors import ReproError
from repro.lint.encoding import lint_aig, lint_cnf, lint_encoding_stats
from repro.lint.findings import SEV_ERROR, SEV_WARNING, LintReport
from repro.lint.model import lint_transition_system
from repro.ts.system import TransitionSystem


def _gallery() -> dict[str, Callable[[], TransitionSystem]]:
    from repro.pdr import designs as D

    gallery: dict[str, Callable[[], TransitionSystem]] = {}
    for builder in (
        D.saturating_counter,
        D.lockstep_accumulators,
        D.pipelined_accumulators,
    ):
        for buggy in (False, True):
            key = builder.__name__ + ("_buggy" if buggy else "")
            gallery[key] = (
                lambda b=builder, bg=buggy: b("d", buggy=bg)
            )
    return gallery


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis over transition systems and encodings.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="BTOR2 files to parse and lint",
    )
    parser.add_argument(
        "--design",
        action="append",
        default=[],
        metavar="NAME",
        help="lint a built-in design ('all' for the whole gallery; "
        "repeatable)",
    )
    parser.add_argument(
        "--zoo-sample",
        type=int,
        default=0,
        metavar="N",
        help="lint N generated bug-zoo instances",
    )
    parser.add_argument(
        "--zoo-seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed for --zoo-sample (default 0)",
    )
    parser.add_argument(
        "--encode-bound",
        type=int,
        default=None,
        metavar="K",
        help="also unroll each target to bound K and lint the encoding",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a JSON report instead of text",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that makes the exit status 1 (default: error)",
    )
    return parser


def _lint_encoding(
    ts: TransitionSystem, bound: int, report: LintReport
) -> None:
    """Unroll ``ts`` to ``bound`` for every property and lint the encoding."""
    from repro.bmc.engine import BmcSession

    for prop_name in ts.properties:
        session = BmcSession(ts, prop_name)
        stats = session.encode_to(bound)
        blaster = session.context.blaster
        report.extend(lint_cnf(blaster.cnf))
        if blaster.aig is not None:
            report.extend(lint_aig(blaster.aig))
        report.extend(lint_encoding_stats(stats))


def _zoo_targets(count: int, seed: int) -> list[tuple[str, TransitionSystem]]:
    from repro.zoo.families import FAMILIES, instantiate, sample_recipe
    from repro.zoo.oracle import OracleSettings, make_flow

    settings = OracleSettings()
    families = sorted(FAMILIES)
    targets: list[tuple[str, TransitionSystem]] = []
    for index in range(count):
        family = families[index % len(families)]
        recipe = sample_recipe(family, seed + index)
        instance = instantiate(recipe)
        model = make_flow(instance, settings).build_model(instance.bug)
        targets.append((f"zoo:{family}[seed={seed + index}]", model.ts))
    return targets


def main(argv: Optional[list[str]] = None) -> int:
    args = _parser().parse_args(argv)
    gallery = _gallery()

    try:
        targets: list[tuple[str, TransitionSystem]] = []
        for path_text in args.targets:
            path = Path(path_text)
            from repro.btor.parser import parse_btor2
            from repro.qed.module import reserve_model_prefixes

            ts = parse_btor2(path.read_text(), name=path.stem)
            # A parsed QED model re-interns its m<N>_* symbols; keep later
            # in-process builds (--zoo-sample) off those prefixes.
            reserve_model_prefixes(
                [s.name for s in ts.states] + [i.name for i in ts.inputs]
            )
            targets.append((path_text, ts))
        design_names = list(args.design)
        if "all" in design_names:
            design_names = sorted(gallery)
        for name in design_names:
            if name not in gallery:
                print(
                    f"unknown design {name!r}; available: "
                    + ", ".join(sorted(gallery)),
                    file=sys.stderr,
                )
                return 2
            targets.append((f"design:{name}", gallery[name]()))
        if args.zoo_sample:
            targets.extend(_zoo_targets(args.zoo_sample, args.zoo_seed))

        if not targets:
            print("nothing to lint (pass files, --design or --zoo-sample)",
                  file=sys.stderr)
            return 2

        results: list[tuple[str, LintReport]] = []
        for name, ts in targets:
            report = lint_transition_system(ts)
            if args.encode_bound is not None:
                _lint_encoding(ts, args.encode_bound, report)
            results.append((name, report))
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    total_errors = sum(len(r.errors) for _, r in results)
    total_warnings = sum(len(r.warnings) for _, r in results)

    if args.as_json:
        payload = {
            "targets": {name: report.as_dict() for name, report in results},
            "total_errors": total_errors,
            "total_warnings": total_warnings,
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, report in results:
            if report.findings:
                print(f"== {name}")
                print(report.render())
            else:
                print(f"== {name}: clean")
        print(
            f"-- {len(results)} target(s): {total_errors} error(s), "
            f"{total_warnings} warning(s)"
        )

    if args.fail_on == "never":
        return 0
    failing = total_errors
    if args.fail_on == "warning":
        failing += total_warnings
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
