"""An in-order pipelined processor model as a symbolic transition system.

The micro-architecture is a three-stage, single-issue pipeline:

* **D** (dispatch/decode, the cycle the instruction enters): source
  registers are read, with operand forwarding from the execute and
  write-back stages, and the instruction is latched into the execute stage.
* **EX**: the ALU result (or load value / store address) is computed from
  the latched operands; stores update the data memory at the end of this
  cycle; the result is latched into the write-back stage.
* **WB**: the register file is written.

The instruction stream is supplied by the caller (the QED module of
:mod:`repro.qed`) as a bundle of bit-vector terms, mirroring Figure 2 of the
paper where the EDSEP-V module sits between the symbolic instruction source
and the DUV's pipeline.

Instructions use a compact micro-encoding at this boundary (opcode index
into the configured pool plus register/immediate fields) rather than the
full 32-bit RISC-V word; :mod:`repro.isa.encoding` provides the standard
encoding for tooling purposes, but decoding full instruction words
symbolically would only blow up the BMC queries without changing what the
QED properties observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ProcessorError
from repro.isa.instructions import get_instruction
from repro.proc.bugs import Bug
from repro.proc.config import ProcessorConfig
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.ts.system import TransitionSystem
from repro.utils.bitops import clog2, mask


@dataclass
class InstructionSignals:
    """The micro-encoded instruction presented to the pipeline this cycle."""

    valid: BV  # width 1
    op: BV  # width cfg.op_width (index into the instruction pool)
    rd: BV  # width reg_index_width
    rs1: BV
    rs2: BV
    imm: BV  # width imm_width


@dataclass
class ProcessorHandles:
    """Signals the QED layer needs to observe the DUV."""

    reg_symbols: list[BV]  # architectural register file (index 0 is the constant 0)
    mem_symbols: list[BV]  # data memory words
    pipeline_empty: BV  # no instruction in flight
    ex_valid: BV
    wb_valid: BV


class _OpMatch:
    """Maps opcode mnemonics to match conditions; unknown opcodes are false."""

    def __init__(self, cfg: ProcessorConfig, op_term: BV):
        self._conditions = {
            name: T.bv_eq(op_term, T.bv_const(cfg.op_index(name), cfg.op_width))
            for name in cfg.supported_ops
        }

    def __getitem__(self, name: str) -> BV:
        return self._conditions.get(name, T.bv_false())

    def __contains__(self, name: str) -> bool:
        return name in self._conditions


class PipelineProcessor:
    """Builds the pipeline's state variables and logic inside a transition system."""

    def __init__(
        self,
        config: ProcessorConfig,
        bug: Optional[Bug] = None,
        name_prefix: str = "duv",
    ):
        self.cfg = config
        self.bug = bug
        self.prefix = name_prefix

    # ---------------------------------------------------------------- helpers

    def _hook(self, hook: str, ctx: dict, default: BV) -> BV:
        if self.bug is None:
            return default
        return self.bug.apply(hook, self.cfg, ctx, default)

    def _op_category(self, op_match: _OpMatch, predicate) -> BV:
        """OR of the match conditions of all pool opcodes satisfying ``predicate``."""
        conditions = [
            op_match[name]
            for name in self.cfg.supported_ops
            if predicate(get_instruction(name))
        ]
        return T.bv_or_all(conditions)

    def _alu(self, op_match: _OpMatch, a: BV, b: BV, imm: BV) -> BV:
        """The execute-stage ALU: a mux over the pool's instruction semantics."""
        isa = self.cfg.isa
        result = T.bv_const(0, isa.xlen)
        for name in self.cfg.supported_ops:
            defn = get_instruction(name)
            value = defn.symbolic(isa, a, b, imm)
            result = T.bv_ite(op_match[name], value, result)
        return result

    # ------------------------------------------------------------------ build

    def build(
        self,
        ts: TransitionSystem,
        instr: InstructionSignals,
        initial_regs: Optional[list[BV]] = None,
        initial_mem: Optional[list[BV]] = None,
    ) -> ProcessorHandles:
        """Add the processor's state and logic to ``ts``.

        ``initial_regs`` / ``initial_mem`` give the initial values of the
        architectural state (index 0 of ``initial_regs`` is ignored — x0 is
        hard-wired to zero).  When omitted, everything starts at zero.
        """
        cfg = self.cfg
        isa = cfg.isa
        xlen = isa.xlen
        regw = isa.reg_index_width
        p = self.prefix

        if instr.op.width != cfg.op_width or instr.imm.width != isa.imm_width:
            raise ProcessorError("instruction signal widths do not match the configuration")

        # ------------------------------------------------------------ state
        zero_word = T.bv_const(0, xlen)
        reg_symbols: list[BV] = [zero_word]
        for i in range(1, isa.num_regs):
            init = initial_regs[i] if initial_regs is not None else zero_word
            reg_symbols.append(ts.add_state(f"{p}_reg{i}", xlen, init=init))
        mem_symbols: list[BV] = []
        for w in range(isa.mem_words):
            init = initial_mem[w] if initial_mem is not None else zero_word
            mem_symbols.append(ts.add_state(f"{p}_mem{w}", xlen, init=init))

        ex_valid = ts.add_state(f"{p}_ex_valid", 1, init=0)
        ex_op = ts.add_state(f"{p}_ex_op", cfg.op_width, init=0)
        ex_rd = ts.add_state(f"{p}_ex_rd", regw, init=0)
        ex_a = ts.add_state(f"{p}_ex_a", xlen, init=0)
        ex_b = ts.add_state(f"{p}_ex_b", xlen, init=0)
        ex_imm = ts.add_state(f"{p}_ex_imm", isa.imm_width, init=0)

        wb_valid = ts.add_state(f"{p}_wb_valid", 1, init=0)
        wb_op = ts.add_state(f"{p}_wb_op", cfg.op_width, init=0)
        wb_writes = ts.add_state(f"{p}_wb_writes", 1, init=0)
        wb_rd = ts.add_state(f"{p}_wb_rd", regw, init=0)
        wb_value = ts.add_state(f"{p}_wb_value", xlen, init=0)

        # -------------------------------------------------------- EX stage
        ex_match = _OpMatch(cfg, ex_op)
        wb_match = _OpMatch(cfg, wb_op)
        ex_is_store = self._op_category(ex_match, lambda d: d.is_store)
        ex_is_load = self._op_category(ex_match, lambda d: d.is_load)
        ex_writes_rd = self._op_category(ex_match, lambda d: d.writes_rd or d.is_load)

        alu_default = self._alu(ex_match, ex_a, ex_b, ex_imm)
        alu_result = self._hook(
            "alu_result",
            {"op_is": ex_match, "a": ex_a, "b": ex_b, "imm": ex_imm, "result": alu_default},
            alu_default,
        )
        alu_result = self._hook(
            "ex_result_seq",
            {
                "op_is": ex_match,
                "prev_op_is": wb_match,
                "prev_valid": wb_valid,
                "a": ex_a,
                "b": ex_b,
                "result": alu_result,
            },
            alu_result,
        )

        # Loads and stores use the ALU result (rs1 + imm) as effective address.
        store_addr = self._hook(
            "store_addr",
            {"a": ex_a, "b": ex_b, "imm": ex_imm, "addr": alu_result},
            alu_result,
        )
        store_data = self._hook(
            "store_data", {"a": ex_a, "b": ex_b, "data": ex_b}, ex_b
        )
        mem_index_width = max(1, clog2(isa.mem_words))
        load_index = T.bv_extract(alu_result, mem_index_width - 1, 0)
        store_index = T.bv_extract(store_addr, mem_index_width - 1, 0)
        load_value = zero_word
        for w in range(isa.mem_words):
            load_value = T.bv_ite(
                T.bv_eq(load_index, T.bv_const(w, mem_index_width)),
                mem_symbols[w],
                load_value,
            )
        ex_result = T.bv_ite(ex_is_load, load_value, alu_result)
        ex_result_forward = self._hook(
            "forward_ex_value",
            {"ex_a": ex_a, "ex_b": ex_b, "value": ex_result},
            ex_result,
        )

        # Memory write (end of EX).
        do_store = T.bv_and(ex_valid, ex_is_store)
        for w in range(isa.mem_words):
            ts.set_next(
                mem_symbols[w],
                T.bv_ite(
                    T.bv_and(do_store, T.bv_eq(store_index, T.bv_const(w, mem_index_width))),
                    store_data,
                    mem_symbols[w],
                ),
            )

        # -------------------------------------------------------- WB stage
        wb_write_default = T.bv_and(wb_valid, wb_writes)
        wb_write_cond = self._hook(
            "wb_write_cond",
            {
                "cond": wb_write_default,
                "wb_rd": wb_rd,
                "wb_op_is": wb_match,
                "ex_op_is": ex_match,
                "ex_valid": ex_valid,
                "ex_rd": ex_rd,
            },
            wb_write_default,
        )
        wb_write_value = self._hook(
            "wb_value", {"value": wb_value, "wb_op_is": wb_match}, wb_value
        )
        for i in range(1, isa.num_regs):
            ts.set_next(
                reg_symbols[i],
                T.bv_ite(
                    T.bv_and(wb_write_cond, T.bv_eq(wb_rd, T.bv_const(i, regw))),
                    wb_write_value,
                    reg_symbols[i],
                ),
            )

        # --------------------------------------------------------- D stage
        in_match = _OpMatch(cfg, instr.op)
        in_is_store = self._op_category(in_match, lambda d: d.is_store)

        def read_register(index_term: BV) -> BV:
            value = zero_word
            for i in range(1, isa.num_regs):
                value = T.bv_ite(
                    T.bv_eq(index_term, T.bv_const(i, regw)), reg_symbols[i], value
                )
            return value

        def forwarded_operand(rs_index: BV, hook_ex: str, hook_wb: str, store_hook: Optional[str]) -> BV:
            register_value = read_register(rs_index)
            nonzero = T.bv_ne(rs_index, T.bv_const(0, regw))
            ex_cond_default = T.bv_and_all(
                [ex_valid, ex_writes_rd, T.bv_eq(ex_rd, rs_index), nonzero]
            )
            wb_cond_default = T.bv_and_all(
                [wb_valid, wb_writes, T.bv_eq(wb_rd, rs_index), nonzero]
            )
            if not cfg.forwarding:
                return register_value
            ctx_common = {"ex_valid": ex_valid, "ex_writes_rd": ex_writes_rd,
                          "ex_rd": ex_rd, "wb_valid": wb_valid, "wb_writes": wb_writes,
                          "wb_rd": wb_rd, "rs_idx": rs_index}
            ex_cond = self._hook(hook_ex, {**ctx_common, "cond": ex_cond_default}, ex_cond_default)
            if store_hook is not None:
                store_cond = self._hook(
                    store_hook, {**ctx_common, "cond": ex_cond}, ex_cond
                )
                ex_cond = T.bv_ite(in_is_store, store_cond, ex_cond)
            wb_cond = self._hook(hook_wb, {**ctx_common, "cond": wb_cond_default}, wb_cond_default)
            # Default priority: the newest value (execute stage) wins.
            swap_priority = self._hook("forward_priority", dict(ctx_common), T.bv_false())
            newest_first = T.bv_ite(
                ex_cond, ex_result_forward, T.bv_ite(wb_cond, wb_value, register_value)
            )
            oldest_first = T.bv_ite(
                wb_cond, wb_value, T.bv_ite(ex_cond, ex_result_forward, register_value)
            )
            return T.bv_ite(swap_priority, oldest_first, newest_first)

        a_value = forwarded_operand(instr.rs1, "forward_ex_rs1", "forward_wb_rs1", None)
        b_value = forwarded_operand(
            instr.rs2, "forward_ex_rs2", "forward_wb_rs2", "forward_ex_rs2_store"
        )

        # ------------------------------------------------- latch transitions
        ts.set_next(ex_valid, instr.valid)
        ts.set_next(ex_op, T.bv_ite(instr.valid, instr.op, T.bv_const(0, cfg.op_width)))
        ts.set_next(ex_rd, T.bv_ite(instr.valid, instr.rd, T.bv_const(0, regw)))
        ts.set_next(ex_a, T.bv_ite(instr.valid, a_value, zero_word))
        ts.set_next(ex_b, T.bv_ite(instr.valid, b_value, zero_word))
        ts.set_next(ex_imm, T.bv_ite(instr.valid, instr.imm, T.bv_const(0, isa.imm_width)))

        ts.set_next(wb_valid, ex_valid)
        ts.set_next(wb_op, ex_op)
        ts.set_next(wb_writes, T.bv_and(ex_valid, T.bv_and(ex_writes_rd, T.bv_not(ex_is_store))))
        ts.set_next(wb_rd, ex_rd)
        ts.set_next(wb_value, ex_result)

        pipeline_empty = T.bv_and(T.bv_not(ex_valid), T.bv_not(wb_valid))
        return ProcessorHandles(
            reg_symbols=reg_symbols,
            mem_symbols=mem_symbols,
            pipeline_empty=pipeline_empty,
            ex_valid=ex_valid,
            wb_valid=wb_valid,
        )

    # ----------------------------------------------------- reference executor

    def reference_step(self, state: "object", instr) -> None:  # pragma: no cover
        raise ProcessorError(
            "use repro.isa.executor for architectural reference execution"
        )
