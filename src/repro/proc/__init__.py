"""Symbolic processor models (the design under verification).

The paper verifies RIDECORE, an out-of-order RISC-V core written in Verilog.
That RTL (and the Yosys flow around it) is not available offline, so this
package provides parameterisable pipelined processor models built directly
as transition systems over bit-vector terms:

* :class:`~repro.proc.pipeline.PipelineProcessor` — an in-order pipeline
  (decode/execute/write-back) with operand forwarding, a register file with
  a hard-wired zero register, and a small word-addressed data memory.
* :mod:`repro.proc.bugs` — a catalog of injectable mutations: the
  *single-instruction* bugs of Table 1 and the *multiple-instruction*
  (sequence-dependent) bugs of Figure 4.

The models accept the instruction stream from the QED module
(:mod:`repro.qed`), which is how Figure 2 of the paper wires EDSEP-V in
front of the DUV.
"""

from repro.proc.config import ProcessorConfig
from repro.proc.bugs import Bug, BugKind, bug_catalog, get_bug, single_instruction_bugs, multiple_instruction_bugs
from repro.proc.pipeline import PipelineProcessor, InstructionSignals, ProcessorHandles

__all__ = [
    "ProcessorConfig",
    "Bug",
    "BugKind",
    "bug_catalog",
    "get_bug",
    "single_instruction_bugs",
    "multiple_instruction_bugs",
    "PipelineProcessor",
    "InstructionSignals",
    "ProcessorHandles",
]
