"""Processor configuration: ISA parameters plus micro-architecture knobs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProcessorError
from repro.isa.config import IsaConfig
from repro.isa.instructions import instruction_names
from repro.utils.bitops import clog2

#: The instruction pool used by default.  Keeping the pool explicit lets
#: experiments verify against a DUV that implements exactly the opcodes a
#: given bug involves, which keeps the bit-blasted BMC queries small without
#: changing the methodology (the property is still universal).
DEFAULT_POOL = [
    "ADD", "SUB", "XOR", "OR", "AND", "SLT", "SLTU", "SLL", "SRL", "SRA",
    "ADDI", "XORI", "ORI", "ANDI", "SLLI", "SRLI", "SRAI",
    "MUL", "MULH", "MULHU",
    "LUI", "LW", "SW",
]


@dataclass(frozen=True)
class ProcessorConfig:
    """Static parameters of the pipelined DUV.

    Attributes:
        isa: datapath widths and register/memory sizes.
        supported_ops: the opcodes the core implements (a subset of the ISA
            catalog); the symbolic instruction input is constrained to this
            pool.
        forwarding: whether the decode stage forwards results from the
            execute and write-back stages (the bug-free reference design has
            forwarding on; several Figure 4 bugs corrupt it).
    """

    isa: IsaConfig = field(default_factory=IsaConfig.small)
    supported_ops: tuple[str, ...] = tuple(DEFAULT_POOL)
    forwarding: bool = True

    def __post_init__(self) -> None:
        known = set(instruction_names())
        for op in self.supported_ops:
            if op not in known:
                raise ProcessorError(f"unsupported opcode in pool: {op!r}")
        if len(set(self.supported_ops)) != len(self.supported_ops):
            raise ProcessorError("supported_ops contains duplicates")
        if not self.supported_ops:
            raise ProcessorError("supported_ops must not be empty")

    @property
    def op_width(self) -> int:
        """Width of the micro-encoded opcode field."""
        return max(1, clog2(len(self.supported_ops)))

    def op_index(self, name: str) -> int:
        """Index of an opcode in the pool (the micro-encoding of the opcode)."""
        try:
            return self.supported_ops.index(name.upper())
        except ValueError as exc:
            raise ProcessorError(
                f"opcode {name!r} is not in the processor's instruction pool"
            ) from exc

    def with_pool(self, ops: list[str] | tuple[str, ...]) -> "ProcessorConfig":
        """A copy of this configuration with a different instruction pool."""
        return ProcessorConfig(
            isa=self.isa, supported_ops=tuple(ops), forwarding=self.forwarding
        )

    @classmethod
    def small(cls, ops: list[str] | None = None, xlen: int = 8, num_regs: int = 8) -> "ProcessorConfig":
        """The scaled-down configuration used by tests and experiments."""
        pool = tuple(ops) if ops is not None else tuple(DEFAULT_POOL)
        return cls(isa=IsaConfig.small(xlen=xlen, num_regs=num_regs), supported_ops=pool)
