"""Catalog of injectable design bugs (RTL mutations).

The paper evaluates SQED / SEPE-SQED with mutation testing on RIDECORE:
single-instruction bugs (Table 1) and multiple-instruction bugs (Figure 4).
Here a :class:`Bug` is a set of *hooks* the pipeline builder consults while
constructing the transition system; each hook receives the correct signal
(and its context) and returns the mutated signal.

Hook names used by :class:`~repro.proc.pipeline.PipelineProcessor`:

=====================  =====================================================
``alu_result``          combinational ALU output in the execute stage
``ex_result_seq``       ALU output, with the opcode of the *previous*
                        instruction (write-back stage) in context — used for
                        sequence-dependent mutations
``store_addr``          effective address of a store
``store_data``          data value written by a store
``forward_ex_rs1/rs2``  forwarding condition from the execute stage
``forward_wb_rs1/rs2``  forwarding condition from the write-back stage
``forward_ex_value``    the value forwarded from the execute stage
``wb_write_cond``       register-file write enable in the write-back stage
``wb_value``            register-file write data in the write-back stage
=====================  =====================================================

Every hook has the signature ``hook(cfg, ctx) -> BV`` where ``ctx`` is a
dict of named bit-vector terms that always contains the default (correct)
signal under the key named after the hook's output (``result``, ``cond``,
``addr``, ``data``, ``value``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.errors import ProcessorError, UnknownBugError
from repro.proc.config import ProcessorConfig
from repro.smt import terms as T
from repro.smt.terms import BV

HookFn = Callable[[ProcessorConfig, dict], BV]


class BugKind(enum.Enum):
    """The two bug categories the paper distinguishes."""

    SINGLE_INSTRUCTION = "single"
    MULTIPLE_INSTRUCTION = "multiple"


@dataclass(frozen=True)
class BugRecipe:
    """Provenance of a *generated* bug: ``(family, params, seed)``.

    The static catalog below carries ``recipe=None``; bugs minted by
    :mod:`repro.zoo` carry the exact recipe that rebuilds them, so any
    instance that slips through a campaign can be reproduced from three
    values.  ``params`` is a sorted tuple of ``(key, value)`` pairs so the
    recipe is hashable and its JSON form is canonical.
    """

    family: str
    params: tuple[tuple[str, object], ...] = ()
    seed: int = 0

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "params": {k: v for k, v in self.params},
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BugRecipe":
        try:
            family = data["family"]
            params = data.get("params", {})
            seed = data.get("seed", 0)
        except (TypeError, AttributeError) as exc:
            raise ProcessorError(f"malformed bug recipe: {data!r}") from exc
        if not isinstance(family, str) or not isinstance(seed, int):
            raise ProcessorError(f"malformed bug recipe: {data!r}")
        return cls(
            family=family,
            params=tuple(sorted(params.items())),
            seed=seed,
        )


@dataclass(frozen=True)
class Bug:
    """One injectable mutation."""

    name: str
    kind: BugKind
    description: str
    hooks: Mapping[str, HookFn]
    #: The opcode(s) whose behaviour the mutation corrupts (for reporting and
    #: for choosing a compact instruction pool in the experiments).
    target_ops: tuple[str, ...] = ()
    #: Extra opcodes that should be in the DUV pool so the bug can be both
    #: triggered and exposed (e.g. the opcodes of the equivalent program).
    recommended_pool: tuple[str, ...] = ()
    #: Where the bug came from: ``None`` for the hand-written catalog,
    #: the generating :class:`BugRecipe` for :mod:`repro.zoo` instances.
    recipe: Optional[BugRecipe] = None

    def apply(self, hook: str, cfg: ProcessorConfig, ctx: dict, default: BV) -> BV:
        """Return the (possibly mutated) value of ``hook``."""
        fn = self.hooks.get(hook)
        if fn is None:
            return default
        return fn(cfg, ctx)


# ----------------------------------------------------------------------------
# Single-instruction bugs (Table 1)
# ----------------------------------------------------------------------------


def _alu_bug(name: str, op: str, description: str, mutate: Callable[[ProcessorConfig, dict], BV],
             recommended_pool: tuple[str, ...] = ()) -> Bug:
    """A bug that corrupts the ALU result of one opcode only."""

    def hook(cfg: ProcessorConfig, ctx: dict) -> BV:
        is_target = ctx["op_is"][op]
        return T.bv_ite(is_target, mutate(cfg, ctx), ctx["result"])

    return Bug(
        name=name,
        kind=BugKind.SINGLE_INSTRUCTION,
        description=description,
        hooks={"alu_result": hook},
        target_ops=(op,),
        recommended_pool=recommended_pool,
    )


def _single_instruction_bug_list() -> list[Bug]:
    xl = lambda cfg: cfg.isa.xlen  # noqa: E731 - tiny local alias

    bugs = [
        _alu_bug(
            "single_add_off_by_one", "ADD",
            "ADD produces a + b + 1 (carry-in stuck at one)",
            lambda cfg, ctx: T.bv_add(T.bv_add(ctx["a"], ctx["b"]), T.bv_const(1, xl(cfg))),
            recommended_pool=("ADD", "SUB"),
        ),
        _alu_bug(
            "single_sub_off_by_one", "SUB",
            "SUB produces a - b - 1 (borrow stuck)",
            lambda cfg, ctx: T.bv_sub(T.bv_sub(ctx["a"], ctx["b"]), T.bv_const(1, xl(cfg))),
            recommended_pool=("SUB", "ADD", "XORI"),
        ),
        _alu_bug(
            "single_xor_as_or", "XOR",
            "XOR computes OR instead of exclusive OR",
            lambda cfg, ctx: T.bv_or(ctx["a"], ctx["b"]),
            recommended_pool=("XOR", "OR", "AND", "SUB"),
        ),
        _alu_bug(
            "single_or_missing_bit", "OR",
            "OR drops the least-significant result bit",
            lambda cfg, ctx: T.bv_and(
                T.bv_or(ctx["a"], ctx["b"]),
                T.bv_const(~1, xl(cfg)),
            ),
            recommended_pool=("OR", "XOR", "AND", "ADD"),
        ),
        _alu_bug(
            "single_and_as_or", "AND",
            "AND computes OR instead of bitwise AND",
            lambda cfg, ctx: T.bv_or(ctx["a"], ctx["b"]),
            recommended_pool=("AND", "OR", "XOR", "SUB"),
        ),
        _alu_bug(
            "single_slt_unsigned", "SLT",
            "SLT performs an unsigned comparison (sign bit ignored)",
            lambda cfg, ctx: T.bv_zext(T.bv_ult(ctx["a"], ctx["b"]), xl(cfg)),
            recommended_pool=("SLT", "SLTU", "XORI", "XOR", "LUI"),
        ),
        _alu_bug(
            "single_sltu_signed", "SLTU",
            "SLTU performs a signed comparison",
            lambda cfg, ctx: T.bv_zext(T.bv_slt(ctx["a"], ctx["b"]), xl(cfg)),
            recommended_pool=("SLTU", "SLT", "XORI", "XOR", "LUI"),
        ),
        _alu_bug(
            "single_sra_as_srl", "SRA",
            "SRA loses the sign (behaves like SRL)",
            lambda cfg, ctx: T.bv_lshr(
                ctx["a"],
                T.bv_zext(T.bv_extract(ctx["b"], cfg.isa.shamt_width - 1, 0), xl(cfg)),
            ),
            recommended_pool=("SRA", "XORI", "SRL"),
        ),
        _alu_bug(
            "single_mulh_unsigned", "MULH",
            "MULH returns the unsigned high product (MULHU behaviour)",
            lambda cfg, ctx: _mulhu_term(cfg, ctx["a"], ctx["b"]),
            recommended_pool=("MULH", "MULHU", "SRAI", "AND", "SUB"),
        ),
        _alu_bug(
            "single_xori_as_ori", "XORI",
            "XORI ORs the immediate instead of XORing it",
            lambda cfg, ctx: T.bv_or(ctx["a"], T.bv_sext(ctx["imm"], xl(cfg))),
            recommended_pool=("XORI", "ORI", "ANDI", "SUB"),
        ),
        _alu_bug(
            "single_slli_off_by_one", "SLLI",
            "SLLI shifts by one position too many",
            lambda cfg, ctx: T.bv_shl(
                T.bv_shl(ctx["a"], _shamt_from_imm(cfg, ctx["imm"])),
                T.bv_const(1, xl(cfg)),
            ),
            recommended_pool=("SLLI", "ADD", "SLL", "ADDI"),
        ),
        _alu_bug(
            "single_srai_as_srli", "SRAI",
            "SRAI loses the sign (behaves like SRLI)",
            lambda cfg, ctx: T.bv_lshr(ctx["a"], _shamt_from_imm(cfg, ctx["imm"])),
            recommended_pool=("SRAI", "XORI", "SRA", "SRLI"),
        ),
    ]

    # SW: the address generator selects the rs2 operand (the store data's
    # register) as the base instead of rs1 — an operand-mux mutation.
    def sw_addr_hook(cfg: ProcessorConfig, ctx: dict) -> BV:
        return T.bv_add(ctx["b"], T.bv_sext(ctx["imm"], cfg.isa.xlen))

    bugs.append(
        Bug(
            name="single_sw_base_from_rs2",
            kind=BugKind.SINGLE_INSTRUCTION,
            description="SW address generation uses the rs2 operand as the base register",
            hooks={"store_addr": sw_addr_hook},
            target_ops=("SW",),
            recommended_pool=("SW", "ADDI", "ADD", "LW"),
        )
    )
    return bugs


def _mulhu_term(cfg: ProcessorConfig, a: BV, b: BV) -> BV:
    double = 2 * cfg.isa.xlen
    return T.bv_extract(
        T.bv_mul(T.bv_zext(a, double), T.bv_zext(b, double)), double - 1, cfg.isa.xlen
    )


def _shamt_from_imm(cfg: ProcessorConfig, imm: BV) -> BV:
    return T.bv_zext(
        T.bv_extract(T.bv_zext(imm, cfg.isa.xlen), cfg.isa.shamt_width - 1, 0),
        cfg.isa.xlen,
    )


# ----------------------------------------------------------------------------
# Multiple-instruction bugs (Figure 4)
# ----------------------------------------------------------------------------


def _cond_false(_cfg: ProcessorConfig, _ctx: dict) -> BV:
    return T.bv_false()


def _multiple_instruction_bug_list() -> list[Bug]:
    bugs: list[Bug] = []

    bugs.append(Bug(
        name="multi_no_forward_ex_rs1",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="rs1 forwarding from the execute stage is missing (stale value on back-to-back dependency)",
        hooks={"forward_ex_rs1": _cond_false},
        target_ops=("ADD", "SUB"),
        recommended_pool=("ADD", "SUB", "XOR"),
    ))
    bugs.append(Bug(
        name="multi_no_forward_ex_rs2",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="rs2 forwarding from the execute stage is missing",
        hooks={"forward_ex_rs2": _cond_false},
        target_ops=("ADD", "SUB"),
        recommended_pool=("ADD", "SUB", "XOR"),
    ))
    bugs.append(Bug(
        name="multi_no_forward_wb_rs1",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="rs1 forwarding from the write-back stage is missing (distance-two dependency reads stale data)",
        hooks={"forward_wb_rs1": _cond_false},
        target_ops=("ADD", "SUB"),
        recommended_pool=("ADD", "SUB", "XOR"),
    ))
    bugs.append(Bug(
        name="multi_forward_ignores_write_enable",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="execute-stage forwarding triggers even when the producer does not write a register (e.g. a store)",
        hooks={
            "forward_ex_rs1": lambda cfg, ctx: T.bv_and(
                T.bv_and(ctx["ex_valid"], T.bv_eq(ctx["ex_rd"], ctx["rs_idx"])),
                T.bv_ne(ctx["rs_idx"], T.bv_const(0, ctx["rs_idx"].width)),
            ),
        },
        target_ops=("SW", "ADD"),
        recommended_pool=("ADD", "SUB", "SW", "ADDI"),
    ))
    bugs.append(Bug(
        name="multi_forward_wrong_operand",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="the execute stage forwards its first source operand instead of its result",
        hooks={"forward_ex_value": lambda cfg, ctx: ctx["ex_a"]},
        target_ops=("ADD", "SUB"),
        recommended_pool=("ADD", "SUB", "XOR"),
    ))
    bugs.append(Bug(
        name="multi_forward_priority_swapped",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="when both the execute and write-back stages match, the older (write-back) value wins",
        hooks={"forward_priority": lambda cfg, ctx: T.bv_true()},
        target_ops=("ADD",),
        recommended_pool=("ADD", "SUB", "XOR"),
    ))
    bugs.append(Bug(
        name="multi_wb_dropped_on_double_write",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="the register-file write is dropped when the next instruction writes the same register",
        hooks={
            "wb_write_cond": lambda cfg, ctx: T.bv_and(
                ctx["cond"],
                T.bv_not(T.bv_and(ctx["ex_valid"], T.bv_eq(ctx["ex_rd"], ctx["wb_rd"]))),
            ),
        },
        target_ops=("ADD",),
        recommended_pool=("ADD", "SUB", "XOR"),
    ))
    bugs.append(Bug(
        name="multi_wb_dropped_after_store",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="the register-file write is dropped when the following instruction is a store",
        hooks={
            "wb_write_cond": lambda cfg, ctx: T.bv_and(
                ctx["cond"], T.bv_not(T.bv_and(ctx["ex_valid"], ctx["ex_op_is"]["SW"])),
            ),
        },
        target_ops=("SW", "ADD"),
        recommended_pool=("ADD", "SW", "ADDI"),
    ))
    bugs.append(Bug(
        name="multi_add_after_mul_corrupted",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="ADD result is off by one when the previous instruction was a MUL",
        hooks={
            "ex_result_seq": lambda cfg, ctx: T.bv_ite(
                T.bv_and(ctx["op_is"]["ADD"], T.bv_and(ctx["prev_valid"], ctx["prev_op_is"]["MUL"])),
                T.bv_add(ctx["result"], T.bv_const(1, cfg.isa.xlen)),
                ctx["result"],
            ),
        },
        target_ops=("ADD", "MUL"),
        recommended_pool=("ADD", "MUL", "SUB"),
    ))
    bugs.append(Bug(
        name="multi_xor_after_sub_corrupted",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="XOR computes OR when the previous instruction was a SUB",
        hooks={
            "ex_result_seq": lambda cfg, ctx: T.bv_ite(
                T.bv_and(ctx["op_is"]["XOR"], T.bv_and(ctx["prev_valid"], ctx["prev_op_is"]["SUB"])),
                T.bv_or(ctx["a"], ctx["b"]),
                ctx["result"],
            ),
        },
        target_ops=("XOR", "SUB"),
        recommended_pool=("XOR", "SUB", "OR", "AND"),
    ))
    bugs.append(Bug(
        name="multi_store_data_not_forwarded",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="the store data operand ignores execute-stage forwarding (stores a stale value)",
        hooks={"forward_ex_rs2_store": _cond_false},
        target_ops=("SW",),
        recommended_pool=("SW", "ADD", "ADDI", "LW"),
    ))
    bugs.append(Bug(
        name="multi_and_after_and_corrupted",
        kind=BugKind.MULTIPLE_INSTRUCTION,
        description="AND clears its least-significant result bit when the previous instruction was also an AND",
        hooks={
            "ex_result_seq": lambda cfg, ctx: T.bv_ite(
                T.bv_and(ctx["op_is"]["AND"], T.bv_and(ctx["prev_valid"], ctx["prev_op_is"]["AND"])),
                T.bv_and(ctx["result"], T.bv_const(~1, cfg.isa.xlen)),
                ctx["result"],
            ),
        },
        target_ops=("AND",),
        recommended_pool=("AND", "OR", "XOR", "SUB"),
    ))
    return bugs


# ----------------------------------------------------------------------------
# Public catalog
# ----------------------------------------------------------------------------

def _build_catalog(*bug_lists: list[Bug]) -> dict[str, Bug]:
    """Merge bug lists into a name-keyed dict, rejecting duplicate names.

    A plain dict comprehension would let a later entry silently shadow an
    earlier one with the same name — exactly the kind of catalog rot that
    makes "all N bugs detected" claims vacuous.
    """
    catalog: dict[str, Bug] = {}
    for bugs in bug_lists:
        for bug in bugs:
            if bug.name in catalog:
                raise ProcessorError(
                    f"duplicate bug name {bug.name!r} in the catalog"
                )
            catalog[bug.name] = bug
    return catalog


_SINGLE = _build_catalog(_single_instruction_bug_list())
_MULTIPLE = _build_catalog(_multiple_instruction_bug_list())
_ALL = _build_catalog(list(_SINGLE.values()), list(_MULTIPLE.values()))


def bug_catalog() -> dict[str, Bug]:
    """All known bugs keyed by name."""
    return dict(_ALL)


def single_instruction_bugs() -> list[Bug]:
    """The Table 1 mutation set."""
    return list(_SINGLE.values())


def multiple_instruction_bugs() -> list[Bug]:
    """The Figure 4 mutation set."""
    return list(_MULTIPLE.values())


def get_bug(name: str) -> Bug:
    """Look up a bug by name.

    Raises :class:`~repro.errors.UnknownBugError` (a :class:`ProcessorError`
    *and* a :class:`KeyError`) listing the known names on a miss.
    """
    bug = _ALL.get(name)
    if bug is None:
        known = ", ".join(sorted(_ALL))
        raise UnknownBugError(f"unknown bug {name!r}; known bugs: {known}")
    return bug
