"""Datapath configuration for the RV32IM subset.

The paper's DUV is a 32-bit core with 32 general-purpose registers.  All of
the semantics in this repo are parameterised over :class:`IsaConfig`, so the
same code runs at XLEN=32 (faithful to the paper) and at the narrower widths
the experiments use to keep the pure-Python SAT backend tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.utils.bitops import clog2


@dataclass(frozen=True)
class IsaConfig:
    """Width and register-file parameters shared across the whole stack.

    Attributes:
        xlen: register / datapath width in bits.
        num_regs: number of general-purpose registers (register x0 is
            hard-wired to zero, as in RISC-V).
        imm_width: width of I-type immediates before sign extension.
        mem_words: number of data-memory words modelled by the processor.
    """

    xlen: int = 32
    num_regs: int = 32
    imm_width: int = 12
    mem_words: int = 4

    def __post_init__(self) -> None:
        if self.xlen < 4:
            raise IsaError(f"xlen must be at least 4, got {self.xlen}")
        if self.num_regs < 4 or self.num_regs & (self.num_regs - 1):
            raise IsaError(
                f"num_regs must be a power of two >= 4, got {self.num_regs}"
            )
        if not (1 <= self.imm_width <= self.xlen):
            raise IsaError(
                f"imm_width must be in [1, xlen]; got {self.imm_width} with xlen {self.xlen}"
            )
        if self.mem_words < 1 or self.mem_words & (self.mem_words - 1):
            raise IsaError(
                f"mem_words must be a power of two >= 1, got {self.mem_words}"
            )

    @property
    def shamt_width(self) -> int:
        """Width of a shift amount (log2 of xlen)."""
        return clog2(self.xlen)

    @property
    def reg_index_width(self) -> int:
        """Number of bits needed to address the register file."""
        return clog2(self.num_regs)

    @property
    def mem_index_width(self) -> int:
        """Number of bits needed to address the modelled data memory."""
        return max(1, clog2(self.mem_words))

    @property
    def lui_shift(self) -> int:
        """Left shift applied by LUI (12 for RV32, clipped for narrow widths)."""
        return 12 if self.xlen > 12 else 0

    @classmethod
    def rv32(cls, mem_words: int = 4) -> "IsaConfig":
        """The paper-faithful configuration: 32-bit, 32 registers."""
        return cls(xlen=32, num_regs=32, imm_width=12, mem_words=mem_words)

    @classmethod
    def small(cls, xlen: int = 8, num_regs: int = 8, mem_words: int = 4) -> "IsaConfig":
        """A scaled-down configuration used by tests and experiments."""
        return cls(
            xlen=xlen,
            num_regs=num_regs,
            imm_width=min(12, xlen),
            mem_words=mem_words,
        )


DEFAULT_CONFIG = IsaConfig.rv32()
SMALL_CONFIG = IsaConfig.small()
