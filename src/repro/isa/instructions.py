"""Instruction catalog with concrete and symbolic semantics.

Each supported instruction is described by an :class:`InstructionDef` that
bundles:

* its assembly format (which operands it reads/writes),
* concrete semantics — a pure function on Python integers, used by the
  instruction-set simulator and for fast cross-checking,
* symbolic semantics — the same function expressed over
  :class:`repro.smt.terms.BV` terms, used by the CEGIS synthesizer and the
  symbolic processor models,
* standard RV32 encoding fields (opcode / funct3 / funct7) used by the
  encoder/decoder.

The "result" of an instruction is the value written to ``rd`` for ALU /
multiply / LUI instructions.  For loads and stores the result is the
*effective address*; the memory side effect is handled by the executor and
by the processor models.  This convention is what the synthesis
specifications use (see DESIGN.md, SW entry of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import IsaError
from repro.isa.config import IsaConfig
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.utils.bitops import mask, sext, to_signed

# ----------------------------------------------------------------------------
# Instruction instances (an opcode plus operand fields)
# ----------------------------------------------------------------------------


@dataclass(frozen=True)
class Instruction:
    """A single instruction instance: mnemonic plus operand fields.

    Unused operand fields are ``None``.  ``imm`` is stored as a plain Python
    integer in the *unsigned* representation of the configured immediate
    width (sign extension happens in the semantics).
    """

    name: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None

    def __str__(self) -> str:
        from repro.isa.assembler import format_instruction

        return format_instruction(self)


# ----------------------------------------------------------------------------
# Instruction definitions
# ----------------------------------------------------------------------------

ConcreteFn = Callable[[IsaConfig, int, int, int], int]
SymbolicFn = Callable[[IsaConfig, BV, BV, BV], BV]


@dataclass(frozen=True)
class InstructionDef:
    """Static description of one opcode of the supported RV32IM subset."""

    name: str
    fmt: str  # one of "R", "I", "S", "U"
    uses_rs1: bool
    uses_rs2: bool
    uses_imm: bool
    writes_rd: bool
    is_load: bool
    is_store: bool
    concrete: ConcreteFn
    symbolic: SymbolicFn
    opcode: int
    funct3: int = 0
    funct7: int = 0
    description: str = ""

    @property
    def num_reg_inputs(self) -> int:
        return int(self.uses_rs1) + int(self.uses_rs2)


# ---------------------------------------------------------------- helpers


def _imm_sext(cfg: IsaConfig, imm: int) -> int:
    return sext(imm, cfg.imm_width, cfg.xlen)


def _imm_sext_sym(cfg: IsaConfig, imm: BV) -> BV:
    return T.bv_sext(imm, cfg.xlen)


def _shamt(cfg: IsaConfig, value: int) -> int:
    return value & (cfg.xlen - 1)


def _shamt_sym(cfg: IsaConfig, value: BV) -> BV:
    return T.bv_zext(T.bv_extract(value, cfg.shamt_width - 1, 0), cfg.xlen)


def _bool_to_xlen(cfg: IsaConfig, cond: BV) -> BV:
    return T.bv_zext(cond, cfg.xlen)


def _mulh_signed(cfg: IsaConfig, a: int, b: int) -> int:
    product = to_signed(a, cfg.xlen) * to_signed(b, cfg.xlen)
    return (product >> cfg.xlen) & mask(cfg.xlen)


def _mulh_unsigned(cfg: IsaConfig, a: int, b: int) -> int:
    return ((a * b) >> cfg.xlen) & mask(cfg.xlen)


def _mulh_su(cfg: IsaConfig, a: int, b: int) -> int:
    product = to_signed(a, cfg.xlen) * b
    return (product >> cfg.xlen) & mask(cfg.xlen)


def _mulh_sym(cfg: IsaConfig, a: BV, b: BV, a_signed: bool, b_signed: bool) -> BV:
    double = 2 * cfg.xlen
    wide_a = T.bv_sext(a, double) if a_signed else T.bv_zext(a, double)
    wide_b = T.bv_sext(b, double) if b_signed else T.bv_zext(b, double)
    return T.bv_extract(T.bv_mul(wide_a, wide_b), double - 1, cfg.xlen)


# -------------------------------------------------------------- catalog

_REGISTRY: dict[str, InstructionDef] = {}


def _register(defn: InstructionDef) -> InstructionDef:
    if defn.name in _REGISTRY:
        raise IsaError(f"duplicate instruction definition {defn.name!r}")
    _REGISTRY[defn.name] = defn
    return defn


def _r_type(
    name: str,
    funct3: int,
    funct7: int,
    concrete: ConcreteFn,
    symbolic: SymbolicFn,
    description: str,
) -> InstructionDef:
    return _register(
        InstructionDef(
            name=name,
            fmt="R",
            uses_rs1=True,
            uses_rs2=True,
            uses_imm=False,
            writes_rd=True,
            is_load=False,
            is_store=False,
            concrete=concrete,
            symbolic=symbolic,
            opcode=0b0110011,
            funct3=funct3,
            funct7=funct7,
            description=description,
        )
    )


def _i_type(
    name: str,
    funct3: int,
    concrete: ConcreteFn,
    symbolic: SymbolicFn,
    description: str,
    funct7: int = 0,
    opcode: int = 0b0010011,
    is_load: bool = False,
) -> InstructionDef:
    return _register(
        InstructionDef(
            name=name,
            fmt="I",
            uses_rs1=True,
            uses_rs2=False,
            uses_imm=True,
            writes_rd=True,
            is_load=is_load,
            is_store=False,
            concrete=concrete,
            symbolic=symbolic,
            opcode=opcode,
            funct3=funct3,
            funct7=funct7,
            description=description,
        )
    )


# --- R-type ALU -------------------------------------------------------------

ADD = _r_type(
    "ADD", 0b000, 0b0000000,
    lambda cfg, a, b, imm: (a + b) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_add(a, b),
    "Addition of two register operands",
)
SUB = _r_type(
    "SUB", 0b000, 0b0100000,
    lambda cfg, a, b, imm: (a - b) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_sub(a, b),
    "Subtraction of two register operands",
)
SLL = _r_type(
    "SLL", 0b001, 0b0000000,
    lambda cfg, a, b, imm: (a << _shamt(cfg, b)) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_shl(a, _shamt_sym(cfg, b)),
    "Shift left logical",
)
SLT = _r_type(
    "SLT", 0b010, 0b0000000,
    lambda cfg, a, b, imm: 1 if to_signed(a, cfg.xlen) < to_signed(b, cfg.xlen) else 0,
    lambda cfg, a, b, imm: _bool_to_xlen(cfg, T.bv_slt(a, b)),
    "Set if less than (signed)",
)
SLTU = _r_type(
    "SLTU", 0b011, 0b0000000,
    lambda cfg, a, b, imm: 1 if a < b else 0,
    lambda cfg, a, b, imm: _bool_to_xlen(cfg, T.bv_ult(a, b)),
    "Set if less than (unsigned)",
)
XOR = _r_type(
    "XOR", 0b100, 0b0000000,
    lambda cfg, a, b, imm: a ^ b,
    lambda cfg, a, b, imm: T.bv_xor(a, b),
    "Exclusive OR",
)
SRL = _r_type(
    "SRL", 0b101, 0b0000000,
    lambda cfg, a, b, imm: a >> _shamt(cfg, b),
    lambda cfg, a, b, imm: T.bv_lshr(a, _shamt_sym(cfg, b)),
    "Shift right logical",
)
SRA = _r_type(
    "SRA", 0b101, 0b0100000,
    lambda cfg, a, b, imm: (to_signed(a, cfg.xlen) >> _shamt(cfg, b)) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_ashr(a, _shamt_sym(cfg, b)),
    "Shift right arithmetic",
)
OR = _r_type(
    "OR", 0b110, 0b0000000,
    lambda cfg, a, b, imm: a | b,
    lambda cfg, a, b, imm: T.bv_or(a, b),
    "Bitwise OR",
)
AND = _r_type(
    "AND", 0b111, 0b0000000,
    lambda cfg, a, b, imm: a & b,
    lambda cfg, a, b, imm: T.bv_and(a, b),
    "Bitwise AND",
)

# --- RV32M multiplies -------------------------------------------------------

MUL = _r_type(
    "MUL", 0b000, 0b0000001,
    lambda cfg, a, b, imm: (a * b) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_mul(a, b),
    "Multiply (low half)",
)
MULH = _r_type(
    "MULH", 0b001, 0b0000001,
    lambda cfg, a, b, imm: _mulh_signed(cfg, a, b),
    lambda cfg, a, b, imm: _mulh_sym(cfg, a, b, True, True),
    "Multiply high (signed x signed)",
)
MULHSU = _r_type(
    "MULHSU", 0b010, 0b0000001,
    lambda cfg, a, b, imm: _mulh_su(cfg, a, b),
    lambda cfg, a, b, imm: _mulh_sym(cfg, a, b, True, False),
    "Multiply high (signed x unsigned)",
)
MULHU = _r_type(
    "MULHU", 0b011, 0b0000001,
    lambda cfg, a, b, imm: _mulh_unsigned(cfg, a, b),
    lambda cfg, a, b, imm: _mulh_sym(cfg, a, b, False, False),
    "Multiply high (unsigned x unsigned)",
)

# --- I-type ALU -------------------------------------------------------------

ADDI = _i_type(
    "ADDI", 0b000,
    lambda cfg, a, b, imm: (a + _imm_sext(cfg, imm)) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_add(a, _imm_sext_sym(cfg, imm)),
    "Add immediate",
)
SLTI = _i_type(
    "SLTI", 0b010,
    lambda cfg, a, b, imm: 1 if to_signed(a, cfg.xlen) < to_signed(_imm_sext(cfg, imm), cfg.xlen) else 0,
    lambda cfg, a, b, imm: _bool_to_xlen(cfg, T.bv_slt(a, _imm_sext_sym(cfg, imm))),
    "Set if less than immediate (signed)",
)
SLTIU = _i_type(
    "SLTIU", 0b011,
    lambda cfg, a, b, imm: 1 if a < _imm_sext(cfg, imm) else 0,
    lambda cfg, a, b, imm: _bool_to_xlen(cfg, T.bv_ult(a, _imm_sext_sym(cfg, imm))),
    "Set if less than immediate (unsigned compare)",
)
XORI = _i_type(
    "XORI", 0b100,
    lambda cfg, a, b, imm: a ^ _imm_sext(cfg, imm),
    lambda cfg, a, b, imm: T.bv_xor(a, _imm_sext_sym(cfg, imm)),
    "Exclusive OR immediate",
)
ORI = _i_type(
    "ORI", 0b110,
    lambda cfg, a, b, imm: a | _imm_sext(cfg, imm),
    lambda cfg, a, b, imm: T.bv_or(a, _imm_sext_sym(cfg, imm)),
    "Bitwise OR immediate",
)
ANDI = _i_type(
    "ANDI", 0b111,
    lambda cfg, a, b, imm: a & _imm_sext(cfg, imm),
    lambda cfg, a, b, imm: T.bv_and(a, _imm_sext_sym(cfg, imm)),
    "Bitwise AND immediate",
)
SLLI = _i_type(
    "SLLI", 0b001,
    lambda cfg, a, b, imm: (a << _shamt(cfg, imm)) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_shl(a, _shamt_sym(cfg, T.bv_zext(imm, cfg.xlen))),
    "Shift left logical immediate",
)
SRLI = _i_type(
    "SRLI", 0b101,
    lambda cfg, a, b, imm: a >> _shamt(cfg, imm),
    lambda cfg, a, b, imm: T.bv_lshr(a, _shamt_sym(cfg, T.bv_zext(imm, cfg.xlen))),
    "Shift right logical immediate",
)
SRAI = _i_type(
    "SRAI", 0b101,
    lambda cfg, a, b, imm: (to_signed(a, cfg.xlen) >> _shamt(cfg, imm)) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_ashr(a, _shamt_sym(cfg, T.bv_zext(imm, cfg.xlen))),
    "Shift right arithmetic immediate",
    funct7=0b0100000,
)

# --- LUI --------------------------------------------------------------------

LUI = _register(
    InstructionDef(
        name="LUI",
        fmt="U",
        uses_rs1=False,
        uses_rs2=False,
        uses_imm=True,
        writes_rd=True,
        is_load=False,
        is_store=False,
        concrete=lambda cfg, a, b, imm: (imm << cfg.lui_shift) & mask(cfg.xlen),
        symbolic=lambda cfg, a, b, imm: T.bv_shl(
            T.bv_zext(imm, cfg.xlen), T.bv_const(cfg.lui_shift, cfg.xlen)
        ),
        opcode=0b0110111,
        description="Load upper immediate",
    )
)

# --- loads / stores ---------------------------------------------------------

LW = _i_type(
    "LW", 0b010,
    lambda cfg, a, b, imm: (a + _imm_sext(cfg, imm)) & mask(cfg.xlen),
    lambda cfg, a, b, imm: T.bv_add(a, _imm_sext_sym(cfg, imm)),
    "Load word (result value is the effective address; memory handled by the executor)",
    opcode=0b0000011,
    is_load=True,
)

SW = _register(
    InstructionDef(
        name="SW",
        fmt="S",
        uses_rs1=True,
        uses_rs2=True,
        uses_imm=True,
        writes_rd=False,
        is_load=False,
        is_store=True,
        concrete=lambda cfg, a, b, imm: (a + _imm_sext(cfg, imm)) & mask(cfg.xlen),
        symbolic=lambda cfg, a, b, imm: T.bv_add(a, _imm_sext_sym(cfg, imm)),
        opcode=0b0100011,
        funct3=0b010,
        description="Store word (result value is the effective address; data is rs2)",
    )
)


# ----------------------------------------------------------------------------
# Public accessors
# ----------------------------------------------------------------------------

INSTRUCTIONS: dict[str, InstructionDef] = dict(_REGISTRY)

# Names in a stable, documentation-friendly order.
_R_ALU = ["ADD", "SUB", "SLL", "SLT", "SLTU", "XOR", "SRL", "SRA", "OR", "AND"]
_M_EXT = ["MUL", "MULH", "MULHSU", "MULHU"]
_I_ALU = ["ADDI", "SLTI", "SLTIU", "XORI", "ORI", "ANDI", "SLLI", "SRLI", "SRAI"]
_OTHER = ["LUI", "LW", "SW"]

CANONICAL_ORDER: list[str] = _R_ALU + _M_EXT + _I_ALU + _OTHER


def instruction_names() -> list[str]:
    """All supported mnemonics in canonical order."""
    return list(CANONICAL_ORDER)


def get_instruction(name: str) -> InstructionDef:
    """Look up an :class:`InstructionDef` by mnemonic (case-insensitive)."""
    defn = INSTRUCTIONS.get(name.upper())
    if defn is None:
        raise IsaError(f"unknown instruction {name!r}")
    return defn


def result_value(cfg: IsaConfig, instr: Instruction, rs1: int, rs2: int) -> int:
    """Concrete result of ``instr`` given its source register values."""
    defn = get_instruction(instr.name)
    imm = instr.imm if instr.imm is not None else 0
    return defn.concrete(cfg, rs1 & mask(cfg.xlen), rs2 & mask(cfg.xlen), imm & mask(cfg.imm_width))


def symbolic_result(cfg: IsaConfig, name: str, rs1: BV, rs2: BV, imm: BV) -> BV:
    """Symbolic result of instruction ``name`` over bit-vector operands."""
    defn = get_instruction(name)
    return defn.symbolic(cfg, rs1, rs2, imm)
