"""RV32IM instruction-set layer.

The paper runs SQED / SEPE-SQED on a RISC-V core and synthesizes equivalent
programs over a portion of RV32IM.  This package provides that substrate:

* :mod:`repro.isa.config` — datapath configuration (XLEN, register count,
  immediate width).  The paper uses XLEN=32 with 32 registers; the
  experiments in this repo default to narrower datapaths so the pure-Python
  SAT backend stays fast, and the semantics are width-generic.
* :mod:`repro.isa.instructions` — the instruction catalog with concrete
  (integer) and symbolic (bit-vector term) semantics.
* :mod:`repro.isa.encoding` — standard 32-bit RISC-V instruction word
  encoding and decoding.
* :mod:`repro.isa.executor` — an architectural-state instruction-set
  simulator used for trace replay and cross-checking.
* :mod:`repro.isa.assembler` — a small text assembler for examples/tests.
"""

from repro.isa.config import IsaConfig
from repro.isa.instructions import (
    Instruction,
    InstructionDef,
    INSTRUCTIONS,
    instruction_names,
    get_instruction,
)
from repro.isa.executor import ArchState, execute_instruction, execute_program
from repro.isa.assembler import assemble, assemble_line, format_instruction
from repro.isa.encoding import encode_instruction, decode_instruction

__all__ = [
    "IsaConfig",
    "Instruction",
    "InstructionDef",
    "INSTRUCTIONS",
    "instruction_names",
    "get_instruction",
    "ArchState",
    "execute_instruction",
    "execute_program",
    "assemble",
    "assemble_line",
    "format_instruction",
    "encode_instruction",
    "decode_instruction",
]
