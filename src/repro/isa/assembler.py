"""A small two-way assembler for the supported RV32IM subset.

Accepted syntax mirrors standard RISC-V assembly with ``x<N>`` register
names, e.g.::

    ADD  x1, x2, x3
    XORI x1, x2, 0xfff
    SW   x2, 4(x3)
    LW   x1, 0(x3)
    LUI  x1, 0x12

Commas are optional.  ``#`` starts a comment.
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction, get_instruction
from repro.utils.bitops import to_unsigned

_MEM_OPERAND = re.compile(r"^(-?\w+)\((x\d+)\)$")


def _parse_register(token: str) -> int:
    token = token.strip().lower()
    if not token.startswith("x"):
        raise AssemblerError(f"expected a register like 'x3', got {token!r}")
    try:
        return int(token[1:])
    except ValueError as exc:
        raise AssemblerError(f"malformed register {token!r}") from exc


def _parse_immediate(token: str, width: int = 12) -> int:
    token = token.strip()
    try:
        value = int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"malformed immediate {token!r}") from exc
    return to_unsigned(value, width)


def assemble_line(line: str) -> Instruction | None:
    """Assemble one line; returns ``None`` for blank / comment-only lines."""
    text = line.split("#", 1)[0].strip()
    if not text:
        return None
    parts = text.replace(",", " ").split()
    mnemonic = parts[0].upper()
    defn = get_instruction(mnemonic)
    operands = parts[1:]

    if defn.fmt == "R":
        if len(operands) != 3:
            raise AssemblerError(f"{mnemonic} expects 3 operands, got {len(operands)}")
        return Instruction(
            mnemonic,
            rd=_parse_register(operands[0]),
            rs1=_parse_register(operands[1]),
            rs2=_parse_register(operands[2]),
        )
    if defn.fmt == "I" and not defn.is_load:
        if len(operands) != 3:
            raise AssemblerError(f"{mnemonic} expects 3 operands, got {len(operands)}")
        return Instruction(
            mnemonic,
            rd=_parse_register(operands[0]),
            rs1=_parse_register(operands[1]),
            imm=_parse_immediate(operands[2]),
        )
    if defn.is_load:
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} expects 2 operands, got {len(operands)}")
        match = _MEM_OPERAND.match(operands[1])
        if not match:
            raise AssemblerError(f"malformed memory operand {operands[1]!r}")
        return Instruction(
            mnemonic,
            rd=_parse_register(operands[0]),
            rs1=_parse_register(match.group(2)),
            imm=_parse_immediate(match.group(1)),
        )
    if defn.is_store:
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} expects 2 operands, got {len(operands)}")
        match = _MEM_OPERAND.match(operands[1])
        if not match:
            raise AssemblerError(f"malformed memory operand {operands[1]!r}")
        return Instruction(
            mnemonic,
            rs2=_parse_register(operands[0]),
            rs1=_parse_register(match.group(2)),
            imm=_parse_immediate(match.group(1)),
        )
    if defn.fmt == "U":
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} expects 2 operands, got {len(operands)}")
        return Instruction(
            mnemonic,
            rd=_parse_register(operands[0]),
            imm=_parse_immediate(operands[1], width=20),
        )
    raise AssemblerError(f"cannot assemble format {defn.fmt!r}")


def assemble(text: str) -> list[Instruction]:
    """Assemble a multi-line program, skipping blank lines and comments."""
    program: list[Instruction] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            instr = assemble_line(line)
        except AssemblerError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
        if instr is not None:
            program.append(instr)
    return program


def format_instruction(instr: Instruction) -> str:
    """Render an :class:`Instruction` back to assembly text."""
    defn = get_instruction(instr.name)
    if defn.fmt == "R":
        return f"{instr.name} x{instr.rd}, x{instr.rs1}, x{instr.rs2}"
    if defn.is_load:
        return f"{instr.name} x{instr.rd}, {instr.imm}(x{instr.rs1})"
    if defn.is_store:
        return f"{instr.name} x{instr.rs2}, {instr.imm}(x{instr.rs1})"
    if defn.fmt == "I":
        return f"{instr.name} x{instr.rd}, x{instr.rs1}, {instr.imm:#x}"
    if defn.fmt == "U":
        return f"{instr.name} x{instr.rd}, {instr.imm:#x}"
    return instr.name
