"""Standard 32-bit RISC-V instruction word encoding and decoding.

The symbolic processor models use a compact micro-encoding internally (see
:mod:`repro.proc.pipeline`), but the full RV32 word encoding is provided so
programs can be round-tripped to real machine words, which is what the
Yosys/BTOR2 flow in the paper consumes.  Only the opcodes in
:mod:`repro.isa.instructions` are supported.
"""

from __future__ import annotations

from repro.errors import IsaError
from repro.isa.instructions import (
    INSTRUCTIONS,
    Instruction,
    InstructionDef,
    get_instruction,
)
from repro.utils.bitops import mask, sext, to_unsigned


def _field(value: int, width: int, name: str) -> int:
    if value < 0 or value > mask(width):
        raise IsaError(f"{name} value {value} does not fit in {width} bits")
    return value


def encode_instruction(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into a 32-bit RV32 machine word.

    Immediates are interpreted as 12-bit two's-complement values (20-bit for
    LUI).  Register indices must fit the 5-bit fields.
    """
    defn = get_instruction(instr.name)
    rd = _field(instr.rd or 0, 5, "rd")
    rs1 = _field(instr.rs1 or 0, 5, "rs1")
    rs2 = _field(instr.rs2 or 0, 5, "rs2")
    imm = instr.imm or 0

    if defn.fmt == "R":
        return (
            (defn.funct7 << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (defn.funct3 << 12)
            | (rd << 7)
            | defn.opcode
        )
    if defn.fmt == "I":
        imm12 = to_unsigned(imm, 12)
        if defn.name in ("SLLI", "SRLI", "SRAI"):
            imm12 = (defn.funct7 << 5) | (imm & 0x1F)
        return (
            (imm12 << 20)
            | (rs1 << 15)
            | (defn.funct3 << 12)
            | (rd << 7)
            | defn.opcode
        )
    if defn.fmt == "S":
        imm12 = to_unsigned(imm, 12)
        imm_high = (imm12 >> 5) & 0x7F
        imm_low = imm12 & 0x1F
        return (
            (imm_high << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (defn.funct3 << 12)
            | (imm_low << 7)
            | defn.opcode
        )
    if defn.fmt == "U":
        imm20 = to_unsigned(imm, 20)
        return (imm20 << 12) | (rd << 7) | defn.opcode
    raise IsaError(f"unsupported format {defn.fmt!r} for {defn.name}")


def _match_r(opcode: int, funct3: int, funct7: int) -> InstructionDef | None:
    for defn in INSTRUCTIONS.values():
        if defn.fmt == "R" and defn.opcode == opcode and defn.funct3 == funct3 and defn.funct7 == funct7:
            return defn
    return None


def _match_i(opcode: int, funct3: int, funct7: int) -> InstructionDef | None:
    candidates = [
        d
        for d in INSTRUCTIONS.values()
        if d.fmt == "I" and d.opcode == opcode and d.funct3 == funct3
    ]
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    # SRLI vs SRAI share funct3 and are distinguished by funct7.
    for defn in candidates:
        if defn.funct7 == funct7:
            return defn
    return None


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit RV32 machine word into an :class:`Instruction`."""
    word &= mask(32)
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    defn = _match_r(opcode, funct3, funct7)
    if defn is not None:
        return Instruction(defn.name, rd=rd, rs1=rs1, rs2=rs2)

    defn = _match_i(opcode, funct3, funct7)
    if defn is not None:
        imm12 = (word >> 20) & 0xFFF
        if defn.name in ("SLLI", "SRLI", "SRAI"):
            return Instruction(defn.name, rd=rd, rs1=rs1, imm=rs2)
        return Instruction(defn.name, rd=rd, rs1=rs1, imm=to_unsigned(sext(imm12, 12, 32), 32) & 0xFFF)

    if opcode == 0b0100011 and funct3 == 0b010:
        imm12 = (funct7 << 5) | rd
        return Instruction("SW", rs1=rs1, rs2=rs2, imm=imm12)
    if opcode == 0b0110111:
        imm20 = (word >> 12) & 0xFFFFF
        return Instruction("LUI", rd=rd, imm=imm20)
    raise IsaError(f"cannot decode instruction word {word:#010x}")
