"""Architectural-state instruction-set simulator.

The executor models exactly the architectural state SQED's consistency
property talks about: a register file (``x0`` hard-wired to zero) and a
small word-addressed data memory.  It is used to replay counterexample
traces, to cross-check the symbolic processor models, and by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import IsaError
from repro.isa.config import IsaConfig
from repro.isa.instructions import Instruction, get_instruction, result_value
from repro.utils.bitops import mask


@dataclass
class ArchState:
    """Architectural state: registers, data memory and an instruction counter."""

    config: IsaConfig
    regs: list[int] = field(default_factory=list)
    mem: list[int] = field(default_factory=list)
    executed: int = 0

    def __post_init__(self) -> None:
        if not self.regs:
            self.regs = [0] * self.config.num_regs
        if not self.mem:
            self.mem = [0] * self.config.mem_words
        if len(self.regs) != self.config.num_regs:
            raise IsaError(
                f"expected {self.config.num_regs} registers, got {len(self.regs)}"
            )
        if len(self.mem) != self.config.mem_words:
            raise IsaError(
                f"expected {self.config.mem_words} memory words, got {len(self.mem)}"
            )

    def read_reg(self, index: int) -> int:
        self._check_reg(index)
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        self._check_reg(index)
        if index != 0:
            self.regs[index] = value & mask(self.config.xlen)

    def read_mem(self, address: int) -> int:
        return self.mem[address % self.config.mem_words]

    def write_mem(self, address: int, value: int) -> None:
        self.mem[address % self.config.mem_words] = value & mask(self.config.xlen)

    def copy(self) -> "ArchState":
        return ArchState(
            config=self.config,
            regs=list(self.regs),
            mem=list(self.mem),
            executed=self.executed,
        )

    def _check_reg(self, index: int) -> None:
        if not (0 <= index < self.config.num_regs):
            raise IsaError(
                f"register index {index} out of range (num_regs={self.config.num_regs})"
            )


def execute_instruction(state: ArchState, instr: Instruction) -> ArchState:
    """Execute one instruction in place and return the (same) state."""
    cfg = state.config
    defn = get_instruction(instr.name)
    rs1 = state.read_reg(instr.rs1) if defn.uses_rs1 else 0
    rs2 = state.read_reg(instr.rs2) if defn.uses_rs2 else 0
    result = result_value(cfg, instr, rs1, rs2)

    if defn.is_store:
        state.write_mem(result, rs2)
    elif defn.is_load:
        loaded = state.read_mem(result)
        if instr.rd is None:
            raise IsaError(f"{instr.name} requires a destination register")
        state.write_reg(instr.rd, loaded)
    elif defn.writes_rd:
        if instr.rd is None:
            raise IsaError(f"{instr.name} requires a destination register")
        state.write_reg(instr.rd, result)
    state.executed += 1
    return state


def execute_program(
    state: ArchState, program: Sequence[Instruction] | Iterable[Instruction]
) -> ArchState:
    """Execute a straight-line program (no branches in the supported subset)."""
    for instr in program:
        execute_instruction(state, instr)
    return state
