"""Component-based program synthesis (CEGIS) for equivalent programs.

This package implements the synthesis half of SEPE-SQED:

* :mod:`repro.synth.components` — the component library.  Components come in
  the paper's three classes: NIC (native instructions), DIC (derived
  instructions whose immediate is an internal attribute chosen by the
  synthesizer) and CIC (composite instruction sequences).  The default
  library has 29 components (10 NIC + 10 DIC + 9 CIC), as in Section 6.1.
* :mod:`repro.synth.spec` — synthesis specifications built from original
  instructions (formula (2) of the paper).
* :mod:`repro.synth.encoder` — the Gulwani-style location-variable encoding
  (ψ_wfp, ψ_conn, φ_lib) over our bit-vector terms.
* :mod:`repro.synth.cegis` — the two-phase CEGIS loop (finite synthesis +
  verification).
* :mod:`repro.synth.classical` / :mod:`repro.synth.iterative` /
  :mod:`repro.synth.hpf` — the three algorithms compared in Figure 3;
  HPF-CEGIS (Algorithm 1) is the paper's contribution.
"""

from repro.synth.components import (
    Component,
    ComponentClass,
    ComponentLibrary,
    build_default_library,
)
from repro.synth.spec import SynthesisSpec, spec_from_instruction, synthesis_case_names
from repro.synth.program import SynthesizedProgram, ProgramSlot
from repro.synth.cegis import CegisConfig, CegisEngine, CegisOutcome
from repro.synth.classical import ClassicalCegis
from repro.synth.iterative import IterativeCegis
from repro.synth.hpf import HpfCegis, PriorityDict

__all__ = [
    "Component",
    "ComponentClass",
    "ComponentLibrary",
    "build_default_library",
    "SynthesisSpec",
    "spec_from_instruction",
    "synthesis_case_names",
    "SynthesizedProgram",
    "ProgramSlot",
    "CegisConfig",
    "CegisEngine",
    "CegisOutcome",
    "ClassicalCegis",
    "IterativeCegis",
    "HpfCegis",
    "PriorityDict",
]
