"""The core counterexample-guided inductive synthesis (CEGIS) loop.

Given a specification and one multiset of components, the engine alternates
between two SMT queries (Section 2.2):

1. *finite synthesis* — find location / attribute assignments that satisfy
   the specification on every counterexample collected so far,
2. *verification* — check whether the decoded candidate program matches the
   specification for **all** inputs; if not, the distinguishing input joins
   the counterexample set.

The loop ends with a verified :class:`SynthesizedProgram`, with ``None``
when the multiset cannot realise the specification (finite synthesis becomes
UNSAT), or with ``None`` when the iteration budget is exhausted.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SynthesisError
from repro.smt import terms as T
from repro.smt.solver import BVSolver
from repro.synth.components import Component
from repro.synth.encoder import LocationEncoder
from repro.synth.program import SynthesizedProgram
from repro.synth.spec import SynthesisSpec
from repro.utils.bitops import mask


@dataclass
class CegisConfig:
    """Tunable knobs of the CEGIS loop."""

    max_iterations: int = 16
    initial_examples: int = 2
    conflict_budget: Optional[int] = None


@dataclass
class CegisStats:
    """Work counters for one CEGIS invocation."""

    iterations: int = 0
    counterexamples: int = 0
    synthesis_queries: int = 0
    verification_queries: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class CegisOutcome:
    """Result of one CEGIS invocation on one multiset."""

    program: Optional[SynthesizedProgram]
    stats: CegisStats = field(default_factory=CegisStats)

    @property
    def succeeded(self) -> bool:
        return self.program is not None


class CegisEngine:
    """Runs the two-phase CEGIS loop for a (spec, multiset) pair."""

    def __init__(self, config: CegisConfig | None = None):
        self.config = config or CegisConfig()

    # ----------------------------------------------------------------- public

    def synthesize(
        self, spec: SynthesisSpec, components: Sequence[Component]
    ) -> CegisOutcome:
        """Synthesize a program over ``components`` equivalent to ``spec``."""
        start = time.perf_counter()
        stats = CegisStats()
        encoder = LocationEncoder(spec, components)

        solver = BVSolver()
        solver.add_all(encoder.wfp_constraints())
        for example in self._seed_examples(spec):
            stats.counterexamples += 1
            solver.add_all(encoder.example_constraints(example))

        program: Optional[SynthesizedProgram] = None
        for _ in range(self.config.max_iterations):
            stats.iterations += 1
            stats.synthesis_queries += 1
            result = solver.check(conflict_budget=self.config.conflict_budget)
            if not result.satisfiable:
                program = None
                break
            candidate = encoder.decode(result)
            stats.verification_queries += 1
            counterexample = self.find_counterexample(spec, candidate)
            if counterexample is None:
                program = candidate
                break
            stats.counterexamples += 1
            solver.add_all(encoder.example_constraints(counterexample))
        stats.elapsed_seconds = time.perf_counter() - start
        return CegisOutcome(program=program, stats=stats)

    def find_counterexample(
        self, spec: SynthesisSpec, program: SynthesizedProgram
    ) -> Optional[list[int]]:
        """Return inputs where ``program`` disagrees with ``spec`` (or ``None``)."""
        input_terms = spec.fresh_input_terms(prefix="verify")
        spec_term = spec.output_term(input_terms)
        program_term = program.output_term(input_terms)
        solver = BVSolver()
        solver.add(T.bv_ne(spec_term, program_term))
        result = solver.check(conflict_budget=self.config.conflict_budget)
        if result.satisfiable is None:
            raise SynthesisError("verification query exceeded its conflict budget")
        if not result.satisfiable:
            return None
        return [result.value_of(term) for term in input_terms]

    # ---------------------------------------------------------------- helpers

    def _seed_examples(self, spec: SynthesisSpec) -> list[list[int]]:
        """Initial counterexamples: fixed corner values, no SMT query needed."""
        corner_values = [0, 1]
        seeds: list[list[int]] = []
        for combo in itertools.islice(
            itertools.product(corner_values, repeat=spec.arity),
            self.config.initial_examples,
        ):
            seeds.append(
                [value & mask(inp.width) for value, inp in zip(combo, spec.inputs)]
            )
        return seeds
