"""The core counterexample-guided inductive synthesis (CEGIS) loop.

Given a specification and one multiset of components, the engine alternates
between two SMT queries (Section 2.2):

1. *finite synthesis* — find location / attribute assignments that satisfy
   the specification on every counterexample collected so far,
2. *verification* — check whether the decoded candidate program matches the
   specification for **all** inputs; if not, the distinguishing input joins
   the counterexample set.

The loop ends with a verified :class:`SynthesizedProgram`, with ``None``
when the multiset cannot realise the specification (finite synthesis becomes
UNSAT), or with ``None`` when the iteration budget is exhausted.

Both phases keep a persistent :class:`~repro.solve.context.SolverContext`
for the whole loop.  The synthesis context receives each counterexample's
constraints *incrementally*, so the well-formedness encoding is blasted
once and the learned clauses of iteration ``i`` prune the search of
iteration ``i + 1``.  The verification context re-checks a changing
candidate against a fixed specification, so each candidate's disagreement
constraint lives in a push/pop scope while the specification's encoding and
the solver state persist.  Set ``CegisConfig.incremental = False`` to
rebuild fresh solvers per query (the pre-refactor behaviour, kept for
benchmarking and differential testing).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SynthesisError
from repro.sat.solver import SolverStats
from repro.smt import terms as T
from repro.solve.context import SolverContext
from repro.synth.components import Component
from repro.synth.encoder import LocationEncoder
from repro.synth.program import SynthesizedProgram
from repro.synth.spec import SynthesisSpec
from repro.utils.bitops import mask


@dataclass
class CegisConfig:
    """Tunable knobs of the CEGIS loop."""

    max_iterations: int = 16
    initial_examples: int = 2
    conflict_budget: Optional[int] = None
    incremental: bool = True
    #: Compilation-pipeline level for both solver contexts (``None`` =
    #: process default, see :mod:`repro.solve.pipeline`).
    opt_level: Optional[int] = None


@dataclass
class CegisStats:
    """Work counters for one CEGIS invocation."""

    iterations: int = 0
    counterexamples: int = 0
    synthesis_queries: int = 0
    verification_queries: int = 0
    elapsed_seconds: float = 0.0
    synthesis_solver_stats: SolverStats = field(default_factory=SolverStats)
    verification_solver_stats: SolverStats = field(default_factory=SolverStats)


@dataclass
class CegisOutcome:
    """Result of one CEGIS invocation on one multiset."""

    program: Optional[SynthesizedProgram]
    stats: CegisStats = field(default_factory=CegisStats)

    @property
    def succeeded(self) -> bool:
        return self.program is not None


class CegisEngine:
    """Runs the two-phase CEGIS loop for a (spec, multiset) pair."""

    def __init__(
        self,
        config: CegisConfig | None = None,
        backend: str = "cdcl",
    ):
        self.config = config or CegisConfig()
        self.backend = backend

    # ----------------------------------------------------------------- public

    def synthesize(
        self, spec: SynthesisSpec, components: Sequence[Component]
    ) -> CegisOutcome:
        """Synthesize a program over ``components`` equivalent to ``spec``."""
        start = time.perf_counter()
        stats = CegisStats()
        encoder = LocationEncoder(spec, components)
        incremental = self.config.incremental

        synth_terms: list[T.BV] = list(encoder.wfp_constraints())
        for example in self._seed_examples(spec):
            stats.counterexamples += 1
            synth_terms.extend(encoder.example_constraints(example))
        # Oneshot mode rebuilds both contexts per query, so only build the
        # persistent ones when they will actually be reused.
        synth_ctx: Optional[SolverContext] = None
        verify_ctx: Optional[SolverContext] = None
        if incremental:
            synth_ctx = SolverContext(backend=self.backend, opt_level=self.config.opt_level)
            synth_ctx.add_all(synth_terms)
            verify_ctx = SolverContext(backend=self.backend, opt_level=self.config.opt_level)
        verify_inputs = spec.fresh_input_terms(prefix="verify")
        spec_term = spec.output_term(verify_inputs)

        program: Optional[SynthesizedProgram] = None
        for _ in range(self.config.max_iterations):
            stats.iterations += 1
            stats.synthesis_queries += 1
            if not incremental:
                synth_ctx = SolverContext(backend=self.backend, opt_level=self.config.opt_level)
                synth_ctx.add_all(synth_terms)
            assert synth_ctx is not None
            result = synth_ctx.check(conflict_budget=self.config.conflict_budget)
            stats.synthesis_solver_stats.merge(result.stats)
            if not result.satisfiable:
                program = None
                break
            candidate = encoder.decode(result)
            stats.verification_queries += 1
            ctx = verify_ctx if incremental else SolverContext(backend=self.backend, opt_level=self.config.opt_level)
            counterexample = self._check_candidate(
                ctx, verify_inputs, spec_term, candidate, stats
            )
            if counterexample is None:
                program = candidate
                break
            stats.counterexamples += 1
            constraints = encoder.example_constraints(counterexample)
            if incremental:
                synth_ctx.add_all(constraints)
            else:
                synth_terms.extend(constraints)
        stats.elapsed_seconds = time.perf_counter() - start
        return CegisOutcome(program=program, stats=stats)

    def _check_candidate(
        self,
        ctx: SolverContext,
        input_terms: Sequence[T.BV],
        spec_term: T.BV,
        program: SynthesizedProgram,
        stats: CegisStats,
    ) -> Optional[list[int]]:
        """Verify one candidate in a retractable scope of ``ctx``."""
        ctx.push()
        try:
            ctx.add(T.bv_ne(spec_term, program.output_term(input_terms)))
            result = ctx.check(conflict_budget=self.config.conflict_budget)
        finally:
            ctx.pop()
        stats.verification_solver_stats.merge(result.stats)
        if result.satisfiable is None:
            raise SynthesisError("verification query exceeded its conflict budget")
        if not result.satisfiable:
            return None
        return [result.value_of(term) for term in input_terms]

    def find_counterexample(
        self, spec: SynthesisSpec, program: SynthesizedProgram
    ) -> Optional[list[int]]:
        """Return inputs where ``program`` disagrees with ``spec`` (or ``None``)."""
        input_terms = spec.fresh_input_terms(prefix="verify")
        spec_term = spec.output_term(input_terms)
        return self._check_candidate(
            SolverContext(backend=self.backend, opt_level=self.config.opt_level),
            input_terms,
            spec_term,
            program,
            CegisStats(),
        )

    # ---------------------------------------------------------------- helpers

    def _seed_examples(self, spec: SynthesisSpec) -> list[list[int]]:
        """Initial counterexamples: fixed corner values, no SMT query needed."""
        corner_values = [0, 1]
        seeds: list[list[int]] = []
        for combo in itertools.islice(
            itertools.product(corner_values, repeat=spec.arity),
            self.config.initial_examples,
        ):
            seeds.append(
                [value & mask(inp.width) for value, inp in zip(combo, spec.inputs)]
            )
        return seeds
