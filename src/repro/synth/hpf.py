"""HPF-CEGIS: CEGIS based on the highest-priority-first policy (Algorithm 1).

This is the paper's synthesis contribution.  Every component ``j`` carries a
*choice weight* ``c_j`` and an *exclusion weight* ``e_j`` in a global
priority dictionary that persists across original instructions.  Before each
CEGIS attempt the remaining multisets are ranked by

    priority(S) = ( Σ_j (c_j − α·χ_j) ) / ( Σ_j e_j )

where χ_j is 1 when component ``j`` has the same name as the original
instruction ``g`` (penalising overlap between the data paths of the original
instruction and its equivalent program) and α is the influencing factor.
The highest-priority multiset is tried first; on success the choice weights
of its components are increased, on failure their exclusion weights are
increased.  Synthesis for an instruction stops once ``k`` programs with at
least ``min_components`` components have been found or the multisets are
exhausted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.components import Component, ComponentLibrary
from repro.synth.search import SynthesisRun, enumerate_multisets
from repro.synth.spec import SynthesisSpec


@dataclass
class PriorityDict:
    """Global choice / exclusion weights of every component (Algorithm 1, line 2)."""

    choice: dict[str, float]
    exclusion: dict[str, float]
    alpha: float = 1.0
    increment: float = 1.0

    @classmethod
    def initial(
        cls,
        library: ComponentLibrary | Sequence[Component],
        alpha: float = 1.0,
        increment: float = 1.0,
        initial_weight: float = 1.0,
    ) -> "PriorityDict":
        names = [component.name for component in library]
        return cls(
            choice={name: initial_weight for name in names},
            exclusion={name: initial_weight for name in names},
            alpha=alpha,
            increment=increment,
        )

    def priority(self, multiset: Sequence[Component], original_name: str) -> float:
        """Priority of a multiset for original instruction ``original_name``."""
        numerator = 0.0
        denominator = 0.0
        for component in multiset:
            chi = 1.0 if component.base_instruction == original_name else 0.0
            numerator += self.choice[component.name] - self.alpha * chi
            denominator += self.exclusion[component.name]
        return numerator / denominator if denominator else float("-inf")

    def reward(self, multiset: Sequence[Component]) -> None:
        """Increase the choice weights after a successful synthesis (line 16)."""
        for component in multiset:
            self.choice[component.name] += self.increment

    def penalise(self, multiset: Sequence[Component]) -> None:
        """Increase the exclusion weights after a failed synthesis (line 13)."""
        for component in multiset:
            self.exclusion[component.name] += self.increment


class HpfCegis:
    """Highest-priority-first CEGIS (the paper's Algorithm 1)."""

    name = "hpf"

    def __init__(
        self,
        library: ComponentLibrary,
        multiset_size: int = 3,
        target_programs: int = 3,
        min_components: int = 1,
        cegis_config: CegisConfig | None = None,
        alpha: float = 1.0,
        increment: float = 1.0,
        max_multisets: Optional[int] = None,
        priority_dict: PriorityDict | None = None,
    ):
        self.library = library
        self.multiset_size = multiset_size
        self.target_programs = target_programs
        self.min_components = min_components
        self.engine = CegisEngine(cegis_config)
        self.max_multisets = max_multisets
        self.priorities = priority_dict or PriorityDict.initial(
            library, alpha=alpha, increment=increment
        )

    def synthesize_for(self, spec: SynthesisSpec) -> SynthesisRun:
        """Synthesize equivalent programs for one original instruction ``g``."""
        run = SynthesisRun(spec_name=spec.name)
        multisets = enumerate_multisets(self.library, self.multiset_size)
        run.multisets_total = len(multisets)
        start = time.perf_counter()
        found = 0
        budget = self.max_multisets if self.max_multisets is not None else len(multisets)
        remaining = list(multisets)
        while remaining and run.multisets_tried < budget and found < self.target_programs:
            # Line 9-10: sort by priority (descending) and take the best one.
            remaining.sort(
                key=lambda multiset: self.priorities.priority(multiset, spec.name),
                reverse=True,
            )
            multiset = remaining.pop(0)
            run.multisets_tried += 1
            run.cegis_calls += 1
            outcome = self.engine.synthesize(spec, multiset)
            if outcome.program is None:
                self.priorities.penalise(multiset)
            else:
                self.priorities.reward(multiset)
                run.programs.append(outcome.program)
                if len(outcome.program.slots) >= self.min_components:
                    found += 1
        run.exhausted = not remaining
        run.elapsed_seconds = time.perf_counter() - start
        return run

    def synthesize_all(self, specs: Iterable[SynthesisSpec]) -> dict[str, SynthesisRun]:
        """Run HPF-CEGIS over several original instructions, sharing weights."""
        return {spec.name: self.synthesize_for(spec) for spec in specs}
