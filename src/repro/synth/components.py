"""Component library for component-based CEGIS.

A component is a small, loop-free building block with typed inputs, optional
*internal attributes* (constants the synthesizer is free to choose, e.g. the
immediate of a derived ADDI) and a single output.  Components carry both a
symbolic semantics (bit-vector terms, used inside the CEGIS queries) and an
expansion to concrete instructions (used by the EDSEP-V transformation).

The three classes follow Section 4.1 of the paper:

* **NIC** — native instruction class: the component is one register-register
  instruction.
* **DIC** — derived instruction class: an immediate-type instruction whose
  immediate operand is an internal attribute.
* **CIC** — composite instruction class: a fixed sequence of instructions
  (possibly with attributes) exposed as a single component, used to cover
  semantics that are hard to reach otherwise (the paper's example is
  multiplication by a constant).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import SynthesisError
from repro.isa.config import IsaConfig
from repro.isa.instructions import Instruction, get_instruction
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.utils.bitops import mask


class ComponentClass(enum.Enum):
    """The three component classes of Section 4.1."""

    NIC = "NIC"
    DIC = "DIC"
    CIC = "CIC"


@dataclass(frozen=True)
class OperandSource:
    """Where an expanded instruction operand comes from.

    ``kind`` is one of:

    * ``"input"`` — the k-th component input,
    * ``"temp"`` — the output of the k-th earlier instruction in the
      component's own expansion,
    * ``"attr"`` — the k-th internal attribute (used for immediates),
    * ``"const"`` — a fixed constant (``index`` holds the value),
    * ``"zero"`` — the hard-wired zero register.
    """

    kind: str
    index: int = 0


@dataclass(frozen=True)
class ExpansionStep:
    """One instruction of a component's expansion into real instructions."""

    mnemonic: str
    rs1: OperandSource | None = None
    rs2: OperandSource | None = None
    imm: OperandSource | None = None


@dataclass(frozen=True)
class Component:
    """A synthesis component (NIC / DIC / CIC).

    Attributes:
        name: unique component name; for NIC/DIC this equals the mnemonic of
            the underlying instruction, which is what the HPF priority
            function compares against the original instruction's name.
        component_class: NIC, DIC or CIC.
        input_widths: widths of the formal inputs (register inputs use
            ``xlen``; dynamic-immediate inputs use the immediate width).
        attribute_widths: widths of the internal attributes.
        semantics: builds the output term from input terms and attribute
            terms.
        expansion: instruction sequence this component expands to in the
            EDSEP-V transformation; the output of the last step is the
            component's output.
        base_instruction: mnemonic whose data path this component primarily
            exercises (used for the name-overlap penalty χ).
        immediate_inputs: indices of inputs that are immediate operands; the
            well-formedness constraint only lets these connect to the
            specification's immediate input (never to register values).
    """

    name: str
    component_class: ComponentClass
    input_widths: tuple[int, ...]
    attribute_widths: tuple[int, ...]
    semantics: Callable[[IsaConfig, Sequence[BV], Sequence[BV]], BV]
    expansion: tuple[ExpansionStep, ...]
    base_instruction: str
    description: str = ""
    immediate_inputs: tuple[int, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.input_widths)

    @property
    def num_attributes(self) -> int:
        return len(self.attribute_widths)

    def output_term(
        self, cfg: IsaConfig, inputs: Sequence[BV], attrs: Sequence[BV]
    ) -> BV:
        """Symbolic output of the component for the given operand terms."""
        if len(inputs) != self.arity:
            raise SynthesisError(
                f"component {self.name}: expected {self.arity} inputs, got {len(inputs)}"
            )
        if len(attrs) != self.num_attributes:
            raise SynthesisError(
                f"component {self.name}: expected {self.num_attributes} attributes, "
                f"got {len(attrs)}"
            )
        return self.semantics(cfg, inputs, attrs)

    def __str__(self) -> str:
        return f"{self.name}({self.component_class.value})"


class ComponentLibrary:
    """An ordered collection of uniquely named components."""

    def __init__(self, cfg: IsaConfig, components: Sequence[Component] = ()):
        self.cfg = cfg
        self._components: list[Component] = []
        self._by_name: dict[str, Component] = {}
        for comp in components:
            self.add(comp)

    def add(self, component: Component) -> None:
        if component.name in self._by_name:
            raise SynthesisError(f"duplicate component name {component.name!r}")
        self._by_name[component.name] = component
        self._components.append(component)

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self):
        return iter(self._components)

    def __getitem__(self, index: int) -> Component:
        return self._components[index]

    def by_name(self, name: str) -> Component:
        comp = self._by_name.get(name)
        if comp is None:
            raise SynthesisError(f"no component named {name!r}")
        return comp

    def names(self) -> list[str]:
        return [c.name for c in self._components]

    def of_class(self, component_class: ComponentClass) -> list[Component]:
        return [c for c in self._components if c.component_class == component_class]


# ----------------------------------------------------------------------------
# Library construction
# ----------------------------------------------------------------------------


def _instr_semantics(name: str) -> Callable[[IsaConfig, Sequence[BV], Sequence[BV]], BV]:
    """Semantics of a register-register instruction as a component."""
    defn = get_instruction(name)

    def semantics(cfg: IsaConfig, inputs: Sequence[BV], attrs: Sequence[BV]) -> BV:
        dummy_imm = T.bv_const(0, cfg.imm_width)
        return defn.symbolic(cfg, inputs[0], inputs[1], dummy_imm)

    return semantics


def _imm_instr_semantics(name: str) -> Callable[[IsaConfig, Sequence[BV], Sequence[BV]], BV]:
    """Semantics of an immediate instruction whose immediate is an attribute."""
    defn = get_instruction(name)

    def semantics(cfg: IsaConfig, inputs: Sequence[BV], attrs: Sequence[BV]) -> BV:
        reg = inputs[0] if defn.uses_rs1 else T.bv_const(0, cfg.xlen)
        dummy = T.bv_const(0, cfg.xlen)
        return defn.symbolic(cfg, reg, dummy, attrs[0])

    return semantics


def _dyn_imm_semantics(name: str) -> Callable[[IsaConfig, Sequence[BV], Sequence[BV]], BV]:
    """Semantics of an immediate instruction whose immediate is a dynamic input."""
    defn = get_instruction(name)

    def semantics(cfg: IsaConfig, inputs: Sequence[BV], attrs: Sequence[BV]) -> BV:
        dummy = T.bv_const(0, cfg.xlen)
        return defn.symbolic(cfg, inputs[0], dummy, inputs[1])

    return semantics


def build_default_library(cfg: IsaConfig) -> ComponentLibrary:
    """The 29-component library used in the paper's evaluation.

    10 NIC + 10 DIC + 9 CIC, collectively covering the RV32IM instruction
    classes exercised by the experiments.
    """
    xlen = cfg.xlen
    imm_w = cfg.imm_width
    components: list[Component] = []

    # --- 10 NIC: register-register instructions --------------------------
    nic_names = ["ADD", "SUB", "SLL", "SRL", "SRA", "AND", "OR", "XOR", "SLT", "SLTU"]
    for name in nic_names:
        components.append(
            Component(
                name=name,
                component_class=ComponentClass.NIC,
                input_widths=(xlen, xlen),
                attribute_widths=(),
                semantics=_instr_semantics(name),
                expansion=(
                    ExpansionStep(
                        name,
                        rs1=OperandSource("input", 0),
                        rs2=OperandSource("input", 1),
                    ),
                ),
                base_instruction=name,
                description=get_instruction(name).description,
            )
        )

    # --- 10 DIC: immediate instructions with the immediate as attribute --
    dic_names = [
        "ADDI", "XORI", "ORI", "ANDI", "SLTI", "SLTIU", "SLLI", "SRLI", "SRAI", "LUI",
    ]
    for name in dic_names:
        defn = get_instruction(name)
        input_widths = (xlen,) if defn.uses_rs1 else ()
        expansion_rs1 = OperandSource("input", 0) if defn.uses_rs1 else None
        components.append(
            Component(
                name=f"{name}.D",
                component_class=ComponentClass.DIC,
                input_widths=input_widths,
                attribute_widths=(imm_w,),
                semantics=_imm_instr_semantics(name),
                expansion=(
                    ExpansionStep(
                        name, rs1=expansion_rs1, imm=OperandSource("attr", 0)
                    ),
                ),
                base_instruction=name,
                description=f"{defn.description} (immediate chosen by the synthesizer)",
            )
        )

    # --- 9 CIC: composite / dynamic-immediate components -----------------
    components.extend(_build_cic_components(cfg))

    library = ComponentLibrary(cfg, components)
    return library


def _build_cic_components(cfg: IsaConfig) -> list[Component]:
    xlen = cfg.xlen
    imm_w = cfg.imm_width
    shift_msb = xlen - 1

    def addi_dyn(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        return T.bv_add(ins[0], T.bv_sext(ins[1], c.xlen))

    def xori_dyn(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        return T.bv_xor(ins[0], T.bv_sext(ins[1], c.xlen))

    def ori_dyn(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        return T.bv_or(ins[0], T.bv_sext(ins[1], c.xlen))

    def andi_dyn(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        return T.bv_and(ins[0], T.bv_sext(ins[1], c.xlen))

    def mul_const(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        return T.bv_mul(ins[0], T.bv_sext(attrs[0], c.xlen))

    def mulh_fix(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        a, b = ins
        w = c.xlen
        shamt = T.bv_const(w - 1, w)
        mulhu = get_instruction("MULHU").symbolic(c, a, b, T.bv_const(0, c.imm_width))
        a_neg_mask = T.bv_ashr(a, shamt)
        b_neg_mask = T.bv_ashr(b, shamt)
        corr_a = T.bv_and(a_neg_mask, b)
        corr_b = T.bv_and(b_neg_mask, a)
        return T.bv_sub(T.bv_sub(mulhu, corr_a), corr_b)

    def mulhsu_fix(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        a, b = ins
        w = c.xlen
        shamt = T.bv_const(w - 1, w)
        mulhu = get_instruction("MULHU").symbolic(c, a, b, T.bv_const(0, c.imm_width))
        a_neg_mask = T.bv_ashr(a, shamt)
        corr_a = T.bv_and(a_neg_mask, b)
        return T.bv_sub(mulhu, corr_a)

    def slt_via_sltu(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        a, b = ins
        w = c.xlen
        sign = T.bv_const(1 << (w - 1), w)
        return T.bv_zext(T.bv_ult(T.bv_xor(a, sign), T.bv_xor(b, sign)), w)

    def const_builder(c: IsaConfig, ins: Sequence[BV], attrs: Sequence[BV]) -> BV:
        upper = T.bv_shl(
            T.bv_zext(attrs[0], c.xlen), T.bv_const(c.lui_shift, c.xlen)
        )
        return T.bv_add(upper, T.bv_sext(attrs[1], c.xlen))

    # SLT.C flips the sign bit of both operands and compares unsigned.  The
    # expansion materialises the sign-bit constant differently depending on
    # whether it fits in an immediate (narrow configs) or needs LUI (RV32).
    if imm_w == xlen:
        slt_expansion = (
            ExpansionStep("XORI", rs1=OperandSource("input", 0), imm=OperandSource("const", 1 << (xlen - 1))),
            ExpansionStep("XORI", rs1=OperandSource("input", 1), imm=OperandSource("const", 1 << (xlen - 1))),
            ExpansionStep("SLTU", rs1=OperandSource("temp", 0), rs2=OperandSource("temp", 1)),
        )
    else:
        lui_value = 1 << (xlen - 1 - cfg.lui_shift)
        slt_expansion = (
            ExpansionStep("LUI", imm=OperandSource("const", lui_value)),
            ExpansionStep("XOR", rs1=OperandSource("input", 0), rs2=OperandSource("temp", 0)),
            ExpansionStep("XOR", rs1=OperandSource("input", 1), rs2=OperandSource("temp", 0)),
            ExpansionStep("SLTU", rs1=OperandSource("temp", 1), rs2=OperandSource("temp", 2)),
        )

    return [
        Component(
            name="ADDI.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen, imm_w),
            attribute_widths=(),
            semantics=addi_dyn,
            expansion=(
                ExpansionStep(
                    "ADDI", rs1=OperandSource("input", 0), imm=OperandSource("input", 1)
                ),
            ),
            base_instruction="ADDI",
            description="ADDI with a dynamic immediate input (first form)",
            immediate_inputs=(1,),
        ),
        Component(
            name="XORI.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen, imm_w),
            attribute_widths=(),
            semantics=xori_dyn,
            expansion=(
                ExpansionStep(
                    "XORI", rs1=OperandSource("input", 0), imm=OperandSource("input", 1)
                ),
            ),
            base_instruction="XORI",
            description="XORI with a dynamic immediate input (first form)",
            immediate_inputs=(1,),
        ),
        Component(
            name="ORI.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen, imm_w),
            attribute_widths=(),
            semantics=ori_dyn,
            expansion=(
                ExpansionStep(
                    "ORI", rs1=OperandSource("input", 0), imm=OperandSource("input", 1)
                ),
            ),
            base_instruction="ORI",
            description="ORI with a dynamic immediate input (first form)",
            immediate_inputs=(1,),
        ),
        Component(
            name="ANDI.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen, imm_w),
            attribute_widths=(),
            semantics=andi_dyn,
            expansion=(
                ExpansionStep(
                    "ANDI", rs1=OperandSource("input", 0), imm=OperandSource("input", 1)
                ),
            ),
            base_instruction="ANDI",
            description="ANDI with a dynamic immediate input (first form)",
            immediate_inputs=(1,),
        ),
        Component(
            name="MUL.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen,),
            attribute_widths=(imm_w,),
            semantics=mul_const,
            expansion=(
                ExpansionStep("ADDI", rs1=OperandSource("zero"), imm=OperandSource("attr", 0)),
                ExpansionStep("MUL", rs1=OperandSource("input", 0), rs2=OperandSource("temp", 0)),
            ),
            base_instruction="MUL",
            description="Multiply by a synthesizer-chosen constant (ADDI; MUL)",
        ),
        Component(
            name="MULH.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen, xlen),
            attribute_widths=(),
            semantics=mulh_fix,
            expansion=(
                ExpansionStep("MULHU", rs1=OperandSource("input", 0), rs2=OperandSource("input", 1)),
                ExpansionStep("SRAI", rs1=OperandSource("input", 0), imm=OperandSource("const", shift_msb)),
                ExpansionStep("AND", rs1=OperandSource("temp", 1), rs2=OperandSource("input", 1)),
                ExpansionStep("SUB", rs1=OperandSource("temp", 0), rs2=OperandSource("temp", 2)),
                ExpansionStep("SRAI", rs1=OperandSource("input", 1), imm=OperandSource("const", shift_msb)),
                ExpansionStep("AND", rs1=OperandSource("temp", 4), rs2=OperandSource("input", 0)),
                ExpansionStep("SUB", rs1=OperandSource("temp", 3), rs2=OperandSource("temp", 5)),
            ),
            base_instruction="MULHU",
            description="Signed multiply-high from MULHU plus sign corrections",
        ),
        Component(
            name="MULHSU.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen, xlen),
            attribute_widths=(),
            semantics=mulhsu_fix,
            expansion=(
                ExpansionStep("MULHU", rs1=OperandSource("input", 0), rs2=OperandSource("input", 1)),
                ExpansionStep("SRAI", rs1=OperandSource("input", 0), imm=OperandSource("const", shift_msb)),
                ExpansionStep("AND", rs1=OperandSource("temp", 1), rs2=OperandSource("input", 1)),
                ExpansionStep("SUB", rs1=OperandSource("temp", 0), rs2=OperandSource("temp", 2)),
            ),
            base_instruction="MULHU",
            description="Signed-unsigned multiply-high from MULHU plus one sign correction",
        ),
        Component(
            name="SLT.C",
            component_class=ComponentClass.CIC,
            input_widths=(xlen, xlen),
            attribute_widths=(),
            semantics=slt_via_sltu,
            expansion=slt_expansion,
            base_instruction="SLTU",
            description="Signed compare built from an unsigned compare with sign-bit flips",
        ),
        Component(
            name="CONST.C",
            component_class=ComponentClass.CIC,
            input_widths=(),
            attribute_widths=(imm_w, imm_w),
            semantics=const_builder,
            expansion=(
                ExpansionStep("LUI", imm=OperandSource("attr", 0)),
                ExpansionStep("ADDI", rs1=OperandSource("temp", 0), imm=OperandSource("attr", 1)),
            ),
            base_instruction="LUI",
            description="Arbitrary constant materialisation (LUI; ADDI)",
        ),
    ]
