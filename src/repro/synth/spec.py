"""Synthesis specifications built from original instructions.

A :class:`SynthesisSpec` is the φ_spec of formula (2): it fixes the program
inputs (register operands and, for immediate-type instructions, the
immediate itself, which stays universally quantified) and provides the
symbolic output the synthesized program must match for *every* input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SynthesisError
from repro.isa.config import IsaConfig
from repro.isa.instructions import get_instruction, instruction_names
from repro.smt import terms as T
from repro.smt.terms import BV


@dataclass(frozen=True)
class SpecInput:
    """One universally quantified program input of a specification."""

    name: str
    width: int
    is_immediate: bool = False


@dataclass(frozen=True)
class SynthesisSpec:
    """The specification an equivalent program must satisfy.

    Attributes:
        name: name of the original instruction ``g`` (used by the
            "not identical to itself" constraint and the HPF priority).
        inputs: the program inputs (registers first, then the immediate when
            the original instruction has one).
        output_width: width of the program output (always XLEN here).
        formula: builds the specification output term from input terms.
    """

    name: str
    inputs: tuple[SpecInput, ...]
    output_width: int
    formula: Callable[[IsaConfig, Sequence[BV]], BV]
    config: IsaConfig

    @property
    def arity(self) -> int:
        return len(self.inputs)

    def output_term(self, input_terms: Sequence[BV]) -> BV:
        """Symbolic specification output for the given input terms."""
        if len(input_terms) != self.arity:
            raise SynthesisError(
                f"spec {self.name}: expected {self.arity} inputs, got {len(input_terms)}"
            )
        for term, spec_input in zip(input_terms, self.inputs):
            if term.width != spec_input.width:
                raise SynthesisError(
                    f"spec {self.name}: input {spec_input.name} expects width "
                    f"{spec_input.width}, got {term.width}"
                )
        return self.formula(self.config, input_terms)

    def fresh_input_terms(self, prefix: str = "spec") -> list[BV]:
        """Fresh variables matching the spec inputs (used by verification)."""
        return [
            T.fresh_var(f"{prefix}_{self.name}_{inp.name}", inp.width)
            for inp in self.inputs
        ]


def spec_from_instruction(name: str, cfg: IsaConfig) -> SynthesisSpec:
    """Build the specification for original instruction ``name``.

    Register source operands and the immediate (if any) become program
    inputs.  The output is the value the instruction writes to ``rd`` — for
    stores and loads, the effective address (see DESIGN.md).
    """
    defn = get_instruction(name)
    inputs: list[SpecInput] = []
    if defn.uses_rs1:
        inputs.append(SpecInput("rs1", cfg.xlen))
    if defn.uses_rs2:
        inputs.append(SpecInput("rs2", cfg.xlen))
    if defn.uses_imm:
        inputs.append(SpecInput("imm", cfg.imm_width, is_immediate=True))
    if not inputs:
        raise SynthesisError(f"instruction {name} has no operands to synthesize over")

    def formula(config: IsaConfig, terms: Sequence[BV]) -> BV:
        index = 0
        rs1 = T.bv_const(0, config.xlen)
        rs2 = T.bv_const(0, config.xlen)
        imm = T.bv_const(0, config.imm_width)
        if defn.uses_rs1:
            rs1 = terms[index]
            index += 1
        if defn.uses_rs2:
            rs2 = terms[index]
            index += 1
        if defn.uses_imm:
            imm = terms[index]
            index += 1
        return defn.symbolic(config, rs1, rs2, imm)

    return SynthesisSpec(
        name=defn.name,
        inputs=tuple(inputs),
        output_width=cfg.xlen,
        formula=formula,
        config=cfg,
    )


def synthesis_case_names() -> list[str]:
    """The instruction cases used for the Figure 3 synthesis comparison.

    Every supported instruction is a case (26 in total), mirroring the 26
    cases of the paper's Figure 3.
    """
    return instruction_names()
