"""Synthesized program representation and expansion to instruction sequences.

A synthesized program is an ordered list of *slots*, one per component of
the multiset, wired together by the CEGIS location assignment.  Slots read
either program inputs or the outputs of earlier slots; the output of the
last slot is the program output.

Programs can be rendered three ways:

* symbolically (``output_term``) — used by the verification phase of CEGIS
  and by unit tests,
* concretely (``evaluate``) — quick integer evaluation,
* as an instruction sequence (``expand`` / ``to_concrete_instructions``) —
  what the EDSEP-V transformation dispatches into the DUV.  ``expand``
  produces *templates* whose operands are symbolic placeholders (program
  register input, program immediate input, virtual temporary, zero), which
  the QED module later maps onto the E/T register sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SynthesisError
from repro.isa.config import IsaConfig
from repro.isa.instructions import Instruction, get_instruction
from repro.smt import terms as T
from repro.smt.terms import BV
from repro.synth.components import Component, OperandSource
from repro.synth.spec import SynthesisSpec
from repro.utils.bitops import mask

# Wiring sources for slot inputs.
SOURCE_INPUT = "input"  # a program input (register or immediate)
SOURCE_SLOT = "slot"  # the output of an earlier slot


@dataclass(frozen=True)
class ProgramSlot:
    """One component instance inside a synthesized program."""

    component: Component
    input_sources: tuple[tuple[str, int], ...]
    attributes: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.input_sources) != self.component.arity:
            raise SynthesisError(
                f"slot for {self.component.name}: expected "
                f"{self.component.arity} input sources, got {len(self.input_sources)}"
            )
        if len(self.attributes) != self.component.num_attributes:
            raise SynthesisError(
                f"slot for {self.component.name}: expected "
                f"{self.component.num_attributes} attributes, got {len(self.attributes)}"
            )


@dataclass(frozen=True)
class TemplateOperand:
    """A placeholder operand of an expanded instruction template.

    ``kind`` is one of ``"prog_reg"`` (the i-th register input of the
    program), ``"prog_imm"`` (the program's immediate input), ``"virtual"``
    (the i-th temporary value produced by the expansion), ``"zero"`` or
    ``"const"`` (a literal immediate value in ``index``).
    """

    kind: str
    index: int = 0


@dataclass(frozen=True)
class TemplateInstruction:
    """One instruction of the expanded program with placeholder operands."""

    mnemonic: str
    rd: TemplateOperand
    rs1: Optional[TemplateOperand] = None
    rs2: Optional[TemplateOperand] = None
    imm: Optional[TemplateOperand] = None


class SynthesizedProgram:
    """A program produced by CEGIS, semantically equivalent to its spec."""

    def __init__(self, spec: SynthesisSpec, slots: Sequence[ProgramSlot]):
        if not slots:
            raise SynthesisError("a synthesized program needs at least one slot")
        self.spec = spec
        self.slots = list(slots)
        for index, slot in enumerate(self.slots):
            for kind, ref in slot.input_sources:
                if kind == SOURCE_INPUT:
                    if not (0 <= ref < spec.arity):
                        raise SynthesisError(
                            f"slot {index}: program input {ref} out of range"
                        )
                elif kind == SOURCE_SLOT:
                    if not (0 <= ref < index):
                        raise SynthesisError(
                            f"slot {index}: reference to slot {ref} breaks the "
                            "topological order"
                        )
                else:
                    raise SynthesisError(f"unknown wiring source kind {kind!r}")

    # ------------------------------------------------------------- semantics

    @property
    def config(self) -> IsaConfig:
        return self.spec.config

    def component_names(self) -> list[str]:
        return [slot.component.name for slot in self.slots]

    def output_term(self, input_terms: Sequence[BV]) -> BV:
        """Symbolic output of the program over the given spec input terms."""
        if len(input_terms) != self.spec.arity:
            raise SynthesisError(
                f"expected {self.spec.arity} input terms, got {len(input_terms)}"
            )
        cfg = self.config
        slot_outputs: list[BV] = []
        for slot in self.slots:
            operand_terms: list[BV] = []
            for (kind, ref), width in zip(slot.input_sources, slot.component.input_widths):
                term = input_terms[ref] if kind == SOURCE_INPUT else slot_outputs[ref]
                if term.width != width:
                    raise SynthesisError(
                        f"slot for {slot.component.name}: operand width {term.width} "
                        f"does not match component input width {width}"
                    )
                operand_terms.append(term)
            attr_terms = [
                T.bv_const(value, width)
                for value, width in zip(slot.attributes, slot.component.attribute_widths)
            ]
            slot_outputs.append(slot.component.output_term(cfg, operand_terms, attr_terms))
        return slot_outputs[-1]

    def evaluate(self, input_values: Sequence[int]) -> int:
        """Concrete output of the program for integer inputs."""
        terms = [
            T.bv_const(value & mask(inp.width), inp.width)
            for value, inp in zip(input_values, self.spec.inputs)
        ]
        result = self.output_term(terms)
        if not result.is_const:
            raise SynthesisError("program did not fold to a constant (free symbol?)")
        return result.const_value()

    # ------------------------------------------------------------- expansion

    def expand(self) -> list[TemplateInstruction]:
        """Expand the program into an instruction-template sequence.

        Virtual temporaries are numbered in program order across all slots;
        the destination of the final template holds the program output.
        """
        templates: list[TemplateInstruction] = []
        slot_output_virtual: list[int] = []
        next_virtual = 0

        for slot in self.slots:
            step_virtuals: list[int] = []
            for step in slot.component.expansion:
                rd = TemplateOperand("virtual", next_virtual)

                def resolve(source: Optional[OperandSource], is_imm: bool) -> Optional[TemplateOperand]:
                    if source is None:
                        return None
                    if source.kind == "input":
                        kind, ref = slot.input_sources[source.index]
                        if kind == SOURCE_INPUT:
                            spec_input = self.spec.inputs[ref]
                            if spec_input.is_immediate:
                                return TemplateOperand("prog_imm", ref)
                            return TemplateOperand("prog_reg", ref)
                        return TemplateOperand("virtual", slot_output_virtual[ref])
                    if source.kind == "temp":
                        return TemplateOperand("virtual", step_virtuals[source.index])
                    if source.kind == "attr":
                        return TemplateOperand("const", slot.attributes[source.index])
                    if source.kind == "const":
                        return TemplateOperand("const", source.index)
                    if source.kind == "zero":
                        return TemplateOperand("zero")
                    raise SynthesisError(f"unknown operand source {source.kind!r}")

                templates.append(
                    TemplateInstruction(
                        mnemonic=step.mnemonic,
                        rd=rd,
                        rs1=resolve(step.rs1, False),
                        rs2=resolve(step.rs2, False),
                        imm=resolve(step.imm, True),
                    )
                )
                step_virtuals.append(next_virtual)
                next_virtual += 1
            slot_output_virtual.append(step_virtuals[-1])
        return templates

    @property
    def num_instructions(self) -> int:
        """Length of the expanded instruction sequence."""
        return sum(len(slot.component.expansion) for slot in self.slots)

    def to_concrete_instructions(
        self,
        input_regs: Sequence[int],
        dest_reg: int,
        temp_regs: Sequence[int],
        imm_value: int = 0,
    ) -> list[Instruction]:
        """Instantiate the expansion with physical registers and a concrete immediate.

        ``input_regs`` supplies a physical register for every *register*
        input of the spec (immediate inputs take ``imm_value``), ``dest_reg``
        receives the program output and ``temp_regs`` back the virtual
        temporaries.
        """
        reg_inputs = [i for i, inp in enumerate(self.spec.inputs) if not inp.is_immediate]
        if len(input_regs) != len(reg_inputs):
            raise SynthesisError(
                f"expected {len(reg_inputs)} input registers, got {len(input_regs)}"
            )
        reg_of_input = {spec_idx: reg for spec_idx, reg in zip(reg_inputs, input_regs)}

        templates = self.expand()
        num_virtuals = len(templates)
        if num_virtuals - 1 > len(temp_regs):
            raise SynthesisError(
                f"need {num_virtuals - 1} temporary registers, got {len(temp_regs)}"
            )
        virtual_to_reg = {i: temp_regs[i] for i in range(num_virtuals - 1)}
        virtual_to_reg[num_virtuals - 1] = dest_reg

        def reg_operand(op: Optional[TemplateOperand]) -> Optional[int]:
            if op is None:
                return None
            if op.kind == "prog_reg":
                return reg_of_input[op.index]
            if op.kind == "virtual":
                return virtual_to_reg[op.index]
            if op.kind == "zero":
                return 0
            raise SynthesisError(f"operand kind {op.kind!r} is not a register")

        def imm_operand(op: Optional[TemplateOperand]) -> Optional[int]:
            if op is None:
                return None
            if op.kind == "const":
                return op.index & mask(self.config.imm_width)
            if op.kind == "prog_imm":
                return imm_value & mask(self.config.imm_width)
            raise SynthesisError(f"operand kind {op.kind!r} is not an immediate")

        instructions = []
        for template in templates:
            defn = get_instruction(template.mnemonic)
            instructions.append(
                Instruction(
                    template.mnemonic,
                    rd=reg_operand(template.rd) if defn.writes_rd else None,
                    rs1=reg_operand(template.rs1),
                    rs2=reg_operand(template.rs2),
                    imm=imm_operand(template.imm),
                )
            )
        return instructions

    # ----------------------------------------------------------------- misc

    def describe(self) -> str:
        """Human-readable listing in the spirit of the paper's Listing 1."""
        lines = [f"# equivalent program for {self.spec.name}"]
        for index, template in enumerate(self.expand()):
            operands = []
            for op, prefix in ((template.rd, "v"), (template.rs1, ""), (template.rs2, "")):
                if op is None:
                    continue
                if op.kind == "virtual":
                    operands.append(f"v{op.index}")
                elif op.kind == "prog_reg":
                    operands.append(self.spec.inputs[op.index].name)
                elif op.kind == "zero":
                    operands.append("x0")
            if template.imm is not None:
                if template.imm.kind == "const":
                    operands.append(hex(template.imm.index))
                else:
                    operands.append("imm")
            lines.append(f"  {template.mnemonic} " + ", ".join(operands))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SynthesizedProgram({self.spec.name} ~ "
            f"{' ; '.join(self.component_names())})"
        )
