"""Shared result types and multiset enumeration for the CEGIS algorithms.

The three algorithms compared in Figure 3 (classical, iterative, HPF) differ
only in *which* component subsets they hand to the core CEGIS engine and in
*what order*; the bookkeeping they report is identical and lives here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.synth.components import Component, ComponentLibrary
from repro.synth.program import SynthesizedProgram


@dataclass
class SynthesisRun:
    """Outcome of synthesizing equivalent programs for one original instruction."""

    spec_name: str
    programs: list[SynthesizedProgram] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    cegis_calls: int = 0
    multisets_tried: int = 0
    multisets_total: int = 0
    exhausted: bool = False

    @property
    def succeeded(self) -> bool:
        return bool(self.programs)

    def best_program(self) -> SynthesizedProgram:
        """The shortest synthesized program (ties broken by discovery order)."""
        if not self.programs:
            raise ValueError(f"no programs synthesized for {self.spec_name}")
        return min(self.programs, key=lambda p: p.num_instructions)


def enumerate_multisets(
    library: ComponentLibrary | Sequence[Component], size: int
) -> list[tuple[Component, ...]]:
    """All multisets of ``size`` components (combinations with replacement).

    This is the same enumeration the iterative CEGIS baseline uses; for a
    library of N components there are C(N + size - 1, size) multisets, which
    is why HPF's prioritisation matters.
    """
    components = list(library)
    return list(itertools.combinations_with_replacement(components, size))


def count_multisets(library_size: int, size: int) -> int:
    """Number of multisets without enumerating them (N multichoose k)."""
    import math

    return math.comb(library_size + size - 1, size)
