"""Classical component-based CEGIS (Gulwani et al., 2011).

The classical formulation hands the *entire* component library (optionally
with several copies of each component) to a single CEGIS invocation.  The
encoding then carries location variables for every component at once, which
is exactly the performance cliff the paper reports: with 29 components it
"failed to synthesize a single original instruction even after several
weeks".  We keep the algorithm for completeness and for the ablation
benchmark that demonstrates the blow-up on small libraries.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.components import Component, ComponentLibrary
from repro.synth.search import SynthesisRun
from repro.synth.spec import SynthesisSpec


class ClassicalCegis:
    """One-shot CEGIS over the whole library.

    Args:
        library: the component library.
        cegis_config: knobs forwarded to the core CEGIS engine.
        copies: how many instances of each component are made available
            (classical CEGIS needs one instance per potential use).
        max_components: optional cap on how many components are handed to the
            encoder — useful to keep the ablation benchmark bounded.
    """

    name = "classical"

    def __init__(
        self,
        library: ComponentLibrary,
        cegis_config: CegisConfig | None = None,
        copies: int = 1,
        max_components: Optional[int] = None,
    ):
        self.library = library
        self.engine = CegisEngine(cegis_config)
        self.copies = copies
        self.max_components = max_components

    def _component_pool(self) -> list[Component]:
        pool: list[Component] = []
        for _ in range(self.copies):
            pool.extend(self.library)
        if self.max_components is not None:
            pool = pool[: self.max_components]
        return pool

    def synthesize_for(self, spec: SynthesisSpec) -> SynthesisRun:
        """Run a single CEGIS query with every available component."""
        run = SynthesisRun(spec_name=spec.name)
        pool: Sequence[Component] = self._component_pool()
        run.multisets_total = 1
        start = time.perf_counter()
        outcome = self.engine.synthesize(spec, pool)
        run.elapsed_seconds = time.perf_counter() - start
        run.cegis_calls = 1
        run.multisets_tried = 1
        run.exhausted = True
        if outcome.program is not None:
            run.programs.append(outcome.program)
        return run
