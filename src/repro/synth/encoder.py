"""Location-variable encoding for component-based synthesis.

This implements the constraint system of Section 2.2 / 4.1 over our
bit-vector terms:

* ψ_wfp — well-formed-program constraints: component outputs occupy distinct
  locations after the program inputs, every component input reads either a
  program input of a compatible kind or the output of an earlier component,
  and (the paper's addition) a component with the same name as the original
  instruction must not be wired exactly like the original.
* φ_lib — the component semantics relating each component's input values to
  its output value.
* ψ_conn — connectivity: variables placed at the same location carry the
  same value.

Location and attribute variables are shared across counterexamples; value
variables are instantiated afresh for every counterexample added by the
CEGIS loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SynthesisError
from repro.isa.config import IsaConfig
from repro.smt import terms as T
from repro.smt.solver import BVResult
from repro.smt.terms import BV
from repro.synth.components import Component
from repro.synth.program import (
    SOURCE_INPUT,
    SOURCE_SLOT,
    ProgramSlot,
    SynthesizedProgram,
)
from repro.synth.spec import SynthesisSpec
from repro.utils.bitops import clog2


@dataclass
class _ComponentVars:
    """Per-component symbolic variables of the encoding."""

    component: Component
    output_location: BV
    input_locations: list[BV]
    attributes: list[BV]


class LocationEncoder:
    """Builds the synthesis constraints for one spec and one multiset."""

    def __init__(self, spec: SynthesisSpec, components: Sequence[Component]):
        if not components:
            raise SynthesisError("cannot encode an empty multiset")
        self.spec = spec
        self.cfg: IsaConfig = spec.config
        self.components = list(components)
        self.num_inputs = spec.arity
        self.num_components = len(self.components)
        self.num_locations = self.num_inputs + self.num_components
        # width of location variables: enough for num_locations distinct values
        self.loc_width = max(1, clog2(self.num_locations + 1))
        self._vars: list[_ComponentVars] = []
        self._example_count = 0
        self._build_variables()

    # -------------------------------------------------------------- variables

    def _loc_const(self, value: int) -> BV:
        return T.bv_const(value, self.loc_width)

    def _build_variables(self) -> None:
        for index, comp in enumerate(self.components):
            out_loc = T.fresh_var(f"loc_out_{self.spec.name}_{index}", self.loc_width)
            in_locs = [
                T.fresh_var(f"loc_in_{self.spec.name}_{index}_{k}", self.loc_width)
                for k in range(comp.arity)
            ]
            attrs = [
                T.fresh_var(f"attr_{self.spec.name}_{index}_{k}", width)
                for k, width in enumerate(comp.attribute_widths)
            ]
            self._vars.append(_ComponentVars(comp, out_loc, in_locs, attrs))

    # ------------------------------------------------------------------- wfp

    def wfp_constraints(self) -> list[BV]:
        """ψ_wfp: ranges, distinct outputs, acyclicity, operand-kind rules."""
        constraints: list[BV] = []
        lo = self._loc_const(self.num_inputs)
        hi = self._loc_const(self.num_locations)

        # Output locations lie in [num_inputs, num_locations) and are distinct.
        for vars_j in self._vars:
            constraints.append(T.bv_ule(lo, vars_j.output_location))
            constraints.append(T.bv_ult(vars_j.output_location, hi))
        for i in range(self.num_components):
            for j in range(i + 1, self.num_components):
                constraints.append(
                    T.bv_ne(self._vars[i].output_location, self._vars[j].output_location)
                )

        # Input wiring rules.
        register_input_locs = [
            i for i, inp in enumerate(self.spec.inputs) if not inp.is_immediate
        ]
        immediate_input_locs = [
            i for i, inp in enumerate(self.spec.inputs) if inp.is_immediate
        ]
        for vars_j in self._vars:
            comp = vars_j.component
            for k, in_loc in enumerate(vars_j.input_locations):
                if k in comp.immediate_inputs:
                    # Immediate operands may only read the spec's immediate input.
                    allowed = [
                        T.bv_eq(in_loc, self._loc_const(i)) for i in immediate_input_locs
                    ]
                    if not allowed:
                        constraints.append(T.bv_false())
                    else:
                        constraints.append(T.bv_or_all(allowed))
                else:
                    # Register operands read a register-typed program input or
                    # the output of a component placed earlier.
                    options = [
                        T.bv_eq(in_loc, self._loc_const(i)) for i in register_input_locs
                    ]
                    earlier_output = T.bv_and(
                        T.bv_ule(lo, in_loc),
                        T.bv_ult(in_loc, vars_j.output_location),
                    )
                    options.append(earlier_output)
                    constraints.append(T.bv_or_all(options))

        # The program must not be the original instruction wired to itself.
        constraints.extend(self._non_identity_constraints())
        return constraints

    def _non_identity_constraints(self) -> list[BV]:
        constraints: list[BV] = []
        original_wiring = [self._loc_const(i) for i in range(self.num_inputs)]
        for vars_j in self._vars:
            comp = vars_j.component
            if comp.base_instruction != self.spec.name:
                continue
            if comp.arity != self.num_inputs:
                continue
            same_wiring = T.bv_and_all(
                T.bv_eq(in_loc, loc)
                for in_loc, loc in zip(vars_j.input_locations, original_wiring)
            )
            constraints.append(T.bv_not(same_wiring))
        return constraints

    # ------------------------------------------------- per-counterexample part

    def example_constraints(self, example: Sequence[int]) -> list[BV]:
        """φ_lib ∧ ψ_conn ∧ output condition for one concrete input tuple."""
        if len(example) != self.num_inputs:
            raise SynthesisError(
                f"expected {self.num_inputs} example values, got {len(example)}"
            )
        cfg = self.cfg
        tag = self._example_count
        self._example_count += 1

        input_consts = [
            T.bv_const(value, inp.width)
            for value, inp in zip(example, self.spec.inputs)
        ]
        spec_output = self.spec.output_term(input_consts)

        constraints: list[BV] = []
        output_values: list[BV] = []
        input_values: list[list[BV]] = []
        for index, vars_j in enumerate(self._vars):
            out_val = T.fresh_var(
                f"val_out_{self.spec.name}_{tag}_{index}", self.spec.output_width
            )
            in_vals = [
                T.fresh_var(f"val_in_{self.spec.name}_{tag}_{index}_{k}", width)
                for k, width in enumerate(vars_j.component.input_widths)
            ]
            output_values.append(out_val)
            input_values.append(in_vals)

        last_loc = self._loc_const(self.num_locations - 1)
        for index, vars_j in enumerate(self._vars):
            comp = vars_j.component
            # φ_lib: the component computes its output from its inputs.
            constraints.append(
                T.bv_eq(
                    output_values[index],
                    comp.output_term(cfg, input_values[index], vars_j.attributes),
                )
            )
            # Output condition: whichever component sits at the last location
            # produces the specification output.
            constraints.append(
                T.bv_implies(
                    T.bv_eq(vars_j.output_location, last_loc),
                    T.bv_eq(output_values[index], spec_output),
                )
            )
            # ψ_conn for every input of this component.
            for k, in_loc in enumerate(vars_j.input_locations):
                value = input_values[index][k]
                width = comp.input_widths[k]
                for i, const in enumerate(input_consts):
                    if const.width != width:
                        continue
                    constraints.append(
                        T.bv_implies(
                            T.bv_eq(in_loc, self._loc_const(i)),
                            T.bv_eq(value, const),
                        )
                    )
                if width == self.spec.output_width:
                    for other_index, vars_m in enumerate(self._vars):
                        if other_index == index:
                            continue
                        constraints.append(
                            T.bv_implies(
                                T.bv_eq(in_loc, vars_m.output_location),
                                T.bv_eq(value, output_values[other_index]),
                            )
                        )
        return constraints

    # ------------------------------------------------------------------ decode

    def decode(self, result: BVResult) -> SynthesizedProgram:
        """Turn a satisfying assignment into a :class:`SynthesizedProgram`."""
        placements: list[tuple[int, int]] = []  # (location, component index)
        for index, vars_j in enumerate(self._vars):
            location = result.value_of(vars_j.output_location)
            placements.append((location, index))
        placements.sort()

        location_to_slot = {
            location: slot for slot, (location, _) in enumerate(placements)
        }
        slots: list[ProgramSlot] = []
        for location, index in placements:
            vars_j = self._vars[index]
            sources: list[tuple[str, int]] = []
            for in_loc in vars_j.input_locations:
                value = result.value_of(in_loc)
                if value < self.num_inputs:
                    sources.append((SOURCE_INPUT, value))
                else:
                    sources.append((SOURCE_SLOT, location_to_slot[value]))
            attributes = tuple(result.value_of(attr) for attr in vars_j.attributes)
            slots.append(
                ProgramSlot(
                    component=vars_j.component,
                    input_sources=tuple(sources),
                    attributes=attributes,
                )
            )
        return SynthesizedProgram(self.spec, slots)
