"""Iterative CEGIS over multisets (Buchwald et al., 2018).

The iterative algorithm replaces the single monolithic CEGIS query of the
classical formulation with many small queries: it enumerates multisets of a
fixed (small) size drawn from the library with replacement and runs CEGIS on
each multiset independently, stopping once enough equivalent programs have
been found.  The paper uses this as its main baseline; to make the
comparison fair it shuffles the multisets first (Section 6.1), which we
reproduce here with a seeded RNG.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, Optional

from repro.synth.cegis import CegisConfig, CegisEngine
from repro.synth.components import ComponentLibrary
from repro.synth.search import SynthesisRun, enumerate_multisets
from repro.synth.spec import SynthesisSpec


class IterativeCegis:
    """Shuffled multiset enumeration with one CEGIS call per multiset.

    Args:
        library: the component library.
        multiset_size: number of components per multiset (``n`` in the paper).
        target_programs: stop after this many equivalent programs (``k``).
        min_components: only programs built from at least this many
            components count toward ``target_programs`` (the paper requires
            three).
        cegis_config: knobs forwarded to the core engine.
        shuffle_seed: RNG seed used to shuffle the multisets.
        max_multisets: optional hard cap on how many multisets are tried
            (keeps benchmark runtimes bounded); ``None`` enumerates all.
    """

    name = "iterative"

    def __init__(
        self,
        library: ComponentLibrary,
        multiset_size: int = 3,
        target_programs: int = 3,
        min_components: int = 1,
        cegis_config: CegisConfig | None = None,
        shuffle_seed: int = 2024,
        max_multisets: Optional[int] = None,
    ):
        self.library = library
        self.multiset_size = multiset_size
        self.target_programs = target_programs
        self.min_components = min_components
        self.engine = CegisEngine(cegis_config)
        self.shuffle_seed = shuffle_seed
        self.max_multisets = max_multisets

    def _candidate_multisets(self) -> list[tuple]:
        multisets = enumerate_multisets(self.library, self.multiset_size)
        rng = random.Random(self.shuffle_seed)
        rng.shuffle(multisets)
        return multisets

    def synthesize_for(self, spec: SynthesisSpec) -> SynthesisRun:
        """Synthesize equivalent programs for one original instruction."""
        run = SynthesisRun(spec_name=spec.name)
        multisets = self._candidate_multisets()
        run.multisets_total = len(multisets)
        if self.max_multisets is not None:
            multisets = multisets[: self.max_multisets]
        start = time.perf_counter()
        found = 0
        for multiset in multisets:
            run.multisets_tried += 1
            run.cegis_calls += 1
            outcome = self.engine.synthesize(spec, multiset)
            if outcome.program is not None:
                run.programs.append(outcome.program)
                if len(outcome.program.slots) >= self.min_components:
                    found += 1
            if found >= self.target_programs:
                break
        else:
            run.exhausted = True
        run.elapsed_seconds = time.perf_counter() - start
        return run

    def synthesize_all(self, specs: Iterable[SynthesisSpec]) -> dict[str, SynthesisRun]:
        """Convenience wrapper over several original instructions."""
        return {spec.name: self.synthesize_for(spec) for spec in specs}
